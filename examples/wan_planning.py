#!/usr/bin/env python3
"""Deployment planning: project secure-inference cost onto real links.

Given a network architecture and a candidate quantization, how long will
one prediction take over a LAN, a 9 MB/s WAN, or a 24.3 MB/s WAN — and
how does that split between offline and online?  This example combines
the Table 1 cost model with one *measured* compute sample, then sweeps
batch sizes and link profiles without re-running the cryptography.

Run:  python examples/wan_planning.py
"""

import numpy as np

from repro import FragmentScheme, Ring, TrainConfig, mnist_mlp, quantize_model
from repro import secure_predict, synthetic_mnist, train_classifier
from repro.crypto.group import MODP_TEST
from repro.net.netsim import LAN, WAN_QUOTIENT, WAN_SECUREML
from repro.perf.costmodel import gc_relu_comm_bits, network_offline_comm_bits

MB = 1024 * 1024
LINKS = [LAN, WAN_SECUREML, WAN_QUOTIENT]
FIG4_LAYERS = [(128, 784), (128, 128), (10, 128)]
HIDDEN_RELUS = 128 + 128


def main() -> None:
    print("== calibrate: one measured secure prediction ==")
    data = synthetic_mnist(n_train=800, n_test=100)
    model = mnist_mlp(seed=1)
    train_classifier(model, data.train_x, data.train_y, TrainConfig(epochs=4))
    scheme = FragmentScheme.from_bits((2, 2))
    qmodel = quantize_model(model, scheme, Ring(32), frac_bits=6)
    report = secure_predict(qmodel, data.test_x[:1], group=MODP_TEST)
    compute_s = report.offline_client.seconds + report.online_client.seconds
    measured_mb = report.total_bytes / MB
    print(f"measured: {compute_s:.2f}s compute, {measured_mb:.2f} MB, {report.rounds} rounds")

    # the trace splits that measurement per phase and projects each link
    from repro.perf.report import phase_rows

    for row in phase_rows(report.client_trace, LINKS):
        projected = ", ".join(
            f"{name} {seconds:.2f}s" for name, seconds in row.projections.items()
        )
        print(
            f"  {row.name:<8} {row.payload_bytes / MB:>6.2f} MB, "
            f"{row.rounds} rounds -> {projected}"
        )

    print("\n== plan: batch-size sweep over link profiles (4-bit weights) ==")
    print(f"{'batch':>6} {'offline MB':>11} {'online MB':>10}", end="")
    for link in LINKS:
        print(f" {link.name + ' s':>18}", end="")
    print()
    for batch in (1, 8, 32, 128):
        offline_bits = network_offline_comm_bits(FIG4_LAYERS, scheme, batch, 32)
        online_bits = gc_relu_comm_bits(32, HIDDEN_RELUS * batch) + 784 * 32 * batch + 10 * 32 * batch
        total_bytes = (offline_bits + online_bits) / 8
        # compute scales ~linearly with traffic volume in this workload
        scaled_compute = compute_s * total_bytes / report.total_bytes
        rounds = report.rounds  # round count is batch-independent
        print(f"{batch:>6} {offline_bits / 8 / MB:>11.1f} {online_bits / 8 / MB:>10.1f}", end="")
        for link in LINKS:
            est = link.estimate_s(scaled_compute, int(total_bytes), rounds)
            print(f" {est:>18.2f}", end="")
        print()

    print(
        "\nreading: on the 9 MB/s WAN the offline OT traffic dominates;"
        " amortize it across a batch (the paper's Table 2 observation)."
    )


if __name__ == "__main__":
    main()
