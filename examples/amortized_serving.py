#!/usr/bin/env python3
"""Amortized serving: one server, a banked offline phase, many clients.

The paper's cost split (expensive data-independent offline phase, cheap
online phase) pays off when one serving process precomputes offline
rounds ahead of time and many clients draw from that bank.  This demo:

1. trains and quantizes a small model;
2. banks K offline rounds (and persists them to disk);
3. serves 3 sequential reconnecting clients and 2 concurrent clients
   over real TCP sockets from the same process — no restarts;
4. "restarts" the server against the persisted bank and shows the
   offline phase is skipped entirely (zero generation traffic);
5. prints the amortized-throughput arithmetic.

Run:  python examples/amortized_serving.py [--rounds K] [--batch N]

Uses the 256-bit test group so the demo finishes in seconds; see
docs/PROTOCOLS.md §11 for the trusted-dealer caveat of banked serving.
"""

import argparse
import os
import tempfile
import threading
import time

from repro import (
    FragmentScheme,
    Ring,
    TrainConfig,
    mnist_mlp,
    quantize_model,
    synthetic_mnist,
    train_classifier,
)
from repro.core.protocol import ModelMeta
from repro.crypto.group import MODP_TEST
from repro.errors import ProtocolError
from repro.serve import PredictionClient, PredictionServer, TripletBank

MB = 1024 * 1024


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=5, help="offline rounds to bank")
    parser.add_argument("--batch", type=int, default=2, help="images per prediction")
    args = parser.parse_args()

    print("== 1. train + quantize (server side, one-time) ==")
    data = synthetic_mnist(n_train=1200, n_test=300)
    model = mnist_mlp(seed=1, hidden=32)
    train_classifier(model, data.train_x, data.train_y, TrainConfig(epochs=4))
    qmodel = quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)
    meta = ModelMeta.from_model(qmodel)
    print(f"quantized test accuracy: {qmodel.accuracy(data.test_x, data.test_y):.3f}")

    print(f"\n== 2. bank {args.rounds} offline rounds ahead of any client ==")
    bank = TripletBank(
        qmodel, args.batch, capacity=args.rounds, auto_replenish=False,
        group=MODP_TEST, seed=7,
    )
    t0 = time.perf_counter()
    bank.fill(args.rounds)
    offline_s = time.perf_counter() - t0
    gen_mb = bank.metrics()["generation_payload_bytes"] / MB
    print(f"banked {bank.depth} rounds in {offline_s:.2f}s ({gen_mb:.2f} MB of OT traffic)")
    bank_path = os.path.join(tempfile.mkdtemp(), "bank.npz")
    bank.save(bank_path)
    print(f"persisted bank to {bank_path}")

    print("\n== 3. serve sequential + concurrent clients over TCP ==")
    predictions = []
    t_online = time.perf_counter()
    with PredictionServer(
        qmodel, bank, port=0, max_sessions=4, group=MODP_TEST, seed=3
    ) as srv:
        for i in range(3):  # reconnecting clients: one session each
            with PredictionClient(
                meta, args.batch, port=srv.port, group=MODP_TEST
            ) as client:
                x = data.test_x[i * args.batch : (i + 1) * args.batch]
                _, labels = client.predict(x)
                predictions.append(labels)
                print(f"  sequential client {i}: session={client.session_id} -> {labels.tolist()}")

        def _concurrent(i):
            with PredictionClient(
                meta, args.batch, port=srv.port, group=MODP_TEST
            ) as client:
                x = data.test_x[(3 + i) * args.batch : (4 + i) * args.batch]
                _, labels = client.predict(x)
                predictions.append(labels)
                print(f"  concurrent client {i}: session={client.session_id} -> {labels.tolist()}")

        threads = [threading.Thread(target=_concurrent, args=(i,)) for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        srv.wait_idle()
        online_s = time.perf_counter() - t_online

        if srv.metrics()["bank"]["depth"] == 0:
            try:
                with PredictionClient(
                    meta, args.batch, port=srv.port, group=MODP_TEST
                ) as client:
                    client.predict(data.test_x[: args.batch])
            except ProtocolError as exc:
                print(f"  6th client denied cleanly: {exc}")
        metrics = srv.metrics()
        print(f"server metrics: {metrics['sessions_served']} sessions, "
              f"{metrics['predictions']} predictions, bank depth {metrics['bank']['depth']}")

    print("\n== 4. restart against the persisted bank ==")
    restarted = TripletBank(
        qmodel, args.batch, auto_replenish=False, group=MODP_TEST
    )
    n = restarted.load(bank_path)
    with PredictionServer(qmodel, restarted, port=0, group=MODP_TEST) as srv:
        with PredictionClient(meta, args.batch, port=srv.port, group=MODP_TEST) as client:
            _, labels = client.predict(data.test_x[: args.batch])
            print(f"  post-restart prediction: {labels.tolist()}")
        srv.wait_idle()
    m = restarted.metrics()
    assert m["generation_payload_bytes"] == 0, "restart must not regenerate triplets"
    print(f"  loaded {n} rounds from disk; generation traffic after restart: "
          f"{m['generation_payload_bytes']} bytes (offline phase skipped)")

    print("\n== 5. amortization arithmetic ==")
    n_served = len(predictions) * args.batch
    print(f"offline: {offline_s:.2f}s once, banked ahead of any connection")
    print(f"online:  {online_s:.2f}s for {len(predictions)} sessions "
          f"({n_served} images) -> {n_served / online_s:.1f} images/s amortized")
    print("every client saw only its own predictions; the server saw only shares")


if __name__ == "__main__":
    main()
