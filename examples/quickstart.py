#!/usr/bin/env python3
"""Quickstart: train, quantize, and run one secure two-party prediction.

The server owns a small MLP trained on the synthetic MNIST-like dataset;
the client owns a handful of images.  After the run the client knows the
predictions, the server learned nothing about the images, and the client
learned nothing about the weights beyond the (public) architecture.

Run:  python examples/quickstart.py [--secure] [--batch N]

By default the 256-bit test group backs the base OTs so the demo finishes
in seconds; pass --secure for the real 1536-bit MODP group.
"""

import argparse
import time

from repro import (
    FragmentScheme,
    Ring,
    TrainConfig,
    mnist_mlp,
    quantize_model,
    secure_predict,
    synthetic_mnist,
    train_classifier,
)
from repro.crypto.group import MODP_1536, MODP_TEST


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--secure", action="store_true", help="use the 1536-bit group")
    parser.add_argument("--batch", type=int, default=4, help="images per prediction batch")
    args = parser.parse_args()
    group = MODP_1536 if args.secure else MODP_TEST

    print("== 1. train a plaintext model (server side) ==")
    data = synthetic_mnist(n_train=1500, n_test=300)
    model = mnist_mlp(seed=1)
    train_classifier(model, data.train_x, data.train_y, TrainConfig(epochs=6))
    print(f"float test accuracy: {model.accuracy(data.test_x, data.test_y):.3f}")

    print("\n== 2. quantize to 4-bit weights, fragment scheme 4(2,2) ==")
    qmodel = quantize_model(model, FragmentScheme.from_bits((2, 2)), Ring(32), frac_bits=6)
    qmodel.check_range(data.test_x)
    print(f"quantized test accuracy: {qmodel.accuracy(data.test_x, data.test_y):.3f}")

    print(f"\n== 3. secure two-party prediction (batch={args.batch}) ==")
    x = data.test_x[: args.batch]
    start = time.perf_counter()
    report = secure_predict(qmodel, x, group=group)
    elapsed = time.perf_counter() - start

    print(f"predictions: {report.predictions.tolist()}")
    print(f"ground truth: {data.test_y[: args.batch].tolist()}")
    print(f"plaintext reference: {qmodel.predict(x).tolist()}")
    assert (report.predictions == qmodel.predict(x)).all(), "secure != plaintext!"

    mb = 1024 * 1024
    print(f"\nwall time: {elapsed:.2f}s")
    print(
        f"offline phase: {report.offline_bytes / mb:.2f} MB "
        f"({report.offline_client.seconds:.2f}s) -- OT triplet generation"
    )
    print(
        f"online phase:  {report.online_bytes / mb:.2f} MB "
        f"({report.online_client.seconds:.2f}s) -- shares + garbled ReLU"
    )
    print(f"communication rounds: {report.rounds}")

    print("\n== 4. per-layer accounting (from the protocol trace) ==")
    # secure_predict returns each party's span trace; the report module
    # compares every traced layer against the Table 1 closed forms.
    from repro.perf.report import conformance_rows

    for row in conformance_rows(report.client_trace):
        predicted = (
            f"{row.predicted_bits / 8 / mb:.2f} MB predicted"
            if row.predicted_bits is not None
            else "unmodeled"
        )
        status = {True: "OK", False: "MISMATCH", None: ""}[row.ok]
        print(
            f"  {row.path:<24} {row.core_bits / 8 / mb:>7.2f} MB measured"
            f"  vs {predicted:<22} {status}"
        )


if __name__ == "__main__":
    main()
