#!/usr/bin/env python3
"""Extension demo: secure inference for a *convolutional* network.

The paper evaluates an MLP, but its matmul protocol carries convolutions
for free: im2col is a linear rearrangement, so each party lowers its
activation *share* locally and the conv layer becomes a secure matrix
product whose batch dimension is ``out_h * out_w * batch`` — prime
territory for the multi-batch OT-reuse optimization of Section 4.1.2.

Run:  python examples/secure_cnn.py
"""

import time

import numpy as np

from repro import FragmentScheme, Ring, TrainConfig, train_classifier
from repro.core.protocol import secure_predict
from repro.crypto.group import MODP_TEST
from repro.nn.data import synthetic_mnist
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model

MB = 1024 * 1024


def main() -> None:
    print("== train a small CNN over 28x28 synthetic digits ==")
    # conv(1->6, k5, s3) -> relu -> flatten -> dense(384->10)
    model = Sequential(
        [
            Conv2d(1, 6, kernel_size=5, stride=3, seed=1),
            ReLU(),
            Flatten(),
            Dense(6 * 8 * 8, 10, seed=2),
        ]
    )
    data = synthetic_mnist(n_train=600, n_test=100)
    train_classifier(
        model,
        data.train_x.reshape(-1, 1, 28, 28),
        data.train_y,
        TrainConfig(epochs=4, learning_rate=0.03),
    )
    test_imgs = data.test_x.reshape(-1, 1, 28, 28)
    acc = float((model.predict(test_imgs) == data.test_y).mean())
    print(f"float CNN accuracy: {acc:.3f}")

    ring = Ring(32)
    qmodel = quantize_model(
        model,
        FragmentScheme.from_bits((2, 2)),
        ring,
        frac_bits=6,
        input_shape=(1, 28, 28),
    )
    q_acc = qmodel.accuracy(data.test_x, data.test_y)
    print(f"4-bit quantized accuracy: {q_acc:.3f}")
    conv_meta = qmodel.layers[0]
    spec = conv_meta.conv
    print(
        f"conv layer lowered to a ({conv_meta.shape[0]} x {spec.patch_len}) matmul "
        f"over {spec.n_positions} output positions per image"
    )

    x = data.test_x[:3]
    start = time.perf_counter()
    report = secure_predict(qmodel, x, group=MODP_TEST)
    elapsed = time.perf_counter() - start

    reference = qmodel.predict(x)
    print(f"\nsecure predictions:  {report.predictions.tolist()}")
    print(f"plaintext reference: {reference.tolist()}")
    assert (report.predictions == reference).all()

    print(
        f"\nwall time {elapsed:.2f}s; offline {report.offline_bytes / MB:.2f} MB, "
        f"online {report.online_bytes / MB:.2f} MB, {report.rounds} rounds"
    )



if __name__ == "__main__":
    main()
