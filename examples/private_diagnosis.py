#!/usr/bin/env python3
"""Domain scenario: a clinic queries a hospital's diagnostic model.

This example exercises the *two-party API directly* (rather than the
one-call ``secure_predict`` helper) to make the trust boundary explicit:

* the **hospital** (server) constructs :class:`Abnn2Server` from the full
  quantized model;
* the **clinic** (client) constructs :class:`Abnn2Client` from
  :class:`ModelMeta` only — layer shapes and fragment schemes, *no
  weights* — plus its private patient feature vectors.

The model is a risk classifier over 40 synthetic biomarker features and
3 outcome classes; the paper's intro motivates exactly this MLaaS
setting (healthcare under HIPAA/GDPR).

Run:  python examples/private_diagnosis.py
"""

import numpy as np

from repro import FragmentScheme, ModelMeta, Ring, TrainConfig, train_classifier
from repro.core.protocol import Abnn2Client, Abnn2Server
from repro.crypto.group import MODP_TEST
from repro.net import run_protocol
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model
from repro.utils.rng import derive_rng

N_FEATURES = 40
N_CLASSES = 3
CLASS_NAMES = ["low risk", "monitor", "urgent"]


_CENTERS = derive_rng(2022, "disease-centers").normal(
    scale=1.5, size=(N_CLASSES, N_FEATURES)
)


def make_cohort(n: int, seed: int):
    """Synthetic biomarker panels; class centers are fixed, samples vary."""
    rng = derive_rng(seed, "cohort")
    labels = rng.integers(0, N_CLASSES, size=n)
    features = _CENTERS[labels] + rng.normal(scale=1.0, size=(n, N_FEATURES))
    # biomarkers are non-negative concentrations
    return np.clip(features + 2.0, 0.0, None) / 6.0, labels


def main() -> None:
    print("== hospital: train + quantize the risk model ==")
    train_x, train_y = make_cohort(1200, seed=10)
    model = Sequential(
        [Dense(N_FEATURES, 32, seed=2), ReLU(), Dense(32, N_CLASSES, seed=3)]
    )
    train_classifier(model, train_x, train_y, TrainConfig(epochs=12, learning_rate=0.1))
    qmodel = quantize_model(model, FragmentScheme.from_bits((2, 2, 2, 2)), Ring(32), frac_bits=8)
    test_x, test_y = make_cohort(300, seed=11)
    print(f"model accuracy (hospital's own eval): {qmodel.accuracy(test_x, test_y):.3f}")

    print("\n== clinic: five patients to triage privately ==")
    patients, truth = make_cohort(5, seed=12)
    meta = ModelMeta.from_model(qmodel)  # shapes + schemes only, no weights
    batch = patients.shape[0]
    x_ring = qmodel.encoder.encode(patients.T)

    def hospital(chan):
        server = Abnn2Server(chan, qmodel, batch, group=MODP_TEST, seed=100)
        server.offline()  # OT triplets, before any patient data exists
        server.online()  # blind linear algebra + garbled ReLU
        return server

    def clinic(chan):
        client = Abnn2Client(chan, meta, batch, group=MODP_TEST, seed=200)
        client.offline()
        logits = client.online(x_ring)
        return logits

    result = run_protocol(hospital, clinic)
    logits = result.client
    predictions = np.argmax(qmodel.ring.to_signed(logits), axis=0)

    print(f"{'patient':>8}  {'prediction':>12}  {'truth':>10}")
    for i, (pred, actual) in enumerate(zip(predictions, truth)):
        print(f"{i:>8}  {CLASS_NAMES[pred]:>12}  {CLASS_NAMES[actual]:>10}")

    reference = qmodel.predict(patients)
    assert (predictions == reference).all(), "secure result diverged from reference"
    mb = 1024 * 1024
    print(
        f"\ntraffic: {result.total_bytes / mb:.2f} MB total, "
        f"{result.rounds} rounds; the hospital never saw the biomarkers, "
        "the clinic never saw the weights."
    )


if __name__ == "__main__":
    main()
