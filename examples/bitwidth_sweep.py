#!/usr/bin/env python3
"""Arbitrary-bitwidth sweep: accuracy vs secure-inference cost.

ABNN2's selling point is that the protocol *adapts* to any weight
bitwidth via the (N, gamma) fragment decomposition.  This example makes
the trade-off concrete for one trained model:

* quantize the same network at eta in {binary, ternary, 3, 4, 6, 8};
* report test accuracy, the analytically optimal fragment scheme at each
  bitwidth (Section 4.1 / Table 1), and the measured offline traffic of
  a real secure prediction.

Run:  python examples/bitwidth_sweep.py [--batch N]
"""

import argparse

from repro import (
    FragmentScheme,
    Ring,
    TrainConfig,
    mnist_mlp,
    optimal_scheme,
    quantize_model,
    secure_predict,
    synthetic_mnist,
    train_classifier,
)
from repro.crypto.group import MODP_TEST
from repro.perf.costmodel import network_offline_comm_bits

MB = 1024 * 1024

SWEEP = [
    ("binary", FragmentScheme.binary()),
    ("ternary", FragmentScheme.ternary()),
    ("3-bit", FragmentScheme.from_bits((2, 1))),
    ("4-bit", FragmentScheme.from_bits((2, 2))),
    ("6-bit", FragmentScheme.from_bits((2, 2, 2))),
    ("8-bit", FragmentScheme.from_bits((2, 2, 2, 2))),
]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--batch", type=int, default=1)
    args = parser.parse_args()

    data = synthetic_mnist(n_train=1500, n_test=300)
    model = mnist_mlp(seed=1, hidden=64)
    train_classifier(model, data.train_x, data.train_y, TrainConfig(epochs=6))
    float_acc = model.accuracy(data.test_x, data.test_y)
    print(f"float model accuracy: {float_acc:.3f}\n")

    ring = Ring(32)
    layer_shapes = [(64, 784), (64, 64), (10, 64)]
    print(
        f"{'scheme':>10} {'gamma':>6} {'accuracy':>9} "
        f"{'offline MB (measured)':>22} {'model MB (predicted)':>21}"
    )
    for label, scheme in SWEEP:
        qmodel = quantize_model(model, scheme, ring, frac_bits=6)
        acc = qmodel.accuracy(data.test_x, data.test_y)
        x = data.test_x[: args.batch]
        report = secure_predict(qmodel, x, group=MODP_TEST)
        predicted = network_offline_comm_bits(layer_shapes, scheme, args.batch, 32) / 8 / MB
        print(
            f"{label:>10} {scheme.gamma:>6} {acc:>9.3f} "
            f"{report.offline_bytes / MB:>22.2f} {predicted:>21.2f}"
        )

    print("\nanalytically optimal fragment decompositions (Table 1 model):")
    for eta in (3, 4, 6, 8, 12):
        one = optimal_scheme(eta, ring_bits=32, batch=1)
        multi = optimal_scheme(eta, ring_bits=32, batch=128)
        print(f"  eta={eta:>2}: batch=1 -> {one.name:>12}   batch=128 -> {multi.name}")


if __name__ == "__main__":
    main()
