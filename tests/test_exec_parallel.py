"""Execution engine: mux framing, sharded determinism, thread hygiene.

The contract under test (docs/PROTOCOLS.md §12): ``shards``/``chunk_ots``
are protocol parameters, ``workers``/``async_depth`` are local knobs —
for a fixed seed every worker count must produce byte-identical shares
and identical per-stream transcripts, over in-memory channels and TCP
alike, and must not leak worker threads.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.crypto.iknp import MAX_SESSION_TAG, _session_base_index
from repro.core.triplets import TripletConfig
from repro.errors import ChannelError, CryptoError
from repro.exec import (
    ShardPlan,
    parallel_triplets_client,
    parallel_triplets_server,
    run_evaluator_sharded,
    run_garbler_sharded,
    shard_entropy,
)
from repro.exec.pool import run_sharded
from repro.gc.builder import relu_template
from repro.net import tcp
from repro.net.channel import make_channel_pair
from repro.net.mux import MUX_FRAME_OVERHEAD_BYTES, ChannelMux
from repro.net.netsim import NetworkModel, shaped_channel_pair
from repro.perf.trace import Tracer
from repro.quant.fragments import FragmentScheme
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring


class _no_thread_leak:
    """Assert the with-block leaves no extra live threads behind."""

    def __enter__(self):
        self._before = set(threading.enumerate())
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is not None:
            return False
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = [
                t for t in threading.enumerate()
                if t not in self._before and t.is_alive()
            ]
            if not leaked:
                return False
            time.sleep(0.01)
        raise AssertionError(f"leaked threads: {[t.name for t in leaked]}")


def _tcp_pair(timeout_s=30.0):
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    box = {}

    def _serve():
        box["server"] = tcp.listen(port, timeout_s=timeout_s)

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = tcp.connect("127.0.0.1", port, timeout_s=timeout_s)
    thread.join(timeout=timeout_s)
    return box["server"], client


def _both(server_fn, client_fn, channels):
    """Run both parties on threads; re-raise the first party error."""
    server_chan, client_chan = channels
    out: dict = {}
    errors: list[BaseException] = []

    def runner(name, fn, chan):
        def body():
            try:
                out[name] = fn(chan)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return threading.Thread(target=body, name=f"party-{name}", daemon=True)

    threads = [runner("server", server_fn, server_chan), runner("client", client_fn, client_chan)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    if errors:
        raise errors[0]
    assert not any(t.is_alive() for t in threads), "party thread hung"
    return out["server"], out["client"]


# --------------------------------------------------------------------- #
# mux framing
# --------------------------------------------------------------------- #
class TestChannelMux:
    def test_two_streams_roundtrip_and_accounting(self):
        a, b = make_channel_pair(timeout_s=5.0)
        mux_a, mux_b = ChannelMux(a), ChannelMux(b)
        payload = np.arange(4, dtype=np.uint64)

        def left(_):
            mux_a.stream(0).send(payload)
            mux_a.stream(1).send(111)
            return mux_a.stream(1).recv()

        def right(_):
            got1 = mux_b.stream(1).recv()
            got0 = mux_b.stream(0).recv()
            mux_b.stream(1).send(222)
            return got0, got1

        echoed, (got0, got1) = _both(left, right, (a, b))
        assert echoed == 222 and got1 == 111
        assert (got0 == payload).all()
        assert mux_a.stream(0).sent_msgs == 1
        assert mux_a.stream(0).sent_bytes == payload.nbytes
        assert mux_b.stream_totals()[0]["recv_bytes"] == payload.nbytes
        # Send-side accounting matches recv-side accounting per stream.
        assert mux_a.stream_totals()[1]["sent_msgs"] == mux_b.stream_totals()[1]["recv_msgs"]

    def test_sequence_gap_detected(self):
        a, b = make_channel_pair(timeout_s=1.0)
        mux_b = ChannelMux(b)
        a.send((0, 3, 99))  # stream 0 expects frame #0
        with pytest.raises(ChannelError, match="sequence gap"):
            mux_b.stream(0).recv()

    def test_non_mux_frame_rejected(self):
        a, b = make_channel_pair(timeout_s=1.0)
        mux_b = ChannelMux(b)
        a.send(np.zeros(2, dtype=np.uint64))
        with pytest.raises(ChannelError, match="mux frame"):
            mux_b.stream(0).recv()

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("async_depth", [0, 2])
    def test_interleaving_fuzz(self, seed, async_depth):
        """Per-stream order and totals survive adversarial interleaving."""
        n_streams, n_msgs = 4, 12
        master = np.random.default_rng(1000 + seed)
        sleeps = master.random((2, n_streams, n_msgs)) * 0.002
        a, b = make_channel_pair(timeout_s=10.0)

        def party(mux, side):
            def run(_):
                results = {}
                errs = []

                def worker(tag):
                    try:
                        stream = mux.stream(tag)
                        got = []
                        for i in range(n_msgs):
                            time.sleep(sleeps[side, tag, i])
                            stream.send((side, tag, i))
                            got.append(stream.recv())
                        results[tag] = got
                    except BaseException as exc:  # noqa: BLE001
                        errs.append(exc)

                workers = [
                    threading.Thread(target=worker, args=(t,), daemon=True)
                    for t in range(n_streams)
                ]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join(timeout=30.0)
                mux.flush()
                if errs:
                    raise errs[0]
                return results

            return run

        with _no_thread_leak():
            mux_a = ChannelMux(a, async_depth=async_depth)
            mux_b = ChannelMux(b, async_depth=async_depth)
            got_a, got_b = _both(party(mux_a, 0), party(mux_b, 1), (a, b))
            mux_a.close()
            mux_b.close()
        for tag in range(n_streams):
            # In-order per stream despite cross-stream interleaving.
            assert got_a[tag] == [(1, tag, i) for i in range(n_msgs)]
            assert got_b[tag] == [(0, tag, i) for i in range(n_msgs)]
        # Byte totals are scheduling-independent: same payloads each run.
        totals_a, totals_b = mux_a.stream_totals(), mux_b.stream_totals()
        for tag in range(n_streams):
            assert totals_a[tag]["sent_msgs"] == n_msgs
            assert totals_a[tag]["sent_bytes"] == totals_b[tag]["recv_bytes"]
            assert totals_b[tag]["sent_bytes"] == totals_a[tag]["recv_bytes"]

    def test_close_idempotent_and_never_closes_inner(self):
        a, b = make_channel_pair(timeout_s=1.0)
        with _no_thread_leak():
            mux = ChannelMux(a, async_depth=2)
            mux.stream(0).send(7)
            mux.flush()
            mux.close()
            mux.close()
        assert b.recv() == (0, 0, 7)  # inner channel still usable


# --------------------------------------------------------------------- #
# session-tag domain separation
# --------------------------------------------------------------------- #
class TestSessionTag:
    def test_base_index_layout(self):
        assert _session_base_index(0) == 0
        assert _session_base_index(3) == 3 << 48
        assert _session_base_index(MAX_SESSION_TAG) == MAX_SESSION_TAG << 48

    def test_out_of_range_rejected(self):
        for bad in (-1, MAX_SESSION_TAG + 1):
            with pytest.raises(CryptoError):
                _session_base_index(bad)


# --------------------------------------------------------------------- #
# sharded triplets: worker-count independence
# --------------------------------------------------------------------- #
def _triplet_config(test_group, m=12, n=10, o=4):
    return TripletConfig(
        ring=Ring(16), scheme=FragmentScheme.from_bits((2, 2)),
        m=m, n=n, o=o, group=test_group,
    )


def _triplet_inputs(config, seed=5):
    rng = np.random.default_rng(seed)
    lo, hi = config.scheme.weight_range
    w = rng.integers(lo, hi + 1, size=(config.m, config.n), dtype=np.int64)
    r = config.ring.sample(rng, (config.n, config.o))
    return w, r


def _run_parallel(config, w, r, plan, channels, trace=False):
    stats = {"server": {}, "client": {}}
    if trace:
        channels[0].tracer = Tracer("server")
        channels[1].tracer = Tracer("client")

    u, v = _both(
        lambda chan: parallel_triplets_server(
            chan, w, config, plan, seed=21, stats_out=stats["server"]
        ),
        lambda chan: parallel_triplets_client(
            chan, r, config, plan, seed=22, stats_out=stats["client"]
        ),
        channels,
    )
    return u, v, stats


class TestShardedTriplets:
    def test_worker_count_independence_in_memory(self, test_group):
        config = _triplet_config(test_group)
        w, r = _triplet_inputs(config)
        results = {}
        for workers in (1, 4):
            plan = ShardPlan(shards=4, workers=workers, chunk_ots=64)
            with _no_thread_leak():
                results[workers] = _run_parallel(
                    config, w, r, plan, make_channel_pair(timeout_s=30.0)
                )
        u1, v1, stats1 = results[1]
        u4, v4, stats4 = results[4]
        expected = config.ring.matmul(config.ring.reduce(w), r)
        assert (config.ring.add(u1, v1) == expected).all()
        assert (u1 == u4).all() and (v1 == v4).all()
        for side in ("server", "client"):
            assert stats1[side]["stream_totals"] == stats4[side]["stream_totals"]

    def test_worker_count_independence_over_tcp(self, test_group):
        config = _triplet_config(test_group, m=6, n=5, o=2)
        w, r = _triplet_inputs(config)
        plan1 = ShardPlan(shards=3, workers=1, chunk_ots=32)
        plan4 = ShardPlan(shards=3, workers=4, chunk_ots=32)
        u1, v1, stats1 = _run_parallel(
            config, w, r, plan1, make_channel_pair(timeout_s=30.0)
        )
        with _no_thread_leak():
            server_chan, client_chan = _tcp_pair()
            try:
                u4, v4, stats4 = _run_parallel(
                    config, w, r, plan4, (server_chan, client_chan)
                )
            finally:
                server_chan.close()
                client_chan.close()
        assert (u1 == u4).all() and (v1 == v4).all()
        for side in ("server", "client"):
            assert stats1[side]["stream_totals"] == stats4[side]["stream_totals"]

    def test_traced_per_stream_totals_deterministic(self, test_group):
        """Tracer-visible per-shard byte totals match across worker counts."""
        config = _triplet_config(test_group, m=8, n=6, o=2)
        w, r = _triplet_inputs(config)

        def traced_totals(workers):
            channels = make_channel_pair(timeout_s=30.0)
            plan = ShardPlan(shards=2, workers=workers, chunk_ots=64)
            _, _, stats = _run_parallel(config, w, r, plan, channels, trace=True)
            root = channels[0].tracer.root
            engine = next(s for s in root.children if s.name == "parallel-offline")
            shard_io = {
                s.name: (s.totals()["sent_bytes"], s.totals()["recv_bytes"])
                for s in engine.children if s.name.startswith("shard")
            }
            assert engine.attrs["pipeline_occupancy"] > 0
            return shard_io, stats["server"]["stream_totals"]

        io1, totals1 = traced_totals(1)
        io2, totals2 = traced_totals(4)
        assert io1 == io2 and totals1 == totals2
        assert set(io1) == {"shard0", "shard1"}
        for tag, counters in totals1.items():
            assert io1[f"shard{tag}"] == (
                counters["sent_bytes"], counters["recv_bytes"]
            )

    def test_shards_is_a_protocol_parameter(self, test_group):
        """Different shard counts give different (but still valid) shares."""
        config = _triplet_config(test_group, m=6, n=4, o=2)
        w, r = _triplet_inputs(config)
        shares = {}
        for shards in (2, 3):
            plan = ShardPlan(shards=shards, workers=1, chunk_ots=32)
            u, v, _ = _run_parallel(
                config, w, r, plan, make_channel_pair(timeout_s=30.0)
            )
            expected = config.ring.matmul(config.ring.reduce(w), r)
            assert (config.ring.add(u, v) == expected).all()
            shares[shards] = (u, v)
        assert not (shares[2][0] == shares[3][0]).all()


# --------------------------------------------------------------------- #
# sharded GC
# --------------------------------------------------------------------- #
class TestShardedGc:
    def test_relu_sharded_matches_and_is_worker_independent(self, test_group, rng):
        ring = Ring(16)
        circ = relu_template(16)
        n = 23  # not divisible by shards: exercises uneven instance blocks
        y, y1, z1 = ring.sample(rng, n), ring.sample(rng, n), ring.sample(rng, n)
        y0 = ring.sub(y, y1)
        g_bits = np.concatenate(
            [int_to_bits(y1, 16), int_to_bits(z1, 16)], axis=1
        ).T.copy()
        e_bits = int_to_bits(y0, 16).T.copy()

        outs = {}
        for workers in (1, 3):
            plan = ShardPlan(shards=3, workers=workers)
            with _no_thread_leak():
                _, outs[workers] = _both(
                    lambda chan: run_garbler_sharded(
                        chan, circ, g_bits, n, plan, seed=31, group=test_group
                    ),
                    lambda chan: run_evaluator_sharded(
                        chan, circ, e_bits, n, plan, seed=32, group=test_group
                    ),
                    # garbler is the client role in ABNN2's ReLU layer
                    tuple(reversed(make_channel_pair(timeout_s=30.0))),
                )
        got = ring.reduce(bits_to_int(outs[1].T))
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (got == ring.sub(relu, z1)).all()
        assert (outs[1] == outs[3]).all()


# --------------------------------------------------------------------- #
# worker pool + entropy
# --------------------------------------------------------------------- #
class TestPool:
    def test_run_sharded_preserves_order_and_reraises(self):
        with _no_thread_leak():
            assert run_sharded([lambda i=i: i * i for i in range(7)], 3) == [
                i * i for i in range(7)
            ]

        def boom():
            raise ValueError("shard exploded")

        with _no_thread_leak(), pytest.raises(ValueError, match="shard exploded"):
            run_sharded([lambda: 1, boom, lambda: 3], 2)

    def test_shard_entropy_deterministic_and_decorrelated(self):
        a = shard_entropy(42, 4)
        b = shard_entropy(42, 4)
        seeds_a = [seed for seed, _ in a]
        assert seeds_a == [seed for seed, _ in b]
        assert len(set(seeds_a)) == 4
        draws_a = [rng.integers(0, 1 << 30) for _, rng in a]
        draws_b = [rng.integers(0, 1 << 30) for _, rng in b]
        assert draws_a == draws_b
        assert shard_entropy(None, 2)[0][0] is None


# --------------------------------------------------------------------- #
# shaped link
# --------------------------------------------------------------------- #
class TestShapedChannel:
    def test_transfer_and_latency_are_charged(self):
        model = NetworkModel("test", bandwidth_bytes_per_s=1_000_000, rtt_s=0.05)
        server, client = shaped_channel_pair(model, timeout_s=5.0)
        blob = np.zeros(25_000, dtype=np.uint8)  # 25 kB -> 25 ms transfer

        def sender(chan):
            chan.send(blob)

        def receiver(chan):
            t0 = time.perf_counter()
            got = chan.recv()
            return got, time.perf_counter() - t0

        _, (got, elapsed) = _both(sender, receiver, (server, client))
        assert got.nbytes == blob.nbytes
        # transfer (25 ms) + half-RTT (25 ms), minus scheduling slack
        assert elapsed >= 0.04

    def test_serialization_queues_back_to_back_sends(self):
        model = NetworkModel("test", bandwidth_bytes_per_s=1_000_000, rtt_s=0.0)
        server, client = shaped_channel_pair(model, timeout_s=5.0)
        blob = np.zeros(20_000, dtype=np.uint8)

        def sender(chan):
            for _ in range(3):
                chan.send(blob)

        def receiver(chan):
            t0 = time.perf_counter()
            for _ in range(3):
                chan.recv()
            return time.perf_counter() - t0

        _, elapsed = _both(sender, receiver, (server, client))
        assert elapsed >= 0.05  # 3 x 20 ms serialized on one link
