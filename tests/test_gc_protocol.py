"""Two-party GC execution over channels (label OT included)."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.gc.builder import relu_template, sign_template
from repro.gc.circuit import Circuit
from repro.gc.protocol import GcSessions, run_evaluator, run_garbler
from repro.net import run_protocol
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring


def _run_gc(circ, g_bits, e_bits, n_inst, group, garbler_seed=3, eval_seed=4):
    def garbler_fn(chan):
        sessions = GcSessions(chan, "garbler", group=group, seed=garbler_seed)
        run_garbler(chan, circ, g_bits, n_inst, sessions, np.random.default_rng(11))

    def evaluator_fn(chan):
        sessions = GcSessions(chan, "evaluator", group=group, seed=eval_seed)
        return run_evaluator(chan, circ, e_bits, n_inst, sessions)

    return run_protocol(garbler_fn, evaluator_fn)


class TestGcProtocol:
    def test_relu_over_channel(self, test_group, rng):
        ring = Ring(16)
        circ = relu_template(16)
        n = 30
        y, y1, z1 = ring.sample(rng, n), ring.sample(rng, n), ring.sample(rng, n)
        y0 = ring.sub(y, y1)
        g_bits = np.concatenate([int_to_bits(y1, 16), int_to_bits(z1, 16)], axis=1).T.copy()
        e_bits = int_to_bits(y0, 16).T.copy()
        result = _run_gc(circ, g_bits, e_bits, n, test_group)
        got = ring.reduce(bits_to_int(result.client.T))
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (got == ring.sub(relu, z1)).all()

    def test_no_evaluator_inputs(self, test_group):
        # A circuit whose inputs all belong to the garbler skips the OT.
        circ = Circuit()
        a = circ.garbler_input(2)
        circ.mark_outputs([circ.and_(a[0], a[1])])
        g_bits = np.array([[1, 1], [1, 0]], dtype=np.uint8)  # two instances
        result = _run_gc(circ, g_bits, np.zeros((0, 2), dtype=np.uint8), 2, test_group)
        assert result.client[0].tolist() == [1, 0]

    def test_session_reuse_two_layers(self, test_group, rng):
        ring = Ring(8)
        circ = sign_template(8)
        n = 20
        y = ring.reduce(rng.integers(-100, 100, size=n))
        y1 = ring.sample(rng, n)
        y0 = ring.sub(y, y1)

        def garbler_fn(chan):
            sessions = GcSessions(chan, "garbler", group=test_group, seed=3)
            local = np.random.default_rng(11)
            for _ in range(2):
                run_garbler(chan, circ, int_to_bits(y1, 8).T.copy(), n, sessions, local)

        def evaluator_fn(chan):
            sessions = GcSessions(chan, "evaluator", group=test_group, seed=4)
            outs = []
            for _ in range(2):
                outs.append(run_evaluator(chan, circ, int_to_bits(y0, 8).T.copy(), n, sessions))
            return outs

        result = run_protocol(garbler_fn, evaluator_fn)
        expect = (ring.to_signed(y) >= 0).astype(np.uint8)
        for out in result.client:
            assert (out[0] == expect).all()

    def test_evaluator_bit_shape_checked(self, test_group):
        circ = sign_template(8)

        def garbler_fn(chan):
            sessions = GcSessions(chan, "garbler", group=test_group, seed=3)
            run_garbler(
                chan, circ, np.zeros((8, 2), dtype=np.uint8), 2, sessions,
                np.random.default_rng(0),
            )

        def evaluator_fn(chan):
            sessions = GcSessions(chan, "evaluator", group=test_group, seed=4)
            return run_evaluator(chan, circ, np.zeros((7, 2), dtype=np.uint8), 2, sessions)

        with pytest.raises(ProtocolError):
            run_protocol(garbler_fn, evaluator_fn, timeout_s=5)

    def test_invalid_role(self, test_group):
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        with pytest.raises(ProtocolError):
            GcSessions(chan, "banana", group=test_group)

    def test_comm_scales_with_and_gates(self, test_group, rng):
        ring = Ring(8)
        n = 10
        y1 = ring.sample(rng, n)
        y0 = ring.sample(rng, n)

        def traffic(circ, g_bits):
            result = _run_gc(circ, g_bits, int_to_bits(y0, 8).T.copy(), n, test_group)
            return result.total_bytes

        small = sign_template(8)  # 7 ANDs
        z1 = ring.sample(rng, n)
        big = relu_template(8)  # 22 ANDs
        small_bytes = traffic(small, int_to_bits(y1, 8).T.copy())
        big_bytes = traffic(
            big, np.concatenate([int_to_bits(y1, 8), int_to_bits(z1, 8)], axis=1).T.copy()
        )
        assert big_bytes > small_bytes
