"""Secure convolution: im2col lowering on shares + end-to-end conv nets."""

import numpy as np
import pytest

from repro.core.protocol import ModelMeta, secure_predict
from repro.errors import ConfigError, QuantizationError
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.lowering import Im2colSpec, conv_bias_vector, lift_output, lower_shares
from repro.nn.winograd import (
    WinogradSpec,
    lift_tiles,
    lift_tiles_value,
    lower_tiles,
    lower_tiles_value,
    transform_weights,
)
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


@pytest.fixture
def spec():
    return Im2colSpec(in_channels=2, height=6, width=6, kernel=3, stride=1)


class TestIm2colSpec:
    def test_geometry(self, spec):
        assert (spec.out_h, spec.out_w) == (4, 4)
        assert spec.n_positions == 16
        assert spec.in_features == 72
        assert spec.patch_len == 18

    def test_strided(self):
        s = Im2colSpec(1, 8, 8, kernel=3, stride=2)
        assert (s.out_h, s.out_w) == (3, 3)

    def test_invalid_geometry(self):
        with pytest.raises(ConfigError):
            Im2colSpec(1, 2, 2, kernel=3, stride=1)
        with pytest.raises(ConfigError):
            Im2colSpec(0, 4, 4, kernel=1, stride=1)

    def test_diagnostics_name_the_offending_parameter(self):
        """Split messages: each failure mode cites the parameter at fault."""
        with pytest.raises(ConfigError, match="kernel 5 does not fit"):
            Im2colSpec(1, 4, 4, kernel=5, stride=1)
        with pytest.raises(ConfigError, match="kernel 3 does not fit a 8x2"):
            Im2colSpec(1, 8, 2, kernel=3, stride=1)

    def test_stride_gaps_need_opt_in(self):
        """stride > kernel skips input columns: rejected unless opted in."""
        with pytest.raises(ConfigError, match="allow_gaps"):
            Im2colSpec(1, 8, 8, kernel=2, stride=3)
        spec = Im2colSpec(1, 8, 8, kernel=2, stride=3, allow_gaps=True)
        assert (spec.out_h, spec.out_w) == (3, 3)

    def test_gather_indices_bounds(self, spec):
        idx = spec.gather_indices()
        assert idx.shape == (spec.patch_len, spec.n_positions)
        assert idx.min() >= 0 and idx.max() < spec.in_features


class TestLowerLift:
    def test_matches_float_im2col(self, spec, rng):
        """Lowered shares must agree with the reference float im2col."""
        from repro.nn.layers import im2col

        batch = 3
        x = rng.integers(0, 100, size=(spec.in_features, batch)).astype(np.uint64)
        lowered = lower_shares(spec, x)
        assert lowered.shape == (spec.patch_len, spec.n_positions * batch)
        # reference: float path, image-major columns
        imgs = x.T.reshape(batch, spec.in_channels, spec.height, spec.width)
        cols, _, _ = im2col(imgs.astype(np.float64), spec.kernel, spec.kernel, spec.stride)
        ref = np.concatenate([cols[b].T for b in range(batch)], axis=1)
        assert (lowered == ref.astype(np.uint64)).all()

    def test_lowering_is_additive(self, spec, rng):
        """im2col commutes with secret sharing: the security-critical fact."""
        ring = Ring(32)
        z = ring.sample(rng, (spec.in_features, 2))
        z1 = ring.sample(rng, (spec.in_features, 2))
        z0 = ring.sub(z, z1)
        left = ring.add(lower_shares(spec, z0), lower_shares(spec, z1))
        assert (left == lower_shares(spec, z)).all()

    def test_lift_inverts_product_layout(self, spec, rng):
        oc, batch = 5, 2
        product = rng.integers(0, 1000, size=(oc, batch * spec.n_positions)).astype(np.uint64)
        lifted = lift_output(spec, oc, product)
        assert lifted.shape == (oc * spec.n_positions, batch)
        # channel 2, position 7, image 1:
        assert lifted[2 * spec.n_positions + 7, 1] == product[2, 1 * spec.n_positions + 7]

    def test_shape_validation(self, spec):
        with pytest.raises(ConfigError):
            lower_shares(spec, np.zeros((3, 1), dtype=np.uint64))
        with pytest.raises(ConfigError):
            lift_output(spec, 4, np.zeros((4, 7), dtype=np.uint64))

    def test_conv_bias_vector(self, spec):
        out = conv_bias_vector(spec, np.array([1, 2]))
        assert out.shape == (2 * spec.n_positions,)
        assert (out[: spec.n_positions] == 1).all()

    def test_conv_bias_vector_validates_length(self, spec):
        with pytest.raises(ConfigError, match="2 channels, layer expects 3"):
            conv_bias_vector(spec, np.array([1, 2]), out_channels=3)
        with pytest.raises(ConfigError, match="1-D"):
            conv_bias_vector(spec, np.array([[1, 2]]), out_channels=2)
        out = conv_bias_vector(spec, np.array([1, 2]), out_channels=2)
        assert out.shape == (2 * spec.n_positions,)

    def test_lift_rejects_zero_width_product(self, spec):
        """A batched round sliced to zero client columns must surface as
        a typed ConfigError, not a bare reshape failure."""
        with pytest.raises(ConfigError, match="no columns"):
            lift_output(spec, 4, np.zeros((4, 0), dtype=np.uint64))


def _winograd_conv_value(wspec: WinogradSpec, w_int: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Value-domain winograd conv: lower, 16 grouped products, lift, /4."""
    xt = lower_tiles_value(wspec, x)
    wt = transform_weights(wspec, w_int).astype(np.float64)
    oc, ci = w_int.shape[0], wspec.in_channels
    prod = np.empty((16 * oc, xt.shape[1]))
    for g in range(16):
        prod[g * oc : (g + 1) * oc] = wt[g * oc : (g + 1) * oc] @ xt[g * ci : (g + 1) * ci]
    return lift_tiles_value(wspec, oc, prod) / 4.0


class TestBackendProperties:
    """Satellite sweep: both lowerings commute with additive sharing over
    random non-square geometries, and winograd equals the plain conv
    exactly over exhaustive small domains."""

    def test_im2col_additive_random_geometries(self):
        ring = Ring(32)
        rng = np.random.default_rng(2024)
        for _ in range(25):
            c, k = int(rng.integers(1, 4)), int(rng.integers(1, 4))
            h, w = int(rng.integers(k, k + 5)), int(rng.integers(k, k + 5))
            stride = int(rng.integers(1, k + 1))
            spec = Im2colSpec(c, h, w, kernel=k, stride=stride)
            batch = int(rng.integers(1, 4))
            z = ring.sample(rng, (spec.in_features, batch))
            z1 = ring.sample(rng, (spec.in_features, batch))
            z0 = ring.sub(z, z1)
            left = ring.add(lower_shares(spec, z0), lower_shares(spec, z1))
            assert (left == lower_shares(spec, z)).all()

    def test_im2col_additive_with_gaps(self):
        ring = Ring(32)
        rng = np.random.default_rng(7)
        spec = Im2colSpec(2, 9, 7, kernel=2, stride=3, allow_gaps=True)
        z = ring.sample(rng, (spec.in_features, 2))
        z1 = ring.sample(rng, (spec.in_features, 2))
        z0 = ring.sub(z, z1)
        left = ring.add(lower_shares(spec, z0), lower_shares(spec, z1))
        assert (left == lower_shares(spec, z)).all()

    def test_winograd_additive_random_geometries(self):
        """Both tile transforms (input and output) commute with sharing."""
        ring = Ring(32)
        rng = np.random.default_rng(4096)
        for _ in range(25):
            c = int(rng.integers(1, 4))
            h, w = int(rng.integers(3, 9)), int(rng.integers(3, 9))
            spec = WinogradSpec(c, h, w)
            batch = int(rng.integers(1, 4))
            z = ring.sample(rng, (spec.in_features, batch))
            z1 = ring.sample(rng, (spec.in_features, batch))
            z0 = ring.sub(z, z1)
            left = ring.add(
                lower_tiles(spec, z0, ring), lower_tiles(spec, z1, ring)
            )
            assert (left == lower_tiles(spec, z, ring)).all()
            oc = int(rng.integers(1, 4))
            p = ring.sample(rng, (16 * oc, batch * spec.n_tiles))
            p1 = ring.sample(rng, p.shape)
            p0 = ring.sub(p, p1)
            left = ring.add(
                lift_tiles(spec, oc, p0, ring), lift_tiles(spec, oc, p1, ring)
            )
            assert (left == lift_tiles(spec, oc, p, ring)).all()

    @pytest.mark.parametrize(
        "c_in,h,w", [(1, 3, 3), (1, 4, 5), (2, 5, 4), (2, 5, 5), (1, 6, 7)]
    )
    def test_winograd_exact_over_bilinear_basis(self, c_in, h, w):
        """conv is bilinear in (input, kernel), so exact equality on every
        one-hot input x one-hot kernel pair implies exact equality for all
        integer inputs — an exhaustive small-domain check."""
        wspec = WinogradSpec(c_in, h, w)
        ispec = Im2colSpec(c_in, h, w, kernel=3, stride=1)
        x = np.eye(ispec.in_features)  # every one-hot input, as batch columns
        oc = c_in * 9
        w_int = np.eye(oc, dtype=np.int64)  # every one-hot 3x3 kernel
        got = _winograd_conv_value(wspec, w_int, x)
        ref = lift_output(ispec, oc, w_int.astype(np.float64) @ lower_shares(ispec, x))
        assert got.shape == ref.shape
        assert (got == ref).all()

    def test_winograd_exact_random_integers(self):
        rng = np.random.default_rng(55)
        for _ in range(10):
            c_in, oc = int(rng.integers(1, 4)), int(rng.integers(1, 4))
            h, w = int(rng.integers(3, 8)), int(rng.integers(3, 8))
            wspec = WinogradSpec(c_in, h, w)
            ispec = Im2colSpec(c_in, h, w, kernel=3, stride=1)
            batch = int(rng.integers(1, 3))
            x = rng.integers(-50, 50, size=(ispec.in_features, batch)).astype(np.float64)
            w_int = rng.integers(-8, 8, size=(oc, c_in * 9)).astype(np.int64)
            got = _winograd_conv_value(wspec, w_int, x)
            ref = lift_output(ispec, oc, w_int.astype(np.float64) @ lower_shares(ispec, x))
            assert (got == ref).all()


@pytest.fixture(scope="module")
def conv_model():
    return Sequential(
        [
            Conv2d(1, 3, kernel_size=3, seed=1),
            ReLU(),
            Conv2d(3, 4, kernel_size=3, stride=2, seed=2),
            ReLU(),
            Flatten(),
            Dense(4 * 2 * 2, 5, seed=3),
        ]
    )


@pytest.fixture(scope="module")
def conv_inputs():
    rng = np.random.default_rng(9)
    return rng.uniform(0, 1, size=(3, 1, 8, 8))


class TestQuantizedConvModel:
    def test_integer_path_matches_float(self, conv_model, conv_inputs):
        qm = quantize_model(
            conv_model,
            FragmentScheme.from_bits((2, 2, 2, 2)),
            Ring(32),
            frac_bits=8,
            input_shape=(1, 8, 8),
        )
        flat = conv_inputs.reshape(conv_inputs.shape[0], -1)
        got = qm.logits_float(flat)
        expect = conv_model.forward(conv_inputs)
        assert np.abs(got - expect).max() < 0.5

    def test_conv_requires_input_shape(self, conv_model):
        with pytest.raises(QuantizationError):
            quantize_model(conv_model, FragmentScheme.ternary(), Ring(32))

    def test_channel_mismatch_detected(self):
        model = Sequential([Conv2d(3, 2, kernel_size=2, seed=0)])
        with pytest.raises(QuantizationError):
            quantize_model(
                model, FragmentScheme.ternary(), Ring(32), input_shape=(1, 4, 4)
            )

    def test_meta_carries_conv_geometry(self, conv_model):
        qm = quantize_model(
            conv_model, FragmentScheme.ternary(), Ring(32), input_shape=(1, 8, 8)
        )
        meta = ModelMeta.from_model(qm)
        assert meta.layers[0].conv is not None
        assert meta.layers[0].matmul_cols == 9  # 1 * 3 * 3
        assert meta.layers[0].batch_multiplier() == 36  # 6x6 positions
        assert meta.layers[2].conv is None

    def test_secure_conv_prediction(self, conv_model, conv_inputs, test_group):
        ring = Ring(32)
        qm = quantize_model(
            conv_model,
            FragmentScheme.from_bits((2, 2)),
            ring,
            frac_bits=6,
            input_shape=(1, 8, 8),
        )
        flat = conv_inputs.reshape(conv_inputs.shape[0], -1)
        report = secure_predict(qm, flat, group=test_group)
        assert (report.predictions == qm.predict(flat)).all()
        ref = ring.to_signed(qm.forward_int(qm.encoder.encode(flat.T)))
        got = ring.to_signed(report.logits_int)
        assert np.abs(got - ref).max() <= 512  # share-local truncation slack

    def test_secure_conv_ternary_exact(self, conv_model, conv_inputs, test_group):
        ring = Ring(32)
        qm = quantize_model(
            conv_model, FragmentScheme.ternary(), ring, frac_bits=6, input_shape=(1, 8, 8)
        )
        flat = conv_inputs.reshape(conv_inputs.shape[0], -1)
        report = secure_predict(qm, flat, group=test_group)
        expect = qm.forward_int(qm.encoder.encode(flat.T))
        assert (report.logits_int == expect).all()
