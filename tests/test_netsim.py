"""LAN/WAN analytic time model."""

import pytest

from repro.errors import ConfigError
from repro.net.netsim import LAN, MB, WAN_QUOTIENT, WAN_SECUREML, NetworkModel


class TestProfiles:
    def test_paper_wan_settings(self):
        assert WAN_SECUREML.bandwidth_bytes_per_s == 9 * MB
        assert WAN_SECUREML.rtt_s == pytest.approx(0.072)
        assert WAN_QUOTIENT.bandwidth_bytes_per_s == pytest.approx(24.3 * MB)
        assert WAN_QUOTIENT.rtt_s == pytest.approx(0.040)

    def test_lan_faster_than_wan(self):
        assert LAN.bandwidth_bytes_per_s > WAN_SECUREML.bandwidth_bytes_per_s
        assert LAN.rtt_s < WAN_SECUREML.rtt_s


class TestEstimates:
    def test_transfer_time(self):
        assert WAN_SECUREML.transfer_time_s(9 * MB) == pytest.approx(1.0)

    def test_latency_time(self):
        assert WAN_SECUREML.latency_time_s(10) == pytest.approx(0.72)

    def test_estimate_composition(self):
        got = WAN_SECUREML.estimate_s(compute_s=2.0, nbytes=9 * MB, rounds=10)
        assert got == pytest.approx(2.0 + 1.0 + 0.72)

    def test_compute_scale(self):
        fast = WAN_SECUREML.estimate_s(10.0, 0, 0, compute_scale=0.1)
        assert fast == pytest.approx(1.0)

    def test_zero_everything(self):
        assert LAN.estimate_s(0, 0, 0) == 0.0


class TestValidation:
    def test_bandwidth_positive(self):
        with pytest.raises(ConfigError):
            NetworkModel("bad", bandwidth_bytes_per_s=0, rtt_s=0.01)

    def test_rtt_non_negative(self):
        with pytest.raises(ConfigError):
            NetworkModel("bad", bandwidth_bytes_per_s=1, rtt_s=-1)
