"""Serving subsystem: triplet bank, persistence, sessions, concurrency.

The acceptance scenario from the serving design: a server banked with
``offline rounds=K`` serves exactly K predictions across sequential
*reconnecting* clients and concurrent clients without a restart, denies
the K+1st with a clean typed error, exports one isolated trace per
session, and — restarted against a persisted bank — serves predictions
with zero triplet-generation traffic.

Set ``ABNN2_SERVE_SOAK=1`` to also run the multi-client soak (CI does).
"""

import json
import os
import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.protocol import ModelMeta
from repro.errors import ChannelError, ConfigError, ProtocolError
from repro.net import tcp
from repro.net.channel import make_channel_pair
from repro.nn.model import mnist_mlp
from repro.nn.quantize import quantize_model
from repro.perf.trace import Tracer, iter_spans, load_trace
from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import FragmentScheme
from repro.serve import (
    ClientSession,
    PredictionClient,
    PredictionServer,
    ServerSession,
    TripletBank,
    load_bank,
    model_fingerprint,
    save_bank,
)
from repro.serve.session import (
    MAX_CTRL_BYTES,
    decode_client_round,
    encode_client_round,
    recv_ctrl,
)
from repro.utils.ring import Ring

#: Thread-name prefixes owned by the serving stack; none may outlive it.
_SERVE_THREADS = ("abnn2-session-", "abnn2-serve-accept", "abnn2-bank-replenisher", "abnn2-server")


def _assert_no_leaked_serve_threads():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [
            t for t in threading.enumerate()
            if any(t.name.startswith(p) for p in _SERVE_THREADS)
        ]
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked serving threads: {leaked}")


@pytest.fixture(scope="module")
def qmodel():
    """Tiny untrained ternary QNN: exact logits, fast triplet generation."""
    model = mnist_mlp(seed=7, hidden=4, input_dim=16)
    return quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)


@pytest.fixture(scope="module")
def meta(qmodel):
    return ModelMeta.from_model(qmodel)


@pytest.fixture(scope="module")
def x2(qmodel):
    return np.random.default_rng(0).normal(scale=0.25, size=(2, 16))


def _bank(qmodel, test_group, *, rounds=0, batch=2, **kwargs):
    kwargs.setdefault("auto_replenish", False)
    kwargs.setdefault("seed", 11)
    # CI's serve-soak job sets these (workers=2, and a process-executor
    # leg) so the whole serving suite runs against a parallel replenisher;
    # material is identical either way.
    kwargs.setdefault("workers", int(os.environ.get("ABNN2_SERVE_WORKERS", "1")))
    kwargs.setdefault("executor", os.environ.get("ABNN2_EXECUTOR", "thread"))
    bank = TripletBank(qmodel, batch, group=test_group, **kwargs)
    if rounds:
        bank.fill(rounds)
    return bank


def _serve_in_memory(bank, qmodel, test_group, **session_kwargs):
    """Run a ServerSession on a thread; returns (client_chan, result_box, thread)."""
    server_chan, client_chan = make_channel_pair(timeout_s=30.0)
    box = {}

    session_id = session_kwargs.pop("session_id", 7)

    def _run():
        session = ServerSession(
            server_chan, qmodel, bank, session_id=session_id,
            group=test_group, **session_kwargs,
        )
        try:
            box["result"] = session.run()
        except Exception as exc:  # noqa: BLE001 - surfaced by the test
            box["exc"] = exc

    thread = threading.Thread(target=_run, daemon=True)
    thread.start()
    return client_chan, box, thread


class TestBank:
    def test_fill_take_single_use(self, qmodel, test_group):
        bank = _bank(qmodel, test_group, rounds=3)
        assert bank.depth == 3
        taken = [bank.take() for _ in range(3)]
        assert sorted(r.round_id for r in taken) == [0, 1, 2]
        assert bank.depth == 0
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            bank.take()
        m = bank.metrics()
        assert m["rounds_generated"] == 3
        assert m["rounds_served"] == 3
        assert m["exhausted_errors"] == 1
        assert m["generation_payload_bytes"] > 0

    def test_take_blocks_until_fill(self, qmodel, test_group):
        bank = _bank(qmodel, test_group)
        threading.Timer(0.2, lambda: bank.fill(1)).start()
        start = time.monotonic()
        rnd = bank.take(timeout_s=20.0)
        assert rnd.round_id == 0
        assert time.monotonic() - start >= 0.15
        assert bank.metrics()["take_waits"] == 1
        assert bank.metrics()["replenish_lag_s"] > 0

    def test_take_timeout_is_clean(self, qmodel, test_group):
        bank = _bank(qmodel, test_group)
        start = time.monotonic()
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            bank.take(timeout_s=0.3)
        assert time.monotonic() - start < 5.0

    def test_replenisher_refills_to_capacity(self, qmodel, test_group):
        bank = TripletBank(
            qmodel, 2, capacity=2, auto_replenish=True, replenish_chunk=1,
            group=test_group, seed=5,
        )
        with bank:
            deadline = time.monotonic() + 30.0
            while bank.depth < 2 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert bank.depth == 2
            bank.take()
            bank.take()
            # Draining below low water wakes the replenisher again.
            rnd = bank.take(timeout_s=30.0)
            assert rnd is not None
        _assert_no_leaked_serve_threads()

    def test_stop_fails_blocked_takers(self, qmodel, test_group):
        bank = _bank(qmodel, test_group)
        box = {}

        def _taker():
            try:
                bank.take(timeout_s=30.0)
            except ProtocolError as exc:
                box["exc"] = exc

        thread = threading.Thread(target=_taker, daemon=True)
        thread.start()
        time.sleep(0.1)
        bank.stop()
        thread.join(timeout=5)
        assert "stopped" in str(box["exc"])
        with pytest.raises(ProtocolError, match="stopped"):
            bank.take()

    def test_generations_use_distinct_masks(self, qmodel, test_group):
        """A deterministic seed must still never repeat masks across
        generations — reuse would leak input differences."""
        bank = _bank(qmodel, test_group)
        bank.fill(1)
        bank.fill(1)
        first, second = bank.take(), bank.take()
        assert (
            first.client_material["input_mask"]
            != second.client_material["input_mask"]
        ).any()

    def test_worker_count_independent_material(self, qmodel, test_group):
        """workers is a local knob: the banked material for a fixed seed
        is byte-identical whether rounds are generated serially or by a
        thread pool (per-round seeds derive from claimed generation
        indices, not from scheduling)."""

        def _deep_equal(a, b):
            if isinstance(a, np.ndarray):
                return isinstance(b, np.ndarray) and a.dtype == b.dtype and (a == b).all()
            if isinstance(a, dict):
                return set(a) == set(b) and all(_deep_equal(a[k], b[k]) for k in a)
            if isinstance(a, (list, tuple)):
                return len(a) == len(b) and all(
                    _deep_equal(x, y) for x, y in zip(a, b)
                )
            return a == b

        serial = _bank(qmodel, test_group, rounds=3, workers=1)
        pooled = _bank(qmodel, test_group, rounds=3, workers=2)
        for _ in range(3):
            one, two = serial.take(), pooled.take()
            assert one.round_id == two.round_id
            assert _deep_equal(one.server_us, two.server_us)
            assert _deep_equal(one.client_material, two.client_material)
        _assert_no_leaked_serve_threads()

    def test_take_many_partial_grant_and_exhaustion(self, qmodel, test_group):
        """take_many claims atomically, grants partially from a low bank,
        and raises the standard typed exhaustion error only when empty."""
        bank = _bank(qmodel, test_group, rounds=3)
        got = bank.take_many(2)
        assert [r.round_id for r in got] == [0, 1]
        got = bank.take_many(5)  # partial grant: the bank gives what it has
        assert [r.round_id for r in got] == [2]
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            bank.take_many(1)
        assert bank.metrics()["rounds_served"] == 3

    def test_replenisher_exact_counts_when_fill_races_threshold(
        self, qmodel, test_group
    ):
        """A generation already in flight must be discounted from the
        replenisher's deficit: a take/fill racing the low-water threshold
        used to be covered twice, overshooting capacity."""
        bank = TripletBank(
            qmodel, 2, capacity=2, low_water=2, auto_replenish=True,
            replenish_chunk=2, group=test_group, seed=5,
        )
        gate = threading.Event()
        calls = []
        real_generate = bank._generate

        def gated_generate(rounds):
            calls.append(rounds)
            assert gate.wait(timeout=30.0)
            return real_generate(rounds)

        bank._generate = gated_generate
        filler = threading.Thread(target=lambda: bank.fill(2), daemon=True)
        filler.start()
        deadline = time.monotonic() + 5.0
        while not calls and time.monotonic() < deadline:
            time.sleep(0.01)
        assert calls == [2]  # fill() claimed its rounds and parked
        with bank:  # replenisher starts while fill's chunk is in flight
            # Let it observe the empty-but-covered bank a few poll ticks:
            # deficit = capacity - depth - inflight = 2 - 0 - 2 = 0.
            time.sleep(0.6)
            assert calls == [2], "replenisher re-covered an in-flight deficit"
            gate.set()
            filler.join(timeout=30.0)
            assert bank.depth == 2
            # Draining below low water still wakes it for the *real* gap.
            bank.take()
            deadline = time.monotonic() + 30.0
            while bank.depth < 2 and time.monotonic() < deadline:
                time.sleep(0.02)
            assert bank.depth == 2
        assert sum(calls) == 3
        assert bank.metrics()["rounds_generated"] == 3
        _assert_no_leaked_serve_threads()

    def test_invalid_config_rejected(self, qmodel, test_group):
        with pytest.raises(ConfigError):
            TripletBank(qmodel, 0, group=test_group)
        with pytest.raises(ConfigError):
            TripletBank(qmodel, 1, capacity=0, group=test_group)
        with pytest.raises(ConfigError):
            _bank(qmodel, test_group).fill(0)


class TestBankPersistence:
    def test_roundtrip_restores_material_exactly(self, qmodel, test_group, tmp_path):
        bank = _bank(qmodel, test_group, rounds=2)
        path = tmp_path / "bank.npz"
        assert bank.save(path) == 2
        reloaded = _bank(qmodel, test_group)
        assert reloaded.load(path) == 2
        m = reloaded.metrics()
        # The whole point of persistence: a restart performs *zero*
        # triplet generation.
        assert m["rounds_generated"] == 0
        assert m["generation_payload_bytes"] == 0
        assert m["rounds_loaded"] == 2
        a, b = bank.take(), reloaded.take()
        for u_orig, u_loaded in zip(a.server_us, b.server_us):
            assert (u_orig == u_loaded).all()
        assert (
            a.client_material["input_mask"] == b.client_material["input_mask"]
        ).all()
        for v_orig, v_loaded in zip(a.client_material["v"], b.client_material["v"]):
            assert (v_orig == v_loaded).all()

    def test_fingerprint_pins_exact_model(self, qmodel, test_group, tmp_path):
        path = tmp_path / "bank.npz"
        _bank(qmodel, test_group, rounds=1).save(path)
        other = quantize_model(
            mnist_mlp(seed=8, hidden=4, input_dim=16),
            FragmentScheme.ternary(), Ring(32), frac_bits=6,
        )
        assert model_fingerprint(other) != model_fingerprint(qmodel)
        with pytest.raises(ConfigError, match="fingerprint"):
            _bank(other, test_group).load(path)

    def test_batch_mismatch_refused(self, qmodel, test_group, tmp_path):
        path = tmp_path / "bank.npz"
        _bank(qmodel, test_group, rounds=1).save(path)
        with pytest.raises(ConfigError, match="batch"):
            _bank(qmodel, test_group, batch=3).load(path)

    def test_format_version_checked(self, qmodel, test_group, tmp_path):
        path = tmp_path / "bank.npz"
        fp = model_fingerprint(qmodel)
        save_bank(path, fingerprint=fp, batch=2, rounds=[])
        with np.load(path) as bundle:
            manifest = json.loads(bytes(bundle["manifest"]).decode())
        manifest["format_version"] = 999
        arrays = {"manifest": np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)}
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(ConfigError, match="format"):
            load_bank(path, fingerprint=fp, batch=2)


class TestRoundCodec:
    def test_encode_decode_roundtrip(self, qmodel, test_group):
        rnd = _bank(qmodel, test_group, rounds=1).take()
        decoded = decode_client_round(encode_client_round(rnd.client_material))
        assert (decoded["input_mask"] == rnd.client_material["input_mask"]).all()
        for a, b in zip(decoded["v"], rnd.client_material["v"]):
            assert (a == b).all()
        for a, b in zip(decoded["relu_shares"], rnd.client_material["relu_shares"]):
            assert (a == b).all()

    def test_malformed_messages_rejected(self):
        with pytest.raises(ProtocolError):
            decode_client_round(b"not a tuple")
        with pytest.raises(ProtocolError):
            decode_client_round((b"not json", np.zeros(1, dtype=np.uint64)))
        with pytest.raises(ProtocolError):
            decode_client_round(
                (json.dumps({"n_layers": 2, "pool_present": [False]}).encode(),)
            )


class TestControlPlaneHardening:
    @pytest.mark.parametrize("extra", [1, 17, 65536])
    def test_oversized_ctrl_frame_rejected(self, extra):
        """recv_ctrl caps the frame before json.loads ever runs."""
        server_chan, client_chan = make_channel_pair(timeout_s=5.0)
        client_chan.send(b"x" * (MAX_CTRL_BYTES + extra))
        with pytest.raises(ProtocolError, match="cap"):
            recv_ctrl(server_chan)

    def test_fuzzed_ctrl_frames_fail_typed(self):
        """Fuzz-style sweep: random sizes straddling the cap either parse,
        fail as malformed JSON, or fail the cap — always ProtocolError,
        never an unbounded parse of attacker-sized input."""
        rng = np.random.default_rng(0xC7A1)
        for _ in range(20):
            size = int(rng.integers(1, 4 * MAX_CTRL_BYTES))
            payload = bytes(rng.integers(32, 127, size=size, dtype=np.uint8))
            server_chan, client_chan = make_channel_pair(timeout_s=5.0)
            client_chan.send(payload)
            if size > MAX_CTRL_BYTES:
                with pytest.raises(ProtocolError, match="cap"):
                    recv_ctrl(server_chan)
            else:
                try:
                    recv_ctrl(server_chan)
                except ProtocolError:
                    pass  # malformed JSON fails typed; that's the contract

    def test_oversized_hello_fails_session_typed(self, qmodel, test_group):
        bank = _bank(qmodel, test_group)
        client_chan, box, thread = _serve_in_memory(bank, qmodel, test_group)
        client_chan.send(
            json.dumps({"op": "hello", "pad": "x" * (2 * MAX_CTRL_BYTES)}).encode()
        )
        thread.join(timeout=10)
        assert isinstance(box.get("exc"), ProtocolError)
        assert "cap" in str(box["exc"])


class TestSessionsInMemory:
    def test_keep_alive_serves_multiple_exact_rounds(
        self, qmodel, meta, x2, test_group
    ):
        bank = _bank(qmodel, test_group, rounds=3)
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        client_chan, box, thread = _serve_in_memory(bank, qmodel, test_group)
        session = ClientSession(client_chan, meta, 2, group=test_group, seed=9)
        first = session.predict_encoded(enc.encode(x2.T))
        second = session.predict_encoded(enc.encode(x2.T))
        session.close()
        thread.join(timeout=10)
        expect = qmodel.forward_int(qmodel.encoder.encode(x2.T))
        assert (first == expect).all() and (second == expect).all()
        assert box["result"].predictions == 2
        assert session.round_ids == [0, 1]  # no triplet reuse

    def test_batch_mismatch_denied_at_hello(self, qmodel, meta, test_group):
        bank = _bank(qmodel, test_group, rounds=1)
        client_chan, box, thread = _serve_in_memory(bank, qmodel, test_group)
        with pytest.raises(ProtocolError, match="batch"):
            ClientSession(client_chan, meta, 3, group=test_group)
        thread.join(timeout=10)
        assert box["result"].error is not None

    def test_exhaustion_denies_cleanly_then_recovers(
        self, qmodel, meta, x2, test_group
    ):
        """An exhausted bank denies the round *before* protocol bytes flow;
        after a refill the same session predicts — no stream desync."""
        bank = _bank(qmodel, test_group, rounds=1)
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        client_chan, box, thread = _serve_in_memory(bank, qmodel, test_group)
        session = ClientSession(client_chan, meta, 2, group=test_group, seed=9)
        session.predict_encoded(enc.encode(x2.T))
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            session.predict_encoded(enc.encode(x2.T))
        bank.fill(1)
        logits = session.predict_encoded(enc.encode(x2.T))
        session.close()
        thread.join(timeout=10)
        assert (logits == qmodel.forward_int(qmodel.encoder.encode(x2.T))).all()
        assert box["result"].predictions == 2

    def test_interactive_mode_needs_no_bank(self, qmodel, meta, x2, test_group):
        bank = _bank(qmodel, test_group)  # empty on purpose
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        client_chan, box, thread = _serve_in_memory(bank, qmodel, test_group, seed=3)
        session = ClientSession(
            client_chan, meta, 2, mode="interactive", group=test_group, seed=9
        )
        logits = session.predict_encoded(enc.encode(x2.T))
        session.close()
        thread.join(timeout=30)
        assert (logits == qmodel.forward_int(qmodel.encoder.encode(x2.T))).all()
        assert box["result"].mode == "interactive"

    def test_interactive_mode_can_be_disabled(self, qmodel, meta, test_group):
        bank = _bank(qmodel, test_group)
        client_chan, box, thread = _serve_in_memory(
            bank, qmodel, test_group, allow_interactive=False
        )
        with pytest.raises(ProtocolError, match="interactive"):
            ClientSession(client_chan, meta, 2, mode="interactive", group=test_group)
        thread.join(timeout=10)

    def test_tracers_are_isolated_per_session(self, qmodel, meta, x2, test_group):
        bank = _bank(qmodel, test_group, rounds=2)
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        tracers = []
        for sid in (31, 32):
            tracer = Tracer(party="server")
            tracers.append(tracer)
            client_chan, box, thread = _serve_in_memory(
                bank, qmodel, test_group, session_id=sid, tracer=tracer
            )
            session = ClientSession(client_chan, meta, 2, group=test_group)
            session.predict_encoded(enc.encode(x2.T))
            session.close()
            thread.join(timeout=10)
            tracer.annotate(session_id=sid)
        docs = [t.to_dict() for t in tracers]
        for sid, doc in zip((31, 32), docs):
            assert doc["root"]["attrs"]["session_id"] == sid
            paths = [p for p, _ in iter_spans(doc)]
            assert any(p.startswith("round0") for p in paths)
            # Exactly one session's traffic lives in each tree.
            assert not any(p.startswith("round1") for p in paths)
            round_ids = [
                s["attrs"]["round_id"] for p, s in iter_spans(doc)
                if s["attrs"].get("round_id") is not None
            ]
            assert round_ids == [sid - 31]  # bank round 0 then 1, never shared


class TestPredictionServerTcp:
    def test_acceptance_k_rounds_sequential_and_concurrent(
        self, qmodel, meta, x2, test_group, tmp_path
    ):
        """The headline scenario: K=5 banked rounds serve 3 sequential
        reconnecting clients + 2 concurrent clients, then deny cleanly."""
        bank = _bank(qmodel, test_group, rounds=5)
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        expect = np.argmax(
            qmodel.ring.to_signed(qmodel.forward_int(qmodel.encoder.encode(x2.T))),
            axis=0,
        )
        served_round_ids = []
        with PredictionServer(
            qmodel, bank, port=0, max_sessions=3, group=test_group, seed=3,
            trace_dir=str(trace_dir),
        ) as srv:
            for i in range(3):  # sequential, reconnecting
                with PredictionClient(
                    meta, 2, port=srv.port, group=test_group, seed=100 + i
                ) as client:
                    _, labels = client.predict(x2)
                    assert (labels == expect).all()
                    served_round_ids.extend(client.session.round_ids)

            def _concurrent(i, out):
                with PredictionClient(
                    meta, 2, port=srv.port, group=test_group, seed=200 + i
                ) as client:
                    _, labels = client.predict(x2)
                    out[i] = (labels, list(client.session.round_ids))

            out = {}
            threads = [
                threading.Thread(target=_concurrent, args=(i, out)) for i in range(2)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert sorted(out) == [0, 1]
            for labels, ids in out.values():
                assert (labels == expect).all()
                served_round_ids.extend(ids)

            # Material is strictly single-use: 5 rounds, 5 distinct ids.
            assert sorted(served_round_ids) == [0, 1, 2, 3, 4]

            # Round 6: clean typed exhaustion, server stays up.
            with pytest.raises(ProtocolError, match="offline material exhausted"):
                with PredictionClient(
                    meta, 2, port=srv.port, group=test_group
                ) as client:
                    client.predict(x2)
            srv.wait_idle()
            metrics = srv.metrics()
            assert metrics["sessions_served"] == 6
            assert metrics["predictions"] == 5
            assert metrics["bank"]["rounds_served"] == 5

        # One isolated trace per session, annotated with its id.
        exported = sorted(trace_dir.glob("session-*.json"))
        assert len(exported) == 6
        seen_sessions = set()
        for path in exported:
            doc = load_trace(str(path))
            attrs = doc["root"]["attrs"]
            seen_sessions.add(attrs["session_id"])
            assert "bank_depth" in attrs and "sessions_served" in attrs
        assert seen_sessions == {1, 2, 3, 4, 5, 6}
        _assert_no_leaked_serve_threads()

    def test_restart_from_persisted_bank_skips_offline(
        self, qmodel, meta, x2, test_group, tmp_path
    ):
        """Server restart against a persisted bank: zero generation traffic."""
        path = tmp_path / "bank.npz"
        _bank(qmodel, test_group, rounds=2).save(path)

        restarted = _bank(qmodel, test_group)
        restarted.load(path)
        with PredictionServer(
            qmodel, restarted, port=0, group=test_group
        ) as srv:
            with PredictionClient(meta, 2, port=srv.port, group=test_group) as client:
                _, labels = client.predict(x2)
            srv.wait_idle()
        expect = np.argmax(
            qmodel.ring.to_signed(qmodel.forward_int(qmodel.encoder.encode(x2.T))),
            axis=0,
        )
        assert (labels == expect).all()
        m = restarted.metrics()
        assert m["generation_payload_bytes"] == 0
        assert m["rounds_generated"] == 0
        _assert_no_leaked_serve_threads()

    def test_client_crash_mid_protocol_does_not_kill_server(
        self, qmodel, meta, x2, test_group
    ):
        bank = _bank(qmodel, test_group, rounds=3)
        with PredictionServer(
            qmodel, bank, port=0, group=test_group, session_timeout_s=5.0
        ) as srv:
            # Crash 1: abort right after the welcome.
            client = PredictionClient(meta, 2, port=srv.port, group=test_group)
            client.chan.abort()
            # Crash 2: abort mid-round, after the grant (material in flight).
            client = PredictionClient(meta, 2, port=srv.port, group=test_group)
            from repro.serve.session import recv_ctrl, send_ctrl

            send_ctrl(client.chan, op="round")
            grant = recv_ctrl(client.chan)
            assert grant["ok"]
            client.chan.abort()
            # The server must still serve a healthy client afterwards.
            with PredictionClient(meta, 2, port=srv.port, group=test_group) as healthy:
                _, labels = healthy.predict(x2)
            srv.wait_idle(timeout_s=30.0)
            records = {r.session_id: r for r in srv.records}
            assert len(records) == 3
            failures = [r for r in records.values() if r.error is not None]
            assert len(failures) == 2
            assert srv.metrics()["sessions_served"] == 1
        assert labels is not None
        _assert_no_leaked_serve_threads()

    def test_handshake_failure_logged_not_fatal(self, qmodel, meta, x2, test_group):
        bank = _bank(qmodel, test_group, rounds=1)
        with PredictionServer(
            qmodel, bank, port=0, group=test_group, session_timeout_s=5.0
        ) as srv:
            with socket.create_connection(("127.0.0.1", srv.port), timeout=5) as raw:
                raw.sendall(
                    struct.pack("<4sHBQ", b"HTTP", tcp.WIRE_VERSION, 1, 0)
                )
                raw.recv(64)  # server's handshake bytes; then we vanish
            # ... and a real client still gets served.
            with PredictionClient(meta, 2, port=srv.port, group=test_group) as client:
                client.predict(x2)
            srv.wait_idle(timeout_s=30.0)
            failed = [r for r in srv.records if r.error is not None]
            assert len(failed) == 1
            assert "handshake" in failed[0].error
            assert srv.metrics()["sessions_failed"] == 1
        _assert_no_leaked_serve_threads()

    def test_hello_deny_is_structured_on_both_transports(
        self, qmodel, meta, test_group
    ):
        """A denied client must read the structured deny, never a reset.

        Under TCP the server used to close with the client's trailing
        traffic unread, which can RST the connection and destroy the
        queued deny; the in-memory leg pins the same drain path."""
        bank = _bank(qmodel, test_group, rounds=1)
        # In-memory: same session logic, same drain-before-close path.
        client_chan, box, thread = _serve_in_memory(bank, qmodel, test_group)
        with pytest.raises(ProtocolError, match="batch"):
            ClientSession(client_chan, meta, 3, group=test_group)
        thread.join(timeout=10)
        assert "batch" in box["result"].error
        # TCP: repeat to give the close/deny race every chance to fire.
        with PredictionServer(
            qmodel, bank, port=0, group=test_group, session_timeout_s=5.0
        ) as srv:
            for _ in range(5):
                with pytest.raises(ProtocolError, match="batch"):
                    PredictionClient(meta, 3, port=srv.port, group=test_group)
            srv.wait_idle(timeout_s=30.0)
            assert srv.metrics()["sessions_failed"] == 5
        _assert_no_leaked_serve_threads()

    def test_stop_races_accept_without_leaking_threads(
        self, qmodel, meta, x2, test_group
    ):
        """stop() concurrent with connecting clients: the listener closes
        first, every spawned session thread is joined, and no serving
        thread outlives the server — at any stop timing."""
        for attempt in range(3):
            bank = _bank(qmodel, test_group, rounds=2)
            srv = PredictionServer(
                qmodel, bank, port=0, group=test_group, session_timeout_s=5.0
            ).start()

            def _connect():
                try:
                    with PredictionClient(
                        meta, 2, port=srv.port, group=test_group
                    ) as client:
                        client.predict(x2)
                except (ProtocolError, ChannelError, OSError):
                    pass  # refused/cut mid-stop: expected at some timings

            clients = [threading.Thread(target=_connect) for _ in range(2)]
            for t in clients:
                t.start()
            time.sleep(0.05 * attempt)  # vary where stop lands in accept
            srv.stop()
            for t in clients:
                t.join(timeout=30)
                assert not t.is_alive()
            # The listener really closed: fresh connections are refused.
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", srv.port), timeout=1)
            _assert_no_leaked_serve_threads()

    def test_max_sessions_bounds_concurrency(self, qmodel, meta, x2, test_group):
        """With max_sessions=1, two concurrent clients are serialized —
        both succeed, never more than one session thread at work."""
        bank = _bank(qmodel, test_group, rounds=2)
        peak = []
        with PredictionServer(
            qmodel, bank, port=0, max_sessions=1, group=test_group
        ) as srv:
            def _client(i, out):
                with PredictionClient(
                    meta, 2, port=srv.port, group=test_group
                ) as client:
                    _, labels = client.predict(x2)
                    out[i] = labels
                peak.append(srv.metrics()["sessions_active"])

            out = {}
            threads = [threading.Thread(target=_client, args=(i, out)) for i in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60)
            assert sorted(out) == [0, 1]
            srv.wait_idle()
            assert max(peak) <= 1
        _assert_no_leaked_serve_threads()


@pytest.mark.skipif(
    not os.environ.get("ABNN2_SERVE_SOAK"),
    reason="serve soak runs only with ABNN2_SERVE_SOAK=1 (CI does)",
)
class TestServeSoak:
    def test_multi_client_soak_with_crashes(self, qmodel, meta, x2, test_group):
        """Replenishing server under a mix of healthy, keep-alive, and
        crashing clients across several seeds: every healthy prediction
        correct, no wedge, no leaked threads."""
        seeds = [
            int(s) for s in os.environ.get("ABNN2_FAULT_SEEDS", "0,1,2").split(",")
        ]
        expect = np.argmax(
            qmodel.ring.to_signed(qmodel.forward_int(qmodel.encoder.encode(x2.T))),
            axis=0,
        )
        bank = TripletBank(
            qmodel, 2, capacity=4, low_water=3, auto_replenish=True,
            replenish_chunk=2, group=test_group, seed=17,
            workers=int(os.environ.get("ABNN2_SERVE_WORKERS", "1")),
            executor=os.environ.get("ABNN2_EXECUTOR", "thread"),
        )
        with PredictionServer(
            qmodel, bank, port=0, max_sessions=4, group=test_group,
            session_timeout_s=10.0, exhaustion_wait_s=30.0, seed=23,
        ) as srv:
            for seed in seeds:
                rng = np.random.default_rng(seed)

                def _healthy(i, out):
                    with PredictionClient(
                        meta, 2, port=srv.port, group=test_group, seed=seed * 100 + i
                    ) as client:
                        for _ in range(2):  # keep-alive: two rounds per session
                            _, labels = client.predict(x2)
                            out.append(labels)

                def _crasher():
                    client = PredictionClient(
                        meta, 2, port=srv.port, group=test_group
                    )
                    if rng.random() < 0.5:
                        client.predict(x2)
                    client.chan.abort()

                out = []
                threads = [
                    threading.Thread(target=_healthy, args=(i, out)) for i in range(3)
                ]
                threads.append(threading.Thread(target=_crasher))
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=120)
                assert len(out) == 6, f"seed {seed}: missing predictions"
                for labels in out:
                    assert (labels == expect).all()
            srv.wait_idle(timeout_s=60.0)
        _assert_no_leaked_serve_threads()
