"""Exact bincount-based segment sums (the np.add.at replacement)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.utils.accum import segment_sum_u64


def _reference(values, index, n_segments):
    out = np.zeros((n_segments, values.shape[1]), dtype=np.uint64)
    np.add.at(out, index, values)
    return out


class TestSegmentSum:
    def test_matches_add_at(self, rng):
        values = rng.integers(0, 1 << 63, size=(500, 3), dtype=np.uint64)
        index = rng.integers(0, 40, size=500)
        assert (segment_sum_u64(values, index, 40) == _reference(values, index, 40)).all()

    def test_wraps_mod_2_64(self):
        # Two near-max values in one bucket: the sum must wrap exactly.
        values = np.full((2, 1), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        index = np.zeros(2, dtype=np.int64)
        got = segment_sum_u64(values, index, 1)
        assert got[0, 0] == np.uint64(0xFFFFFFFFFFFFFFFE)

    def test_empty_input(self):
        got = segment_sum_u64(np.zeros((0, 4), dtype=np.uint64), np.zeros(0, dtype=np.int64), 7)
        assert got.shape == (7, 4)
        assert not got.any()

    def test_untouched_segments_are_zero(self, rng):
        values = rng.integers(0, 100, size=(10, 2), dtype=np.uint64)
        index = np.full(10, 3, dtype=np.int64)
        got = segment_sum_u64(values, index, 5)
        assert (got[3] == values.sum(axis=0)).all()
        assert not got[[0, 1, 2, 4]].any()

    def test_rejects_out_of_range_index(self):
        values = np.ones((2, 1), dtype=np.uint64)
        with pytest.raises(ConfigError):
            segment_sum_u64(values, np.array([0, 5]), 3)
        with pytest.raises(ConfigError):
            segment_sum_u64(values, np.array([-1, 0]), 3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigError):
            segment_sum_u64(np.zeros(4, dtype=np.uint64), np.zeros(4, dtype=np.int64), 2)
        with pytest.raises(ConfigError):
            segment_sum_u64(np.zeros((4, 1), dtype=np.uint64), np.zeros(3, dtype=np.int64), 2)

    def test_many_lanes(self, rng):
        values = rng.integers(0, 1 << 62, size=(64, 17), dtype=np.uint64)
        index = np.sort(rng.integers(0, 9, size=64))
        assert (segment_sum_u64(values, index, 9) == _reference(values, index, 9)).all()
