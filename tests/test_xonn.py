"""XONN-style fully-garbled BNN baseline."""

import numpy as np
import pytest

from repro.baselines.xonn import (
    BinarizedNetwork,
    binarize_network,
    bnn_template,
    xonn_predict,
)
from repro.errors import ConfigError
from repro.gc.builder import geq_words, popcount_tree, zero_wire
from repro.gc.circuit import Circuit
from repro.nn.layers import Dense, ReLU
from repro.nn.model import Sequential
from repro.utils.bits import bits_to_int, int_to_bits


class TestCircuitPieces:
    def test_popcount_tree(self, rng):
        for n in (1, 2, 3, 7, 16):
            circ = Circuit()
            bits = circ.garbler_input(n)
            word = popcount_tree(circ, bits)
            circ.mark_outputs(word)
            circ.validate()
            values = rng.integers(0, 2, size=(20, n), dtype=np.uint8)
            out = circ.eval_plain(values, np.zeros((20, 0)))
            got = bits_to_int(out)
            assert (got == values.sum(axis=1)).all()

    def test_geq_words(self, rng):
        circ = Circuit()
        x = circ.garbler_input(5)
        y = circ.evaluator_input(5)
        circ.mark_outputs([geq_words(circ, x, y)])
        xv = rng.integers(0, 32, size=50, dtype=np.uint64)
        yv = rng.integers(0, 32, size=50, dtype=np.uint64)
        out = circ.eval_plain(int_to_bits(xv, 5), int_to_bits(yv, 5))
        assert (out[:, 0] == (xv >= yv)).all()

    def test_zero_wire(self):
        circ = Circuit()
        (a,) = circ.garbler_input(1)
        circ.mark_outputs([zero_wire(circ, a)])
        for v in (0, 1):
            assert circ.eval_plain([[v]], [[]])[0, 0] == 0


@pytest.fixture
def tiny_bnn(rng):
    return BinarizedNetwork(
        weight_bits=[
            rng.integers(0, 2, size=(5, 8)).astype(np.uint8),
            rng.integers(0, 2, size=(3, 5)).astype(np.uint8),
        ],
        thresholds=[rng.integers(2, 7, size=5).astype(np.int64)],
    )


class TestBinarizedNetwork:
    def test_dims(self, tiny_bnn):
        assert tiny_bnn.dims == [8, 5, 3]

    def test_threshold_count_checked(self, rng):
        with pytest.raises(ConfigError):
            BinarizedNetwork(
                weight_bits=[rng.integers(0, 2, size=(4, 4)).astype(np.uint8)] * 2,
                thresholds=[],
            )

    def test_binarize_network_accuracy_sane(self, trained_model, small_dataset):
        bnn = binarize_network(trained_model)
        acc = float((bnn.predict(small_dataset.test_x) == small_dataset.test_y).mean())
        assert acc > 0.2  # binarized inputs lose a lot; must still beat chance

    def test_binarize_needs_two_layers(self):
        with pytest.raises(ConfigError):
            binarize_network(Sequential([Dense(4, 2), ReLU()]))

    def test_template_dims_checked(self):
        with pytest.raises(ConfigError):
            bnn_template([4, 2])


class TestSecureXonn:
    def test_scores_match_plaintext(self, tiny_bnn, test_group, rng):
        x = rng.uniform(0, 1, size=(4, 8))
        report = xonn_predict(tiny_bnn, x, group=test_group)
        assert (report.scores == tiny_bnn.forward_scores(x)).all()
        assert (report.predictions == tiny_bnn.predict(x)).all()
        assert report.total_bytes > 0
        assert report.and_gates == bnn_template(tiny_bnn.dims).and_count

    def test_no_offline_phase(self, tiny_bnn, test_group, rng):
        """XONN's defining shape: everything in one online GC execution,
        so round count stays constant and tiny."""
        x = rng.uniform(0, 1, size=(2, 8))
        report = xonn_predict(tiny_bnn, x, group=test_group)
        assert report.rounds <= 8
