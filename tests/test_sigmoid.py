"""Piecewise-sigmoid activation: circuit semantics + two-party protocol."""

import numpy as np
import pytest

from repro.core.relu import sigmoid_layer_client, sigmoid_layer_server
from repro.errors import ConfigError
from repro.gc.builder import piecewise_sigmoid_template
from repro.gc.protocol import GcSessions
from repro.net import run_protocol
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring

FRAC = 6


def _expected(y_real):
    return np.clip(np.asarray(y_real) + 0.5, 0.0, 1.0)


class TestTemplate:
    def test_and_count(self):
        circ = piecewise_sigmoid_template(16)
        assert circ.and_count == 6 * 16 - 4

    def test_plain_semantics(self, rng):
        ring = Ring(16)
        circ = piecewise_sigmoid_template(16)
        y_real = rng.uniform(-2, 2, size=50)
        y = ring.reduce(np.rint(y_real * (1 << FRAC)).astype(np.int64))
        y1 = ring.sample(rng, 50)
        y0 = ring.sub(y, y1)
        z1 = ring.sample(rng, 50)
        half = np.full(50, 1 << (FRAC - 1), dtype=np.uint64)
        one = np.full(50, 1 << FRAC, dtype=np.uint64)
        g = np.concatenate(
            [int_to_bits(v, 16) for v in (y1, z1, half, one)], axis=1
        )
        out = ring.reduce(bits_to_int(circ.eval_plain(g, int_to_bits(y0, 16))))
        got = ring.to_signed(ring.add(out, z1)).astype(float) / (1 << FRAC)
        assert np.allclose(got, _expected(np.rint(y_real * 64) / 64), atol=1e-9)


class TestProtocol:
    def _run(self, ring, y, z1, group):
        rng = np.random.default_rng(4)
        y1 = ring.sample(rng, y.shape)
        y0 = ring.sub(y, y1)
        return run_protocol(
            lambda ch: sigmoid_layer_server(
                ch, y0, GcSessions(ch, "evaluator", group=group, seed=1), ring, FRAC
            ),
            lambda ch: sigmoid_layer_client(
                ch, y1, z1,
                GcSessions(ch, "garbler", group=group, seed=2),
                ring, FRAC, np.random.default_rng(3),
            ),
        )

    def test_correctness(self, test_group, rng):
        ring = Ring(16)
        y_real = np.array([-3.0, -0.5, -0.125, 0.0, 0.125, 0.5, 3.0])
        y = ring.reduce(np.rint(y_real * (1 << FRAC)).astype(np.int64))
        z1 = ring.sample(rng, y.shape[0])
        result = self._run(ring, y, z1, test_group)
        got = ring.to_signed(ring.add(result.server, result.client)).astype(float) / (1 << FRAC)
        assert np.allclose(got, _expected(y_real))

    def test_2d_shape(self, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(-100, 100, size=(4, 3)))
        z1 = ring.sample(rng, (4, 3))
        result = self._run(ring, y, z1, test_group)
        assert result.server.shape == (4, 3)

    def test_output_range(self, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(-(1 << 12), 1 << 12, size=64))
        z1 = ring.sample(rng, 64)
        result = self._run(ring, y, z1, test_group)
        values = ring.to_signed(ring.add(result.server, result.client))
        assert values.min() >= 0
        assert values.max() <= (1 << FRAC)

    def test_frac_bits_validated(self, test_group):
        from repro.net.channel import make_channel_pair

        ring = Ring(16)
        chan, _ = make_channel_pair()
        sessions = GcSessions(chan, "garbler", group=test_group)
        with pytest.raises(ConfigError):
            sigmoid_layer_client(
                chan, ring.zeros(3), ring.zeros(3), sessions, ring, 0,
                np.random.default_rng(0),
            )
