"""End-to-end two-party prediction vs the plaintext integer reference."""

import numpy as np
import pytest

from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta, secure_predict
from repro.errors import ConfigError, ProtocolError
from repro.net import make_channel_pair
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


@pytest.fixture(scope="module")
def qmodel_ternary(trained_model):
    return quantize_model(trained_model, FragmentScheme.ternary(), Ring(32), frac_bits=6)


@pytest.fixture(scope="module")
def qmodel_4bit(trained_model):
    return quantize_model(
        trained_model, FragmentScheme.from_bits((2, 2)), Ring(32), frac_bits=6
    )


class TestSecurePredict:
    def test_ternary_exact_match(self, qmodel_ternary, small_dataset, test_group):
        # No truncation for ternary, so the secure logits are bit-exact.
        x = small_dataset.test_x[:3]
        report = secure_predict(qmodel_ternary, x, group=test_group)
        expect = qmodel_ternary.forward_int(qmodel_ternary.encoder.encode(x.T))
        assert (report.logits_int == expect).all()
        assert (report.predictions == qmodel_ternary.predict(x)).all()

    def test_4bit_predictions_match(self, qmodel_4bit, small_dataset, test_group):
        # Truncation is share-local (+-1 ulp), so compare predictions and
        # logits within a tolerance.
        x = small_dataset.test_x[:4]
        report = secure_predict(qmodel_4bit, x, group=test_group)
        ring = qmodel_4bit.ring
        expect = ring.to_signed(qmodel_4bit.forward_int(qmodel_4bit.encoder.encode(x.T)))
        got = ring.to_signed(report.logits_int)
        assert np.abs(got - expect).max() <= 256
        assert (report.predictions == qmodel_4bit.predict(x)).all()

    def test_optimized_relu_variant(self, qmodel_ternary, small_dataset, test_group):
        x = small_dataset.test_x[:2]
        report = secure_predict(
            qmodel_ternary, x, relu_variant="optimized", group=test_group
        )
        assert (report.predictions == qmodel_ternary.predict(x)).all()

    def test_batch_sizes(self, qmodel_ternary, small_dataset, test_group):
        for batch in (1, 5):
            x = small_dataset.test_x[:batch]
            report = secure_predict(qmodel_ternary, x, group=test_group)
            assert report.predictions.shape == (batch,)
            assert (report.predictions == qmodel_ternary.predict(x)).all()

    def test_phase_stats_populated(self, qmodel_ternary, small_dataset, test_group):
        report = secure_predict(qmodel_ternary, small_dataset.test_x[:2], group=test_group)
        assert report.offline_bytes > 0
        assert report.online_bytes > 0
        assert report.offline_client.seconds > 0
        assert report.rounds > 0
        assert report.total_bytes >= report.offline_bytes + report.online_bytes

    def test_offline_dominates_communication(self, qmodel_4bit, small_dataset, test_group):
        # The design goal: OT (offline) traffic >> online traffic for 4-bit+.
        report = secure_predict(qmodel_4bit, small_dataset.test_x[:1], group=test_group)
        assert report.offline_bytes > report.online_bytes

    def test_deterministic_with_seed(self, qmodel_ternary, small_dataset, test_group):
        x = small_dataset.test_x[:2]
        a = secure_predict(qmodel_ternary, x, group=test_group, seed=5)
        b = secure_predict(qmodel_ternary, x, group=test_group, seed=5)
        assert (a.logits_int == b.logits_int).all()


class TestPartyApis:
    def test_model_meta_has_no_weights(self, qmodel_ternary):
        meta = ModelMeta.from_model(qmodel_ternary)
        assert meta.ring_bits == 32
        assert meta.frac_bits == 6
        assert len(meta.layers) == 3
        assert not hasattr(meta.layers[0], "w_int")

    def test_online_before_offline(self, qmodel_ternary, test_group):
        server_chan, _client_chan = make_channel_pair()
        server = Abnn2Server(server_chan, qmodel_ternary, batch=1, group=test_group)
        with pytest.raises(ProtocolError):
            server.online()
        meta = ModelMeta.from_model(qmodel_ternary)
        client = Abnn2Client(_client_chan, meta, batch=1, group=test_group)
        with pytest.raises(ProtocolError):
            client.online(np.zeros((784, 1), dtype=np.uint64))

    def test_bad_batch(self, qmodel_ternary, test_group):
        chan, _ = make_channel_pair()
        with pytest.raises(ConfigError):
            Abnn2Server(chan, qmodel_ternary, batch=0, group=test_group)

    def test_client_input_shape_checked(self, qmodel_ternary, test_group):
        _, client_chan = make_channel_pair()
        meta = ModelMeta.from_model(qmodel_ternary)
        client = Abnn2Client(client_chan, meta, batch=2, group=test_group)
        client._pending.append({})  # pretend offline ran
        with pytest.raises(ConfigError):
            client.online(np.zeros((10, 2), dtype=np.uint64))

    def test_invalid_rounds(self, qmodel_ternary, test_group):
        chan, _ = make_channel_pair()
        server = Abnn2Server(chan, qmodel_ternary, batch=1, group=test_group)
        with pytest.raises(ConfigError):
            server.offline(rounds=0)

    def test_multi_round_sessions(self, qmodel_ternary, small_dataset, test_group):
        """One offline(rounds=2) covers two online batches, then runs dry."""
        from repro.net.runner import run_protocol

        x1 = small_dataset.test_x[:2]
        x2 = small_dataset.test_x[2:4]
        enc = qmodel_ternary.encoder

        def server_fn(chan):
            server = Abnn2Server(chan, qmodel_ternary, 2, group=test_group, seed=11)
            server.offline(rounds=2)
            assert server.rounds_available == 2
            server.online()
            server.online()
            assert server.rounds_available == 0
            with pytest.raises(ProtocolError):
                server.online()
            return server

        def client_fn(chan):
            meta = ModelMeta.from_model(qmodel_ternary)
            client = Abnn2Client(chan, meta, 2, group=test_group, seed=12)
            client.offline(rounds=2)
            first = client.online(enc.encode(x1.T))
            second = client.online(enc.encode(x2.T))
            return first, second

        result = run_protocol(server_fn, client_fn)
        first, second = result.client
        assert (first == qmodel_ternary.forward_int(enc.encode(x1.T))).all()
        assert (second == qmodel_ternary.forward_int(enc.encode(x2.T))).all()

    def test_rounds_use_distinct_masks(self, qmodel_ternary, test_group):
        """Mask reuse across rounds would leak input differences — the
        security reason material is single-use."""
        from repro.net.runner import run_protocol

        def server_fn(chan):
            server = Abnn2Server(chan, qmodel_ternary, 1, group=test_group, seed=11)
            server.offline(rounds=2)

        def client_fn(chan):
            meta = ModelMeta.from_model(qmodel_ternary)
            client = Abnn2Client(chan, meta, 1, group=test_group, seed=12)
            client.offline(rounds=2)
            masks = [m["input_mask"] for m in client._pending]
            assert (masks[0] != masks[1]).any()

        run_protocol(server_fn, client_fn)


class TestExhaustionGating:
    """online() with no banked rounds must fail typed on *both* parties
    before any protocol bytes cross the wire — never desync the stream."""

    def test_server_raises_before_any_bytes(self, qmodel_ternary, test_group):
        server_chan, _ = make_channel_pair()
        server = Abnn2Server(server_chan, qmodel_ternary, batch=1, group=test_group)
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            server.online()
        assert server_chan.stats.total_bytes == 0
        assert server_chan.stats.total_messages == 0

    def test_client_raises_before_any_bytes(self, qmodel_ternary, test_group):
        _, client_chan = make_channel_pair()
        meta = ModelMeta.from_model(qmodel_ternary)
        client = Abnn2Client(client_chan, meta, batch=1, group=test_group)
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            client.online(np.zeros((784, 1), dtype=np.uint64))
        assert client_chan.stats.total_bytes == 0
        assert client_chan.stats.total_messages == 0

    def test_asymmetric_exhaustion_fails_typed_without_hanging(
        self, qmodel_ternary, small_dataset, test_group
    ):
        """Server has a round, client does not: the client's local gate
        fires first, the server never receives a half-round of traffic."""
        import threading
        import time

        from repro.net.runner import run_protocol

        enc = qmodel_ternary.encoder
        x = small_dataset.test_x[:1]
        online_bytes = {}

        def server_fn(chan):
            server = Abnn2Server(chan, qmodel_ternary, 1, group=test_group, seed=1)
            server.offline(rounds=2)
            server.online()
            before = chan.stats.total_bytes
            try:
                # The server still holds a round, so it enters the second
                # online and blocks waiting for the client's input share.
                server.online()
            finally:
                online_bytes["second_round"] = chan.stats.total_bytes - before

        def client_fn(chan):
            meta = ModelMeta.from_model(qmodel_ternary)
            client = Abnn2Client(chan, meta, 1, group=test_group, seed=2)
            client.offline(rounds=2)
            # Drain one client round out-of-band: the asymmetric case.
            client.export_offline_round()
            client.online(enc.encode(x.T))
            client.online(enc.encode(x.T))  # exhausted on this side only

        with pytest.raises(ProtocolError, match="offline material exhausted"):
            run_protocol(server_fn, client_fn, timeout_s=10.0)
        # The client's gate fired before it sent its input share, so no
        # second-round traffic crossed the wire in either direction.
        assert online_bytes["second_round"] == 0
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(t.name == "abnn2-server" for t in threading.enumerate()):
                break
            time.sleep(0.05)
        assert not any(t.name == "abnn2-server" for t in threading.enumerate())


class TestOfflineExportLoad:
    """export_offline_round()/load_offline_round(): the serving bank's
    contract with the protocol parties."""

    def test_export_empty_raises_typed(self, qmodel_ternary, test_group):
        server_chan, client_chan = make_channel_pair()
        server = Abnn2Server(server_chan, qmodel_ternary, 1, group=test_group)
        with pytest.raises(ProtocolError, match="exhausted"):
            server.export_offline_round()
        meta = ModelMeta.from_model(qmodel_ternary)
        client = Abnn2Client(client_chan, meta, 1, group=test_group)
        with pytest.raises(ProtocolError, match="exhausted"):
            client.export_offline_round()

    def test_roundtrip_matches_plaintext(self, qmodel_ternary, small_dataset, test_group):
        """Material generated on one channel pair, exported, and loaded
        into fresh parties on another pair must predict correctly."""
        from repro.net.runner import run_protocol

        enc = qmodel_ternary.encoder
        x = small_dataset.test_x[:2]
        meta = ModelMeta.from_model(qmodel_ternary)

        def gen_server(chan):
            server = Abnn2Server(chan, qmodel_ternary, 2, group=test_group, seed=21)
            server.offline(rounds=1)
            return server.export_offline_round()

        def gen_client(chan):
            client = Abnn2Client(chan, meta, 2, group=test_group, seed=22)
            client.offline(rounds=1)
            return client.export_offline_round()

        material = run_protocol(gen_server, gen_client)

        def use_server(chan):
            server = Abnn2Server(chan, qmodel_ternary, 2, group=test_group)
            server.load_offline_round(material.server)
            assert server.rounds_available == 1
            server.online()

        def use_client(chan):
            client = Abnn2Client(chan, meta, 2, group=test_group)
            client.load_offline_round(material.client)
            return client.online(enc.encode(x.T))

        result = run_protocol(use_server, use_client)
        assert (result.client == qmodel_ternary.forward_int(enc.encode(x.T))).all()

    def test_load_validates_shapes(self, qmodel_ternary, test_group):
        from repro.net.runner import run_protocol

        meta = ModelMeta.from_model(qmodel_ternary)

        def gen_server(chan):
            server = Abnn2Server(chan, qmodel_ternary, 1, group=test_group, seed=21)
            server.offline(rounds=1)
            return server.export_offline_round()

        def gen_client(chan):
            client = Abnn2Client(chan, meta, 1, group=test_group, seed=22)
            client.offline(rounds=1)
            return client.export_offline_round()

        material = run_protocol(gen_server, gen_client)
        _, client_chan = make_channel_pair()
        client = Abnn2Client(client_chan, meta, 1, group=test_group)
        with pytest.raises(ConfigError):
            client.load_offline_round({**material.client, "v": material.client["v"][:-1]})
        bad_mask = dict(material.client)
        bad_mask["input_mask"] = np.zeros((3, 1), dtype=np.uint64)
        with pytest.raises(ConfigError):
            client.load_offline_round(bad_mask)
        server_chan, _ = make_channel_pair()
        server = Abnn2Server(server_chan, qmodel_ternary, 1, group=test_group)
        with pytest.raises(ConfigError):
            server.load_offline_round(material.server[:-1])


class TestRing64:
    def test_end_to_end_l64(self, trained_model, small_dataset, test_group):
        """The paper's l=64 block of Table 4 exercises Ring(64) end to end."""
        qm = quantize_model(trained_model, FragmentScheme.ternary(), Ring(64), frac_bits=6)
        x = small_dataset.test_x[:2]
        report = secure_predict(qm, x, group=test_group)
        expect = qm.forward_int(qm.encoder.encode(x.T))
        assert (report.logits_int == expect).all()

    def test_l64_costs_more_than_l32(self, trained_model, small_dataset, test_group):
        x = small_dataset.test_x[:1]
        small = secure_predict(
            quantize_model(trained_model, FragmentScheme.ternary(), Ring(32), frac_bits=6),
            x, group=test_group,
        )
        large = secure_predict(
            quantize_model(trained_model, FragmentScheme.ternary(), Ring(64), frac_bits=6),
            x, group=test_group,
        )
        assert large.total_bytes > small.total_bytes


class TestOnlineCommModel:
    def test_online_traffic_tracks_gc_model(self, qmodel_ternary, small_dataset, test_group):
        """Online bytes ~= GC ReLU model + input/output share transfers."""
        from repro.perf.costmodel import gc_relu_comm_bits

        batch = 2
        x = small_dataset.test_x[:batch]
        report = secure_predict(qmodel_ternary, x, group=test_group)
        hidden = sum(l.out_features for l in qmodel_ternary.layers[:-1])
        predicted = (
            gc_relu_comm_bits(32, hidden * batch)
            + qmodel_ternary.input_dim * 32 * batch
            + qmodel_ternary.output_dim * 32 * batch
        ) / 8
        assert 0.5 * predicted < report.online_bytes < 2.0 * predicted
