"""Unit tests for the hierarchical span tracer (repro.perf.trace)."""

import json

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.net.channel import make_channel_pair
from repro.net.runner import run_protocol
from repro.perf.trace import TRACE_SCHEMA, Tracer, channel_span, iter_spans, load_trace


class TestSpanTree:
    def test_nested_spans_and_paths(self):
        tracer = Tracer("client")
        with tracer.span("offline") as offline:
            with tracer.span("layer0") as layer:
                with tracer.span("triplets") as trip:
                    assert trip.path == "offline/layer0/triplets"
                assert tracer.current is layer
        assert tracer.current is tracer.root
        assert offline.duration_s is not None
        assert offline.duration_s >= 0

    def test_slash_names_open_nested_spans(self):
        tracer = Tracer()
        with tracer.span("online/layer3/matmul", m=7) as leaf:
            assert leaf.name == "matmul"
            assert leaf.path == "online/layer3/matmul"
            assert leaf.attrs == {"m": 7}
        doc = tracer.to_dict()
        paths = [path for path, _ in iter_spans(doc)]
        assert paths == ["online", "online/layer3", "online/layer3/matmul"]

    def test_io_attributed_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            tracer.record_io("send", 10)
            with tracer.span("inner") as inner:
                tracer.record_io("send", 100)
                tracer.record_io("recv", 7)
            tracer.record_io("recv", 3)
        assert (outer.sent_bytes, outer.recv_bytes) == (10, 3)
        assert (inner.sent_bytes, inner.recv_bytes) == (100, 7)
        totals = outer.totals()
        assert totals["sent_bytes"] == 110
        assert totals["recv_bytes"] == 10
        assert totals["sent_msgs"] == 2
        assert totals["recv_msgs"] == 2

    def test_rounds_count_direction_flips_across_spans(self):
        tracer = Tracer()
        with tracer.span("a"):
            tracer.record_io("send", 1)  # flip 1 (first message)
            tracer.record_io("send", 1)  # same direction: no flip
        with tracer.span("b") as b:
            tracer.record_io("send", 1)  # still sending: no flip
            tracer.record_io("recv", 1)  # flip 2
            tracer.record_io("recv", 1)
            tracer.record_io("send", 1)  # flip 3
        root_totals = tracer.root.totals()
        assert root_totals["rounds"] == 3
        assert b.rounds == 2

    def test_exception_closes_open_spans(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("phase"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        assert tracer.current is tracer.root
        phase = tracer.root.children[0]
        assert phase.duration_s is not None
        assert phase.children[0].duration_s is not None

    def test_end_span_closes_dangling_children(self):
        tracer = Tracer()
        outer = tracer.start_span("outer")
        tracer.start_span("dangling")
        tracer.end_span(outer)
        assert tracer.current is tracer.root
        assert outer.children[0].duration_s is not None
        with pytest.raises(ConfigError):
            tracer.end_span(outer)  # already closed

    def test_bad_inputs(self):
        tracer = Tracer()
        with pytest.raises(ConfigError):
            tracer.start_span("")
        with pytest.raises(ConfigError):
            tracer.record_io("sideways", 1)
        with pytest.raises(ConfigError):
            with tracer.span("///"):
                pass


class TestExport:
    def test_save_load_roundtrip(self, tmp_path):
        tracer = Tracer("server")
        with tracer.span("offline", layers=3):
            tracer.record_io("send", 42)
        path = str(tmp_path / "trace.json")
        tracer.save(path)
        doc = load_trace(path)
        assert doc["schema"] == TRACE_SCHEMA
        assert doc["party"] == "server"
        offline = doc["root"]["children"][0]
        assert offline["attrs"] == {"layers": 3}
        assert offline["self"]["sent_bytes"] == 42
        assert offline["total"]["sent_bytes"] == 42

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "abnn2-trace/999", "root": {}}))
        with pytest.raises(ConfigError, match="schema"):
            load_trace(str(path))

    def test_open_spans_get_provisional_durations(self):
        tracer = Tracer()
        tracer.start_span("still-open")
        doc = tracer.to_dict()
        assert doc["root"]["children"][0]["duration_s"] >= 0


class TestChannelIntegration:
    def test_channel_span_without_tracer_is_noop(self):
        server, _client = make_channel_pair()
        assert server.tracer is None
        with channel_span(server, "anything", m=1):
            pass  # must not raise, and no tracer appears
        assert server.tracer is None

    def test_traced_exchange_matches_channel_stats(self):
        """Tracer byte/round totals must equal ChannelStats' view."""
        tracers = {}

        def server_fn(ch):
            tracers["server"] = tr = Tracer("server")
            ch.tracer = tr
            with tr.span("phase"):
                ch.send(np.arange(10, dtype=np.uint64))
                ch.recv()
                ch.send(b"xyz")
            return True

        def client_fn(ch):
            tracers["client"] = tr = Tracer("client")
            ch.tracer = tr
            with tr.span("phase"):
                ch.recv()
                ch.send(np.ones(3, dtype=np.uint64))
                ch.recv()
            return True

        result = run_protocol(server_fn, client_fn, timeout_s=30)
        stats = result.stats
        for tracer in tracers.values():
            totals = tracer.root.totals()
            assert totals["sent_bytes"] + totals["recv_bytes"] == stats.total_bytes
            assert totals["rounds"] == stats.rounds
            assert totals["sent_msgs"] + totals["recv_msgs"] == stats.total_messages

    def test_faulty_channel_delegates_tracer(self):
        from repro.net.faults import FaultPlan, FaultyChannel

        server, client = make_channel_pair()
        wrapped = FaultyChannel(client, FaultPlan())
        tracer = Tracer("client")
        wrapped.tracer = tracer
        assert client.tracer is tracer  # lives on the inner endpoint
        with tracer.span("s"):
            wrapped.send(b"abcd")
        assert tracer.root.totals()["sent_bytes"] == 4
        server.recv()
