"""Traced protocol runs vs the analytic cost model (Table 1 conformance).

Every traced run here attaches a :class:`repro.perf.trace.Tracer` to the
channel, wraps the protocol in the span taxonomy that
:func:`repro.perf.report.conformance_rows` consumes, and asserts that
the measured wire bytes land inside the *derived* tolerance band
documented in ``repro/perf/report.py``:

* multi-batch triplets: byte-exact at ``predicted + word-padding slack``
  (the slack is exactly computable, so the band has zero width);
* one-batch triplets: within one 64-bit word per transmitted chunk;
* oblivious GC ReLU: byte-exact against ``gc_relu_wire_bits``.

Base-OT setup traffic is isolated in ``base-ot`` spans by the OT engines
and subtracted by the checker before comparing.
"""

import numpy as np
import pytest

from repro.core.relu import relu_layer_client, relu_layer_server
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.gc.protocol import GcSessions
from repro.net import run_protocol
from repro.perf.costmodel import abnn2_comm_bits_radices, gc_relu_wire_bits
from repro.perf.report import check_conformance, conformance_rows, triplet_slack_bits
from repro.perf.trace import Tracer
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring


def _random_weights(scheme, shape, rng):
    lo, hi = scheme.weight_range
    return rng.integers(lo, hi + 1, size=shape)


def _traced_triplets(scheme, m, n, o, ring_bits, group, rng, mode="auto"):
    """Run triplet generation with both parties traced.

    Returns ``(protocol_result, traces)`` where ``traces`` maps party
    name to the exported trace document.
    """
    ring = Ring(ring_bits)
    w = _random_weights(scheme, (m, n), rng)
    r = ring.sample(rng, (n, o))
    config = TripletConfig(
        ring=ring, scheme=scheme, m=m, n=n, o=o, mode=mode, group=group
    )
    attrs = dict(
        m=m,
        n=n,
        o=o,
        ring_bits=ring_bits,
        mode=config.resolved_mode,
        frag_n_values=[frag.n_values for frag in scheme.fragments],
    )
    traces = {}

    def server_fn(chan):
        tracer = Tracer("server")
        chan.tracer = tracer
        with tracer.span("offline/layer0/triplets", **attrs):
            u = generate_triplets_server(chan, w, config, seed=3)
        traces["server"] = tracer.to_dict()
        return u

    def client_fn(chan):
        tracer = Tracer("client")
        chan.tracer = tracer
        with tracer.span("offline/layer0/triplets", **attrs):
            v = generate_triplets_client(
                chan, r, config, np.random.default_rng(4), seed=5
            )
        traces["client"] = tracer.to_dict()
        return v

    result = run_protocol(server_fn, client_fn)
    expected = ring.matmul(ring.reduce(w), r)
    assert (ring.add(result.server, result.client) == expected).all()
    return result, traces


def _assert_conformant(result, traces, *, expect_exact):
    """Both parties' rows must be in tolerance and byte-identical views."""
    for party, trace in traces.items():
        rows = [row for row in conformance_rows(trace) if row.kind == "triplets"]
        assert len(rows) == 1, f"{party}: expected one triplets row, got {rows}"
        row = rows[0]
        assert row.path == "offline/layer0/triplets"
        assert row.ok is True, (
            f"{party}: core {row.core_bits} bits vs predicted {row.predicted_bits} "
            f"+ slack [{row.slack_min_bits}, {row.slack_max_bits}] ({row.detail})"
        )
        if expect_exact:
            assert row.slack_min_bits == row.slack_max_bits
            assert row.core_bits == row.predicted_bits + row.slack_min_bits
        assert check_conformance(trace) == []
        # Tracer totals must agree with the shared channel accounting:
        # both directions' payload bytes are visible to each party.
        totals = trace["root"]["total"]
        assert totals["sent_bytes"] + totals["recv_bytes"] == result.stats.total_bytes
        assert totals["rounds"] == result.stats.rounds


TRIPLET_GRID = [
    # scheme, m, n, o, ring_bits — exercises uniform and mixed radices,
    # one- and multi-batch, odd o (padding slack) and non-64-divisible l.
    ("binary", 4, 6, 4, 32),
    ("binary", 4, 6, 1, 32),
    ("ternary", 4, 6, 4, 32),
    ("ternary", 4, 6, 1, 32),
    ("4(2,2)", 4, 6, 4, 32),
    ("4(2,2)", 5, 3, 3, 17),
    ("4(2,2)", 5, 3, 3, 64),
    ("4(2,2)", 4, 6, 1, 32),
    ("8(3,3,2)", 4, 6, 4, 32),
    ("8(3,3,2)", 3, 5, 1, 32),
    ("3(2,1)", 4, 6, 3, 32),
    ("3(2,1)", 4, 6, 1, 17),
]


class TestTripletConformance:
    @pytest.mark.parametrize("scheme_name,m,n,o,ring_bits", TRIPLET_GRID)
    def test_traced_bytes_match_model(
        self, scheme_name, m, n, o, ring_bits, test_group, rng
    ):
        scheme = TABLE2_SCHEMES[scheme_name]
        result, traces = _traced_triplets(scheme, m, n, o, ring_bits, test_group, rng)
        mode = "one" if o == 1 else "multi"
        _assert_conformant(result, traces, expect_exact=(mode == "multi"))

    def test_forced_multi_mode_with_o1(self, test_group, rng):
        # Forcing multi-batch at o=1 keeps the slack formula exact even
        # when auto mode would have picked the one-batch protocol.
        scheme = TABLE2_SCHEMES["4(2,2)"]
        result, traces = _traced_triplets(
            scheme, 4, 5, 1, 17, test_group, rng, mode="multi"
        )
        _assert_conformant(result, traces, expect_exact=True)

    def test_multi_slack_formula(self):
        # o*l a multiple of 64 -> no padding; otherwise exact residue.
        assert triplet_slack_bits(4, 6, 2, 32, [2, 2], "multi") == (0, 0)
        lo, hi = triplet_slack_bits(4, 6, 3, 32, [4], "multi")
        # width = ceil(96/64) = 2 words -> 128 - 96 = 32 bits per OT row
        assert lo == hi == 4 * 6 * 4 * 32
        lo, hi = triplet_slack_bits(2, 3, 1, 17, [3, 2], "one")
        assert lo == 0 and hi == 2 * 64  # one chunk per radix group

    def test_predicted_matches_scheme_form(self):
        # The radix-list form must agree with the FragmentScheme form.
        from repro.perf.costmodel import abnn2_comm_bits

        scheme = TABLE2_SCHEMES["8(3,3,2)"]
        radices = [frag.n_values for frag in scheme.fragments]
        for o, mode in ((1, "one"), (4, "multi")):
            assert abnn2_comm_bits(scheme, 7, 11, o, 32, mode) == (
                abnn2_comm_bits_radices(radices, 7, 11, o, 32, mode)
            )


class TestWinogradConformance:
    """The grouped winograd triplet draw vs its dedicated closed forms.

    The acceptance bar is *zero slack*: the multi-batch band is exactly
    computable, so traced core bytes must equal ``winograd_comm_bits``
    plus the derived word-padding constant — no tolerance.
    """

    @staticmethod
    def _wino_model():
        from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
        from repro.nn.model import Sequential
        from repro.nn.quantize import quantize_model
        from repro.quant.fragments import FragmentScheme

        net = Sequential(
            [
                Conv2d(1, 2, kernel_size=3, seed=0),
                ReLU(),
                Flatten(),
                Dense(2 * 6 * 6, 3, seed=1),
            ]
        )
        return quantize_model(
            net,
            FragmentScheme.ternary(),
            Ring(32),
            frac_bits=6,
            input_shape=(1, 8, 8),
            linear_backend="winograd",
        )

    def test_traced_grouped_bytes_match_closed_form(self, test_group, rng):
        from repro.core.protocol import ModelMeta, layer_triplet_config
        from repro.nn.winograd import transform_weights
        from repro.perf.costmodel import winograd_comm_bits

        qm = self._wino_model()
        meta = ModelMeta.from_model(qm)
        layer_meta = meta.layers[0]
        assert layer_meta.backend == "winograd"
        layer, ring, batch = qm.layers[0], qm.ring, 2
        oc = layer.w_int.shape[0]
        config = layer_triplet_config(ring, layer_meta, batch, group=test_group)
        wspec = layer_meta.wino
        assert config.groups == 16
        assert config.rows == 16 * oc
        assert config.o == batch * wspec.n_tiles
        w = transform_weights(wspec, layer.w_int)
        r = ring.sample(rng, config.r_shape)
        attrs = dict(
            m=config.rows,
            n=config.n,
            o=config.o,
            ring_bits=ring.bits,
            mode=config.resolved_mode,
            frag_n_values=[frag.n_values for frag in config.scheme.fragments],
            groups=config.groups,
            backend="winograd",
        )
        traces = {}

        def server_fn(chan):
            tracer = Tracer("server")
            chan.tracer = tracer
            with tracer.span("offline/layer0/triplets", **attrs):
                u = generate_triplets_server(chan, w, config, seed=3)
            traces["server"] = tracer.to_dict()
            return u

        def client_fn(chan):
            tracer = Tracer("client")
            chan.tracer = tracer
            with tracer.span("offline/layer0/triplets", **attrs):
                v = generate_triplets_client(
                    chan, r, config, np.random.default_rng(4), seed=5
                )
            traces["client"] = tracer.to_dict()
            return v

        result = run_protocol(server_fn, client_fn)
        # correctness of the block-diagonal product
        got = ring.add(result.server, result.client)
        for g in range(16):
            blk = ring.matmul(
                ring.reduce(w[g * oc : (g + 1) * oc]),
                r[g * config.n : (g + 1) * config.n],
            )
            assert (got[g * oc : (g + 1) * oc] == blk).all()
        expected_bits = winograd_comm_bits(
            config.scheme,
            wspec.in_channels,
            oc,
            wspec.n_tiles,
            batch,
            ring.bits,
            mode=config.resolved_mode,
        )
        for party, trace in traces.items():
            rows = [row for row in conformance_rows(trace) if row.kind == "triplets"]
            assert len(rows) == 1, party
            row = rows[0]
            assert row.predicted_bits == expected_bits
            assert row.ok is True, (
                f"{party}: core {row.core_bits} bits vs predicted "
                f"{row.predicted_bits} ({row.detail})"
            )
            # zero-width band: byte-exact, no tolerance
            assert row.slack_min_bits == row.slack_max_bits
            assert row.core_bits == row.predicted_bits + row.slack_min_bits
            assert check_conformance(trace) == []

    def test_element_and_ot_closed_forms(self):
        from repro.core.protocol import ModelMeta, layer_triplet_config
        from repro.perf.costmodel import (
            abnn2_comm_bits,
            abnn2_ot_count,
            conv_triplet_elements_im2col,
            conv_triplet_elements_winograd,
            winograd_comm_bits,
            winograd_ot_count,
            winograd_reduction_ratio,
        )

        qm = self._wino_model()
        meta = ModelMeta.from_model(qm)
        layer_meta = meta.layers[0]
        wspec, ispec = layer_meta.wino, layer_meta.conv
        oc, batch = qm.layers[0].w_int.shape[0], 4
        config = layer_triplet_config(Ring(32), layer_meta, batch)
        # the drawn triplet elements are exactly the winograd closed form
        elems_wino = config.rows * config.n * config.o
        assert elems_wino == conv_triplet_elements_winograd(
            wspec.in_channels, oc, wspec.n_tiles, batch
        )
        elems_im2col = conv_triplet_elements_im2col(
            ispec.in_channels, oc, ispec.out_h, ispec.out_w, batch
        )
        ratio = winograd_reduction_ratio(ispec.out_h, ispec.out_w, wspec.n_tiles)
        assert elems_im2col / elems_wino == ratio == 2.25
        # OT and comm closed forms are the grouped-shape abnn2 forms
        assert winograd_ot_count(config.scheme, wspec.in_channels, oc) == (
            abnn2_ot_count(config.scheme, config.rows, config.n)
        )
        assert winograd_comm_bits(
            config.scheme, wspec.in_channels, oc, wspec.n_tiles, batch, 32
        ) == abnn2_comm_bits(
            config.scheme, 16 * oc, wspec.in_channels, batch * wspec.n_tiles, 32
        )

    def test_secure_predict_winograd_traces_conform(self, test_group):
        from repro.core.protocol import secure_predict

        qm = self._wino_model()
        x = np.random.default_rng(3).uniform(0, 1, size=(2, 64))
        report = secure_predict(qm, x, group=test_group, seed=11)
        for trace in (report.server_trace, report.client_trace):
            assert trace is not None
            rows = conformance_rows(trace)
            assert sum(row.kind == "triplets" for row in rows) == len(qm.layers)
            assert all(row.ok is True for row in rows if row.predicted_bits is not None)
            assert check_conformance(trace) == []


def _traced_relu(ring, y, z1, variant, group):
    rng = np.random.default_rng(5)
    y1 = ring.sample(rng, y.shape)
    y0 = ring.sub(y, y1)
    attrs = dict(variant=variant, n_relus=int(y.size), ring_bits=ring.bits)
    traces = {}

    def server_fn(chan):
        tracer = Tracer("server")
        chan.tracer = tracer
        sessions = GcSessions(chan, "evaluator", group=group, seed=1)
        with tracer.span("online/layer0/relu", **attrs):
            z0 = relu_layer_server(chan, y0, sessions, ring, variant)
        traces["server"] = tracer.to_dict()
        return z0

    def client_fn(chan):
        tracer = Tracer("client")
        chan.tracer = tracer
        sessions = GcSessions(chan, "garbler", group=group, seed=2)
        with tracer.span("online/layer0/relu", **attrs):
            relu_layer_client(
                chan, y1, z1, sessions, ring, np.random.default_rng(9), variant
            )
        traces["client"] = tracer.to_dict()
        return True

    result = run_protocol(server_fn, client_fn)
    relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
    assert (ring.add(result.server, z1) == relu).all()
    return traces


class TestGcReluConformance:
    @pytest.mark.parametrize("ring_bits,n_relus", [(4, 9), (8, 9), (8, 1)])
    def test_oblivious_relu_byte_exact(self, ring_bits, n_relus, test_group, rng):
        ring = Ring(ring_bits)
        y = ring.sample(rng, n_relus)
        z1 = ring.sample(rng, n_relus)
        traces = _traced_relu(ring, y, z1, "oblivious", test_group)
        for party, trace in traces.items():
            rows = [row for row in conformance_rows(trace) if row.kind == "relu"]
            assert len(rows) == 1
            row = rows[0]
            assert row.predicted_bits == gc_relu_wire_bits(ring_bits, n_relus)
            assert row.ok is True
            # the GC ReLU model is *exact*: zero-width tolerance band
            assert row.core_bits == row.predicted_bits, (
                f"{party}: measured-core {row.core_bits} != "
                f"predicted {row.predicted_bits}"
            )
            assert row.base_ot_bits > 0  # IKNP setup was isolated, not lost
            assert check_conformance(trace) == []

    def test_optimized_relu_is_unmodeled(self, test_group, rng):
        ring = Ring(8)
        y = ring.sample(rng, 6)
        z1 = ring.sample(rng, 6)
        traces = _traced_relu(ring, y, z1, "optimized", test_group)
        for trace in traces.values():
            rows = [row for row in conformance_rows(trace) if row.kind == "relu"]
            assert len(rows) == 1
            assert rows[0].ok is None  # unmodeled: never a conformance failure
            assert check_conformance(trace) == []


class TestEndToEndTraceConformance:
    def test_secure_predict_traces_conform(self, trained_model, small_dataset, test_group):
        """Every modeled span in a full prediction run is within tolerance."""
        from repro.core.protocol import secure_predict
        from repro.nn.quantize import quantize_model
        from repro.quant.fragments import FragmentScheme

        qmodel = quantize_model(
            trained_model, FragmentScheme.ternary(), Ring(32), frac_bits=6
        )
        x = small_dataset.test_x[:2]
        report = secure_predict(qmodel, x, group=test_group, seed=11)
        for trace in (report.server_trace, report.client_trace):
            assert trace is not None
            rows = conformance_rows(trace)
            # one triplets row and one oblivious-relu row per hidden layer,
            # plus a triplets row for the output layer
            assert sum(row.kind == "triplets" for row in rows) == len(qmodel.layers)
            assert sum(row.kind == "relu" for row in rows) == len(qmodel.layers) - 1
            assert all(row.ok is True for row in rows if row.predicted_bits is not None)
            assert check_conformance(trace) == []
