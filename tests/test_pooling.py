"""Secure pooling: share-local average pooling and garbled max pooling."""

import numpy as np
import pytest

from repro.core.pooling import (
    avgpool_exact,
    avgpool_share,
    maxpool_client,
    maxpool_exact,
    maxpool_server,
)
from repro.core.protocol import ModelMeta, secure_predict
from repro.errors import ConfigError, QuantizationError
from repro.gc.builder import max_words, maxpool_template
from repro.gc.circuit import Circuit
from repro.gc.protocol import GcSessions
from repro.net import run_protocol
from repro.nn.layers import AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.lowering import PoolSpec, gather_windows
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring


@pytest.fixture
def spec_avg():
    return PoolSpec(kind="avg", channels=2, height=4, width=4, kernel=2)


@pytest.fixture
def spec_max():
    return PoolSpec(kind="max", channels=2, height=4, width=4, kernel=2)


class TestPoolSpec:
    def test_geometry(self, spec_avg):
        assert spec_avg.out_features == 2 * 2 * 2
        assert spec_avg.window == 4
        assert spec_avg.avg_shift_bits == 2

    def test_avg_needs_pow2(self):
        with pytest.raises(ConfigError):
            PoolSpec(kind="avg", channels=1, height=9, width=9, kernel=3)

    def test_max_any_kernel(self):
        spec = PoolSpec(kind="max", channels=1, height=9, width=9, kernel=3)
        assert spec.out_features == 9

    def test_tiling_check(self):
        with pytest.raises(ConfigError):
            PoolSpec(kind="max", channels=1, height=5, width=4, kernel=2)

    def test_unknown_kind(self):
        with pytest.raises(ConfigError):
            PoolSpec(kind="median", channels=1, height=4, width=4, kernel=2)

    def test_gather_indices_cover_input_once(self, spec_avg):
        idx = spec_avg.gather_indices()
        flat = np.sort(idx.reshape(-1))
        assert (flat == np.arange(spec_avg.in_features)).all()


class TestAvgPool:
    def test_share_local_correctness(self, spec_avg, rng):
        ring = Ring(32)
        values = ring.reduce(rng.integers(0, 1 << 16, size=(spec_avg.in_features, 3)))
        s1 = ring.sample(rng, values.shape)
        s0 = ring.sub(values, s1)
        pooled0 = avgpool_share(ring, spec_avg, s0, party=0)
        pooled1 = avgpool_share(ring, spec_avg, s1, party=1)
        got = ring.to_signed(ring.add(pooled0, pooled1))
        expect = ring.to_signed(avgpool_exact(ring, spec_avg, values))
        assert np.abs(got - expect).max() <= 1  # truncation ulp

    def test_exact_reference(self, spec_avg, rng):
        ring = Ring(32)
        values = ring.reduce(rng.integers(0, 256, size=(spec_avg.in_features, 1)))
        got = ring.to_signed(avgpool_exact(ring, spec_avg, values))
        windows = gather_windows(spec_avg, values)
        expect = windows.astype(np.int64).sum(axis=1) >> 2
        assert (got == expect).all()

    def test_kind_check(self, spec_max, rng):
        ring = Ring(32)
        with pytest.raises(ConfigError):
            avgpool_share(ring, spec_max, ring.zeros((spec_max.in_features, 1)), 0)


class TestMaxWordsCircuit:
    def test_max_words_semantics(self, rng):
        ring = Ring(16)
        circ = Circuit()
        a = circ.garbler_input(16)
        b = circ.evaluator_input(16)
        circ.mark_outputs(max_words(circ, a, b))
        av = ring.reduce(rng.integers(-1000, 1000, size=30))
        bv = ring.reduce(rng.integers(-1000, 1000, size=30))
        out = ring.reduce(bits_to_int(circ.eval_plain(int_to_bits(av, 16), int_to_bits(bv, 16))))
        expect = ring.reduce(np.maximum(ring.to_signed(av), ring.to_signed(bv)))
        assert (out == expect).all()

    def test_maxpool_template_and_count(self):
        circ = maxpool_template(16, 4)
        # 4 adders (15 each) + 3 maxes (31 each) + reshare (15)
        assert circ.and_count == 4 * 15 + 3 * 31 + 15

    def test_odd_window(self, rng):
        ring = Ring(16)
        circ = maxpool_template(16, 3)
        y = ring.reduce(rng.integers(-500, 500, size=(3, 8)))
        y1 = ring.sample(rng, (3, 8))
        y0 = ring.sub(y, y1)
        z1 = ring.sample(rng, 8)
        g_bits = np.concatenate(
            [int_to_bits(y1[i], 16) for i in range(3)] + [int_to_bits(z1, 16)], axis=1
        )
        e_bits = np.concatenate([int_to_bits(y0[i], 16) for i in range(3)], axis=1)
        out = ring.reduce(bits_to_int(circ.eval_plain(g_bits, e_bits)))
        expect = ring.sub(ring.reduce(ring.to_signed(y).max(axis=0)), z1)
        assert (out == expect).all()


class TestMaxPoolProtocol:
    def test_two_party_maxpool(self, spec_max, test_group, rng):
        ring = Ring(16)
        values = ring.reduce(rng.integers(0, 1 << 12, size=(spec_max.in_features, 2)))
        s1 = ring.sample(rng, values.shape)
        s0 = ring.sub(values, s1)
        z1 = ring.sample(rng, (spec_max.out_features, 2))

        result = run_protocol(
            lambda ch: maxpool_server(
                ch, spec_max, s0, GcSessions(ch, "evaluator", group=test_group, seed=1), ring
            ),
            lambda ch: maxpool_client(
                ch, spec_max, s1, z1,
                GcSessions(ch, "garbler", group=test_group, seed=2),
                ring, np.random.default_rng(3),
            ),
        )
        got = ring.add(result.server, result.client)
        expect = maxpool_exact(ring, spec_max, values)
        assert (got == expect).all()

    def test_z1_size_checked(self, spec_max, test_group):
        from repro.net.channel import make_channel_pair

        ring = Ring(16)
        chan, _ = make_channel_pair()
        sessions = GcSessions(chan, "garbler", group=test_group)
        with pytest.raises(ConfigError):
            maxpool_client(
                chan, spec_max, ring.zeros((spec_max.in_features, 1)),
                ring.zeros(3), sessions, ring, np.random.default_rng(0),
            )


def _pooled_model(pool_cls):
    return Sequential(
        [
            Conv2d(1, 4, kernel_size=3, seed=1),
            ReLU(),
            pool_cls(2),
            Flatten(),
            Dense(4 * 3 * 3, 5, seed=2),
        ]
    )


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def x(self):
        return np.random.default_rng(9).uniform(0, 1, size=(3, 64))

    def test_quantize_detects_pool(self):
        qm = quantize_model(
            _pooled_model(MaxPool2d), FragmentScheme.ternary(), Ring(32),
            input_shape=(1, 8, 8),
        )
        assert qm.layers[0].pool is not None
        assert qm.layers[0].pool.kind == "max"
        assert qm.layers[0].out_features == 4 * 3 * 3
        meta = ModelMeta.from_model(qm)
        assert meta.layers[0].pool.kind == "max"
        assert meta.layers[0].relu_features == 4 * 36

    def test_pool_without_relu_rejected(self):
        model = Sequential(
            [Conv2d(1, 2, kernel_size=3, seed=0), AvgPool2d(2), ReLU(), Flatten(),
             Dense(2 * 3 * 3, 4, seed=1)]
        )
        with pytest.raises(QuantizationError):
            quantize_model(model, FragmentScheme.ternary(), Ring(32), input_shape=(1, 8, 8))

    def test_pool_after_last_layer_rejected(self):
        model = Sequential(
            [Conv2d(1, 2, kernel_size=3, seed=0), ReLU(), AvgPool2d(2)]
        )
        with pytest.raises(QuantizationError):
            quantize_model(model, FragmentScheme.ternary(), Ring(32), input_shape=(1, 8, 8))

    def test_secure_maxpool_bit_exact(self, x, test_group):
        qm = quantize_model(
            _pooled_model(MaxPool2d), FragmentScheme.ternary(), Ring(32),
            frac_bits=6, input_shape=(1, 8, 8),
        )
        report = secure_predict(qm, x, group=test_group)
        expect = qm.forward_int(qm.encoder.encode(x.T))
        assert (report.logits_int == expect).all()

    def test_secure_avgpool_close(self, x, test_group):
        ring = Ring(32)
        qm = quantize_model(
            _pooled_model(AvgPool2d), FragmentScheme.ternary(), ring,
            frac_bits=6, input_shape=(1, 8, 8),
        )
        report = secure_predict(qm, x, group=test_group)
        expect = ring.to_signed(qm.forward_int(qm.encoder.encode(x.T)))
        got = ring.to_signed(report.logits_int)
        assert np.abs(got - expect).max() <= 64
        assert (report.predictions == qm.predict(x)).all()

    def test_persistence_roundtrip_with_pool(self, x, tmp_path):
        from repro.nn.persist import load_model, save_model

        qm = quantize_model(
            _pooled_model(MaxPool2d), FragmentScheme.ternary(), Ring(32),
            input_shape=(1, 8, 8),
        )
        save_model(tmp_path / "m.npz", qm)
        restored = load_model(tmp_path / "m.npz")
        assert restored.layers[0].pool == qm.layers[0].pool
        assert (restored.predict(x) == qm.predict(x)).all()
