"""Memory observability: span allocation peaks, RSS counters, the
closed-form working-set model and the ``report --memory`` surface.

The tracer's memory mode (:mod:`repro.perf.trace`) folds the global
:mod:`tracemalloc` peak into every open span at each span boundary, so
nested spans carry their own allocation high-water marks.  The cost
model (:mod:`repro.perf.costmodel`) prices the same working sets in
closed form, including the row-chunked ``Ring.matmul`` expansion bound
by :data:`repro.utils.ring.MATMUL_EXPANSION_WORDS`.  These tests pin
both sides plus the report table that joins them.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.perf.costmodel import (
    WORD_BYTES,
    _matmul_intermediate_words,
    linear_working_set_bytes,
    lowered_operand_bytes,
)
from repro.perf.report import memory_rows, render_memory_report
from repro.perf.trace import (
    MEMORY_ENV,
    Tracer,
    current_rss_bytes,
    peak_rss_bytes,
    reset_peak_rss,
)
from repro.utils.ring import MATMUL_EXPANSION_WORDS

BIG = 32 * 1024 * 1024  # bytes of the "large" allocation below
SMALL_CAP = 4 * 1024 * 1024


class TestSpanAllocPeaks:
    def test_nested_peaks_attribute_to_the_right_spans(self):
        tracer = Tracer(memory=True)
        with tracer.span("outer"):
            with tracer.span("big"):
                blob = np.ones(BIG // 8, dtype=np.uint64)
                del blob
            with tracer.span("small"):
                tiny = np.ones(128, dtype=np.uint64)
                del tiny
        doc = tracer.to_dict()
        spans = {s["name"]: s for _, s in _walk(doc["root"])}
        assert spans["big"]["alloc_peak_bytes"] >= BIG
        assert spans["small"]["alloc_peak_bytes"] < SMALL_CAP
        # the parent sees at least its largest child's growth
        assert spans["outer"]["alloc_peak_bytes"] >= spans["big"]["alloc_peak_bytes"]
        assert doc["root"]["attrs"]["peak_rss_bytes"] > 0

    def test_memory_off_emits_no_memory_keys(self):
        tracer = Tracer(memory=False)
        with tracer.span("phase"):
            blob = np.ones(1024, dtype=np.uint64)
            del blob
        doc = tracer.to_dict()
        for _, span in _walk(doc["root"]):
            assert "alloc_peak_bytes" not in span
        assert "peak_rss_bytes" not in doc["root"]["attrs"]

    def test_env_var_turns_memory_on_by_default(self, monkeypatch):
        monkeypatch.setenv(MEMORY_ENV, "1")
        assert Tracer().memory is True
        monkeypatch.setenv(MEMORY_ENV, "off")
        assert Tracer().memory is False
        monkeypatch.delenv(MEMORY_ENV)
        assert Tracer().memory is False

    def test_adopt_carries_alloc_peak(self):
        child = Tracer(memory=True)
        with child.span("work"):
            blob = np.ones(BIG // 8, dtype=np.uint64)
            del blob
        parent = Tracer(memory=True)
        span = parent.adopt(child, "shard0")
        # adoption folds the child's root, which saw the big allocation
        child_doc = child.to_dict()
        assert span.alloc_peak_bytes == child_doc["root"]["alloc_peak_bytes"]


class TestRssCounters:
    def test_current_and_peak_are_plausible(self):
        current = current_rss_bytes()
        peak = peak_rss_bytes()
        assert current > 1024 * 1024  # a python process is megabytes-big
        assert peak >= current

    def test_reset_peak_drops_high_water(self):
        blob = np.ones(BIG // 8, dtype=np.uint64)
        blob += 1  # force residency
        del blob
        if not reset_peak_rss():
            pytest.skip("clear_refs not supported on this platform")
        # after the reset the high-water mark restarts near current RSS
        assert peak_rss_bytes() <= current_rss_bytes() + BIG // 2


class TestWorkingSetModel:
    def test_operand_bytes(self):
        assert lowered_operand_bytes(18, 72) == 18 * 72 * WORD_BYTES
        assert lowered_operand_bytes(4, 10, groups=16) == 16 * 4 * 10 * WORD_BYTES
        with pytest.raises(ConfigError):
            lowered_operand_bytes(0, 10)

    def test_unchunked_vs_chunked_closed_forms(self):
        m, n, total = 8, 18, 72
        inter_full = _matmul_intermediate_words(m, n, total)
        inter_blk = _matmul_intermediate_words(m, n, 7)
        assert linear_working_set_bytes(m, n, total) == WORD_BYTES * (
            total * (n + 2 * m) + inter_full
        )
        assert linear_working_set_bytes(m, n, total, chunk_cols=7) == WORD_BYTES * (
            7 * (n + 3 * m) + inter_blk
        )
        # chunk >= total behaves as unchunked
        assert linear_working_set_bytes(m, n, total, chunk_cols=total) == (
            linear_working_set_bytes(m, n, total)
        )
        # chunking strictly shrinks the transient on wide layers
        assert linear_working_set_bytes(m, n, total, chunk_cols=1) < (
            linear_working_set_bytes(m, n, total)
        )

    def test_intermediate_capped_by_expansion_budget(self):
        # narrow product: all rows fit under the budget
        assert _matmul_intermediate_words(4, 8, 2) == 4 * 8 * 2
        # wide product: the row count is clamped so rows*n*cols stays
        # within one MATMUL_EXPANSION_WORDS chunk (plus one full row)
        m, n, cols = 10_000, 512, 4096
        words = _matmul_intermediate_words(m, n, cols)
        assert words == max(1, MATMUL_EXPANSION_WORDS // (n * cols)) * n * cols
        assert words <= MATMUL_EXPANSION_WORDS + n * cols
        assert _matmul_intermediate_words(4, 8, 0) == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            linear_working_set_bytes(0, 18, 72)
        with pytest.raises(ConfigError):
            linear_working_set_bytes(8, 18, 72, chunk_cols=0)


class TestMemoryReport:
    @staticmethod
    def _trace(memory: bool, with_attrs: bool = True):
        tracer = Tracer(memory=memory)
        attrs = {"m": 8, "n": 18, "o": 72, "groups": 1, "chunk_cols": 7}
        if not with_attrs:
            attrs = {}
        with tracer.span("online"):
            with tracer.span("matmul", **attrs):
                blob = np.ones(1 << 18, dtype=np.uint64)
                del blob
        return tracer.to_dict()

    def test_rows_join_measured_and_predicted(self):
        rows = memory_rows(self._trace(memory=True))
        assert len(rows) == 1
        row = rows[0]
        assert row.path == "online/matmul"
        assert row.measured_bytes is not None and row.measured_bytes > 0
        assert row.predicted_bytes == linear_working_set_bytes(
            8, 18, 72, chunk_cols=7
        )
        assert row.operand_bytes == lowered_operand_bytes(18, 72)
        assert "chunk=7" in row.detail

    def test_rows_without_dimensions_or_memory(self):
        rows = memory_rows(self._trace(memory=False, with_attrs=False))
        assert rows[0].measured_bytes is None
        assert rows[0].predicted_bytes is None
        assert rows[0].detail == "missing dimensions"

    def test_render_paths(self):
        text = render_memory_report(self._trace(memory=True))
        assert "process peak RSS" in text
        assert "online/matmul" in text
        cold = render_memory_report(self._trace(memory=False))
        assert "ABNN2_TRACE_MEMORY=1" in cold  # hint when nothing measured
        empty = Tracer(memory=False)
        with empty.span("online"):
            pass
        assert "no matmul spans" in render_memory_report(empty.to_dict())


class TestCliMemoryReport:
    def test_report_demo_memory(self, tmp_path, capsys, monkeypatch):
        monkeypatch.setenv(MEMORY_ENV, "1")
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "report", "--demo", "--memory", "--check",
                "--save-trace", str(trace_path),
                "--hidden", "6", "--batch", "1", "--scheme", "ternary",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "memory (per-span allocation peaks" in out
        assert "process peak RSS" in out
        assert "FAIL" not in out
        doc = json.loads(trace_path.read_text())
        measured = [
            span.get("alloc_peak_bytes")
            for _, span in _walk(doc["root"])
            if span["name"] == "matmul"
        ]
        assert measured and all(m is not None for m in measured)


def _walk(span, prefix=""):
    path = f"{prefix}/{span['name']}" if prefix else span["name"]
    yield path, span
    for child in span.get("children", ()):
        yield from _walk(child, path)
