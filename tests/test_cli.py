"""CLI: argument parsing, cost planner, train/meta, TCP serve/predict."""

import socket
import subprocess
import sys
import threading

import pytest

from repro.cli import build_parser, main


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_cost_args(self):
        args = build_parser().parse_args(["cost", "--eta", "6"])
        assert args.eta == 6 and args.batch == 1

    def test_predict_requires_input_or_demo(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["predict", "--meta", "m", "--port", "1"])


class TestCost:
    def test_prints_ranking(self, capsys):
        assert main(["cost", "--eta", "4", "--batch", "1", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "optimal:" in out
        assert "(2,2)" in out

    def test_multibatch_changes_optimum(self, capsys):
        main(["cost", "--eta", "8", "--batch", "128"])
        out = capsys.readouterr().out
        assert "8(2,2,2,2)" in out


class TestTrainMeta:
    def test_train_writes_bundle_and_meta(self, tmp_path, capsys):
        model_path = tmp_path / "m.npz"
        meta_path = tmp_path / "meta.json"
        code = main(
            [
                "train", "--out", str(model_path), "--meta-out", str(meta_path),
                "--scheme", "ternary", "--hidden", "16", "--epochs", "2",
                "--samples", "300",
            ]
        )
        assert code == 0
        assert model_path.exists() and meta_path.exists()
        out = capsys.readouterr().out
        assert "quantized (ternary) accuracy" in out

    def test_meta_command(self, tmp_path, capsys):
        model_path = tmp_path / "m.npz"
        main(
            [
                "train", "--out", str(model_path), "--scheme", "binary",
                "--hidden", "8", "--epochs", "1", "--samples", "200",
            ]
        )
        capsys.readouterr()
        meta_path = tmp_path / "meta.json"
        assert main(["meta", "--model", str(model_path), "--out", str(meta_path)]) == 0
        assert meta_path.exists()


@pytest.mark.slow
class TestReport:
    def test_demo_report_checks_and_saves_trace(self, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        code = main(
            [
                "report", "--demo", "--save-trace", str(trace_path), "--check",
                "--hidden", "6", "--batch", "1", "--scheme", "ternary",
            ]
        )
        assert code == 0
        assert trace_path.exists()
        out = capsys.readouterr().out
        assert "measured vs predicted" in out
        assert "conformance: all modeled spans within tolerance" in out
        assert "FAIL" not in out

        # the saved trace re-renders identically through --trace
        assert main(["report", "--trace", str(trace_path), "--check"]) == 0
        out2 = capsys.readouterr().out
        assert "measured vs predicted" in out2

    def test_report_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "abnn2-trace/999"}')
        assert main(["report", "--trace", str(bad)]) == 1
        assert "schema" in capsys.readouterr().err


class TestServePredict:
    @staticmethod
    def _train(tmp_path):
        model_path = tmp_path / "m.npz"
        meta_path = tmp_path / "meta.json"
        assert (
            main(
                [
                    "train", "--out", str(model_path), "--meta-out", str(meta_path),
                    "--scheme", "ternary", "--hidden", "16", "--epochs", "2",
                    "--samples", "300",
                ]
            )
            == 0
        )
        return model_path, meta_path

    @staticmethod
    def _serve(model_path, port, rounds, exit_after, *extra):
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--model", str(model_path),
                "--port", str(port), "--batch", "2", "--seed", "3",
                "--rounds", str(rounds), "--exit-after", str(exit_after), *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    @staticmethod
    def _predict(meta_path, port, seed, *extra):
        return subprocess.run(
            [
                sys.executable, "-m", "repro", "predict", "--meta", str(meta_path),
                "--port", str(port), "--demo", "2", "--seed", str(seed), *extra,
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )

    def test_tcp_roundtrip_subprocesses(self, tmp_path):
        """Full deployment: two OS processes over a real socket."""
        model_path, meta_path = self._train(tmp_path)
        port = _free_port()
        server = self._serve(model_path, port, rounds=1, exit_after=1)
        try:
            client = self._predict(meta_path, port, seed=4)
            assert client.returncode == 0, client.stderr
            assert "predictions:" in client.stdout
            server_out, _ = server.communicate(timeout=60)
            assert "saw only shares" in server_out
        finally:
            if server.poll() is None:
                server.kill()

    def test_server_survives_reconnecting_clients(self, tmp_path):
        """Regression: one server process, two sequential client sessions.

        The pre-serve cmd_serve exited (or wedged) after its first
        client; now the listener stays up and every banked round is
        servable without a restart.
        """
        model_path, meta_path = self._train(tmp_path)
        port = _free_port()
        server = self._serve(model_path, port, rounds=2, exit_after=2)
        try:
            first = self._predict(meta_path, port, seed=4)
            assert first.returncode == 0, first.stderr
            assert "predictions:" in first.stdout
            second = self._predict(meta_path, port, seed=5)
            assert second.returncode == 0, second.stderr
            assert "predictions:" in second.stdout
            server_out, _ = server.communicate(timeout=60)
            assert "served 2 session(s), 2 prediction(s)" in server_out
            assert "saw only shares" in server_out
        finally:
            if server.poll() is None:
                server.kill()
