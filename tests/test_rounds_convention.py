"""Round-counting convention audit.

One repo-wide convention — a **round** begins whenever the sending party
flips, and the first message opens round 1 — is counted independently by
three components:

* the shared :class:`~repro.net.channel.ChannelStats` of an in-memory
  channel pair (global view of the sender sequence),
* each :class:`~repro.net.tcp.TcpChannel` endpoint's own stats (peer
  traffic attributed on recv),
* :class:`~repro.perf.trace.Tracer` (flips of *this party's* send/recv
  stream — equivalent, since a flip of the global sender is exactly a
  flip between this party sending and receiving).

This module drives identical scripted message sequences through all
three and asserts they agree, then ties the figure to
:meth:`~repro.net.netsim.NetworkModel.latency_time_s`, which charges one
RTT per round.
"""

import socket
import threading

import pytest

from repro.net import tcp
from repro.net.channel import make_channel_pair
from repro.net.netsim import LAN, WAN_SECUREML
from repro.perf.trace import Tracer

# Each script is the sequence of sending parties (0 = server, 1 = client).
# Expected rounds = number of sender flips, counting the first message.
SCRIPTS = [
    ([0], 1),
    ([0, 0, 0], 1),
    ([0, 1], 2),
    ([1, 0], 2),
    ([0, 0, 1, 1, 0], 3),
    ([1, 0, 1, 0], 4),
    ([0, 1, 0, 1, 1, 0, 0, 1], 6),
]


def _drive(server, client, script):
    """Send/recv a scripted sequence, fully draining every message."""
    ends = {0: server, 1: client}
    for sender in script:
        ends[sender].send(b"x" * 8)
        ends[1 - sender].recv()


def _attach_tracers(server, client):
    tracers = (Tracer("server"), Tracer("client"))
    server.tracer, client.tracer = tracers
    return tracers


class TestInMemoryChannel:
    @pytest.mark.parametrize("script,expected", SCRIPTS)
    def test_stats_and_tracers_agree(self, script, expected):
        server, client = make_channel_pair()
        tracers = _attach_tracers(server, client)
        _drive(server, client, script)
        assert server.stats is client.stats  # shared counter by design
        assert server.stats.rounds == expected
        for tracer in tracers:
            assert tracer.root.totals()["rounds"] == expected


def _tcp_pair(timeout_s=10.0):
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    box = {}

    def _serve():
        box["server"] = tcp.listen(port, timeout_s=timeout_s)

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = tcp.connect("127.0.0.1", port, timeout_s=timeout_s)
    thread.join(timeout=timeout_s)
    return box["server"], client


class TestTcpChannel:
    @pytest.mark.parametrize("script,expected", SCRIPTS)
    def test_both_endpoints_and_tracers_agree(self, script, expected):
        server, client = _tcp_pair()
        try:
            tracers = _attach_tracers(server, client)
            _drive(server, client, script)
            # endpoints keep separate stats but must reach the same count
            assert server.stats.rounds == expected
            assert client.stats.rounds == expected
            for tracer in tracers:
                assert tracer.root.totals()["rounds"] == expected
        finally:
            server.close()
            client.close()


class TestNetsimTieIn:
    @pytest.mark.parametrize("script,expected", SCRIPTS)
    def test_latency_charges_one_rtt_per_round(self, script, expected):
        server, client = make_channel_pair()
        _drive(server, client, script)
        rounds = server.stats.rounds
        for net in (LAN, WAN_SECUREML):
            assert net.latency_time_s(rounds) == pytest.approx(rounds * net.rtt_s)
            assert net.estimate_s(0.0, 0, rounds) == pytest.approx(
                rounds * net.rtt_s
            )
