"""Wire-format equality: vectorized OT extension vs the seed per-column loop.

The word-packed engines promise *byte-identical* transcripts: with fixed
seeds, every message (and therefore every ciphertext, pad, and
``ChannelStats`` counter) must match the original implementation, which
:mod:`repro.crypto.otext_reference` preserves verbatim.  Batch sizes are
chosen to hit the ragged paths (``m % 8 != 0``, ``m % 64 != 0``) and
multi-batch sessions to prove the PRG stream accounting carries across
extension calls.
"""

import numpy as np
import pytest

from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.crypto.kk13 import Kk13Receiver, Kk13Sender
from repro.crypto.otext_reference import (
    ReferenceKk13Receiver,
    ReferenceKk13Sender,
    ReferenceOtExtReceiver,
    ReferenceOtExtSender,
)
from repro.net import run_protocol
from repro.utils import serialization
from repro.utils.ring import Ring


class _Recorder:
    """Channel wrapper that logs every encoded outgoing message."""

    def __init__(self, inner):
        self._inner = inner
        self.sent = []

    def send(self, obj):
        self.sent.append(serialization.encode(obj))
        self._inner.send(obj)

    def recv(self):
        return self._inner.recv()


def _run_recorded(server_fn, client_fn):
    """Run a protocol, returning results, transcripts, and stats."""
    log = {}

    def sfn(ch):
        rec = _Recorder(ch)
        log["server"] = rec
        return server_fn(rec)

    def cfn(ch):
        rec = _Recorder(ch)
        log["client"] = rec
        return client_fn(rec)

    result = run_protocol(sfn, cfn)
    return result, log["server"].sent, log["client"].sent


def _assert_same_run(run_a, run_b):
    """Both runs must agree on every message, both outputs, and stats."""
    result_a, server_a, client_a = run_a
    result_b, server_b, client_b = run_b
    assert len(server_a) == len(server_b)
    assert len(client_a) == len(client_b)
    for i, (msg_a, msg_b) in enumerate(zip(server_a, server_b)):
        assert msg_a == msg_b, f"server message {i} differs"
    for i, (msg_a, msg_b) in enumerate(zip(client_a, client_b)):
        assert msg_a == msg_b, f"client message {i} differs"
    np.testing.assert_array_equal(np.asarray(result_a.server), np.asarray(result_b.server))
    np.testing.assert_array_equal(np.asarray(result_a.client), np.asarray(result_b.client))
    stats_a, stats_b = result_a.stats, result_b.stats
    assert stats_a.bytes_sent == stats_b.bytes_sent
    assert stats_a.framed_bytes_sent == stats_b.framed_bytes_sent
    assert stats_a.messages_sent == stats_b.messages_sent
    assert stats_a.rounds == stats_b.rounds


# odd sizes on purpose: 300 and 77 are not multiples of 8, 64 is not a
# multiple of 128 — together they cover the ragged wire-codec paths and
# cross-batch PRG stream continuation.
IKNP_BATCHES = [300, 77, 64]
KK13_BATCHES = [150, 100, 64]


class TestIknpTranscripts:
    def test_chosen_matches_seed_implementation(self, test_group, rng):
        msgs = [
            rng.integers(0, 1 << 63, size=(m, 2, 3), dtype=np.uint64)
            for m in IKNP_BATCHES
        ]
        choices = [rng.integers(0, 2, size=m, dtype=np.uint8) for m in IKNP_BATCHES]

        def make(sender_cls, receiver_cls):
            def server_fn(ch):
                sender = sender_cls(ch, group=test_group, seed=11)
                for batch in msgs:
                    sender.send_chosen(batch)
                return np.zeros(1)

            def client_fn(ch):
                receiver = receiver_cls(ch, group=test_group, seed=22)
                return np.concatenate(
                    [receiver.recv_chosen(c, 3) for c in choices], axis=0
                )

            return server_fn, client_fn

        fast = _run_recorded(*make(OtExtSender, OtExtReceiver))
        seed = _run_recorded(*make(ReferenceOtExtSender, ReferenceOtExtReceiver))
        _assert_same_run(fast, seed)

    @pytest.mark.parametrize("bits", [17, 32, 64])
    def test_correlated_matches_seed_implementation(self, bits, test_group, rng):
        ring = Ring(bits)
        deltas = [ring.sample(rng, m) for m in IKNP_BATCHES]
        choices = [rng.integers(0, 2, size=m, dtype=np.uint8) for m in IKNP_BATCHES]

        def make(sender_cls, receiver_cls):
            def server_fn(ch):
                sender = sender_cls(ch, group=test_group, seed=5)
                return np.concatenate(
                    [sender.send_correlated(d, ring) for d in deltas]
                )

            def client_fn(ch):
                receiver = receiver_cls(ch, group=test_group, seed=6)
                return np.concatenate(
                    [receiver.recv_correlated(c, None, ring) for c in choices]
                )

            return server_fn, client_fn

        fast = _run_recorded(*make(OtExtSender, OtExtReceiver))
        seed = _run_recorded(*make(ReferenceOtExtSender, ReferenceOtExtReceiver))
        _assert_same_run(fast, seed)


class TestKk13Transcripts:
    @pytest.mark.parametrize("n_values", [3, 4, 16])
    def test_pads_match_seed_implementation(self, n_values, test_group, rng):
        choices = [
            rng.integers(0, n_values, size=m) for m in KK13_BATCHES
        ]

        def make(sender_cls, receiver_cls):
            def server_fn(ch):
                sender = sender_cls(ch, n_values, group=test_group, seed=7)
                return np.concatenate(
                    [sender.pads(m, 2) for m in KK13_BATCHES], axis=0
                )

            def client_fn(ch):
                receiver = receiver_cls(ch, n_values, group=test_group, seed=8)
                return np.concatenate(
                    [receiver.pads(c, 2) for c in choices], axis=0
                )

            return server_fn, client_fn

        fast = _run_recorded(*make(Kk13Sender, Kk13Receiver))
        seed = _run_recorded(*make(ReferenceKk13Sender, ReferenceKk13Receiver))
        _assert_same_run(fast, seed)

    def test_chosen_matches_seed_implementation(self, test_group, rng):
        n_values = 4
        msgs = [
            rng.integers(0, 1 << 63, size=(m, n_values, 2), dtype=np.uint64)
            for m in KK13_BATCHES
        ]
        choices = [rng.integers(0, n_values, size=m) for m in KK13_BATCHES]

        def make(sender_cls, receiver_cls):
            def server_fn(ch):
                sender = sender_cls(ch, n_values, group=test_group, seed=9)
                for batch in msgs:
                    sender.send_chosen(batch)
                return np.zeros(1)

            def client_fn(ch):
                receiver = receiver_cls(ch, n_values, group=test_group, seed=10)
                return np.concatenate(
                    [receiver.recv_chosen(c, 2) for c in choices], axis=0
                )

            return server_fn, client_fn

        fast = _run_recorded(*make(Kk13Sender, Kk13Receiver))
        seed = _run_recorded(*make(ReferenceKk13Sender, ReferenceKk13Receiver))
        _assert_same_run(fast, seed)


class _BlobMangler:
    """Channel wrapper that resizes the first large U-matrix blob."""

    def __init__(self, inner, delta: int):
        self._inner = inner
        self._delta = delta
        self._done = False

    def send(self, obj):
        self._inner.send(obj)

    def recv(self):
        obj = self._inner.recv()
        if not self._done and isinstance(obj, bytes) and len(obj) > 500:
            self._done = True
            obj = obj[: self._delta] if self._delta < 0 else obj + b"\x00" * self._delta
        return obj


class TestBlobValidation:
    """Truncated/oversized U blobs must raise ProtocolError, not numpy errors."""

    @pytest.mark.parametrize("delta", [-7, 5])
    def test_iknp_sender_rejects_bad_blob_size(self, delta, test_group, rng):
        from repro.errors import ProtocolError

        m = 100
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 1), dtype=np.uint64)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)

        def server_fn(ch):
            OtExtSender(_BlobMangler(ch, delta), group=test_group, seed=1).send_chosen(msgs)

        def client_fn(ch):
            return OtExtReceiver(ch, group=test_group, seed=2).recv_chosen(choices, 1)

        with pytest.raises(ProtocolError, match="bytes"):
            run_protocol(server_fn, client_fn, timeout_s=10)

    def test_kk13_sender_rejects_truncated_blob(self, test_group, rng):
        from repro.errors import ProtocolError

        m, n_values = 60, 4
        choices = rng.integers(0, n_values, size=m)

        def server_fn(ch):
            return Kk13Sender(_BlobMangler(ch, -3), n_values, group=test_group, seed=1).pads(
                m, 1
            )

        def client_fn(ch):
            return Kk13Receiver(ch, n_values, group=test_group, seed=2).pads(choices, 1)

        with pytest.raises(ProtocolError, match="bytes"):
            run_protocol(server_fn, client_fn, timeout_s=10)


class TestTripletTranscripts:
    """Full Algorithm-1 runs byte-match with the seed OT engines swapped in.

    Mixed-radix schemes open one KK13 session per distinct N, and a
    non-power-of-two m exercises ragged packing inside every session —
    the transcripts must still be identical message-for-message.
    """

    @pytest.mark.parametrize("scheme_name", ["8(3,3,2)", "3(2,1)"])
    @pytest.mark.parametrize("o", [1, 3])
    def test_mixed_radix_triplets_match_seed_engines(
        self, scheme_name, o, test_group, rng, monkeypatch
    ):
        import repro.core.triplets as triplets_mod
        from repro.core.triplets import (
            TripletConfig,
            generate_triplets_client,
            generate_triplets_server,
        )
        from repro.quant.fragments import TABLE2_SCHEMES

        scheme = TABLE2_SCHEMES[scheme_name]
        ring = Ring(32)
        m, n = 13, 7  # deliberately not multiples of 8
        lo, hi = scheme.weight_range
        w = rng.integers(lo, hi + 1, size=(m, n))
        r = ring.sample(rng, (n, o))
        config = TripletConfig(
            ring=ring, scheme=scheme, m=m, n=n, o=o, group=test_group
        )

        def run_once():
            return _run_recorded(
                lambda ch: generate_triplets_server(ch, w, config, seed=31),
                lambda ch: generate_triplets_client(
                    ch, r, config, np.random.default_rng(32), seed=33
                ),
            )

        fast = run_once()
        monkeypatch.setattr(triplets_mod, "Kk13Sender", ReferenceKk13Sender)
        monkeypatch.setattr(triplets_mod, "Kk13Receiver", ReferenceKk13Receiver)
        seed_run = run_once()
        _assert_same_run(fast, seed_run)
        # and the triplet identity holds on the reference run too
        u, v = seed_run[0].server, seed_run[0].client
        assert (ring.add(u, v) == ring.matmul(ring.reduce(w), r)).all()


class TestInterop:
    """Wire identity implies the engines interoperate; check it directly."""

    def test_vectorized_sender_reference_receiver(self, test_group, rng):
        m, n_values = 90, 4
        choices = rng.integers(0, n_values, size=m)
        result = run_protocol(
            lambda ch: Kk13Sender(ch, n_values, group=test_group, seed=1).pads(m, 2),
            lambda ch: ReferenceKk13Receiver(ch, n_values, group=test_group, seed=2).pads(
                choices, 2
            ),
        )
        assert (result.client == result.server[np.arange(m), choices]).all()

    def test_reference_sender_vectorized_receiver(self, test_group, rng):
        m = 130
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 1), dtype=np.uint64)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        result = run_protocol(
            lambda ch: ReferenceOtExtSender(ch, group=test_group, seed=3).send_chosen(msgs),
            lambda ch: OtExtReceiver(ch, group=test_group, seed=4).recv_chosen(choices, 1),
        )
        assert (result.client == msgs[np.arange(m), choices.astype(int)]).all()
