"""MODP groups and the Chou-Orlandi style base OT."""

import numpy as np
import pytest

from repro.crypto import baseot
from repro.crypto.group import MODP_1536, MODP_2048, MODP_TEST
from repro.errors import CryptoError
from repro.net import run_protocol


class TestGroups:
    @pytest.mark.parametrize("group", [MODP_TEST, MODP_1536, MODP_2048])
    def test_generator_in_group(self, group):
        assert 1 < group.g < group.p

    def test_test_group_is_safe_prime_subgroup(self):
        # g = 2 must generate the order-q subgroup: 2^q = 1 mod p.
        q = MODP_TEST.order
        assert pow(2, q, MODP_TEST.p) == 1
        assert pow(2, 2, MODP_TEST.p) != 1

    def test_secure_flags(self):
        assert not MODP_TEST.secure
        assert MODP_1536.secure and MODP_2048.secure

    def test_power_identity(self):
        a = MODP_TEST.sample_exponent()
        b = MODP_TEST.sample_exponent()
        left = MODP_TEST.power(MODP_TEST.gpow(a), b)
        right = MODP_TEST.power(MODP_TEST.gpow(b), a)
        assert left == right  # DH agreement

    def test_invert(self):
        x = MODP_TEST.gpow(12345)
        assert MODP_TEST.mul(x, MODP_TEST.invert(x)) == 1

    def test_invert_zero_rejected(self):
        with pytest.raises(CryptoError):
            MODP_TEST.invert(0)

    def test_encode_decode(self):
        x = MODP_TEST.gpow(99)
        assert MODP_TEST.decode(MODP_TEST.encode(x)) == x

    def test_decode_range_check(self):
        with pytest.raises(CryptoError):
            MODP_TEST.decode(b"\x00" * MODP_TEST.element_bytes)

    def test_sample_exponent_nonzero(self):
        draws = {MODP_TEST.sample_exponent() for _ in range(20)}
        assert 0 not in draws
        assert len(draws) > 1


class TestBaseOt:
    def test_chosen_message_correctness(self, test_group):
        pairs = [(bytes([i] * 16), bytes([200 - i] * 16)) for i in range(10)]
        choices = [i % 2 for i in range(10)]
        result = run_protocol(
            lambda ch: baseot.send(ch, pairs, test_group),
            lambda ch: baseot.receive(ch, choices, 16, test_group),
        )
        expected = [pairs[i][c] for i, c in enumerate(choices)]
        assert result.client == expected

    def test_random_ot_key_agreement(self, test_group):
        choices = [1, 0, 1, 1, 0]
        result = run_protocol(
            lambda ch: baseot.random_send(ch, 5, test_group),
            lambda ch: baseot.random_receive(ch, choices, test_group),
        )
        sender_keys, receiver_keys = result.server, result.client
        for i, c in enumerate(choices):
            assert receiver_keys[i] == sender_keys[i][c]
            assert receiver_keys[i] != sender_keys[i][1 - c]

    def test_variable_length_messages(self, test_group):
        pairs = [(b"A" * 40, b"B" * 40)]
        result = run_protocol(
            lambda ch: baseot.send(ch, pairs, test_group),
            lambda ch: baseot.receive(ch, [1], 40, test_group),
        )
        assert result.client == [b"B" * 40]

    def test_inconsistent_message_lengths_rejected(self, test_group):
        server, _ = __import__("repro.net.channel", fromlist=["make_channel_pair"]).make_channel_pair()
        with pytest.raises(CryptoError):
            baseot.send(server, [(b"ab", b"abc")], test_group)

    def test_invalid_choice_bits(self, test_group):
        server, _ = __import__("repro.net.channel", fromlist=["make_channel_pair"]).make_channel_pair()
        with pytest.raises(CryptoError):
            baseot.random_receive(server, [0, 2], test_group)

    def test_zero_count_rejected(self, test_group):
        server, _ = __import__("repro.net.channel", fromlist=["make_channel_pair"]).make_channel_pair()
        with pytest.raises(CryptoError):
            baseot.random_send(server, 0, test_group)

    def test_deterministic_with_seeded_randbelow(self, test_group, rng):
        from repro.utils.rng import randbelow_from_rng

        def draw(bound):
            return randbelow_from_rng(rng, bound)

        result = run_protocol(
            lambda ch: baseot.random_send(ch, 3, test_group, randbelow=draw),
            lambda ch: baseot.random_receive(ch, [0, 1, 0], test_group),
        )
        for i, c in enumerate([0, 1, 0]):
            assert result.client[i] == result.server[i][c]
