"""IKNP 1-out-of-2 OT extension: chosen, correlated, session reuse."""

import numpy as np
import pytest

from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.errors import CryptoError
from repro.net import run_protocol
from repro.utils.ring import Ring


def _run_chosen(messages, choices, group, width):
    return run_protocol(
        lambda ch: OtExtSender(ch, group=group, seed=1).send_chosen(messages),
        lambda ch: OtExtReceiver(ch, group=group, seed=2).recv_chosen(choices, width),
    )


class TestChosenMessage:
    def test_correctness(self, test_group, rng):
        m = 300
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 2), dtype=np.uint64)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        result = _run_chosen(msgs, choices, test_group, 2)
        assert (result.client == msgs[np.arange(m), choices.astype(int)]).all()

    def test_receiver_does_not_learn_other_message(self, test_group, rng):
        # The unchosen message pads must not equal the received values.
        m = 50
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 1), dtype=np.uint64)
        choices = np.zeros(m, dtype=np.uint8)
        result = _run_chosen(msgs, choices, test_group, 1)
        assert (result.client[:, 0] == msgs[:, 0, 0]).all()
        assert (result.client[:, 0] != msgs[:, 1, 0]).all()

    def test_wide_messages(self, test_group, rng):
        m = 20
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 7), dtype=np.uint64)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        result = _run_chosen(msgs, choices, test_group, 7)
        assert (result.client == msgs[np.arange(m), choices.astype(int)]).all()

    def test_bad_message_shape(self, test_group):
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        sender = OtExtSender(chan, group=test_group)
        with pytest.raises(CryptoError):
            sender.send_chosen(np.zeros((4, 3, 1), dtype=np.uint64))

    def test_bad_choice_values(self, test_group):
        from repro.net.channel import make_channel_pair

        server, client = make_channel_pair(timeout_s=5)

        def client_fn(ch):
            return OtExtReceiver(ch, group=test_group, seed=2).recv_chosen(
                np.array([0, 2], dtype=np.uint8), 1
            )

        def server_fn(ch):
            OtExtSender(ch, group=test_group, seed=1).send_chosen(
                np.zeros((2, 2, 1), dtype=np.uint64)
            )

        with pytest.raises(CryptoError):
            run_protocol(server_fn, client_fn, timeout_s=5)


class TestCorrelated:
    @pytest.mark.parametrize("bits", [16, 32, 64])
    def test_correlation_holds(self, bits, test_group, rng):
        ring = Ring(bits)
        m = 200
        deltas = ring.sample(rng, m)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        result = run_protocol(
            lambda ch: OtExtSender(ch, group=test_group, seed=1).send_correlated(deltas, ring),
            lambda ch: OtExtReceiver(ch, group=test_group, seed=2).recv_correlated(
                choices, None, ring
            ),
        )
        expect = ring.add(result.server, ring.mul(choices.astype(np.uint64), deltas))
        assert (result.client == expect).all()

    def test_multi_lane(self, test_group, rng):
        ring = Ring(32)
        m, lanes = 60, 5
        deltas = ring.sample(rng, (m, lanes))
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        result = run_protocol(
            lambda ch: OtExtSender(ch, group=test_group, seed=1).send_correlated(deltas, ring),
            lambda ch: OtExtReceiver(ch, group=test_group, seed=2).recv_correlated(
                choices, lanes, ring
            ),
        )
        expect = ring.add(result.server, ring.mul(choices.astype(np.uint64)[:, None], deltas))
        assert (result.client == expect).all()

    def test_sub64_packing_saves_bytes(self, test_group, rng):
        ring16, ring64 = Ring(16), Ring(64)
        m = 512
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)

        def run(ring):
            deltas = ring.sample(rng, m)
            return run_protocol(
                lambda ch: OtExtSender(ch, group=test_group, seed=1).send_correlated(deltas, ring),
                lambda ch: OtExtReceiver(ch, group=test_group, seed=2).recv_correlated(
                    choices, None, ring
                ),
            ).total_bytes

        assert run(ring16) < run(ring64)


class TestSessions:
    def test_multiple_batches_one_setup(self, test_group, rng):
        ring = Ring(32)
        m = 100
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 1), dtype=np.uint64)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        deltas = ring.sample(rng, m)

        def server_fn(ch):
            sender = OtExtSender(ch, group=test_group, seed=1)
            sender.send_chosen(msgs)
            return sender.send_correlated(deltas, ring)

        def client_fn(ch):
            receiver = OtExtReceiver(ch, group=test_group, seed=2)
            got = receiver.recv_chosen(choices, 1)
            cot = receiver.recv_correlated(choices, None, ring)
            return got, cot

        result = run_protocol(server_fn, client_fn)
        got, cot = result.client
        assert (got == msgs[np.arange(m), choices.astype(int)]).all()
        expect = ring.add(result.server, ring.mul(choices.astype(np.uint64), deltas))
        assert (cot == expect).all()

    def test_kappa_must_be_word_aligned(self, test_group):
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        with pytest.raises(CryptoError):
            OtExtSender(chan, kappa=100, group=test_group)
