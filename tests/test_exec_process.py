"""Process executor: cross-executor determinism, fault isolation, fast RO.

The contract under test (docs/PROTOCOLS.md §13): ``executor`` is a local
knob like ``workers`` — sequential, thread-pool and process-pool
execution must produce byte-identical shares and identical per-stream
transcript totals, over in-memory channels and TCP, traced and untraced,
and with either mask-compatible RO backend (``siphash`` / ``fast``).  A
worker process dying mid-round must fail that round cleanly with
``ProtocolError`` and leave no orphaned processes.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time

import numpy as np
import pytest

from repro.core.triplets import TripletConfig
from repro.crypto.hash_ro import get_ro, sha256_ro, siphash_ro
from repro.errors import ChannelError, ConfigError, CryptoError, ProtocolError
from repro.exec import (
    ShardPlan,
    ShmBundle,
    parallel_triplets_client,
    parallel_triplets_server,
    run_evaluator_sharded,
    run_garbler_sharded,
    run_in_process,
    run_sharded,
)
from repro.gc.builder import relu_template
from repro.net.channel import make_channel_pair
from repro.net.mux import ChannelMux
from repro.perf.trace import Tracer
from repro.quant.fragments import FragmentScheme
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring

from tests.test_exec_parallel import _both, _no_thread_leak, _tcp_pair


def _children_alive():
    return [p for p in multiprocessing.active_children() if p.is_alive()]


class _no_process_leak:
    """Assert the with-block leaves no live child processes behind."""

    def __enter__(self):
        self._before = set(id(p) for p in _children_alive())
        return self

    def __exit__(self, exc_type, *exc):
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            leaked = [p for p in _children_alive() if id(p) not in self._before]
            if not leaked:
                return False
            time.sleep(0.05)
        raise AssertionError(f"leaked processes: {[p.name for p in leaked]}")


def _triplet_config(test_group, ro=siphash_ro, m=12, n=10, o=4):
    return TripletConfig(
        ring=Ring(16), scheme=FragmentScheme.from_bits((2, 2)),
        m=m, n=n, o=o, group=test_group, ro=ro,
    )


def _triplet_inputs(config, seed=5):
    rng = np.random.default_rng(seed)
    lo, hi = config.scheme.weight_range
    w = rng.integers(lo, hi + 1, size=(config.m, config.n), dtype=np.int64)
    r = config.ring.sample(rng, (config.n, config.o))
    return w, r


def _run_parallel(config, w, r, plan, channels, trace=False):
    stats = {"server": {}, "client": {}}
    if trace:
        channels[0].tracer = Tracer("server")
        channels[1].tracer = Tracer("client")
    u, v = _both(
        lambda chan: parallel_triplets_server(
            chan, w, config, plan, seed=21, stats_out=stats["server"]
        ),
        lambda chan: parallel_triplets_client(
            chan, r, config, plan, seed=22, stats_out=stats["client"]
        ),
        channels,
    )
    return u, v, stats


# --------------------------------------------------------------------- #
# cross-executor determinism matrix
# --------------------------------------------------------------------- #
class TestCrossExecutorDeterminism:
    @pytest.mark.parametrize("transport", ["memory", "tcp"])
    @pytest.mark.parametrize("trace", [False, True])
    def test_matrix_triplets(self, test_group, transport, trace):
        """sequential / thread / process: identical shares + transcripts."""
        config = _triplet_config(test_group, m=8, n=6, o=2)
        w, r = _triplet_inputs(config)
        cases = {
            "sequential": ShardPlan(shards=3, workers=1, chunk_ots=64),
            "thread": ShardPlan(shards=3, workers=3, chunk_ots=64),
            "process": ShardPlan(
                shards=3, workers=3, chunk_ots=64, executor="process"
            ),
        }
        results = {}
        for name, plan in cases.items():
            if transport == "tcp":
                channels = _tcp_pair()
            else:
                channels = make_channel_pair(timeout_s=60.0)
            try:
                with _no_thread_leak(), _no_process_leak():
                    results[name] = _run_parallel(
                        config, w, r, plan, channels, trace=trace
                    )
            finally:
                if transport == "tcp":
                    for chan in channels:
                        chan.close()
        u0, v0, stats0 = results["sequential"]
        expected = config.ring.matmul(config.ring.reduce(w), r)
        assert (config.ring.add(u0, v0) == expected).all()
        for name in ("thread", "process"):
            u, v, stats = results[name]
            assert (u == u0).all() and (v == v0).all(), name
            for side in ("server", "client"):
                assert (
                    stats[side]["stream_totals"] == stats0[side]["stream_totals"]
                ), (name, side)
        assert results["process"][2]["server"]["executor"] == "process"

    def test_traced_shard_spans_match_thread_executor(self, test_group):
        """Process-mode children ship their span trees back to the parent."""
        config = _triplet_config(test_group, m=8, n=6, o=2)
        w, r = _triplet_inputs(config)

        def shard_io(executor):
            channels = make_channel_pair(timeout_s=60.0)
            plan = ShardPlan(shards=2, workers=2, chunk_ots=64, executor=executor)
            _run_parallel(config, w, r, plan, channels, trace=True)
            root = channels[0].tracer.root
            engine = next(s for s in root.children if s.name == "parallel-offline")
            assert engine.attrs["executor"] == executor
            return {
                s.name: (s.totals()["sent_bytes"], s.totals()["recv_bytes"])
                for s in engine.children if s.name.startswith("shard")
            }

        io_thread = shard_io("thread")
        io_process = shard_io("process")
        assert io_thread == io_process
        assert set(io_thread) == {"shard0", "shard1"}

    def test_mixed_executors_across_parties(self, test_group):
        """Executor kind is local: thread server vs process client agrees."""
        config = _triplet_config(test_group, m=6, n=5, o=2)
        w, r = _triplet_inputs(config)
        base = ShardPlan(shards=2, workers=2, chunk_ots=64)
        stats = {"server": {}, "client": {}}
        u, v = _both(
            lambda chan: parallel_triplets_server(
                chan, w, config, base, seed=21, stats_out=stats["server"]
            ),
            lambda chan: parallel_triplets_client(
                chan, r, config,
                ShardPlan(shards=2, workers=2, chunk_ots=64, executor="process"),
                seed=22, stats_out=stats["client"],
            ),
            make_channel_pair(timeout_s=60.0),
        )
        expected = config.ring.matmul(config.ring.reduce(w), r)
        assert (config.ring.add(u, v) == expected).all()

    def test_gc_process_executor_matches(self, test_group, rng):
        ring = Ring(16)
        circ = relu_template(16)
        n = 13  # not divisible by shards: uneven instance blocks
        y, y1, z1 = ring.sample(rng, n), ring.sample(rng, n), ring.sample(rng, n)
        y0 = ring.sub(y, y1)
        g_bits = np.concatenate(
            [int_to_bits(y1, 16), int_to_bits(z1, 16)], axis=1
        ).T.copy()
        e_bits = int_to_bits(y0, 16).T.copy()

        outs = {}
        for executor in ("thread", "process"):
            plan = ShardPlan(shards=3, workers=3, executor=executor)
            with _no_thread_leak(), _no_process_leak():
                _, outs[executor] = _both(
                    lambda chan: run_garbler_sharded(
                        chan, circ, g_bits, n, plan, seed=31, group=test_group
                    ),
                    lambda chan: run_evaluator_sharded(
                        chan, circ, e_bits, n, plan, seed=32, group=test_group
                    ),
                    tuple(reversed(make_channel_pair(timeout_s=60.0))),
                )
        got = ring.reduce(bits_to_int(outs["thread"].T))
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (got == ring.sub(relu, z1)).all()
        assert (outs["thread"] == outs["process"]).all()

    def test_executor_validated(self):
        with pytest.raises(ConfigError, match="executor"):
            ShardPlan(executor="gpu")


# --------------------------------------------------------------------- #
# RO backend equivalence: fast == siphash, byte for byte
# --------------------------------------------------------------------- #
class TestFastRoBackend:
    @pytest.mark.parametrize("shape,width", [
        ((7, 3), 1), ((5, 4, 5), 16), ((1, 1), 4), ((33, 2, 6), 3),
    ])
    def test_fast_matches_siphash(self, shape, width):
        rows = np.random.default_rng(9).integers(
            0, 1 << 63, size=shape, dtype=np.uint64
        )
        fast_ro = get_ro("fast")
        for domain in (0, 1, 77):
            assert np.array_equal(
                fast_ro.mask(rows, width, domain),
                siphash_ro.mask(rows, width, domain),
            )

    def test_numpy_fallback_matches_native(self):
        from repro.crypto import fastro

        rows = np.random.default_rng(3).integers(
            0, 1 << 63, size=(19, 5), dtype=np.uint64
        )
        want = fastro._numpy_expand(
            np.ascontiguousarray(rows), 8, 2
        )
        assert np.array_equal(fastro.prf_expand_fast(rows, 8, 2), want)

    def test_registry_resolves_and_rejects(self):
        assert get_ro("sha256") is sha256_ro
        assert get_ro("siphash") is siphash_ro
        assert get_ro("fast").name == "siphash24-fast"
        assert get_ro("default") is siphash_ro
        with pytest.raises(CryptoError, match="unknown random-oracle"):
            get_ro("md5")

    def test_protocol_identical_across_ro_backends(self, test_group):
        """siphash one side, fast the other: same shares, same transcripts."""
        w, r = _triplet_inputs(_triplet_config(test_group, m=6, n=5, o=2))
        results = {}
        for name in ("siphash", "fast"):
            config = _triplet_config(test_group, ro=get_ro(name), m=6, n=5, o=2)
            plan = ShardPlan(shards=2, workers=2, chunk_ots=64)
            results[name] = _run_parallel(
                config, w, r, plan, make_channel_pair(timeout_s=60.0)
            )
        u_a, v_a, stats_a = results["siphash"]
        u_b, v_b, stats_b = results["fast"]
        assert (u_a == u_b).all() and (v_a == v_b).all()
        for side in ("server", "client"):
            assert stats_a[side]["stream_totals"] == stats_b[side]["stream_totals"]

    def test_sha256_backend_still_reference(self):
        """The batched sha256 backend matches the per-row reference loop."""
        import hashlib

        rows = np.random.default_rng(4).integers(
            0, 1 << 63, size=(6, 3), dtype=np.uint64
        )
        out_words, domain = 5, 9
        got = sha256_ro.mask(rows, out_words, domain)
        for i, row in enumerate(rows):
            stream = b""
            counter = 0
            while len(stream) < out_words * 8:
                h = hashlib.sha256()
                h.update(domain.to_bytes(8, "little"))
                h.update(counter.to_bytes(8, "little"))
                h.update(row.tobytes())
                stream += h.digest()
                counter += 1
            want = np.frombuffer(stream[: out_words * 8], dtype=np.uint64)
            assert np.array_equal(got[i], want)


# --------------------------------------------------------------------- #
# fault injection: dead worker processes
# --------------------------------------------------------------------- #
class TestWorkerDeath:
    def test_killed_worker_fails_cleanly_no_orphans(self, test_group):
        """SIGKILL one shard's worker: ProtocolError, no orphan processes."""
        config = _triplet_config(test_group, m=10, n=8, o=2)
        w, r = _triplet_inputs(config)
        plan = ShardPlan(shards=3, workers=3, chunk_ots=32, executor="process")
        errors = {}

        def killer():
            # Kill the first abnn2 shard worker that appears.
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                victims = [
                    p for p in multiprocessing.active_children()
                    if p.name.startswith("abnn2-shard") and p.pid
                ]
                if victims:
                    os.kill(victims[0].pid, signal.SIGKILL)
                    return
                time.sleep(0.005)

        def server(chan):
            try:
                parallel_triplets_server(chan, w, config, plan, seed=21)
            except BaseException as exc:  # noqa: BLE001
                errors["server"] = exc

        def client(chan):
            try:
                parallel_triplets_client(chan, r, config, plan, seed=22)
            except BaseException as exc:  # noqa: BLE001
                errors["client"] = exc

        with _no_thread_leak(), _no_process_leak():
            channels = make_channel_pair(timeout_s=8.0)
            threads = [
                threading.Thread(target=server, args=(channels[0],), daemon=True),
                threading.Thread(target=client, args=(channels[1],), daemon=True),
                threading.Thread(target=killer, daemon=True),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=90.0)
            assert not any(t.is_alive() for t in threads), "party thread hung"
        # Both parties fail: the killed side with ProtocolError naming the
        # shard, the peer with a protocol/channel failure (its streams die).
        assert errors, "no party observed the kill"
        kinds = {type(e) for e in errors.values()}
        assert kinds <= {ProtocolError, ChannelError}, errors
        assert any(
            isinstance(e, ProtocolError) and "worker process died" in str(e)
            for e in errors.values()
        ), errors

    def test_worker_exception_reraised_as_protocol_error(self):
        def boom(chan, payload):
            raise ValueError(f"bad payload {payload}")

        with _no_process_leak(), pytest.raises(
            ProtocolError, match="ValueError: bad payload 7"
        ):
            run_in_process(boom, 7)


# --------------------------------------------------------------------- #
# pool cancellation semantics (satellite)
# --------------------------------------------------------------------- #
class TestPoolCancellation:
    def test_error_drains_queue_and_attaches_index(self):
        started = []
        gate = threading.Event()

        def make(idx):
            def task():
                started.append(idx)
                if idx == 0:
                    gate.wait(timeout=5.0)
                    raise ValueError("shard exploded")
                if idx == 1:
                    # Let task 0 fail while this one is still in flight.
                    gate.set()
                    time.sleep(0.2)
                return idx

            return task

        with _no_thread_leak(), pytest.raises(ValueError, match="shard exploded") as ei:
            run_sharded([make(i) for i in range(8)], 2)
        # The shard index rides on the exception as a note.
        assert any("shard task 0" in note for note in ei.value.__notes__)
        # Tasks queued behind the failure never started: the queue was
        # drained the moment task 0 raised, while task 1 was in flight.
        assert set(started) <= {0, 1, 2}

    def test_on_error_hook_fires_once_with_original_exception(self):
        seen = []

        def boom():
            raise RuntimeError("pow")

        with pytest.raises(RuntimeError, match="pow"):
            run_sharded([boom, lambda: 1], 2, on_error=seen.append)
        assert len(seen) == 1 and str(seen[0]) == "pow"
        # Sequential path fires the hook too.
        seen.clear()
        with pytest.raises(RuntimeError, match="pow"):
            run_sharded([boom], 1, on_error=seen.append)
        assert len(seen) == 1

    def test_engine_aborts_mux_so_siblings_fail_fast(self):
        """A poisoned mux wakes parked stream readers within a poll tick.

        Of two concurrent readers, one holds the recv lock and blocks
        inside the underlying ``chan.recv`` (it surfaces the poison at
        its next frame or the channel timeout); the *parked* reader
        polls ``_error`` every 50 ms and must fail fast — far below the
        30 s stream timeout.  New sends fail immediately.
        """
        a, b = make_channel_pair(timeout_s=30.0)
        mux = ChannelMux(a)
        box = {}

        def reader(tag):
            t0 = time.monotonic()
            try:
                mux.stream(tag).recv()
            except ChannelError as exc:
                box[tag] = (exc, time.monotonic() - t0)

        threads = [
            threading.Thread(target=reader, args=(tag,), daemon=True)
            for tag in (0, 1)
        ]
        for t in threads:
            t.start()
        time.sleep(0.15)
        mux.abort(RuntimeError("sibling shard failed"))
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline and not box:
            time.sleep(0.01)
        assert box, "no parked reader observed the abort"
        exc, waited = next(iter(box.values()))
        assert "sibling shard failed" in str(exc)
        assert waited < 5.0  # far below the 30 s stream timeout
        with pytest.raises(ChannelError, match="sibling shard failed"):
            mux.stream(2).send("x")
        # Release the lock-holding pumper (blocked in the underlying
        # recv) by dropping the peer endpoint, then join both readers.
        b.abort()
        for t in threads:
            t.join(timeout=5.0)
        assert not any(t.is_alive() for t in threads), "reader hung"
        assert len(box) == 2


# --------------------------------------------------------------------- #
# shared-memory shipping
# --------------------------------------------------------------------- #
class TestShmBundle:
    def test_roundtrip_through_child(self):
        arrays = {
            "a": np.arange(17, dtype=np.uint64),
            "b": np.random.default_rng(0).random((3, 5)),
        }
        bundle = ShmBundle.create(arrays)
        try:
            got = run_in_process(_read_bundle_worker, bundle.handle())
        finally:
            bundle.close()
            bundle.unlink()
        assert np.array_equal(got["a"], arrays["a"])
        assert np.array_equal(got["b"], arrays["b"])

    def test_inline_fallback(self, monkeypatch):
        monkeypatch.setenv("ABNN2_SHM", "0")
        bundle = ShmBundle.create({"x": np.ones(4, dtype=np.uint64)})
        assert bundle.handle()["kind"] == "inline"
        opened = ShmBundle.open(bundle.handle())
        assert np.array_equal(opened.arrays["x"], np.ones(4, dtype=np.uint64))
        bundle.close()
        bundle.unlink()


def _read_bundle_worker(chan, handle):
    """Child job for the shm round-trip test (module-level: pickle)."""
    bundle = ShmBundle.open(handle)
    try:
        return {k: np.array(v) for k, v in bundle.arrays.items()}
    finally:
        bundle.close()


# --------------------------------------------------------------------- #
# bank process executor
# --------------------------------------------------------------------- #
class TestBankProcessExecutor:
    @pytest.fixture(scope="class")
    def qmodel(self):
        from repro.nn.model import mnist_mlp
        from repro.nn.quantize import quantize_model

        model = mnist_mlp(seed=7, hidden=4, input_dim=16)
        return quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)

    def test_rounds_identical_and_metrics_surface_executor(self, qmodel):
        from repro.serve import TripletBank

        banks = {}
        for executor in ("thread", "process"):
            with _no_process_leak():
                bank = TripletBank(
                    qmodel, 1, capacity=2, auto_replenish=False,
                    seed=77, workers=2, executor=executor,
                )
                bank.fill(2)
            banks[executor] = bank
        for _ in range(2):
            rt = banks["thread"].take()
            rp = banks["process"].take()
            assert all(
                np.array_equal(a, b)
                for a, b in zip(rt.server_us, rp.server_us)
            )
        metrics = banks["process"].metrics()
        assert metrics["executor"] == "process"
        assert metrics["workers"] == 2
        assert metrics["last_generation_s"] > 0.0

    def test_executor_validated(self, qmodel):
        from repro.serve import TripletBank

        with pytest.raises(ConfigError, match="executor"):
            TripletBank(qmodel, 1, executor="gpu")
