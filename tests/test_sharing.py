"""Additive secret sharing over Z_{2^l}."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sharing import AdditiveSharing, reconstruct, share
from repro.utils.ring import Ring


class TestShareReconstruct:
    def test_roundtrip_array(self, ring32, rng):
        x = ring32.sample(rng, (4, 5))
        s0, s1 = share(ring32, x, rng)
        assert (reconstruct(ring32, s0, s1) == x).all()

    def test_roundtrip_scalar(self, ring32, rng):
        s0, s1 = share(ring32, 42, rng)
        assert int(reconstruct(ring32, s0, s1)) == 42

    def test_negative_values(self, ring32, rng):
        s0, s1 = share(ring32, -17, rng)
        assert ring32.to_signed(reconstruct(ring32, s0, s1)) == -17

    def test_shares_look_random(self, ring32, rng):
        # Sharing the same value twice must give different shares.
        a0, _ = share(ring32, 7, rng)
        b0, _ = share(ring32, 7, rng)
        assert int(a0) != int(b0)

    @given(value=st.integers(-(2**31), 2**31 - 1))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, value):
        ring = Ring(32)
        rng = np.random.default_rng(abs(value) + 1)
        s0, s1 = share(ring, value, rng)
        assert int(ring.to_signed(reconstruct(ring, s0, s1))) == value


class TestLocalOps:
    @pytest.fixture
    def sharing(self, ring32):
        return AdditiveSharing(ring32)

    def test_add_local(self, sharing, ring32, rng):
        x, y = ring32.sample(rng, 5), ring32.sample(rng, 5)
        x0, x1 = sharing.share(x, rng)
        y0, y1 = sharing.share(y, rng)
        got = sharing.reconstruct(sharing.add_local(x0, y0), sharing.add_local(x1, y1))
        assert (got == ring32.add(x, y)).all()

    def test_sub_local(self, sharing, ring32, rng):
        x, y = ring32.sample(rng, 5), ring32.sample(rng, 5)
        x0, x1 = sharing.share(x, rng)
        y0, y1 = sharing.share(y, rng)
        got = sharing.reconstruct(sharing.sub_local(x0, y0), sharing.sub_local(x1, y1))
        assert (got == ring32.sub(x, y)).all()

    def test_mul_public(self, sharing, ring32, rng):
        x = ring32.sample(rng, 5)
        x0, x1 = sharing.share(x, rng)
        got = sharing.reconstruct(sharing.mul_public(x0, 3), sharing.mul_public(x1, 3))
        assert (got == ring32.mul(x, np.uint64(3))).all()

    def test_add_public_only_one_party(self, sharing, ring32, rng):
        x = ring32.sample(rng, 5)
        x0, x1 = sharing.share(x, rng)
        got = sharing.reconstruct(
            sharing.add_public(x0, 10, party=0), sharing.add_public(x1, 10, party=1)
        )
        assert (got == ring32.add(x, np.uint64(10))).all()
