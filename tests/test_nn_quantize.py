"""Model quantization: accuracy retention, integer reference semantics."""

import numpy as np
import pytest

from repro.errors import QuantizationError
from repro.nn.layers import AvgPool2d, Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


@pytest.fixture(scope="module")
def ring():
    return Ring(32)


class TestQuantizeModel:
    @pytest.mark.parametrize(
        "bits_tuple,max_drop", [((2, 2, 2, 2), 0.05), ((2, 2, 2), 0.05), ((2, 2), 0.15), ((2, 1), 0.45)]
    )
    def test_accuracy_retained(self, bits_tuple, max_drop, trained_model, small_dataset, ring):
        scheme = FragmentScheme.from_bits(bits_tuple)
        qm = quantize_model(trained_model, scheme, ring, frac_bits=6)
        float_acc = trained_model.accuracy(small_dataset.test_x, small_dataset.test_y)
        q_acc = qm.accuracy(small_dataset.test_x, small_dataset.test_y)
        assert q_acc >= float_acc - max_drop

    def test_ternary_still_useful(self, trained_model, small_dataset, ring):
        qm = quantize_model(trained_model, FragmentScheme.ternary(), ring, frac_bits=6)
        assert qm.accuracy(small_dataset.test_x, small_dataset.test_y) > 0.4

    def test_logits_close_to_float(self, trained_model, small_dataset, ring):
        qm = quantize_model(
            trained_model, FragmentScheme.from_bits((2, 2, 2, 2)), ring, frac_bits=8
        )
        x = small_dataset.test_x[:10]
        got = qm.logits_float(x)
        expect = trained_model.forward(x)
        assert np.abs(got - expect).max() < 1.0

    def test_activations_fit_ring(self, trained_model, small_dataset, ring):
        qm = quantize_model(
            trained_model, FragmentScheme.from_bits((2, 2, 2, 2)), ring, frac_bits=6
        )
        qm.check_range(small_dataset.test_x)  # must not raise

    def test_range_check_fires_for_narrow_ring(self, trained_model, small_dataset):
        tiny = Ring(12)
        qm = quantize_model(
            trained_model, FragmentScheme.from_bits((2, 2, 2, 2)), tiny, frac_bits=6
        )
        with pytest.raises(QuantizationError):
            qm.check_range(small_dataset.test_x)

    def test_truncation_set_for_pow2_schemes(self, trained_model, ring):
        qm = quantize_model(trained_model, FragmentScheme.from_bits((2, 2)), ring)
        assert qm.layers[0].truncate_bits > 0
        assert qm.layers[-1].truncate_bits == 0  # last layer never truncates

    def test_no_truncation_for_float_scale_schemes(self, trained_model, ring):
        qm = quantize_model(trained_model, FragmentScheme.ternary(), ring)
        assert all(layer.truncate_bits == 0 for layer in qm.layers)
        assert qm.output_deferral != 1.0

    def test_per_layer_schemes(self, trained_model, ring):
        schemes = [
            FragmentScheme.from_bits((2, 2, 2, 2)),
            FragmentScheme.from_bits((2, 2)),
            FragmentScheme.ternary(),
        ]
        qm = quantize_model(trained_model, schemes, ring)
        assert [l.scheme.name for l in qm.layers] == ["8(2,2,2,2)", "4(2,2)", "ternary"]

    def test_scheme_count_mismatch(self, trained_model, ring):
        with pytest.raises(QuantizationError):
            quantize_model(trained_model, [FragmentScheme.ternary()], ring)

    def test_unsupported_layer_rejected(self, ring):
        model = Sequential([Dense(4, 4), AvgPool2d(2)])
        with pytest.raises(QuantizationError):
            quantize_model(model, FragmentScheme.ternary(), ring)

    def test_bias_folded(self, ring, rng):
        # A model that is just bias: y = 0 * x + b.
        layer = Dense(2, 2, seed=0)
        layer.weight[:] = 0.0
        layer.bias[:] = [1.0, -2.0]
        qm = quantize_model(Sequential([layer]), FragmentScheme.from_bits((2, 2)), ring, frac_bits=6)
        logits = qm.logits_float(np.zeros((1, 2)))
        assert logits[0] == pytest.approx([1.0, -2.0], abs=0.1)


class TestTruncateExact:
    def test_matches_arithmetic_shift(self, trained_model, ring):
        qm = quantize_model(trained_model, FragmentScheme.from_bits((2, 2)), ring)
        values = ring.reduce(np.array([1024, -1024, 1023, -1023, 0]))
        got = ring.to_signed(qm.truncate_exact(values, 4))
        assert got.tolist() == [64, -64, 63, -64, 0]

    def test_zero_bits_identity(self, trained_model, ring, rng):
        qm = quantize_model(trained_model, FragmentScheme.ternary(), ring)
        values = ring.sample(rng, 10)
        assert (qm.truncate_exact(values, 0) == values).all()
