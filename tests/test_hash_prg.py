"""Random-oracle backends and the PRG."""

import numpy as np
import pytest

from repro.crypto.hash_ro import sha256_ro, siphash_ro
from repro.crypto.prg import Prg, expand_to_bits
from repro.errors import CryptoError


class TestRandomOracles:
    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_deterministic(self, ro, rng):
        rows = rng.integers(0, 1 << 63, size=(5, 3), dtype=np.uint64)
        assert (ro.mask(rows, 4) == ro.mask(rows, 4)).all()

    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_row_sensitivity(self, ro):
        rows = np.zeros((2, 2), dtype=np.uint64)
        rows[1, 0] = 1
        out = ro.mask(rows, 2)
        assert (out[0] != out[1]).any()

    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_domain_separation(self, ro, rng):
        rows = rng.integers(0, 1 << 63, size=(3, 2), dtype=np.uint64)
        assert (ro.mask(rows, 2, domain=1) != ro.mask(rows, 2, domain=2)).any()

    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_output_shape(self, ro, rng):
        rows = rng.integers(0, 1 << 63, size=(4, 6, 3), dtype=np.uint64)
        assert ro.mask(rows, 5).shape == (4, 6, 5)

    def test_invalid_out_words(self):
        with pytest.raises(CryptoError):
            siphash_ro.mask(np.zeros((1, 2), dtype=np.uint64), 0)

    def test_hash_bytes_lengths(self):
        out = sha256_ro.hash_bytes(b"seed", 100)
        assert len(out) == 100
        assert sha256_ro.hash_bytes(b"seed", 100) == out

    def test_hash_bytes_domains(self):
        assert sha256_ro.hash_bytes(b"x", 16, 1) != sha256_ro.hash_bytes(b"x", 16, 2)

    def test_backends_disagree(self, rng):
        # Sanity: the two backends are different functions.
        rows = rng.integers(0, 1 << 63, size=(2, 2), dtype=np.uint64)
        assert (sha256_ro.mask(rows, 2) != siphash_ro.mask(rows, 2)).any()


class TestPrg:
    def test_seed_length_enforced(self):
        with pytest.raises(CryptoError):
            Prg(b"short")

    def test_deterministic_stream(self):
        seed = bytes(range(16))
        assert (Prg(seed).bits(100) == Prg(seed).bits(100)).all()
        assert Prg(seed).bytes(32) == Prg(seed).bytes(32)

    def test_streams_continue(self):
        seed = bytes(range(16))
        prg = Prg(seed)
        first, second = prg.bits(64), prg.bits(64)
        combined = Prg(seed).bits(128)
        assert (np.concatenate([first, second]) == combined).all()

    def test_independent_seeds(self):
        a = Prg(bytes(16)).bits(256)
        b = Prg(bytes([1] + [0] * 15)).bits(256)
        assert (a != b).any()

    def test_bits_are_bits(self):
        bits = Prg(bytes(range(16))).bits(1000)
        assert set(np.unique(bits)) <= {0, 1}
        assert 300 < bits.sum() < 700  # roughly balanced

    def test_words_count(self):
        assert Prg(bytes(range(16))).words(17).shape == (17,)

    def test_negative_counts_rejected(self):
        prg = Prg(bytes(16))
        with pytest.raises(CryptoError):
            prg.bits(-1)
        with pytest.raises(CryptoError):
            prg.words(-1)

    def test_expand_helper(self):
        assert (expand_to_bits(bytes(16), 64) == Prg(bytes(16)).bits(64)).all()
