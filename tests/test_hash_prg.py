"""Random-oracle backends and the PRG."""

import numpy as np
import pytest

from repro.crypto.hash_ro import sha256_ro, siphash_ro
from repro.crypto.prg import BatchPrg, Prg, expand_to_bits
from repro.errors import CryptoError
from repro.utils.bits import pack_bits_to_words


class TestRandomOracles:
    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_deterministic(self, ro, rng):
        rows = rng.integers(0, 1 << 63, size=(5, 3), dtype=np.uint64)
        assert (ro.mask(rows, 4) == ro.mask(rows, 4)).all()

    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_row_sensitivity(self, ro):
        rows = np.zeros((2, 2), dtype=np.uint64)
        rows[1, 0] = 1
        out = ro.mask(rows, 2)
        assert (out[0] != out[1]).any()

    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_domain_separation(self, ro, rng):
        rows = rng.integers(0, 1 << 63, size=(3, 2), dtype=np.uint64)
        assert (ro.mask(rows, 2, domain=1) != ro.mask(rows, 2, domain=2)).any()

    @pytest.mark.parametrize("ro", [sha256_ro, siphash_ro], ids=["sha256", "siphash"])
    def test_output_shape(self, ro, rng):
        rows = rng.integers(0, 1 << 63, size=(4, 6, 3), dtype=np.uint64)
        assert ro.mask(rows, 5).shape == (4, 6, 5)

    def test_invalid_out_words(self):
        with pytest.raises(CryptoError):
            siphash_ro.mask(np.zeros((1, 2), dtype=np.uint64), 0)

    def test_hash_bytes_lengths(self):
        out = sha256_ro.hash_bytes(b"seed", 100)
        assert len(out) == 100
        assert sha256_ro.hash_bytes(b"seed", 100) == out

    def test_hash_bytes_domains(self):
        assert sha256_ro.hash_bytes(b"x", 16, 1) != sha256_ro.hash_bytes(b"x", 16, 2)

    def test_backends_disagree(self, rng):
        # Sanity: the two backends are different functions.
        rows = rng.integers(0, 1 << 63, size=(2, 2), dtype=np.uint64)
        assert (sha256_ro.mask(rows, 2) != siphash_ro.mask(rows, 2)).any()


class TestPrg:
    def test_seed_length_enforced(self):
        with pytest.raises(CryptoError):
            Prg(b"short")

    def test_deterministic_stream(self):
        seed = bytes(range(16))
        assert (Prg(seed).bits(100) == Prg(seed).bits(100)).all()
        assert Prg(seed).bytes(32) == Prg(seed).bytes(32)

    def test_streams_continue(self):
        seed = bytes(range(16))
        prg = Prg(seed)
        first, second = prg.bits(64), prg.bits(64)
        combined = Prg(seed).bits(128)
        assert (np.concatenate([first, second]) == combined).all()

    def test_independent_seeds(self):
        a = Prg(bytes(16)).bits(256)
        b = Prg(bytes([1] + [0] * 15)).bits(256)
        assert (a != b).any()

    def test_bits_are_bits(self):
        bits = Prg(bytes(range(16))).bits(1000)
        assert set(np.unique(bits)) <= {0, 1}
        assert 300 < bits.sum() < 700  # roughly balanced

    def test_words_count(self):
        assert Prg(bytes(range(16))).words(17).shape == (17,)

    def test_negative_counts_rejected(self):
        prg = Prg(bytes(16))
        with pytest.raises(CryptoError):
            prg.bits(-1)
        with pytest.raises(CryptoError):
            prg.words(-1)

    def test_expand_helper(self):
        assert (expand_to_bits(bytes(16), 64) == Prg(bytes(16)).bits(64)).all()

    @pytest.mark.parametrize("count", [1, 7, 64, 100, 1000])
    def test_packed_bits_matches_bits(self, count):
        seed = bytes(range(16))
        packed = Prg(seed).packed_bits(count)
        assert packed.shape == ((count + 63) // 64,)
        assert (packed == pack_bits_to_words(Prg(seed).bits(count))).all()

    def test_packed_bits_advances_stream_like_bits(self):
        seed = bytes(range(16))
        a, b = Prg(seed), Prg(seed)
        a.packed_bits(37)
        b.bits(37)
        assert (a.bits(100) == b.bits(100)).all()


def _seeds(k):
    return [bytes([i] * 16) for i in range(1, k + 1)]


class TestBatchPrg:
    """The vectorized multi-key engine must be byte-identical to list[Prg]."""

    def test_matches_prg_columns(self):
        seeds = _seeds(8)
        batch = BatchPrg(seeds)
        out = batch.packed_bits(300)
        for j, seed in enumerate(seeds):
            assert (out[j] == Prg(seed).packed_bits(300)).all(), f"stream {j}"

    def test_matches_prg_across_ragged_calls(self):
        # Odd sizes exercise the cached-half-word accounting that numpy's
        # Generator keeps between integer draws.
        seeds = _seeds(5)
        batch = BatchPrg(seeds)
        prgs = [Prg(s) for s in seeds]
        for count in (13, 7, 130, 1, 64, 100, 3, 65):
            got = batch.packed_bits(count)
            for j, prg in enumerate(prgs):
                assert (got[j] == prg.packed_bits(count)).all(), (count, j)

    def test_interchangeable_with_bits_stream(self):
        # A session may mix packed and unpacked draws; streams must agree.
        seeds = _seeds(3)
        batch = BatchPrg(seeds)
        prgs = [Prg(s) for s in seeds]
        batch.packed_bits(77)
        first = [p.bits(77) for p in prgs]
        got = batch.packed_bits(200)
        for j, prg in enumerate(prgs):
            assert (got[j] == pack_bits_to_words(prg.bits(200))).all()

    def test_tail_bits_are_zero(self):
        out = BatchPrg(_seeds(4)).packed_bits(70)
        assert (out[:, -1] >> np.uint64(6) == 0).all()

    def test_zero_count(self):
        assert BatchPrg(_seeds(2)).packed_bits(0).shape == (2, 0)

    def test_seed_validation(self):
        with pytest.raises(CryptoError):
            BatchPrg([])
        with pytest.raises(CryptoError):
            BatchPrg([b"short"])
        with pytest.raises(CryptoError):
            BatchPrg([bytes(16), bytes(15)])

    def test_negative_count_rejected(self):
        with pytest.raises(CryptoError):
            BatchPrg(_seeds(2)).packed_bits(-1)

    def test_seeds_property(self):
        seeds = _seeds(3)
        assert BatchPrg(seeds).seeds == tuple(seeds)
