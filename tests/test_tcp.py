"""TCP transport: framing, accounting, and full protocols over sockets."""

import socket
import threading

import numpy as np
import pytest

from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.errors import ChannelError
from repro.net import tcp
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _tcp_pair(timeout_s=10.0):
    port = _free_port()
    box = {}

    def _serve():
        box["server"] = tcp.listen(port, timeout_s=timeout_s)

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = tcp.connect("127.0.0.1", port, timeout_s=timeout_s)
    thread.join(timeout=timeout_s)
    return box["server"], client


class TestFraming:
    def test_roundtrip_objects(self, rng):
        server, client = _tcp_pair()
        try:
            arr = rng.integers(0, 1 << 40, size=(7, 3), dtype=np.uint64)
            server.send((b"header", 42, arr))
            got = client.recv()
            assert got[0] == b"header" and got[1] == 42
            assert (got[2] == arr).all()
            client.send(b"reply")
            assert server.recv() == b"reply"
        finally:
            server.close()
            client.close()

    def test_large_message(self, rng):
        server, client = _tcp_pair()
        try:
            blob = rng.integers(0, 255, size=3_000_000, dtype=np.uint8).tobytes()
            server.send(blob)
            assert client.recv() == blob
        finally:
            server.close()
            client.close()

    def test_stats_agree_between_endpoints(self):
        server, client = _tcp_pair()
        try:
            server.send(b"12345678")
            client.recv()
            client.send(b"12")
            server.recv()
            assert server.stats.total_bytes == client.stats.total_bytes == 10
        finally:
            server.close()
            client.close()

    def test_peer_close_raises(self):
        server, client = _tcp_pair()
        server.close()
        with pytest.raises(ChannelError):
            client.recv()
        client.close()

    def test_send_after_close_raises(self):
        server, client = _tcp_pair()
        server.close()
        with pytest.raises(ChannelError):
            server.send(b"x")
        client.close()

    def test_connect_refused_eventually_fails(self):
        with pytest.raises(ChannelError):
            tcp.connect("127.0.0.1", _free_port(), timeout_s=1, retries=2, retry_delay_s=0.01)

    def test_listen_timeout(self):
        with pytest.raises(ChannelError, match="no client"):
            tcp.listen(_free_port(), timeout_s=0.2)


class TestProtocolOverTcp:
    def test_triplets_over_sockets(self, test_group, rng):
        """The OT triplet protocol must run unchanged over TCP."""
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        w = rng.integers(-8, 8, size=(3, 5))
        r = ring.sample(rng, (5, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=3, n=5, o=2, group=test_group)

        server_chan, client_chan = _tcp_pair(timeout_s=60)
        box = {}

        def server_main():
            box["u"] = generate_triplets_server(server_chan, w, config, seed=1)

        thread = threading.Thread(target=server_main, daemon=True)
        thread.start()
        v = generate_triplets_client(
            client_chan, r, config, np.random.default_rng(3), seed=2
        )
        thread.join(timeout=60)
        server_chan.close()
        client_chan.close()
        got = ring.add(box["u"], v)
        assert (got == ring.matmul(ring.reduce(w), r)).all()
