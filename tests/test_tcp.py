"""TCP transport: framing, handshake, accounting, and protocols over sockets."""

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.errors import ChannelError, HandshakeError, ProtocolError
from repro.net import tcp
from repro.net.channel import make_channel_pair
from repro.quant.fragments import FragmentScheme
from repro.utils import serialization
from repro.utils.ring import Ring


def _free_port() -> int:
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


def _tcp_pair(timeout_s=10.0):
    port = _free_port()
    box = {}

    def _serve():
        box["server"] = tcp.listen(port, timeout_s=timeout_s)

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = tcp.connect("127.0.0.1", port, timeout_s=timeout_s)
    thread.join(timeout=timeout_s)
    return box["server"], client


class TestFraming:
    def test_roundtrip_objects(self, rng):
        server, client = _tcp_pair()
        try:
            arr = rng.integers(0, 1 << 40, size=(7, 3), dtype=np.uint64)
            server.send((b"header", 42, arr))
            got = client.recv()
            assert got[0] == b"header" and got[1] == 42
            assert (got[2] == arr).all()
            client.send(b"reply")
            assert server.recv() == b"reply"
        finally:
            server.close()
            client.close()

    def test_large_message(self, rng):
        server, client = _tcp_pair()
        try:
            blob = rng.integers(0, 255, size=3_000_000, dtype=np.uint8).tobytes()
            server.send(blob)
            assert client.recv() == blob
        finally:
            server.close()
            client.close()

    def test_stats_agree_between_endpoints(self):
        server, client = _tcp_pair()
        try:
            server.send(b"12345678")
            client.recv()
            client.send(b"12")
            server.recv()
            assert server.stats.total_bytes == client.stats.total_bytes == 10
        finally:
            server.close()
            client.close()

    def test_peer_close_raises(self):
        server, client = _tcp_pair()
        server.close()
        with pytest.raises(ChannelError):
            client.recv()
        client.close()

    def test_send_after_close_raises(self):
        server, client = _tcp_pair()
        server.close()
        with pytest.raises(ChannelError):
            server.send(b"x")
        client.close()

    def test_connect_refused_eventually_fails(self):
        with pytest.raises(ChannelError):
            tcp.connect("127.0.0.1", _free_port(), timeout_s=1, retries=2, retry_delay_s=0.01)

    def test_connect_deadline_caps_retries(self):
        """Many retries must still respect the single overall deadline."""
        start = time.monotonic()
        with pytest.raises(ChannelError, match="within"):
            tcp.connect(
                "127.0.0.1", _free_port(),
                retries=10_000, retry_delay_s=0.05, deadline_s=0.4,
            )
        assert time.monotonic() - start < 3.0

    def test_listen_timeout(self):
        with pytest.raises(ChannelError, match="no client"):
            tcp.listen(_free_port(), timeout_s=0.2)


def _raw_channel(timeout_s=2.0):
    """A TcpChannel over one end of a socketpair, raw socket on the other."""
    raw, end = socket.socketpair()
    chan = tcp.TcpChannel(end, party=0, timeout_s=timeout_s, handshake=False)
    raw.settimeout(timeout_s)
    return raw, chan


class TestHardenedFraming:
    def test_oversized_frame_rejected(self):
        raw, chan = _raw_channel()
        try:
            head = struct.pack("<BQQ", 0, 0, tcp.MAX_FRAME_BYTES + 1)
            raw.sendall(head)
            with pytest.raises(ChannelError, match="absurd"):
                chan.recv()
        finally:
            raw.close()
            chan.abort()

    def test_peer_closed_mid_frame(self):
        raw, chan = _raw_channel()
        try:
            head = struct.pack("<BQQ", 0, 0, 100)  # promises 100 payload bytes
            raw.sendall(head + b"only-ten-b")
            raw.shutdown(socket.SHUT_WR)  # clean EOF mid-frame
            with pytest.raises(ChannelError, match="mid-frame"):
                chan.recv()
        finally:
            raw.close()
            chan.abort()

    def test_crc_mismatch_rejected(self):
        raw, chan = _raw_channel()
        try:
            data = serialization.encode(b"payload")
            head = struct.pack("<BQQ", 0, 0, len(data))
            good = __import__("zlib").crc32(head + data)
            raw.sendall(head + data + struct.pack("<I", good ^ 1))
            with pytest.raises(ChannelError, match="CRC mismatch"):
                chan.recv()
        finally:
            raw.close()
            chan.abort()

    def test_sequence_gap_rejected(self):
        raw, chan = _raw_channel()
        try:
            data = serialization.encode(b"payload")
            head = struct.pack("<BQQ", 0, 5, len(data))  # frame #5 out of the blue
            crc = __import__("zlib").crc32(head + data)
            raw.sendall(head + data + struct.pack("<I", crc))
            with pytest.raises(ChannelError, match="sequence gap"):
                chan.recv()
        finally:
            raw.close()
            chan.abort()

    def test_inject_frame_faults_surface_typed(self):
        """The fault hooks produce the same typed errors as real damage."""
        server, client = _tcp_pair()
        try:
            data = serialization.encode(b"protocol message")
            server._inject_frame(data[: len(data) // 2], valid_crc=True)
            with pytest.raises(ProtocolError, match="truncated"):
                client.recv()
            server._inject_frame(data, valid_crc=False)
            with pytest.raises(ChannelError, match="CRC mismatch"):
                client.recv()
        finally:
            server.close()
            client.close()

    def test_abort_is_not_graceful(self):
        server, client = _tcp_pair()
        server.abort()
        with pytest.raises(ChannelError, match="closed|failed|reset"):
            client.recv()
        client.close()


class TestPartialFrameDeadline:
    """A frame split across the recv deadline must raise a timeout error,
    never deliver a truncated frame to the CRC/decode stage."""

    def test_partial_frame_times_out_typed(self):
        raw, chan = _raw_channel(timeout_s=0.5)
        try:
            data = serialization.encode(b"this frame will stall mid-flight")
            head = struct.pack("<BQQ", 0, 0, len(data))
            crc = __import__("zlib").crc32(head + data)
            frame = head + data + struct.pack("<I", crc)
            raw.sendall(frame[: len(frame) - 7])  # stall before the CRC
            start = time.monotonic()
            with pytest.raises(ChannelError, match="mid-frame|timed out"):
                chan.recv()
            # The deadline is overall, not per-chunk: one timeout window.
            assert time.monotonic() - start < 2.0
        finally:
            raw.close()
            chan.abort()

    def test_trickled_frame_cannot_extend_deadline(self):
        """A byte-at-a-time sender must still hit the overall deadline."""
        raw, chan = _raw_channel(timeout_s=0.6)
        box = {}

        def _trickle():
            data = serialization.encode(b"x" * 64)
            head = struct.pack("<BQQ", 0, 0, len(data))
            crc = __import__("zlib").crc32(head + data)
            frame = head + data + struct.pack("<I", crc)
            try:
                for byte in frame:
                    raw.sendall(bytes([byte]))
                    time.sleep(0.05)  # slower than the budget allows
            except OSError:
                pass
            box["sent"] = True

        thread = threading.Thread(target=_trickle, daemon=True)
        thread.start()
        try:
            start = time.monotonic()
            with pytest.raises(ChannelError, match="timed out"):
                chan.recv()
            elapsed = time.monotonic() - start
            assert 0.3 < elapsed < 3.0, f"deadline not overall: {elapsed:.2f}s"
        finally:
            chan.abort()
            raw.close()
            thread.join(timeout=10)

    def test_stall_injection_hook_matches_raw_damage(self):
        """_inject_partial_frame (the 'stall' fault) surfaces the same way."""
        server, client = _tcp_pair(timeout_s=0.5)
        try:
            data = serialization.encode(b"stalled protocol message")
            server._inject_partial_frame(data, keep_fraction=0.5)
            with pytest.raises(ChannelError, match="mid-frame|timed out"):
                client.recv()
        finally:
            server.close()
            client.close()


class TestWildcardSession:
    def test_client_adopts_server_assigned_id(self):
        port = _free_port()
        box = {}

        def _serve():
            box["server"] = tcp.listen(port, timeout_s=5.0, session_id=77)

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        client = tcp.connect(
            "127.0.0.1", port, timeout_s=5.0, session_id=tcp.SESSION_ANY
        )
        thread.join(timeout=5)
        server = box["server"]
        try:
            assert client.session_id == 77
            assert server.session_id == 77
            server.send(b"hi")
            assert client.recv() == b"hi"
        finally:
            server.close()
            client.close()

    def test_concrete_mismatch_still_rejected(self):
        """The wildcard must not weaken the explicit-id check."""
        port = _free_port()

        def _serve(box):
            try:
                box["server"] = tcp.listen(port, timeout_s=5.0, session_id=111)
            except ChannelError as exc:
                box["exc"] = exc

        box = {}
        threading.Thread(target=_serve, args=(box,), daemon=True).start()
        with pytest.raises(HandshakeError, match="session"):
            tcp.connect("127.0.0.1", port, timeout_s=5.0, session_id=222)


class TestListener:
    def test_accepts_multiple_sequential_peers(self):
        with tcp.Listener(0) as listener:
            for session_id in (1, 2, 3):
                box = {}

                def _serve():
                    box["chan"] = listener.accept(timeout_s=5.0, session_id=session_id)

                thread = threading.Thread(target=_serve, daemon=True)
                thread.start()
                client = tcp.connect(
                    "127.0.0.1", listener.port,
                    timeout_s=5.0, session_id=tcp.SESSION_ANY,
                )
                thread.join(timeout=5)
                server = box["chan"]
                try:
                    assert client.session_id == session_id
                    client.send(b"ping")
                    assert server.recv() == b"ping"
                finally:
                    server.close()
                    client.close()

    def test_ephemeral_port_reported(self):
        with tcp.Listener(0) as listener:
            assert listener.port > 0

    def test_accept_timeout_typed(self):
        with tcp.Listener(0) as listener:
            with pytest.raises(ChannelError, match="no client"):
                listener.accept_socket(timeout_s=0.1)

    def test_closed_listener_refuses_accept(self):
        listener = tcp.Listener(0)
        listener.close()
        with pytest.raises(ChannelError, match="closed"):
            listener.accept_socket(timeout_s=0.1)


def _connect_raw(port, deadline_s=5.0):
    """Raw client socket that retries until the listener thread has bound."""
    deadline = time.monotonic() + deadline_s
    while True:
        try:
            return socket.create_connection(("127.0.0.1", port), timeout=5)
        except OSError:
            if time.monotonic() > deadline:
                raise
            time.sleep(0.02)


class TestHandshake:
    def _listener(self, port, box, **kwargs):
        def _serve():
            try:
                box["server"] = tcp.listen(port, timeout_s=5.0, **kwargs)
            except ChannelError as exc:
                box["exc"] = exc

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        return thread

    def test_version_mismatch(self):
        port = _free_port()
        box = {}
        thread = self._listener(port, box)
        with _connect_raw(port) as raw:
            raw.sendall(struct.pack("<4sHBQ", b"AB2\x00", tcp.WIRE_VERSION + 7, 1, 0))
            thread.join(timeout=5)
        assert isinstance(box.get("exc"), HandshakeError)
        assert "version" in str(box["exc"])

    def test_bad_magic(self):
        port = _free_port()
        box = {}
        thread = self._listener(port, box)
        with _connect_raw(port) as raw:
            raw.sendall(struct.pack("<4sHBQ", b"HTTP", tcp.WIRE_VERSION, 1, 0))
            thread.join(timeout=5)
        assert isinstance(box.get("exc"), HandshakeError)

    def test_party_collision(self):
        port = _free_port()
        box = {}
        thread = self._listener(port, box)
        with _connect_raw(port) as raw:
            # Claim party 0 — same as the listener.
            raw.sendall(struct.pack("<4sHBQ", b"AB2\x00", tcp.WIRE_VERSION, 0, 0))
            thread.join(timeout=5)
        assert isinstance(box.get("exc"), HandshakeError)
        assert "party" in str(box["exc"])

    def test_session_id_mismatch(self):
        port = _free_port()
        box = {}
        self._listener(port, box, session_id=111)
        with pytest.raises(HandshakeError, match="session"):
            tcp.connect("127.0.0.1", port, timeout_s=5.0, session_id=222)

    def test_matching_session_id_connects(self):
        port = _free_port()
        box = {}
        thread = self._listener(port, box, session_id=42)
        client = tcp.connect("127.0.0.1", port, timeout_s=5.0, session_id=42)
        thread.join(timeout=5)
        server = box["server"]
        try:
            server.send(b"hello")
            assert client.recv() == b"hello"
        finally:
            server.close()
            client.close()


class TestProtocolOverTcp:
    def test_triplets_over_sockets(self, test_group, rng):
        """The OT triplet protocol must run unchanged over TCP."""
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        w = rng.integers(-8, 8, size=(3, 5))
        r = ring.sample(rng, (5, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=3, n=5, o=2, group=test_group)

        server_chan, client_chan = _tcp_pair(timeout_s=60)
        box = {}

        def server_main():
            box["u"] = generate_triplets_server(server_chan, w, config, seed=1)

        thread = threading.Thread(target=server_main, daemon=True)
        thread.start()
        v = generate_triplets_client(
            client_chan, r, config, np.random.default_rng(3), seed=2
        )
        thread.join(timeout=60)
        server_chan.close()
        client_chan.close()
        got = ring.add(box["u"], v)
        assert (got == ring.matmul(ring.reduce(w), r)).all()

    def test_stats_agree_with_in_memory_transport(self, test_group, rng):
        """Payload/message/round accounting is transport-independent."""
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        w = rng.integers(-8, 8, size=(3, 5))
        r = ring.sample(rng, (5, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=3, n=5, o=2, group=test_group)

        def _run(server_chan, client_chan):
            thread = threading.Thread(
                target=lambda: generate_triplets_server(server_chan, w, config, seed=1),
                daemon=True,
            )
            thread.start()
            generate_triplets_client(
                client_chan, r, config, np.random.default_rng(3), seed=2
            )
            thread.join(timeout=60)
            return server_chan.stats.snapshot()

        mem = _run(*make_channel_pair(timeout_s=60))
        server_chan, client_chan = _tcp_pair(timeout_s=60)
        try:
            over_tcp = _run(server_chan, client_chan)
        finally:
            server_chan.close()
            client_chan.close()
        assert over_tcp.bytes_sent == mem.bytes_sent
        assert over_tcp.messages_sent == mem.messages_sent
        assert over_tcp.rounds == mem.rounds


class TestAccounting:
    def test_failed_send_not_counted(self):
        """A send that never hits the wire must not inflate traffic."""
        server, client = _tcp_pair()
        client.close()
        server._sock.close()  # sever the transport under the channel
        with pytest.raises(ChannelError):
            server.send(b"never leaves")
        assert server.stats.total_bytes == 0
        assert server.stats.total_messages == 0
