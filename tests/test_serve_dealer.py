"""Streamed trusted-dealer generation + atomic banked persistence.

The dealer (:mod:`repro.serve.dealer`) produces offline rounds in
closed form, block by block, with conv-layer shares arriving as
:class:`~repro.core.triplets.BlockedShare`.  These tests pin:

* a dealt round drops into the unchanged online phase and yields
  logits byte-identical across online ``chunk_cols`` settings, close
  to the plaintext integer reference (truncation noise only);
* determinism in ``(model, batch, seed, stream_chunk_cols)``;
* the dealer-backed :class:`~repro.serve.bank.TripletBank` serves
  rounds with zero generation traffic;
* banked ``BlockedShare`` material round-trips through
  :mod:`repro.serve.persist`, whose writes are atomic (crash
  mid-write leaves the previous bundle intact).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta
from repro.core.triplets import BlockedShare
from repro.errors import ConfigError
from repro.net.runner import run_protocol
from repro.nn.layers import Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.model import Sequential
from repro.nn.quantize import quantize_model, set_chunk_cols
from repro.serve.bank import TripletBank
from repro.serve.dealer import dealer_offline_round
from repro.serve.persist import load_bank, model_fingerprint, save_bank
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring

BATCH = 2


@pytest.fixture(scope="module")
def qmodel():
    net = Sequential(
        [
            Conv2d(1, 2, 3, seed=6),
            ReLU(),
            MaxPool2d(2),
            Flatten(),
            Dense(2 * 3 * 3, 4, seed=7),
        ]
    )
    return quantize_model(
        net,
        TABLE2_SCHEMES["4(2,2)"],
        Ring(32),
        frac_bits=5,
        input_shape=(1, 8, 8),
    )


@pytest.fixture(scope="module")
def meta(qmodel):
    return ModelMeta.from_model(qmodel)


def _run_online(model, meta, x_ring, server_us, client_material, group):
    def server_fn(chan):
        server = Abnn2Server(chan, model, BATCH, group=group, seed=1)
        server.load_offline_round(server_us)
        return server.online()

    def client_fn(chan):
        client = Abnn2Client(chan, meta, BATCH, group=group, seed=2)
        client.load_offline_round(client_material)
        return client.online(x_ring)

    return run_protocol(server_fn, client_fn, timeout_s=120.0).client


class TestDealerRound:
    def test_blocked_types_and_shapes(self, qmodel):
        us, material = dealer_offline_round(
            qmodel, BATCH, seed=5, stream_chunk_cols=7
        )
        assert isinstance(us[0], BlockedShare)  # conv layer stays blocked
        assert isinstance(us[-1], np.ndarray)  # dense layer is plain
        assert isinstance(material["v"][0], BlockedShare)
        assert us[0].shape == (2, BATCH * 36)
        assert material["input_mask"].shape == (64, BATCH)
        assert material["pool_shares"][0] is not None  # max pool resharing

    def test_determinism(self, qmodel):
        a_us, a_mat = dealer_offline_round(qmodel, BATCH, seed=5, stream_chunk_cols=7)
        b_us, b_mat = dealer_offline_round(qmodel, BATCH, seed=5, stream_chunk_cols=7)
        for a, b in zip(a_us, b_us):
            a = a.materialize() if isinstance(a, BlockedShare) else a
            b = b.materialize() if isinstance(b, BlockedShare) else b
            assert (a == b).all()
        assert (a_mat["input_mask"] == b_mat["input_mask"]).all()
        # different stream chunking consumes the RNG differently
        c_us, _ = dealer_offline_round(qmodel, BATCH, seed=5, stream_chunk_cols=13)
        assert not (c_us[0].materialize() == a_us[0].materialize()).all()

    def test_online_identical_across_chunkings(self, qmodel, meta, test_group):
        rng = np.random.default_rng(42)
        x = rng.random((BATCH, 64))
        x_ring = qmodel.encoder.encode(x.T)
        us, material = dealer_offline_round(
            qmodel, BATCH, seed=9, stream_chunk_cols=11, group=test_group
        )
        baseline = None
        for chunk in (None, 1, 7, 10**6):
            model = set_chunk_cols(qmodel, chunk)
            logits = _run_online(
                model, ModelMeta.from_model(model), x_ring, us, material, test_group
            )
            if baseline is None:
                baseline = logits
                ring = qmodel.ring
                expected = qmodel.forward_int(x_ring)
                diff = ring.to_signed(ring.sub(logits, expected))
                assert np.abs(diff).max() <= 64  # truncation noise only
            assert (logits == baseline).all(), f"chunk={chunk}"

    def test_validation(self, qmodel):
        with pytest.raises(ConfigError):
            dealer_offline_round(qmodel, 0, seed=1)


class TestDealerBank:
    def test_dealer_bank_serves_with_zero_traffic(self, qmodel, test_group):
        bank = TripletBank(
            qmodel,
            BATCH,
            capacity=2,
            auto_replenish=False,
            generator="dealer",
            stream_chunk_cols=7,
            seed=3,
            group=test_group,
        )
        assert bank.fill(2) == 2
        metrics = bank.metrics()
        assert metrics["generator"] == "dealer"
        assert metrics["generation_payload_bytes"] == 0
        round_ = bank.take()
        assert isinstance(round_.server_us[0], BlockedShare)
        bank.stop()

    def test_generator_validated(self, qmodel):
        with pytest.raises(ConfigError):
            TripletBank(qmodel, BATCH, generator="oracle", auto_replenish=False)
        with pytest.raises(ConfigError):
            TripletBank(
                qmodel, BATCH, stream_chunk_cols=0, auto_replenish=False
            )


class TestBankPersistence:
    def _rounds(self, qmodel, chunk):
        us, material = dealer_offline_round(
            qmodel, BATCH, seed=4, stream_chunk_cols=chunk
        )
        return [{"server_us": us, "client": material}]

    def test_blocked_share_roundtrip(self, qmodel, tmp_path):
        path = tmp_path / "bank.npz"
        fp = model_fingerprint(qmodel)
        rounds = self._rounds(qmodel, 7)
        save_bank(path, fingerprint=fp, batch=BATCH, rounds=rounds)
        loaded = load_bank(path, fingerprint=fp, batch=BATCH)
        assert len(loaded) == 1
        orig_u = rounds[0]["server_us"][0]
        back_u = loaded[0]["server_us"][0]
        assert isinstance(back_u, BlockedShare)
        assert back_u.n_blocks == orig_u.n_blocks
        assert (back_u.materialize() == orig_u.materialize()).all()
        back_v = loaded[0]["client"]["v"][0]
        assert (
            back_v.materialize() == rounds[0]["client"]["v"][0].materialize()
        ).all()

    def test_plain_bundle_layout_unchanged(self, qmodel, tmp_path):
        """Bundles without BlockedShare keep the historical key set (no
        ``u_blocks``/``v_blocks`` manifest fields, no ``_b{j}`` keys)."""
        import json

        path = tmp_path / "bank.npz"
        fp = model_fingerprint(qmodel)
        rounds = self._rounds(qmodel, None)
        assert all(isinstance(u, np.ndarray) for u in rounds[0]["server_us"])
        save_bank(path, fingerprint=fp, batch=BATCH, rounds=rounds)
        with np.load(path) as bundle:
            manifest = json.loads(bytes(bundle["manifest"]).decode())
            assert "u_blocks" not in manifest and "v_blocks" not in manifest
            assert not any("_b" in key for key in bundle.files)
        loaded = load_bank(path, fingerprint=fp, batch=BATCH)
        assert (loaded[0]["server_us"][0] == rounds[0]["server_us"][0]).all()

    def test_save_is_atomic_under_crash(self, qmodel, tmp_path, monkeypatch):
        """A crash mid-write must leave the previous bundle intact and no
        temp debris behind (satellite a: temp file + os.replace)."""
        path = tmp_path / "bank.npz"
        fp = model_fingerprint(qmodel)
        rounds = self._rounds(qmodel, 7)
        save_bank(path, fingerprint=fp, batch=BATCH, rounds=rounds)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez", boom)
        with pytest.raises(OSError):
            save_bank(path, fingerprint=fp, batch=BATCH, rounds=rounds)
        monkeypatch.undo()
        assert path.read_bytes() == before  # old bundle untouched
        assert os.listdir(tmp_path) == ["bank.npz"]  # no tmp leftovers
        loaded = load_bank(path, fingerprint=fp, batch=BATCH)
        assert len(loaded) == 1
