"""Failure injection: protocols must fail loudly, not corrupt silently."""

import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.crypto.group import MODP_TEST
from repro.errors import ChannelError, CryptoError, ProtocolError, ReproError
from repro.net import make_channel_pair, run_protocol
from repro.net.channel import Channel
from repro.net.faults import FaultPlan, FaultSpec, FaultyChannel
from repro.nn.model import mnist_mlp
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


class _TamperingChannel:
    """Wraps a channel; corrupts the Nth received array's first element."""

    def __init__(self, inner: Channel, corrupt_at: int) -> None:
        self._inner = inner
        self._count = 0
        self._corrupt_at = corrupt_at
        self.stats = inner.stats
        self.party = inner.party

    def send(self, obj):
        self._inner.send(obj)

    def recv(self):
        obj = self._inner.recv()
        self._count += 1
        if self._count == self._corrupt_at and isinstance(obj, np.ndarray) and obj.size:
            # Flip the low bit of every element: whichever ciphertext
            # slots the receiver opens, they are corrupted.  (A single
            # flipped slot could land on an *unchosen* OT message, which
            # OT semantics render harmless by design.)
            obj = obj.copy()
            obj ^= np.array(1, dtype=obj.dtype)
        return obj

    def close(self):
        self._inner.close()


class TestAbortMidProtocol:
    def test_peer_death_surfaces_as_channel_error(self, test_group, rng):
        ring = Ring(32)
        config = TripletConfig(
            ring=ring, scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        w = rng.integers(0, 2, size=(2, 3))

        def dying_client(chan):
            chan.recv()  # take the server's first base-OT message
            chan.close()  # then vanish

        with pytest.raises(ChannelError):
            run_protocol(
                lambda ch: generate_triplets_server(ch, w, config, seed=1),
                dying_client,
                timeout_s=10,
            )

    def test_timeout_is_bounded(self):
        def silent_server(chan):
            chan.recv()  # waits forever

        def silent_client(chan):
            chan.recv()

        # Whichever party's timer fires first closes the channel, so the
        # surfaced error is either its timeout or the peer-closed echo.
        with pytest.raises(ChannelError, match="timed out|peer closed"):
            run_protocol(silent_server, silent_client, timeout_s=0.2)


class TestTampering:
    def test_corrupted_ot_message_breaks_reconstruction(self, test_group, rng):
        """A flipped ciphertext bit must corrupt the output (no silent
        recovery), demonstrating the shares actually depend on every
        transmitted word."""
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        m, n = 3, 4
        w = rng.integers(-8, 8, size=(m, n))
        r = ring.sample(rng, (n, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=2, group=test_group)

        server_chan, client_chan = make_channel_pair(timeout_s=10)
        # The server (KK13 receiver / base-OT sender) receives: (1) the
        # base-OT response blob, (2) the OT ciphertext array — corrupt it.
        tampered = _TamperingChannel(server_chan, corrupt_at=2)

        import threading

        box = {}

        def client_main():
            try:
                box["v"] = generate_triplets_client(
                    client_chan, r, config, np.random.default_rng(5), seed=2
                )
            except ReproError as exc:  # corruption may also trip checks
                box["exc"] = exc

        thread = threading.Thread(target=client_main, daemon=True)
        thread.start()
        try:
            u = generate_triplets_server(tampered, w, config, seed=1)
        except ReproError:
            thread.join(timeout=10)
            return  # loud failure: acceptable
        thread.join(timeout=10)
        if "exc" in box:
            return
        got = ring.add(u, box["v"])
        expect = ring.matmul(ring.reduce(w), r)
        assert (got != expect).any(), "tampering went unnoticed AND harmless"


class TestShapeConfusion:
    def test_mismatched_configs_fail(self, test_group, rng):
        """Parties disagreeing on o must raise, not mis-reconstruct."""
        ring = Ring(32)
        scheme = FragmentScheme.binary()
        w = rng.integers(0, 2, size=(2, 3))
        r = ring.sample(rng, (3, 2))
        cfg_server = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=1, group=test_group
        )
        cfg_client = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=2, group=test_group
        )
        with pytest.raises((ReproError, ValueError)):
            run_protocol(
                lambda ch: generate_triplets_server(ch, w, cfg_server, seed=1),
                lambda ch: generate_triplets_client(
                    ch, r, cfg_client, np.random.default_rng(3), seed=2
                ),
                timeout_s=10,
            )

    def test_mismatched_schemes_fail_or_corrupt_loudly(self, test_group, rng):
        ring = Ring(32)
        w = rng.integers(0, 2, size=(2, 3))
        r = ring.sample(rng, (3, 1))
        cfg_server = TripletConfig(
            ring=ring, scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        cfg_client = TripletConfig(
            ring=ring, scheme=FragmentScheme.ternary(), m=2, n=3, o=1, group=test_group
        )
        try:
            result = run_protocol(
                lambda ch: generate_triplets_server(ch, w, cfg_server, seed=1),
                lambda ch: generate_triplets_client(
                    ch, r, cfg_client, np.random.default_rng(3), seed=2
                ),
                timeout_s=10,
            )
        except (ReproError, ValueError):
            return
        got = ring.add(result.server, result.client)
        expect = ring.matmul(ring.reduce(w), r)
        assert (got != expect).any()


# --------------------------------------------------------------------- #
# streamed-GC fault fuzz (pipelined online over FaultyChannel)
# --------------------------------------------------------------------- #
FUZZ_TIMEOUT_S = 3.0
FUZZ_DEADLINE_S = 25.0
FUZZ_CHUNK = 4  # 94 AND gates at l=32 -> 24 table-block frames per layer


class _StreamFuzzEnv:
    """Small pipelined workload + fault-free reference send counts."""

    def __init__(self):
        model = mnist_mlp(seed=5, hidden=6, input_dim=8, classes=3)
        self.qmodel = quantize_model(
            model, FragmentScheme.ternary(), Ring(32), frac_bits=6
        )
        self.meta = ModelMeta.from_model(self.qmodel)
        self.x_ring = self.qmodel.encoder.encode(
            np.random.default_rng(7).normal(size=(1, 8)).T
        )
        marks = {}

        def server_fn(chan):
            server = self._server(chan)
            server.offline(rounds=1)
            server.online()
            return server

        def client_fn(chan):
            client = self._client(chan)
            client.offline(rounds=1)
            marks["offline_sends"] = chan.stats.messages_sent[1]
            logits = client.online(self.x_ring)
            marks["total_sends"] = chan.stats.messages_sent[1]
            return logits

        result = run_protocol(server_fn, client_fn, timeout_s=30.0)
        self.ref_logits = result.client
        self.client_offline_sends = marks["offline_sends"]
        self.client_online_sends = marks["total_sends"] - marks["offline_sends"]
        assert self.client_online_sends > 20  # the stream really is chunked

    def _server(self, chan, pipelined=True):
        return Abnn2Server(
            chan, self.qmodel, 1, group=MODP_TEST, seed=31,
            pipeline=PipelineConfig(chunk=FUZZ_CHUNK) if pipelined else None,
        )

    def _client(self, chan, pipelined=True):
        return Abnn2Client(
            chan, self.meta, 1, group=MODP_TEST, seed=32,
            pipeline=PipelineConfig(chunk=FUZZ_CHUNK) if pipelined else None,
        )


@pytest.fixture(scope="module")
def fuzz_env():
    return _StreamFuzzEnv()


def _run_faulted_online(env, fault_plan, pipelined=True):
    """Fault-free offline, then one online round with the client's sends
    routed through ``FaultyChannel``.  Returns (server, client, errors)
    where ``errors[name]`` is the exception that party raised (if any).
    """
    server_chan, client_chan = make_channel_pair(timeout_s=FUZZ_TIMEOUT_S)
    parties: dict = {}
    errors: dict = {}

    def server_fn():
        server = parties["server"] = env._server(server_chan, pipelined)
        try:
            server.offline(rounds=1)
            server.online()
        except BaseException as exc:  # noqa: BLE001
            errors["server"] = exc
            server_chan.close()  # wake a peer parked on a dead stream

    def client_fn():
        client = parties["client"] = env._client(
            FaultyChannel(client_chan, fault_plan), pipelined
        )
        try:
            client.offline(rounds=1)
            client.online(env.x_ring)
        except BaseException as exc:  # noqa: BLE001
            errors["client"] = exc
            client_chan.close()

    threads = [
        threading.Thread(target=server_fn, name="fuzz-server", daemon=True),
        threading.Thread(target=client_fn, name="fuzz-client", daemon=True),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=FUZZ_DEADLINE_S)
    assert not any(t.is_alive() for t in threads), "faulted party hung"
    return parties["server"], parties["client"], errors


class TestStreamedGcFaultFuzz:
    """FaultPlan mid-chunk on the GC table stream: typed failure on both
    parties, no leaked worker threads, no consumed bank round."""

    @pytest.mark.parametrize("kind", ["drop", "truncate", "corrupt", "stall"])
    @pytest.mark.parametrize("offset", [2, 9, 17])
    def test_fault_mid_stream_fails_typed_on_both_parties(
        self, fuzz_env, kind, offset
    ):
        assert offset < fuzz_env.client_online_sends
        plan = FaultPlan(
            [
                FaultSpec(
                    kind=kind,
                    message_index=fuzz_env.client_offline_sends + offset,
                    seed=offset,
                )
            ]
        )
        before = set(threading.enumerate())
        start = time.monotonic()
        server, client, errors = _run_faulted_online(fuzz_env, plan)
        assert time.monotonic() - start < FUZZ_DEADLINE_S
        assert client.chan.fired, "the scheduled fault never fired"
        # Both parties surface ProtocolError (the pipelined executor and
        # the stream wrap transport faults into the protocol taxonomy).
        assert isinstance(errors.get("server"), ProtocolError), errors.get("server")
        assert isinstance(errors.get("client"), ProtocolError), errors.get("client")
        # The aborted round was not consumed on either side.
        assert server.rounds_available == 1
        assert client.rounds_available == 1
        # The garbler worker thread exited with the abort.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = [
                t for t in threading.enumerate()
                if t not in before and t.is_alive()
            ]
            if not leaked:
                break
            time.sleep(0.01)
        assert not leaked, f"leaked threads: {[t.name for t in leaked]}"


class TestBankDepthAfterAbort:
    """Regression for the online() consume-on-entry bug: a round aborted
    mid-flight must stay banked and remain genuinely re-runnable."""

    @pytest.mark.parametrize("pipelined", [False, True])
    def test_aborted_round_stays_banked_and_reruns(self, fuzz_env, pipelined):
        env = fuzz_env
        plan = FaultPlan(
            [FaultSpec(kind="drop", message_index=env.client_offline_sends + 2)]
        )
        server, client, errors = _run_faulted_online(env, plan, pipelined)
        assert isinstance(
            errors.get("server"), (ChannelError, ProtocolError)
        ), errors.get("server")
        assert isinstance(
            errors.get("client"), (ChannelError, ProtocolError)
        ), errors.get("client")
        assert server.rounds_available == 1
        assert client.rounds_available == 1

        # Re-runnable, not merely counted: the surviving material predicts
        # correctly when exported into fresh parties on a fresh channel.
        server_material = server.export_offline_round()
        client_material = client.export_offline_round()
        assert server.rounds_available == 0
        assert client.rounds_available == 0

        def retry_server(chan):
            fresh = env._server(chan, pipelined)
            fresh.load_offline_round(server_material)
            fresh.online()

        def retry_client(chan):
            fresh = env._client(chan, pipelined)
            fresh.load_offline_round(client_material)
            return fresh.online(env.x_ring)

        result = run_protocol(retry_server, retry_client, timeout_s=30.0)
        assert (result.client == env.ref_logits).all()
