"""Failure injection: protocols must fail loudly, not corrupt silently."""

import numpy as np
import pytest

from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.errors import ChannelError, CryptoError, ProtocolError, ReproError
from repro.net import make_channel_pair, run_protocol
from repro.net.channel import Channel
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


class _TamperingChannel:
    """Wraps a channel; corrupts the Nth received array's first element."""

    def __init__(self, inner: Channel, corrupt_at: int) -> None:
        self._inner = inner
        self._count = 0
        self._corrupt_at = corrupt_at
        self.stats = inner.stats
        self.party = inner.party

    def send(self, obj):
        self._inner.send(obj)

    def recv(self):
        obj = self._inner.recv()
        self._count += 1
        if self._count == self._corrupt_at and isinstance(obj, np.ndarray) and obj.size:
            # Flip the low bit of every element: whichever ciphertext
            # slots the receiver opens, they are corrupted.  (A single
            # flipped slot could land on an *unchosen* OT message, which
            # OT semantics render harmless by design.)
            obj = obj.copy()
            obj ^= np.array(1, dtype=obj.dtype)
        return obj

    def close(self):
        self._inner.close()


class TestAbortMidProtocol:
    def test_peer_death_surfaces_as_channel_error(self, test_group, rng):
        ring = Ring(32)
        config = TripletConfig(
            ring=ring, scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        w = rng.integers(0, 2, size=(2, 3))

        def dying_client(chan):
            chan.recv()  # take the server's first base-OT message
            chan.close()  # then vanish

        with pytest.raises(ChannelError):
            run_protocol(
                lambda ch: generate_triplets_server(ch, w, config, seed=1),
                dying_client,
                timeout_s=10,
            )

    def test_timeout_is_bounded(self):
        def silent_server(chan):
            chan.recv()  # waits forever

        def silent_client(chan):
            chan.recv()

        # Whichever party's timer fires first closes the channel, so the
        # surfaced error is either its timeout or the peer-closed echo.
        with pytest.raises(ChannelError, match="timed out|peer closed"):
            run_protocol(silent_server, silent_client, timeout_s=0.2)


class TestTampering:
    def test_corrupted_ot_message_breaks_reconstruction(self, test_group, rng):
        """A flipped ciphertext bit must corrupt the output (no silent
        recovery), demonstrating the shares actually depend on every
        transmitted word."""
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        m, n = 3, 4
        w = rng.integers(-8, 8, size=(m, n))
        r = ring.sample(rng, (n, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=2, group=test_group)

        server_chan, client_chan = make_channel_pair(timeout_s=10)
        # The server (KK13 receiver / base-OT sender) receives: (1) the
        # base-OT response blob, (2) the OT ciphertext array — corrupt it.
        tampered = _TamperingChannel(server_chan, corrupt_at=2)

        import threading

        box = {}

        def client_main():
            try:
                box["v"] = generate_triplets_client(
                    client_chan, r, config, np.random.default_rng(5), seed=2
                )
            except ReproError as exc:  # corruption may also trip checks
                box["exc"] = exc

        thread = threading.Thread(target=client_main, daemon=True)
        thread.start()
        try:
            u = generate_triplets_server(tampered, w, config, seed=1)
        except ReproError:
            thread.join(timeout=10)
            return  # loud failure: acceptable
        thread.join(timeout=10)
        if "exc" in box:
            return
        got = ring.add(u, box["v"])
        expect = ring.matmul(ring.reduce(w), r)
        assert (got != expect).any(), "tampering went unnoticed AND harmless"


class TestShapeConfusion:
    def test_mismatched_configs_fail(self, test_group, rng):
        """Parties disagreeing on o must raise, not mis-reconstruct."""
        ring = Ring(32)
        scheme = FragmentScheme.binary()
        w = rng.integers(0, 2, size=(2, 3))
        r = ring.sample(rng, (3, 2))
        cfg_server = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=1, group=test_group
        )
        cfg_client = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=2, group=test_group
        )
        with pytest.raises((ReproError, ValueError)):
            run_protocol(
                lambda ch: generate_triplets_server(ch, w, cfg_server, seed=1),
                lambda ch: generate_triplets_client(
                    ch, r, cfg_client, np.random.default_rng(3), seed=2
                ),
                timeout_s=10,
            )

    def test_mismatched_schemes_fail_or_corrupt_loudly(self, test_group, rng):
        ring = Ring(32)
        w = rng.integers(0, 2, size=(2, 3))
        r = ring.sample(rng, (3, 1))
        cfg_server = TripletConfig(
            ring=ring, scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        cfg_client = TripletConfig(
            ring=ring, scheme=FragmentScheme.ternary(), m=2, n=3, o=1, group=test_group
        )
        try:
            result = run_protocol(
                lambda ch: generate_triplets_server(ch, w, cfg_server, seed=1),
                lambda ch: generate_triplets_client(
                    ch, r, cfg_client, np.random.default_rng(3), seed=2
                ),
                timeout_s=10,
            )
        except (ReproError, ValueError):
            return
        got = ring.add(result.server, result.client)
        expect = ring.matmul(ring.reduce(w), r)
        assert (got != expect).any()
