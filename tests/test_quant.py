"""Quantization: fragment schemes, quantizers, fixed-point encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuantizationError
from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import TABLE2_SCHEMES, FragmentScheme, FragmentSpec
from repro.quant.schemes import (
    quantize_binary,
    quantize_for_scheme,
    quantize_symmetric,
    quantize_ternary,
)
from repro.utils.ring import Ring


class TestFragmentScheme:
    def test_table2_schemes_exist(self):
        assert len(TABLE2_SCHEMES) == 15

    @pytest.mark.parametrize("name,scheme", sorted(TABLE2_SCHEMES.items()))
    def test_digits_compose_roundtrip(self, name, scheme, rng):
        lo, hi = scheme.weight_range
        weights = rng.integers(lo, hi + 1, size=200)
        assert (scheme.compose(scheme.digits(weights)) == weights).all()

    def test_gamma_counts(self):
        assert TABLE2_SCHEMES["8(2,2,2,2)"].gamma == 4
        assert TABLE2_SCHEMES["8(1,...,1)"].gamma == 8
        assert TABLE2_SCHEMES["8(4,4)"].gamma == 2
        assert TABLE2_SCHEMES["ternary"].gamma == 1
        assert TABLE2_SCHEMES["binary"].gamma == 1

    def test_max_n(self):
        assert TABLE2_SCHEMES["8(2,2,2,2)"].max_n == 4
        assert TABLE2_SCHEMES["8(3,3,2)"].max_n == 8
        assert TABLE2_SCHEMES["ternary"].max_n == 3

    def test_signed_range_symmetric_schemes(self):
        assert TABLE2_SCHEMES["8(2,2,2,2)"].weight_range == (-128, 127)
        assert TABLE2_SCHEMES["4(2,2)"].weight_range == (-8, 7)
        assert TABLE2_SCHEMES["3(2,1)"].weight_range == (-4, 3)

    def test_special_ranges(self):
        assert FragmentScheme.binary().weight_range == (0, 1)
        assert FragmentScheme.ternary().weight_range == (-1, 1)

    def test_ternary_digit_mapping(self):
        scheme = FragmentScheme.ternary()
        digits = scheme.digits(np.array([-1, 0, 1]))
        assert digits[:, 0].tolist() == [2, 0, 1]

    def test_out_of_range_rejected(self):
        with pytest.raises(QuantizationError):
            TABLE2_SCHEMES["4(2,2)"].digits(np.array([100]))

    def test_mixed_radix_groups(self):
        scheme = TABLE2_SCHEMES["8(3,3,2)"]
        ns = [f.n_values for f in scheme.fragments]
        assert ns == [8, 8, 4]

    def test_invalid_bit_widths(self):
        with pytest.raises(QuantizationError):
            FragmentScheme.from_bits(())
        with pytest.raises(QuantizationError):
            FragmentScheme.from_bits((2, 0))

    def test_fragment_spec_validation(self):
        with pytest.raises(QuantizationError):
            FragmentSpec(1, (0,))
        with pytest.raises(QuantizationError):
            FragmentSpec(2, (0,))

    @given(
        widths=st.lists(st.integers(1, 4), min_size=1, max_size=4),
        signed=st.booleans(),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property_any_scheme(self, widths, signed):
        scheme = FragmentScheme.from_bits(tuple(widths), signed=signed)
        lo, hi = scheme.weight_range
        rng = np.random.default_rng(sum(widths))
        weights = rng.integers(lo, hi + 1, size=64)
        assert (scheme.compose(scheme.digits(weights)) == weights).all()

    def test_unsigned_scheme_range(self):
        scheme = FragmentScheme.from_bits((2, 2), signed=False)
        assert scheme.weight_range == (0, 15)


class TestQuantizers:
    def test_symmetric_power_of_two_scale(self, rng):
        w = rng.normal(scale=0.2, size=(16, 16))
        q = quantize_symmetric(w, FragmentScheme.from_bits((2, 2, 2, 2)))
        assert q.shift is not None
        assert q.scale == pytest.approx(2.0**-q.shift)
        lo, hi = q.scheme.weight_range
        assert q.ints.min() >= lo and q.ints.max() <= hi

    def test_symmetric_error_shrinks_with_bitwidth(self, rng):
        w = rng.normal(scale=0.2, size=(32, 32))
        err8 = quantize_symmetric(w, FragmentScheme.from_bits((2, 2, 2, 2))).quantization_error(w)
        err4 = quantize_symmetric(w, FragmentScheme.from_bits((2, 2))).quantization_error(w)
        err3 = quantize_symmetric(w, FragmentScheme.from_bits((2, 1))).quantization_error(w)
        assert err8 < err4 < err3

    def test_symmetric_rejects_unsigned_scheme(self, rng):
        with pytest.raises(QuantizationError):
            quantize_symmetric(rng.normal(size=4), FragmentScheme.binary())

    def test_ternary_values(self, rng):
        w = rng.normal(size=100)
        q = quantize_ternary(w)
        assert set(np.unique(q.ints)) <= {-1, 0, 1}
        assert q.scale > 0

    def test_binary_values(self, rng):
        w = rng.normal(size=100)
        q = quantize_binary(w)
        assert set(np.unique(q.ints)) <= {0, 1}

    def test_dispatch(self, rng):
        w = rng.normal(size=10)
        assert quantize_for_scheme(w, FragmentScheme.binary()).scheme.name == "binary"
        assert quantize_for_scheme(w, FragmentScheme.ternary()).scheme.name == "ternary"
        assert quantize_for_scheme(w, FragmentScheme.from_bits((2, 2))).shift is not None

    def test_zero_weights(self):
        q = quantize_symmetric(np.zeros(5), FragmentScheme.from_bits((2, 2)))
        assert (q.ints == 0).all()


class TestFixedPoint:
    def test_roundtrip(self, ring32):
        enc = FixedPointEncoder(ring32, 8)
        values = np.array([0.0, 1.5, -2.25, 100.0, -0.00390625])
        got = enc.decode(enc.encode(values))
        assert np.allclose(got, values, atol=2.0**-8)

    def test_negative_encoding_twos_complement(self, ring32):
        enc = FixedPointEncoder(ring32, 4)
        assert int(enc.encode(-1.0)) == (1 << 32) - 16

    def test_overflow_rejected(self):
        enc = FixedPointEncoder(Ring(16), 8)
        with pytest.raises(QuantizationError):
            enc.encode(200.0)  # 200 * 256 > 2^15

    def test_extra_scale(self, ring32):
        enc = FixedPointEncoder(ring32, 8)
        got = enc.decode(enc.encode(4.0), extra_scale=2.0)
        assert got == pytest.approx(2.0)

    def test_invalid_frac_bits(self, ring32):
        with pytest.raises(QuantizationError):
            FixedPointEncoder(ring32, 32)
        with pytest.raises(QuantizationError):
            FixedPointEncoder(ring32, -1)

    @given(value=st.floats(-1000, 1000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, value):
        enc = FixedPointEncoder(Ring(32), 10)
        assert abs(float(enc.decode(enc.encode(value))) - value) <= 2.0**-10 / 2 + 1e-9
