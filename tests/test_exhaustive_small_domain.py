"""Exhaustive small-domain correctness sweeps.

Two protocol components are small enough to verify over their *entire*
input domain rather than by sampling:

* the GC ReLU layer for ring widths l <= 6 — every (y0, y1) share pair,
  i.e. all ``4**l`` combinations at once as one batched run;
* fragment digit encoding for every Table 2 scheme (eta <= 8) — every
  representable weight round-trips through ``digits``/``compose`` with
  in-range digits and a unique digit vector.
"""

import numpy as np
import pytest

from repro.core.relu import relu_layer_client, relu_layer_server
from repro.gc.protocol import GcSessions
from repro.net import run_protocol
from repro.quant.fragments import TABLE2_SCHEMES
from repro.utils.ring import Ring


def _run_relu_shares(ring, y0, y1, z1, variant, group):
    def server_fn(chan):
        sessions = GcSessions(chan, "evaluator", group=group, seed=1)
        return relu_layer_server(chan, y0, sessions, ring, variant)

    def client_fn(chan):
        sessions = GcSessions(chan, "garbler", group=group, seed=2)
        return relu_layer_client(
            chan, y1, z1, sessions, ring, np.random.default_rng(9), variant
        )

    return run_protocol(server_fn, client_fn).server


class TestReluExhaustive:
    @pytest.mark.parametrize("bits", [2, 3, 4, 5, 6])
    def test_oblivious_all_share_pairs(self, bits, test_group, rng):
        """ReLU(y0 + y1) is correct for EVERY share pair of an l-bit ring."""
        ring = Ring(bits)
        domain = np.arange(1 << bits, dtype=np.uint64)
        # all (y0, y1) combinations, flattened into one batched GC run
        y0 = np.repeat(domain, 1 << bits)
        y1 = np.tile(domain, 1 << bits)
        z1 = ring.sample(rng, y0.shape)
        z0 = _run_relu_shares(ring, y0, y1, z1, "oblivious", test_group)
        y = ring.add(y0, y1)
        expected = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (ring.add(z0, z1) == expected).all()

    @pytest.mark.parametrize("bits", [2, 3, 4])
    def test_optimized_all_share_pairs(self, bits, test_group, rng):
        ring = Ring(bits)
        domain = np.arange(1 << bits, dtype=np.uint64)
        y0 = np.repeat(domain, 1 << bits)
        y1 = np.tile(domain, 1 << bits)
        z1 = ring.sample(rng, y0.shape)
        z0 = _run_relu_shares(ring, y0, y1, z1, "optimized", test_group)
        y = ring.add(y0, y1)
        expected = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (ring.add(z0, z1) == expected).all()


class TestFragmentExhaustive:
    @pytest.mark.parametrize("scheme_name", sorted(TABLE2_SCHEMES))
    def test_every_weight_round_trips(self, scheme_name):
        scheme = TABLE2_SCHEMES[scheme_name]
        lo, hi = scheme.weight_range
        weights = np.arange(lo, hi + 1, dtype=np.int64)
        digits = scheme.digits(weights)
        assert digits.shape == (weights.size, scheme.gamma)
        # every digit is a valid OT choice index for its fragment
        for idx, frag in enumerate(scheme.fragments):
            column = digits[:, idx]
            assert column.min() >= 0
            assert column.max() < frag.n_values
        # encoding is injective over the full range
        assert len({tuple(row) for row in digits}) == weights.size
        # and compose() inverts it exactly
        assert (scheme.compose(digits) == weights).all()

    @pytest.mark.parametrize("scheme_name", sorted(TABLE2_SCHEMES))
    def test_range_is_contiguous_and_covers_eta_bits(self, scheme_name):
        scheme = TABLE2_SCHEMES[scheme_name]
        lo, hi = scheme.weight_range
        assert hi - lo + 1 == (
            np.prod([frag.n_values for frag in scheme.fragments])
            if scheme_name != "ternary"
            else 3
        )
        if scheme.signed and scheme_name != "ternary":
            assert lo == -(1 << (scheme.eta - 1))
            assert hi == (1 << (scheme.eta - 1)) - 1

    def test_out_of_range_weight_rejected(self):
        from repro.errors import QuantizationError

        scheme = TABLE2_SCHEMES["4(2,2)"]
        _lo, hi = scheme.weight_range
        with pytest.raises(QuantizationError):
            scheme.digits(np.array([hi + 1]))
