"""Vectorized SipHash-2-4 against an independent scalar reference."""

import numpy as np
import pytest

from repro.crypto.siphash import FIXED_KEY, prf_expand, siphash24
from repro.errors import CryptoError

MASK = (1 << 64) - 1


def _rotl(x, b):
    return ((x << b) | (x >> (64 - b))) & MASK


def _sipround(v):
    v0, v1, v2, v3 = v
    v0 = (v0 + v1) & MASK
    v1 = _rotl(v1, 13) ^ v0
    v0 = _rotl(v0, 32)
    v2 = (v2 + v3) & MASK
    v3 = _rotl(v3, 16) ^ v2
    v0 = (v0 + v3) & MASK
    v3 = _rotl(v3, 21) ^ v0
    v2 = (v2 + v1) & MASK
    v1 = _rotl(v1, 17) ^ v2
    v2 = _rotl(v2, 32)
    return [v0, v1, v2, v3]


def reference_siphash24(words, key=FIXED_KEY):
    """Scalar SipHash-2-4 for whole-u64 messages, straight from the spec."""
    v = [
        0x736F6D6570736575 ^ key[0],
        0x646F72616E646F6D ^ key[1],
        0x6C7967656E657261 ^ key[0],
        0x7465646279746573 ^ key[1],
    ]
    for m in words:
        v[3] ^= m
        v = _sipround(v)
        v = _sipround(v)
        v[0] ^= m
    final = ((8 * len(words)) % 256) << 56
    v[3] ^= final
    v = _sipround(v)
    v = _sipround(v)
    v[0] ^= final
    v[2] ^= 0xFF
    for _ in range(4):
        v = _sipround(v)
    return v[0] ^ v[1] ^ v[2] ^ v[3]


class TestKnownVector:
    def test_official_len8_vector(self):
        # SipHash reference vectors: key 00..0f, message bytes 00..07
        # digest bytes 62 24 93 9a 79 f5 f5 93 (little endian u64 below).
        msg = np.array([[0x0706050403020100]], dtype=np.uint64)
        assert int(siphash24(msg)[0]) == 0x93F5F5799A932462


class TestAgainstReference:
    @pytest.mark.parametrize("words", [1, 2, 3, 5, 8])
    def test_random_messages(self, words, rng):
        msgs = rng.integers(0, 1 << 63, size=(50, words), dtype=np.uint64)
        got = siphash24(msgs)
        for i in range(msgs.shape[0]):
            assert int(got[i]) == reference_siphash24([int(w) for w in msgs[i]])

    def test_key_changes_output(self, rng):
        msg = rng.integers(0, 1 << 63, size=(1, 2), dtype=np.uint64)
        a = siphash24(msg, key=(1, 2))
        b = siphash24(msg, key=(1, 3))
        assert int(a[0]) != int(b[0])

    def test_multidimensional_batches(self, rng):
        msgs = rng.integers(0, 1 << 63, size=(4, 5, 2), dtype=np.uint64)
        got = siphash24(msgs)
        assert got.shape == (4, 5)
        assert int(got[1, 2]) == reference_siphash24([int(w) for w in msgs[1, 2]])


class TestPrfExpand:
    def test_shape(self, rng):
        msgs = rng.integers(0, 1 << 63, size=(7, 3), dtype=np.uint64)
        out = prf_expand(msgs, out_words=5)
        assert out.shape == (7, 5)

    def test_output_words_differ(self, rng):
        msgs = rng.integers(0, 1 << 63, size=(4, 2), dtype=np.uint64)
        out = prf_expand(msgs, out_words=4)
        # Each column comes from a distinct counter: columns must differ.
        assert len({int(x) for x in out[0]}) == 4

    def test_domain_separation(self, rng):
        msgs = rng.integers(0, 1 << 63, size=(4, 2), dtype=np.uint64)
        a = prf_expand(msgs, 2, domain=1)
        b = prf_expand(msgs, 2, domain=2)
        assert (a != b).any()

    def test_matches_direct_siphash(self, rng):
        msgs = rng.integers(0, 1 << 63, size=(3, 2), dtype=np.uint64)
        out = prf_expand(msgs, out_words=2, domain=0)
        for i in range(3):
            for j in range(2):
                expect = reference_siphash24([int(msgs[i, 0]), int(msgs[i, 1]), j])
                assert int(out[i, j]) == expect

    def test_invalid_out_words(self):
        with pytest.raises(CryptoError):
            prf_expand(np.zeros((1, 1), dtype=np.uint64), 0)
