"""Smoke-run the example scripts (they are part of the public surface)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=900,
    )


def test_quickstart_runs():
    result = _run("quickstart.py", "--batch", "1")
    assert result.returncode == 0, result.stderr
    assert "predictions:" in result.stdout
    assert "offline phase" in result.stdout


def test_private_diagnosis_runs():
    result = _run("private_diagnosis.py")
    assert result.returncode == 0, result.stderr
    assert "urgent" in result.stdout or "low risk" in result.stdout
    assert "never saw" in result.stdout


@pytest.mark.slow
def test_bitwidth_sweep_runs():
    result = _run("bitwidth_sweep.py")
    assert result.returncode == 0, result.stderr
    assert "binary" in result.stdout and "8-bit" in result.stdout


@pytest.mark.slow
def test_wan_planning_runs():
    result = _run("wan_planning.py")
    assert result.returncode == 0, result.stderr
    assert "batch" in result.stdout
