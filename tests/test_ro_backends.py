"""Random-oracle backend interchangeability.

DESIGN.md claims the SHA-256 reference backend and the vectorized SipHash
backend are drop-in interchangeable for every protocol (they only have to
agree *between the two parties*, not with each other).  These tests run
the main protocols under the SHA-256 backend to prove nothing silently
depends on SipHash specifics.
"""

import numpy as np
import pytest

from repro.core.relu import relu_layer_client, relu_layer_server
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.crypto.hash_ro import sha256_ro
from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.crypto.kk13 import Kk13Receiver, Kk13Sender
from repro.gc.protocol import GcSessions
from repro.net import run_protocol
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


class TestSha256Backend:
    def test_iknp_chosen(self, test_group, rng):
        m = 40
        msgs = rng.integers(0, 1 << 63, size=(m, 2, 1), dtype=np.uint64)
        choices = rng.integers(0, 2, size=m, dtype=np.uint8)
        result = run_protocol(
            lambda ch: OtExtSender(ch, group=test_group, ro=sha256_ro, seed=1).send_chosen(msgs),
            lambda ch: OtExtReceiver(ch, group=test_group, ro=sha256_ro, seed=2).recv_chosen(
                choices, 1
            ),
        )
        assert (result.client == msgs[np.arange(m), choices.astype(int)]).all()

    def test_kk13_chosen(self, test_group, rng):
        m, n = 30, 4
        msgs = rng.integers(0, 1 << 63, size=(m, n, 1), dtype=np.uint64)
        choices = rng.integers(0, n, size=m)
        result = run_protocol(
            lambda ch: Kk13Sender(ch, n, group=test_group, ro=sha256_ro, seed=1).send_chosen(msgs),
            lambda ch: Kk13Receiver(ch, n, group=test_group, ro=sha256_ro, seed=2).recv_chosen(
                choices, 1
            ),
        )
        assert (result.client == msgs[np.arange(m), choices]).all()

    def test_triplets(self, test_group, rng):
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        w = rng.integers(-8, 8, size=(3, 5))
        r = ring.sample(rng, (5, 2))
        config = TripletConfig(
            ring=ring, scheme=scheme, m=3, n=5, o=2, group=test_group, ro=sha256_ro
        )
        result = run_protocol(
            lambda ch: generate_triplets_server(ch, w, config, seed=1),
            lambda ch: generate_triplets_client(ch, r, config, np.random.default_rng(4), seed=2),
        )
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_gc_relu(self, test_group, rng):
        ring = Ring(8)
        y = ring.reduce(rng.integers(-100, 100, size=10))
        y1 = ring.sample(rng, 10)
        y0 = ring.sub(y, y1)
        z1 = ring.sample(rng, 10)
        result = run_protocol(
            lambda ch: relu_layer_server(
                ch, y0, GcSessions(ch, "evaluator", group=test_group, ro=sha256_ro, seed=1),
                ring,
            ),
            lambda ch: relu_layer_client(
                ch, y1, z1,
                GcSessions(ch, "garbler", group=test_group, ro=sha256_ro, seed=2),
                ring, np.random.default_rng(7),
            ),
        )
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (ring.add(result.server, result.client) == relu).all()

    def test_mixed_backends_fail_loudly(self, test_group, rng):
        """Parties on different backends must not silently produce shares
        that reconstruct to garbage equal to the true product."""
        from repro.crypto.hash_ro import siphash_ro

        ring = Ring(32)
        scheme = FragmentScheme.binary()
        w = rng.integers(0, 2, size=(2, 3))
        r = ring.sample(rng, (3, 1))
        cfg_sha = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=1, group=test_group, ro=sha256_ro
        )
        cfg_sip = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=1, group=test_group, ro=siphash_ro
        )
        result = run_protocol(
            lambda ch: generate_triplets_server(ch, w, cfg_sha, seed=1),
            lambda ch: generate_triplets_client(ch, r, cfg_sip, np.random.default_rng(4), seed=2),
        )
        got = ring.add(result.server, result.client)
        expect = ring.matmul(ring.reduce(w), r)
        assert (got != expect).any()
