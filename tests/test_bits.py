"""Bit packing utilities: int<->bits, byte packing, ring-element packing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.utils.bits import (
    bits_to_int,
    concat_packed_rows,
    int_to_bits,
    pack_bits,
    pack_bits_to_words,
    pack_ring_words,
    packed_word_count,
    split_packed_rows,
    transpose_bit_matrix,
    transpose_packed,
    unpack_bits,
    unpack_ring_words,
    unpack_words_to_bits,
    xor_bytes,
)


class TestIntBits:
    def test_lsb_first(self):
        bits = int_to_bits(np.uint64(6), 4)
        assert bits.tolist() == [0, 1, 1, 0]

    def test_roundtrip_array(self, rng):
        values = rng.integers(0, 1 << 32, size=(3, 5), dtype=np.uint64)
        assert (bits_to_int(int_to_bits(values, 32)) == values).all()

    @pytest.mark.parametrize("bits", [0, 65])
    def test_invalid_width(self, bits):
        with pytest.raises(ConfigError):
            int_to_bits(np.uint64(1), bits)

    def test_bits_to_int_width_check(self):
        with pytest.raises(ConfigError):
            bits_to_int(np.zeros((1, 65), dtype=np.uint8))

    @given(st.integers(0, 2**64 - 1))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, value):
        assert int(bits_to_int(int_to_bits(np.uint64(value), 64))) == value


class TestBytePacking:
    def test_pack_unpack_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=123, dtype=np.uint8)
        assert (unpack_bits(pack_bits(bits), 123) == bits).all()

    def test_unpack_too_short(self):
        with pytest.raises(ConfigError):
            unpack_bits(b"\x00", 9)

    def test_xor_bytes(self):
        assert xor_bytes(b"\x0f\xf0", b"\xff\xff") == b"\xf0\x0f"

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ConfigError):
            xor_bytes(b"\x00", b"\x00\x01")

    def test_transpose(self):
        mat = np.array([[1, 0, 1], [0, 1, 1]], dtype=np.uint8)
        assert (transpose_bit_matrix(mat) == mat.T).all()

    def test_transpose_requires_2d(self):
        with pytest.raises(ConfigError):
            transpose_bit_matrix(np.zeros(4, dtype=np.uint8))


class TestRingPacking:
    @pytest.mark.parametrize("bits", [8, 16, 32, 64])
    def test_fast_path_roundtrip(self, bits, rng):
        count = 13
        vals = rng.integers(0, 1 << min(bits, 63), size=(4, count), dtype=np.uint64)
        if bits < 64:
            vals &= np.uint64((1 << bits) - 1)
        packed = pack_ring_words(vals, bits)
        assert packed.shape == (4, packed_word_count(count, bits))
        assert (unpack_ring_words(packed, bits, count) == vals).all()

    @pytest.mark.parametrize("bits", [3, 17, 33, 63])
    def test_generic_path_roundtrip(self, bits, rng):
        count = 9
        vals = rng.integers(0, 1 << bits, size=(2, 3, count), dtype=np.uint64)
        packed = pack_ring_words(vals, bits)
        assert (unpack_ring_words(packed, bits, count) == vals).all()

    def test_word_counts(self):
        assert packed_word_count(128, 32) == 64
        assert packed_word_count(1, 32) == 1
        assert packed_word_count(3, 32) == 2
        assert packed_word_count(5, 13) == 2

    def test_density_is_exact_for_aligned_sizes(self, rng):
        # 128 x 32-bit elements must occupy exactly 64 words (no padding):
        # this is what keeps OT message traffic faithful to the paper.
        vals = rng.integers(0, 1 << 32, size=(1, 128), dtype=np.uint64)
        assert pack_ring_words(vals, 32).shape == (1, 64)

    def test_unpack_wrong_word_count(self):
        with pytest.raises(ConfigError):
            unpack_ring_words(np.zeros((1, 3), dtype=np.uint64), 32, 128)

    @given(
        bits=st.integers(1, 64),
        values=st.lists(st.integers(0, 2**64 - 1), min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, bits, values):
        mask = (1 << bits) - 1
        vals = np.array([v & mask for v in values], dtype=np.uint64)[None, :]
        packed = pack_ring_words(vals, bits)
        assert (unpack_ring_words(packed, bits, vals.shape[1]) == vals).all()


def _ref_packed(bits_mat):
    """Reference word packer via numpy packbits (LSB-first)."""
    rows, n = bits_mat.shape
    words = (n + 63) // 64
    buf = np.zeros((rows, words * 64), dtype=np.uint8)
    buf[:, :n] = bits_mat
    return np.packbits(buf, axis=1, bitorder="little").view(np.uint64).reshape(rows, words)


class TestWordPacking:
    def test_pack_bits_to_words_matches_reference(self, rng):
        bits = rng.integers(0, 2, size=(5, 130), dtype=np.uint8)
        assert (pack_bits_to_words(bits) == _ref_packed(bits)).all()

    def test_unpack_words_roundtrip(self, rng):
        bits = rng.integers(0, 2, size=(3, 77), dtype=np.uint8)
        assert (unpack_words_to_bits(pack_bits_to_words(bits), 77) == bits).all()

    def test_unpack_too_few_words(self):
        with pytest.raises(ConfigError):
            unpack_words_to_bits(np.zeros((2, 1), dtype=np.uint64), 65)


class TestPackedTranspose:
    """The 64x64-block bit transpose behind vectorized OT extension."""

    @pytest.mark.parametrize("shape", [(64, 64), (128, 100), (256, 1), (192, 130)])
    def test_matches_unpacked_transpose(self, shape, rng):
        r, c = shape
        bits = rng.integers(0, 2, size=(r, c), dtype=np.uint8)
        out = transpose_packed(_ref_packed(bits))
        words = (c + 63) // 64
        assert out.shape == (words * 64, r // 64)
        assert (out[:c] == _ref_packed(np.ascontiguousarray(bits.T))).all()
        # Padding columns transpose to all-zero rows.
        assert not out[c:].any()

    def test_double_transpose_is_identity(self, rng):
        rows = rng.integers(0, 1 << 63, size=(128, 2), dtype=np.uint64)
        assert (transpose_packed(transpose_packed(rows)) == rows).all()

    def test_rejects_non_multiple_of_64_rows(self):
        # The documented contract: row counts must be word-aligned; callers
        # zero-pad (columns may be ragged, rows may not).
        with pytest.raises(ConfigError):
            transpose_packed(np.zeros((100, 2), dtype=np.uint64))

    def test_rejects_non_2d(self):
        with pytest.raises(ConfigError):
            transpose_packed(np.zeros(64, dtype=np.uint64))

    @given(
        r_tiles=st.integers(1, 3),
        c=st.integers(1, 150),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_transpose_property(self, r_tiles, c, seed):
        local = np.random.default_rng(seed)
        bits = local.integers(0, 2, size=(r_tiles * 64, c), dtype=np.uint8)
        out = transpose_packed(_ref_packed(bits))
        assert (out[:c] == _ref_packed(np.ascontiguousarray(bits.T))).all()


class TestPackedRowCodec:
    """Wire blob <-> packed rows, byte-identical to pack_bits of the matrix."""

    @pytest.mark.parametrize("shape", [(128, 64), (128, 300), (256, 77), (64, 63), (3, 40)])
    def test_concat_matches_pack_bits(self, shape, rng):
        rows, n = shape
        bits = rng.integers(0, 2, size=(rows, n), dtype=np.uint8)
        assert concat_packed_rows(_ref_packed(bits), n) == pack_bits(bits)

    @pytest.mark.parametrize("shape", [(128, 64), (128, 300), (256, 77), (64, 63), (3, 40)])
    def test_split_roundtrip(self, shape, rng):
        rows, n = shape
        bits = rng.integers(0, 2, size=(rows, n), dtype=np.uint8)
        packed = _ref_packed(bits)
        assert (split_packed_rows(pack_bits(bits), rows, n) == packed).all()

    def test_concat_masks_stray_tail_bits(self):
        rows = np.full((2, 1), 0xFFFFFFFFFFFFFFFF, dtype=np.uint64)
        blob = concat_packed_rows(rows, 60)
        assert split_packed_rows(blob, 2, 60).max() == np.uint64((1 << 60) - 1)

    def test_split_rejects_wrong_length(self):
        with pytest.raises(ConfigError):
            split_packed_rows(b"\x00" * 10, 4, 17)

    def test_concat_rejects_wrong_width(self):
        with pytest.raises(ConfigError):
            concat_packed_rows(np.zeros((4, 2), dtype=np.uint64), 64)

    @given(
        rows=st.integers(1, 40),
        n=st.integers(1, 200),
        seed=st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_codec_property(self, rows, n, seed):
        local = np.random.default_rng(seed)
        bits = local.integers(0, 2, size=(rows, n), dtype=np.uint8)
        packed = _ref_packed(bits)
        blob = concat_packed_rows(packed, n)
        assert blob == pack_bits(bits)
        assert (split_packed_rows(blob, rows, n) == packed).all()
