"""Channel message encoding: roundtrips, sizes, malformed input."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.utils import serialization as ser


class TestRoundtrip:
    def test_bytes(self):
        assert ser.decode(ser.encode(b"hello")) == b"hello"

    def test_empty_bytes(self):
        assert ser.decode(ser.encode(b"")) == b""

    def test_int(self):
        assert ser.decode(ser.encode(42)) == 42
        assert ser.decode(ser.encode(-7)) == -7

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint16, np.uint32, np.uint64, np.int32, np.int64, np.bool_]
    )
    def test_arrays(self, dtype, rng):
        arr = rng.integers(0, 100, size=(3, 4)).astype(dtype)
        out = ser.decode(ser.encode(arr))
        assert out.dtype == arr.dtype
        assert (out == arr).all()

    def test_scalar_shape_array(self):
        arr = np.array(5, dtype=np.uint64)
        out = ser.decode(ser.encode(arr))
        assert out.shape == ()
        assert out == 5

    def test_tuple_nested(self):
        obj = (b"abc", 5, np.arange(3, dtype=np.uint64), (1, 2))
        out = ser.decode(ser.encode(obj))
        assert out[0] == b"abc" and out[1] == 5
        assert (out[2] == np.arange(3)).all()
        assert out[3] == (1, 2)

    def test_noncontiguous_array(self):
        arr = np.arange(20, dtype=np.uint64).reshape(4, 5)[:, ::2]
        assert (ser.decode(ser.encode(arr)) == arr).all()


def _sample_objects(rng):
    return [
        b"",
        b"short",
        bytes(rng.integers(0, 255, size=100, dtype=np.uint8)),
        0,
        -(1 << 40),
        rng.integers(0, 1 << 30, size=(3, 4), dtype=np.uint64),
        rng.integers(0, 2, size=17, dtype=np.bool_),
        np.array(9, dtype=np.uint16),
        (b"tag", 7, rng.integers(0, 99, size=(2, 5), dtype=np.uint32)),
        ((1, (2, b"x")), np.arange(6, dtype=np.int64)),
    ]


class TestTruncationFuzz:
    """Every strict prefix of a valid encoding must be rejected loudly."""

    def test_all_prefixes_raise(self, rng):
        for obj in _sample_objects(rng):
            data = ser.encode(obj)
            for cut in range(len(data)):
                with pytest.raises(ProtocolError):
                    ser.decode(data[:cut])

    def test_short_bytes_payload(self):
        data = ser.encode(b"0123456789")
        with pytest.raises(ProtocolError, match="truncated"):
            ser.decode(data[:-3])

    def test_short_array_payload(self, rng):
        data = ser.encode(rng.integers(0, 9, size=32, dtype=np.uint64))
        with pytest.raises(ProtocolError, match="truncated"):
            ser.decode(data[:-1])

    def test_tuple_missing_items(self):
        data = ser.encode((1, 2, 3))
        # Cut inside the third item: the tuple header still promises 3.
        with pytest.raises(ProtocolError):
            ser.decode(data[:-5])


class TestMutationFuzz:
    """Random byte flips must never escape the ProtocolError taxonomy.

    A mutation may still decode (flips inside payload bytes are data the
    CRC layer, not the decoder, is responsible for) — but the decoder
    must never throw anything other than ProtocolError, and never
    allocate absurd amounts from a corrupted length field.
    """

    def test_mutations_fail_typed_or_decode(self, rng):
        objects = _sample_objects(rng)
        for obj in objects:
            data = bytearray(ser.encode(obj))
            for trial in range(200):
                bad = bytearray(data)
                for _ in range(rng.integers(1, 4)):
                    pos = rng.integers(0, len(bad))
                    bad[pos] ^= 1 << rng.integers(0, 8)
                try:
                    ser.decode(bytes(bad))
                except ProtocolError:
                    pass  # typed rejection: the contract

    def test_huge_length_field_rejected_not_allocated(self):
        # A corrupted bytes-length of 2^63 must raise, not allocate.
        data = bytearray(ser.encode(b"abcd"))
        data[1:9] = (1 << 63).to_bytes(8, "little")
        with pytest.raises(ProtocolError, match="truncated"):
            ser.decode(bytes(data))

    def test_huge_array_shape_rejected(self, rng):
        data = bytearray(ser.encode(np.zeros((2, 2), dtype=np.uint64)))
        # Overwrite the first shape dim (offset 3: tag+code+ndim) with 2^60.
        data[3:11] = (1 << 60).to_bytes(8, "little")
        with pytest.raises(ProtocolError, match="truncated"):
            ser.decode(bytes(data))

    def test_shape_overflow_does_not_wrap(self):
        # Two dims whose int64 product would wrap to something small.
        arr = np.zeros((1, 1), dtype=np.uint8)
        data = bytearray(ser.encode(arr))
        big = 1 << 32
        data[3:11] = big.to_bytes(8, "little")
        data[11:19] = big.to_bytes(8, "little")  # product = 2^64 ≡ 0 in int64
        with pytest.raises(ProtocolError, match="truncated"):
            ser.decode(bytes(data))

    def test_unknown_dtype_code_rejected(self, rng):
        data = bytearray(ser.encode(np.zeros(3, dtype=np.uint8)))
        data[1] = 250  # dtype code far outside the registry
        with pytest.raises(ProtocolError, match="dtype"):
            ser.decode(bytes(data))


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(ProtocolError):
            ser.encode({"a": 1})

    def test_unsupported_dtype(self):
        with pytest.raises(ProtocolError):
            ser.encode(np.zeros(2, dtype=np.float64))

    def test_trailing_garbage(self):
        with pytest.raises(ProtocolError):
            ser.decode(ser.encode(5) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises((ProtocolError, IndexError, KeyError)):
            ser.decode(b"\xff")


class TestPayloadSize:
    def test_bytes_size(self):
        assert ser.payload_nbytes(b"abcd") == 4

    def test_array_size(self):
        assert ser.payload_nbytes(np.zeros((2, 3), dtype=np.uint32)) == 24

    def test_int_size(self):
        assert ser.payload_nbytes(7) == 8

    def test_tuple_size(self):
        assert ser.payload_nbytes((b"ab", np.zeros(2, dtype=np.uint64))) == 2 + 16

    def test_size_error(self):
        with pytest.raises(ProtocolError):
            ser.payload_nbytes(3.14)
