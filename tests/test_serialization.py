"""Channel message encoding: roundtrips, sizes, malformed input."""

import numpy as np
import pytest

from repro.errors import ProtocolError
from repro.utils import serialization as ser


class TestRoundtrip:
    def test_bytes(self):
        assert ser.decode(ser.encode(b"hello")) == b"hello"

    def test_empty_bytes(self):
        assert ser.decode(ser.encode(b"")) == b""

    def test_int(self):
        assert ser.decode(ser.encode(42)) == 42
        assert ser.decode(ser.encode(-7)) == -7

    @pytest.mark.parametrize(
        "dtype", [np.uint8, np.uint16, np.uint32, np.uint64, np.int32, np.int64, np.bool_]
    )
    def test_arrays(self, dtype, rng):
        arr = rng.integers(0, 100, size=(3, 4)).astype(dtype)
        out = ser.decode(ser.encode(arr))
        assert out.dtype == arr.dtype
        assert (out == arr).all()

    def test_scalar_shape_array(self):
        arr = np.array(5, dtype=np.uint64)
        out = ser.decode(ser.encode(arr))
        assert out.shape == ()
        assert out == 5

    def test_tuple_nested(self):
        obj = (b"abc", 5, np.arange(3, dtype=np.uint64), (1, 2))
        out = ser.decode(ser.encode(obj))
        assert out[0] == b"abc" and out[1] == 5
        assert (out[2] == np.arange(3)).all()
        assert out[3] == (1, 2)

    def test_noncontiguous_array(self):
        arr = np.arange(20, dtype=np.uint64).reshape(4, 5)[:, ::2]
        assert (ser.decode(ser.encode(arr)) == arr).all()


class TestErrors:
    def test_unsupported_type(self):
        with pytest.raises(ProtocolError):
            ser.encode({"a": 1})

    def test_unsupported_dtype(self):
        with pytest.raises(ProtocolError):
            ser.encode(np.zeros(2, dtype=np.float64))

    def test_trailing_garbage(self):
        with pytest.raises(ProtocolError):
            ser.decode(ser.encode(5) + b"\x00")

    def test_unknown_tag(self):
        with pytest.raises((ProtocolError, IndexError, KeyError)):
            ser.decode(b"\xff")


class TestPayloadSize:
    def test_bytes_size(self):
        assert ser.payload_nbytes(b"abcd") == 4

    def test_array_size(self):
        assert ser.payload_nbytes(np.zeros((2, 3), dtype=np.uint32)) == 24

    def test_int_size(self):
        assert ser.payload_nbytes(7) == 8

    def test_tuple_size(self):
        assert ser.payload_nbytes((b"ab", np.zeros(2, dtype=np.uint64))) == 2 + 16

    def test_size_error(self):
        with pytest.raises(ProtocolError):
            ser.payload_nbytes(3.14)
