"""Ring arithmetic over Z_{2^l}: reduction, wraparound, signedness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.utils.ring import Ring, reconstruct


class TestConstruction:
    def test_valid_widths(self):
        for bits in (1, 8, 32, 63, 64):
            assert Ring(bits).bits == bits

    @pytest.mark.parametrize("bits", [0, -3, 65, 100])
    def test_invalid_widths_rejected(self, bits):
        with pytest.raises(ConfigError):
            Ring(bits)

    def test_modulus_and_nbytes(self):
        assert Ring(32).modulus == 1 << 32
        assert Ring(32).nbytes == 4
        assert Ring(33).nbytes == 5
        assert Ring(64).nbytes == 8

    def test_equality_and_hash(self):
        assert Ring(32) == Ring(32)
        assert Ring(32) != Ring(64)
        assert hash(Ring(16)) == hash(Ring(16))
        assert "32" in repr(Ring(32))


class TestReduce:
    def test_negative_maps_to_twos_complement(self, ring32):
        assert int(ring32.reduce(-1)) == (1 << 32) - 1
        assert int(ring32.reduce(-5)) == (1 << 32) - 5

    def test_large_positive_wraps(self, ring32):
        assert int(ring32.reduce((1 << 32) + 7)) == 7

    def test_floats_rejected(self, ring32):
        with pytest.raises(ConfigError):
            ring32.reduce(np.array([1.5]))

    def test_64_bit_identity_on_uint64(self, ring64):
        values = np.array([0, 1, 2**63, 2**64 - 1], dtype=np.uint64)
        assert (ring64.reduce(values) == values).all()


class TestArithmetic:
    def test_add_wraps(self, ring32):
        top = (1 << 32) - 1
        assert int(ring32.add(top, 1)) == 0

    def test_sub_wraps(self, ring32):
        assert int(ring32.sub(0, 1)) == (1 << 32) - 1

    def test_neg(self, ring32):
        assert int(ring32.add(ring32.neg(77), 77)) == 0

    def test_mul_wraps(self, ring32):
        got = int(ring32.mul(1 << 20, 1 << 20))
        assert got == (1 << 40) % (1 << 32)

    def test_sum_axis(self, ring32):
        arr = ring32.reduce(np.arange(10).reshape(2, 5))
        assert (ring32.sum(arr, axis=1) == np.array([10, 35], dtype=np.uint64)).all()

    @given(a=st.integers(-(2**40), 2**40), b=st.integers(-(2**40), 2**40))
    @settings(max_examples=80, deadline=None)
    def test_ops_match_python_mod(self, a, b):
        ring = Ring(32)
        mod = 1 << 32
        assert int(ring.add(ring.reduce(a), ring.reduce(b))) == (a + b) % mod
        assert int(ring.sub(ring.reduce(a), ring.reduce(b))) == (a - b) % mod
        assert int(ring.mul(ring.reduce(a), ring.reduce(b))) == (a * b) % mod


class TestMatmulDot:
    def test_matmul_matches_python(self, ring32, rng):
        a = rng.integers(0, 1 << 31, size=(4, 6), dtype=np.uint64)
        b = rng.integers(0, 1 << 31, size=(6, 3), dtype=np.uint64)
        got = ring32.matmul(a, b)
        expect = (a.astype(object) @ b.astype(object)) % (1 << 32)
        assert (got.astype(object) == expect).all()

    def test_matmul_wraps(self, ring32):
        a = np.full((1, 2), (1 << 31), dtype=np.uint64)
        b = np.full((2, 1), 2, dtype=np.uint64)
        assert int(ring32.matmul(a, b)[0, 0]) == 0

    def test_matmul_shape_check(self, ring32):
        with pytest.raises(ConfigError):
            ring32.matmul(np.zeros((2, 3), dtype=np.uint64), np.zeros((2, 3), dtype=np.uint64))

    def test_dot(self, ring32):
        a = ring32.reduce(np.array([1, 2, 3]))
        b = ring32.reduce(np.array([4, 5, 6]))
        assert int(ring32.dot(a, b)) == 32

    def test_dot_shape_check(self, ring32):
        with pytest.raises(ConfigError):
            ring32.dot(np.zeros(3, dtype=np.uint64), np.zeros(4, dtype=np.uint64))


class TestSigned:
    @pytest.mark.parametrize("bits", [8, 32, 64])
    def test_roundtrip_signed(self, bits):
        ring = Ring(bits)
        values = np.array([0, 1, -1, 2 ** (bits - 1) - 1, -(2 ** (bits - 1))], dtype=np.int64)
        assert (ring.to_signed(ring.reduce(values)) == values).all()

    def test_to_signed_threshold(self):
        ring = Ring(8)
        assert ring.to_signed(np.uint64(127)) == 127
        assert ring.to_signed(np.uint64(128)) == -128
        assert ring.to_signed(np.uint64(255)) == -1


class TestSample:
    @pytest.mark.parametrize("bits", [1, 8, 32, 64])
    def test_sample_within_ring(self, bits, rng):
        ring = Ring(bits)
        sample = ring.sample(rng, 2000)
        if bits < 64:
            assert (sample < np.uint64(1 << bits)).all()

    def test_sample_covers_high_bit(self, rng):
        ring = Ring(64)
        sample = ring.sample(rng, 2000)
        assert (sample >> np.uint64(63)).any(), "top bit never set: biased sampling"

    def test_sample_roughly_uniform(self, rng):
        ring = Ring(8)
        sample = ring.sample(rng, 20000)
        counts = np.bincount(sample.astype(np.int64), minlength=256)
        assert counts.min() > 30  # ~78 expected per bucket


def test_reconstruct_sums_shares(ring32, rng):
    x = ring32.sample(rng, (3, 4))
    s1 = ring32.sample(rng, (3, 4))
    s0 = ring32.sub(x, s1)
    assert (reconstruct(ring32, s0, s1) == x).all()
