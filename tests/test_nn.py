"""NN substrate: data generation, layers, training, model container."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.data import synthetic_mnist
from repro.nn.layers import AvgPool2d, Conv2d, Dense, Flatten, ReLU, im2col
from repro.nn.model import Sequential, mnist_mlp
from repro.nn.train import TrainConfig, softmax_cross_entropy, train_classifier


class TestData:
    def test_shapes_and_ranges(self, small_dataset):
        assert small_dataset.train_x.shape == (600, 784)
        assert small_dataset.test_x.shape == (150, 784)
        assert small_dataset.train_x.min() >= 0.0
        assert small_dataset.train_x.max() <= 1.0
        assert set(np.unique(small_dataset.train_y)) <= set(range(10))

    def test_deterministic(self):
        a = synthetic_mnist(n_train=50, n_test=20, seed=5)
        b = synthetic_mnist(n_train=50, n_test=20, seed=5)
        assert (a.train_x == b.train_x).all()
        assert (a.test_y == b.test_y).all()

    def test_seed_changes_data(self):
        a = synthetic_mnist(n_train=50, n_test=20, seed=5)
        b = synthetic_mnist(n_train=50, n_test=20, seed=6)
        assert (a.train_x != b.train_x).any()

    def test_classes_are_separable(self, small_dataset):
        # Centered-template correlation should classify almost perfectly.
        from repro.nn.data import _class_templates

        templates = _class_templates(99).reshape(10, -1)
        templates = templates - templates.mean(axis=1, keepdims=True)
        centered = small_dataset.test_x - small_dataset.test_x.mean(axis=1, keepdims=True)
        predictions = np.argmax(centered @ templates.T, axis=1)
        assert (predictions == small_dataset.test_y).mean() > 0.9

    def test_minimum_sizes(self):
        with pytest.raises(ConfigError):
            synthetic_mnist(n_train=5, n_test=100)


class TestDense:
    def test_forward_shape(self):
        layer = Dense(10, 4, seed=0)
        out = layer.forward(np.ones((3, 10)))
        assert out.shape == (3, 4)

    def test_gradient_check(self, rng):
        layer = Dense(6, 3, seed=1)
        x = rng.normal(size=(4, 6))
        out = layer.forward(x)
        grad_out = rng.normal(size=out.shape)
        layer.backward(grad_out)
        eps = 1e-6
        # numeric gradient for one weight entry
        i, j = 1, 2
        layer.weight[i, j] += eps
        plus = (layer.forward(x) * grad_out).sum()
        layer.weight[i, j] -= 2 * eps
        minus = (layer.forward(x) * grad_out).sum()
        layer.weight[i, j] += eps
        layer.forward(x)
        layer.backward(grad_out)
        numeric = (plus - minus) / (2 * eps)
        assert layer.grad_weight[i, j] == pytest.approx(numeric, rel=1e-4)

    def test_backward_before_forward(self):
        with pytest.raises(ConfigError):
            Dense(3, 2).backward(np.zeros((1, 2)))

    def test_invalid_dims(self):
        with pytest.raises(ConfigError):
            Dense(0, 5)


class TestOtherLayers:
    def test_relu(self):
        layer = ReLU()
        out = layer.forward(np.array([[-1.0, 2.0, 0.0]]))
        assert out.tolist() == [[0.0, 2.0, 0.0]]
        grad = layer.backward(np.array([[5.0, 5.0, 5.0]]))
        assert grad.tolist() == [[0.0, 5.0, 0.0]]

    def test_flatten_roundtrip(self):
        layer = Flatten()
        x = np.arange(24.0).reshape(2, 3, 4)
        flat = layer.forward(x)
        assert flat.shape == (2, 12)
        assert (layer.backward(flat) == x).all()

    def test_im2col_shapes(self):
        x = np.arange(2 * 1 * 5 * 5, dtype=np.float64).reshape(2, 1, 5, 5)
        cols, oh, ow = im2col(x, 3, 3, 1)
        assert (oh, ow) == (3, 3)
        assert cols.shape == (2, 9, 9)

    def test_conv_matches_naive(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, seed=4)
        x = rng.normal(size=(1, 2, 6, 6))
        out = conv.forward(x)
        assert out.shape == (1, 3, 4, 4)
        # naive reference at one output position
        kernel = conv.weight.reshape(3, 2, 3, 3)
        patch = x[0, :, 1 : 1 + 3, 2 : 2 + 3]
        expect = (kernel[1] * patch).sum() + conv.bias[1]
        assert out[0, 1, 1, 2] == pytest.approx(expect)

    def test_conv_kernel_too_big(self):
        conv = Conv2d(1, 1, kernel_size=9)
        with pytest.raises(ConfigError):
            conv.forward(np.zeros((1, 1, 5, 5)))

    def test_avgpool(self):
        pool = AvgPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = pool.forward(x)
        assert out.shape == (1, 1, 2, 2)
        assert out[0, 0, 0, 0] == pytest.approx((0 + 1 + 4 + 5) / 4)

    def test_avgpool_divisibility(self):
        with pytest.raises(ConfigError):
            AvgPool2d(3).forward(np.zeros((1, 1, 4, 4)))


class TestTraining:
    def test_softmax_cross_entropy_gradient_direction(self):
        logits = np.array([[2.0, 0.0, 0.0]])
        loss, grad = softmax_cross_entropy(logits, np.array([0]))
        assert loss > 0
        assert grad[0, 0] < 0  # push the true class up
        assert grad[0, 1] > 0

    def test_training_reduces_loss(self, small_dataset):
        model = mnist_mlp(seed=3, hidden=16)
        history = train_classifier(
            model,
            small_dataset.train_x[:300],
            small_dataset.train_y[:300],
            TrainConfig(epochs=3, seed=0),
        )
        assert history[-1] < history[0]

    def test_trained_model_beats_chance(self, trained_model, small_dataset):
        acc = trained_model.accuracy(small_dataset.test_x, small_dataset.test_y)
        assert acc > 0.8

    def test_shape_mismatch_rejected(self):
        model = mnist_mlp(seed=0, hidden=8)
        with pytest.raises(ConfigError):
            train_classifier(model, np.zeros((10, 784)), np.zeros(9, dtype=np.int64))


class TestSequential:
    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            Sequential([])

    def test_mnist_mlp_structure(self):
        model = mnist_mlp(hidden=32)
        dense = model.dense_layers
        assert [d.weight.shape for d in dense] == [(32, 784), (32, 32), (10, 32)]

    def test_predict_shape(self, trained_model, small_dataset):
        preds = trained_model.predict(small_dataset.test_x[:7])
        assert preds.shape == (7,)


class TestConvTraining:
    def test_conv_gradient_check(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, seed=1)
        x = rng.normal(size=(2, 2, 5, 5))
        out = conv.forward(x)
        grad = rng.normal(size=out.shape)
        grad_x = conv.backward(grad)
        eps = 1e-6
        i, j = 1, 4
        conv.weight[i, j] += eps
        plus = (conv.forward(x) * grad).sum()
        conv.weight[i, j] -= 2 * eps
        minus = (conv.forward(x) * grad).sum()
        conv.weight[i, j] += eps
        conv.forward(x)
        conv.backward(grad)
        assert conv.grad_weight[i, j] == pytest.approx((plus - minus) / (2 * eps), rel=1e-4)
        # input gradient at one coordinate
        k = (0, 1, 2, 3)
        x2 = x.copy()
        x2[k] += eps
        p1 = (conv.forward(x2) * grad).sum()
        x2[k] -= 2 * eps
        p2 = (conv.forward(x2) * grad).sum()
        assert grad_x[k] == pytest.approx((p1 - p2) / (2 * eps), rel=1e-4)

    def test_conv_backward_before_forward(self):
        with pytest.raises(ConfigError):
            Conv2d(1, 1, kernel_size=2).backward(np.zeros((1, 1, 2, 2)))

    def test_avgpool_backward_spreads_gradient(self):
        pool = AvgPool2d(2)
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool.forward(x)
        grad = pool.backward(np.ones((1, 1, 2, 2)))
        assert grad.shape == x.shape
        assert np.allclose(grad, 0.25)

    def test_cnn_trains_on_synthetic_digits(self, small_dataset):
        model = Sequential(
            [
                Conv2d(1, 6, kernel_size=5, stride=3, seed=2),
                ReLU(),
                Flatten(),
                Dense(6 * 8 * 8, 10, seed=3),
            ]
        )
        xs = small_dataset.train_x.reshape(-1, 1, 28, 28)
        history = train_classifier(
            model, xs, small_dataset.train_y,
            TrainConfig(epochs=3, learning_rate=0.03),
        )
        assert history[-1] < history[0]
        test_imgs = small_dataset.test_x.reshape(-1, 1, 28, 28)
        acc = float((model.predict(test_imgs) == small_dataset.test_y).mean())
        assert acc > 0.6
