"""BatchNorm folding and quantization-aware fine-tuning."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.nn.batchnorm import BatchNorm, fold_batchnorm
from repro.nn.layers import Conv2d, Dense, ReLU
from repro.nn.model import Sequential
from repro.nn.qat import QatConfig, finetune_quantized
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


class TestBatchNorm:
    def test_forward_normalizes(self, rng):
        bn = BatchNorm(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(500, 4))
        bn.calibrate(x)
        out = bn.forward(x)
        assert np.abs(out.mean(axis=0)).max() < 0.05
        assert np.abs(out.std(axis=0) - 1).max() < 0.05

    def test_4d_channels(self, rng):
        bn = BatchNorm(3)
        x = rng.normal(size=(8, 3, 5, 5))
        bn.calibrate(x)
        assert bn.forward(x).shape == x.shape

    def test_bad_ndim(self):
        with pytest.raises(ConfigError):
            BatchNorm(2).forward(np.zeros((2, 2, 2)))

    def test_invalid_features(self):
        with pytest.raises(ConfigError):
            BatchNorm(0)


class TestFolding:
    def test_dense_fold_equivalence(self, rng):
        dense = Dense(6, 4, seed=1)
        bn = BatchNorm(4)
        bn.gamma = rng.uniform(0.5, 2.0, size=4)
        bn.beta = rng.normal(size=4)
        bn.running_mean = rng.normal(size=4)
        bn.running_var = rng.uniform(0.5, 2.0, size=4)
        model = Sequential([dense, bn, ReLU()])
        folded = fold_batchnorm(model)
        assert len(folded.layers) == 2
        x = rng.normal(size=(5, 6))
        assert np.allclose(folded.forward(x), model.forward(x))

    def test_conv_fold_equivalence(self, rng):
        conv = Conv2d(2, 3, kernel_size=3, seed=2)
        bn = BatchNorm(3)
        bn.gamma = rng.uniform(0.5, 2.0, size=3)
        bn.running_mean = rng.normal(size=3)
        bn.running_var = rng.uniform(0.5, 2.0, size=3)
        model = Sequential([conv, bn])
        folded = fold_batchnorm(model)
        x = rng.normal(size=(2, 2, 6, 6))
        assert np.allclose(folded.forward(x), model.forward(x))

    def test_fold_then_quantize(self, rng):
        model = Sequential([Dense(10, 8, seed=1), BatchNorm(8), ReLU(), Dense(8, 3, seed=2)])
        model.layers[1].calibrate(rng.normal(size=(100, 8)))
        folded = fold_batchnorm(model)
        qm = quantize_model(folded, FragmentScheme.from_bits((2, 2, 2, 2)), Ring(32), frac_bits=8)
        x = rng.uniform(0, 1, size=(4, 10))
        assert np.abs(qm.logits_float(x) - model.forward(x)).max() < 0.3

    def test_bn_without_linear_rejected(self):
        with pytest.raises(ConfigError):
            fold_batchnorm(Sequential([ReLU(), BatchNorm(3)]))

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            fold_batchnorm(Sequential([Dense(4, 3), BatchNorm(7)]))


class TestQat:
    def test_recovers_low_bitwidth_accuracy(self, small_dataset):
        """STE fine-tuning must improve ternary accuracy over plain PTQ."""
        from repro.nn.model import mnist_mlp
        from repro.nn.train import TrainConfig, train_classifier

        model = mnist_mlp(seed=21, hidden=24)
        train_classifier(
            model, small_dataset.train_x, small_dataset.train_y,
            TrainConfig(epochs=5, seed=2),
        )
        ring = Ring(32)
        scheme = FragmentScheme.ternary()
        before = quantize_model(model, scheme, ring, frac_bits=6).accuracy(
            small_dataset.test_x, small_dataset.test_y
        )
        finetune_quantized(
            model, scheme, small_dataset.train_x, small_dataset.train_y,
            QatConfig(epochs=4, learning_rate=0.02, seed=3),
        )
        after = quantize_model(model, scheme, ring, frac_bits=6).accuracy(
            small_dataset.test_x, small_dataset.test_y
        )
        assert after >= before

    def test_loss_decreases(self, small_dataset):
        from repro.nn.model import mnist_mlp

        model = mnist_mlp(seed=22, hidden=16)
        history = finetune_quantized(
            model,
            FragmentScheme.from_bits((2, 1)),
            small_dataset.train_x[:300],
            small_dataset.train_y[:300],
            QatConfig(epochs=3, seed=1),
        )
        assert history[-1] < history[0]

    def test_scheme_count_checked(self, small_dataset):
        from repro.nn.model import mnist_mlp

        with pytest.raises(ConfigError):
            finetune_quantized(
                mnist_mlp(seed=1, hidden=8),
                [FragmentScheme.ternary()],
                small_dataset.train_x[:10],
                small_dataset.train_y[:10],
            )
