"""Paillier encryption and slot packing (MiniONN substrate)."""

import numpy as np
import pytest

from repro.crypto import paillier
from repro.errors import CryptoError
from repro.utils.rng import make_rng

KEY_BITS = 256  # tests only; see module docs


@pytest.fixture(scope="module")
def keypair():
    return paillier.keygen(KEY_BITS, seed=7)


class TestKeygen:
    def test_key_size(self, keypair):
        pk, _sk = keypair
        assert pk.n.bit_length() == KEY_BITS
        assert pk.ciphertext_bytes == 2 * KEY_BITS // 8

    def test_deterministic_with_seed(self):
        pk1, _ = paillier.keygen(KEY_BITS, seed=3)
        pk2, _ = paillier.keygen(KEY_BITS, seed=3)
        assert pk1.n == pk2.n

    def test_different_seeds_differ(self):
        pk1, _ = paillier.keygen(KEY_BITS, seed=3)
        pk2, _ = paillier.keygen(KEY_BITS, seed=4)
        assert pk1.n != pk2.n


class TestEncryptDecrypt:
    def test_roundtrip(self, keypair, rng):
        pk, sk = keypair
        for m in (0, 1, 12345, pk.n - 1):
            assert paillier.decrypt(sk, paillier.encrypt(pk, m, rng)) == m

    def test_probabilistic(self, keypair, rng):
        pk, _ = keypair
        assert paillier.encrypt(pk, 5, rng) != paillier.encrypt(pk, 5, rng)

    def test_plaintext_range(self, keypair, rng):
        pk, _ = keypair
        with pytest.raises(CryptoError):
            paillier.encrypt(pk, pk.n, rng)
        with pytest.raises(CryptoError):
            paillier.encrypt(pk, -1, rng)

    def test_ciphertext_range_check(self, keypair):
        _, sk = keypair
        with pytest.raises(CryptoError):
            paillier.decrypt(sk, sk.public.n_squared)


class TestHomomorphism:
    def test_additive(self, keypair, rng):
        pk, sk = keypair
        c = paillier.add(pk, paillier.encrypt(pk, 100, rng), paillier.encrypt(pk, 23, rng))
        assert paillier.decrypt(sk, c) == 123

    def test_scalar_mul(self, keypair, rng):
        pk, sk = keypair
        c = paillier.scalar_mul(pk, paillier.encrypt(pk, 7, rng), 9)
        assert paillier.decrypt(sk, c) == 63

    def test_scalar_mul_rejects_negative(self, keypair, rng):
        pk, _ = keypair
        with pytest.raises(CryptoError):
            paillier.scalar_mul(pk, paillier.encrypt(pk, 7, rng), -1)

    def test_dot_product(self, keypair, rng):
        pk, sk = keypair
        ws = [3, 0, 7, 2]
        rs = [11, 5, 2, 9]
        acc = paillier.encrypt(pk, 0, rng)
        for w, r in zip(ws, rs):
            if w:
                acc = paillier.add(pk, acc, paillier.scalar_mul(pk, paillier.encrypt(pk, r, rng), w))
        assert paillier.decrypt(sk, acc) == sum(w * r for w, r in zip(ws, rs))


class TestPacking:
    def test_pack_unpack(self, keypair):
        pk, _ = keypair
        packing = paillier.SlotPacking.for_accumulation(pk, value_bits=16, scalar_bits=8, n_terms=4)
        values = [1, 2, 3]
        assert packing.unpack(packing.pack(values), 3) == values

    def test_slot_overflow_rejected(self):
        packing = paillier.SlotPacking(slot_bits=8, slots=4)
        with pytest.raises(CryptoError):
            packing.pack([256])

    def test_too_many_values(self):
        packing = paillier.SlotPacking(slot_bits=8, slots=2)
        with pytest.raises(CryptoError):
            packing.pack([1, 2, 3])
        with pytest.raises(CryptoError):
            packing.unpack(0, 3)

    def test_homomorphic_packed_accumulation(self, keypair, rng):
        # The exact access pattern MiniONN uses: same scalar on all slots.
        pk, sk = keypair
        packing = paillier.SlotPacking.for_accumulation(pk, value_bits=8, scalar_bits=8, n_terms=2)
        slots = min(packing.slots, 3)
        r1, r2 = [5, 9, 12][:slots], [1, 3, 7][:slots]
        c1 = paillier.encrypt(pk, packing.pack(r1), rng)
        c2 = paillier.encrypt(pk, packing.pack(r2), rng)
        acc = paillier.add(pk, paillier.scalar_mul(pk, c1, 4), paillier.scalar_mul(pk, c2, 6))
        got = packing.unpack(paillier.decrypt(sk, acc), slots)
        assert got == [4 * a + 6 * b for a, b in zip(r1, r2)]

    def test_slot_too_large_for_key(self, keypair):
        pk, _ = keypair
        with pytest.raises(CryptoError):
            paillier.SlotPacking.for_accumulation(pk, value_bits=200, scalar_bits=200, n_terms=2)


class TestPrimality:
    def test_random_prime_is_prime(self):
        rng = make_rng(5)
        p = paillier._random_prime(64, rng)
        assert p.bit_length() == 64
        # trial divide by small numbers
        for d in range(2, 1000):
            assert p % d != 0 or p == d
