"""Walsh-Hadamard codes and the KK13 1-out-of-N OT extension."""

import numpy as np
import pytest

from repro.crypto import codes
from repro.crypto.kk13 import Kk13Receiver, Kk13Sender
from repro.errors import CryptoError
from repro.net import run_protocol


class TestCodes:
    def test_code_length(self):
        bits = codes.codeword_bits(4)
        assert bits.shape == (4, 256)

    @pytest.mark.parametrize("n", [2, 3, 4, 8, 16, 256])
    def test_minimum_distance_is_half_length(self, n):
        # WH codewords pairwise differ in exactly 128 of 256 positions.
        assert codes.minimum_distance(n) == 128

    def test_codeword_zero_is_all_zero(self):
        assert codes.codeword_bits(4)[0].sum() == 0

    def test_packed_matches_bits(self):
        bits = codes.codeword_bits(8)
        words = codes.codeword_words(8)
        unpacked = np.unpackbits(
            words.view(np.uint8).reshape(8, -1), axis=1, bitorder="little"
        )
        assert (unpacked == bits).all()

    @pytest.mark.parametrize("n", [0, 1, 257])
    def test_invalid_n(self, n):
        with pytest.raises(CryptoError):
            codes.codeword_bits(n)


def _run_kk13(messages, choices, n_values, group, width):
    return run_protocol(
        lambda ch: Kk13Sender(ch, n_values, group=group, seed=1).send_chosen(messages),
        lambda ch: Kk13Receiver(ch, n_values, group=group, seed=2).recv_chosen(
            choices, width
        ),
    )


class TestKk13:
    @pytest.mark.parametrize("n_values", [2, 3, 4, 8, 16])
    def test_chosen_message_correctness(self, n_values, test_group, rng):
        m = 150
        msgs = rng.integers(0, 1 << 63, size=(m, n_values, 2), dtype=np.uint64)
        choices = rng.integers(0, n_values, size=m)
        result = _run_kk13(msgs, choices, n_values, test_group, 2)
        assert (result.client == msgs[np.arange(m), choices]).all()

    def test_unchosen_messages_not_leaked(self, test_group, rng):
        m, n = 60, 4
        msgs = rng.integers(0, 1 << 63, size=(m, n, 1), dtype=np.uint64)
        choices = np.ones(m, dtype=np.int64)
        result = _run_kk13(msgs, choices, n, test_group, 1)
        assert (result.client[:, 0] == msgs[:, 1, 0]).all()
        for other in (0, 2, 3):
            assert (result.client[:, 0] != msgs[:, other, 0]).all()

    def test_pads_agree_at_choice(self, test_group, rng):
        m, n, width = 40, 4, 3
        choices = rng.integers(0, n, size=m)

        result = run_protocol(
            lambda ch: Kk13Sender(ch, n, group=test_group, seed=1).pads(m, width),
            lambda ch: Kk13Receiver(ch, n, group=test_group, seed=2).pads(choices, width),
        )
        sender_pads, receiver_pads = result.server, result.client
        assert (receiver_pads == sender_pads[np.arange(m), choices]).all()
        # and they disagree everywhere else
        for j in range(n):
            mism = choices != j
            assert (receiver_pads[mism] != sender_pads[mism, j]).any(axis=-1).all()

    def test_session_reuse(self, test_group, rng):
        m, n = 80, 4
        msgs1 = rng.integers(0, 1 << 63, size=(m, n, 1), dtype=np.uint64)
        msgs2 = rng.integers(0, 1 << 63, size=(30, n, 2), dtype=np.uint64)
        choices1 = rng.integers(0, n, size=m)
        choices2 = rng.integers(0, n, size=30)

        def server_fn(ch):
            sender = Kk13Sender(ch, n, group=test_group, seed=1)
            sender.send_chosen(msgs1)
            sender.send_chosen(msgs2)

        def client_fn(ch):
            receiver = Kk13Receiver(ch, n, group=test_group, seed=2)
            return receiver.recv_chosen(choices1, 1), receiver.recv_chosen(choices2, 2)

        result = run_protocol(server_fn, client_fn)
        got1, got2 = result.client
        assert (got1 == msgs1[np.arange(m), choices1]).all()
        assert (got2 == msgs2[np.arange(30), choices2]).all()

    def test_choice_out_of_range(self, test_group):
        def server_fn(ch):
            Kk13Sender(ch, 4, group=test_group, seed=1).send_chosen(
                np.zeros((2, 4, 1), dtype=np.uint64)
            )

        def client_fn(ch):
            return Kk13Receiver(ch, 4, group=test_group, seed=2).recv_chosen([0, 4], 1)

        with pytest.raises(CryptoError):
            run_protocol(server_fn, client_fn, timeout_s=5)

    def test_invalid_n_values(self, test_group):
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        with pytest.raises(CryptoError):
            Kk13Sender(chan, 1, group=test_group)
        with pytest.raises(CryptoError):
            Kk13Receiver(chan, 500, group=test_group)

    def test_message_shape_mismatch(self, test_group):
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        sender = Kk13Sender(chan, 4, group=test_group)
        with pytest.raises(CryptoError):
            sender.send_chosen(np.zeros((2, 3, 1), dtype=np.uint64))

    def test_communication_grows_with_n(self, test_group, rng):
        m = 100

        def traffic(n_values):
            msgs = rng.integers(0, 1 << 63, size=(m, n_values, 1), dtype=np.uint64)
            choices = rng.integers(0, n_values, size=m)
            return _run_kk13(msgs, choices, n_values, test_group, 1).total_bytes

        assert traffic(2) < traffic(4) < traffic(8)
