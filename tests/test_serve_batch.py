"""Cross-session batching: wide rounds, admission control, sharded bank.

The tentpole contract (docs/PROTOCOLS.md §14): N clients served through
the :class:`~repro.serve.scheduler.BatchScheduler` receive predictions
**byte-identical** to N solo sessions consuming the same banked rounds,
across batch widths, transports, and tracing; admission problems surface
as structured denies on the grant plane; one crashed batch peer fails
its group fast and typed without taking the server down.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.protocol import ModelMeta, WideServerRound, split_columns, stack_columns
from repro.errors import ChannelError, ConfigError, ProtocolError
from repro.net.channel import make_channel_pair
from repro.net.mux import ChannelMux
from repro.nn.model import mnist_mlp
from repro.nn.quantize import quantize_model
from repro.perf.trace import iter_spans, load_trace
from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import FragmentScheme
from repro.serve import (
    BatchScheduler,
    ClientSession,
    PredictionClient,
    PredictionServer,
    ServerSession,
    ShardedTripletBank,
    TripletBank,
)
from repro.serve.bank import _SHARD_ROUND_ID_SPAN
from repro.serve.session import recv_ctrl, send_ctrl
from repro.utils.ring import Ring

from tests.test_serve import _assert_no_leaked_serve_threads


@pytest.fixture(scope="module")
def qmodel():
    model = mnist_mlp(seed=7, hidden=4, input_dim=16)
    return quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)


@pytest.fixture(scope="module")
def meta(qmodel):
    return ModelMeta.from_model(qmodel)


def _bank(qmodel, test_group, *, rounds=0, batch=2, **kwargs):
    kwargs.setdefault("auto_replenish", False)
    kwargs.setdefault("seed", 11)
    bank = TripletBank(qmodel, batch, group=test_group, **kwargs)
    if rounds:
        bank.fill(rounds)
    return bank


def _inputs(n):
    """n distinct well-scaled inputs, deterministic per index."""
    return [
        np.random.default_rng(1000 + i).normal(scale=0.25, size=(2, 16))
        for i in range(n)
    ]


def _run_batched_in_memory(
    qmodel, meta, test_group, inputs, *, window_ms=400.0, batch_max=8,
    rounds=None, scheduler_kwargs=None, channels=None,
):
    """Serve ``len(inputs)`` concurrent in-memory clients via one scheduler.

    Returns ``(per_client, scheduler, server_boxes)`` where ``per_client``
    maps client index -> ``{"logits", "round_ids", "error"}``.
    """
    n = len(inputs)
    bank = _bank(qmodel, test_group, rounds=n if rounds is None else rounds)
    sched = BatchScheduler(
        bank, window_ms=window_ms, batch_max=batch_max,
        **(scheduler_kwargs or {}),
    )
    enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
    boxes, server_threads, client_chans = [], [], []
    for i in range(n):
        if channels is None:
            server_chan, client_chan = make_channel_pair(timeout_s=60.0)
        else:
            server_chan, client_chan = channels[i]
        box = {}

        def _srv(server_chan=server_chan, box=box, sid=i + 1):
            try:
                box["result"] = ServerSession(
                    server_chan, qmodel, bank, session_id=sid,
                    group=test_group, scheduler=sched,
                ).run()
            except Exception as exc:  # noqa: BLE001 - surfaced by the test
                box["exc"] = exc

        thread = threading.Thread(target=_srv, daemon=True)
        thread.start()
        boxes.append(box)
        server_threads.append(thread)
        client_chans.append(client_chan)

    per_client = {}

    def _client(i):
        out = {"logits": None, "round_ids": [], "error": None}
        per_client[i] = out
        try:
            session = ClientSession(
                client_chans[i], meta, 2, group=test_group, seed=500 + i
            )
            out["logits"] = session.predict_encoded(enc.encode(inputs[i].T))
            out["round_ids"] = list(session.round_ids)
            session.close()
        except ProtocolError as exc:
            out["error"] = str(exc)

    client_threads = [
        threading.Thread(target=_client, args=(i,)) for i in range(n)
    ]
    for t in client_threads:
        t.start()
    for t in client_threads:
        t.join(timeout=120)
    for t in server_threads:
        t.join(timeout=30)
    sched.stop()
    return per_client, sched, boxes


def _solo_logits_by_round(qmodel, meta, test_group, inputs_by_round):
    """Baseline: one keep-alive solo session (identical-seed fresh bank)
    predicting round 0..K-1 with the input each round got in the batched
    run; returns ``{round_id: logits}``."""
    k = len(inputs_by_round)
    bank = _bank(qmodel, test_group, rounds=k)
    enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
    server_chan, client_chan = make_channel_pair(timeout_s=60.0)
    box = {}

    def _srv():
        box["result"] = ServerSession(
            server_chan, qmodel, bank, session_id=99, group=test_group
        ).run()

    thread = threading.Thread(target=_srv, daemon=True)
    thread.start()
    session = ClientSession(client_chan, meta, 2, group=test_group, seed=42)
    out = {}
    for round_id in range(k):
        out[round_id] = session.predict_encoded(
            enc.encode(inputs_by_round[round_id].T)
        )
        assert session.round_ids[-1] == round_id
    session.close()
    thread.join(timeout=30)
    return out


class TestWideServerRound:
    def test_stack_split_roundtrip(self):
        blocks = [
            np.arange(6, dtype=np.uint64).reshape(2, 3),
            np.arange(8, dtype=np.uint64).reshape(2, 4),
        ]
        wide = stack_columns(blocks)
        assert wide.shape == (2, 7)
        back = split_columns(wide, [3, 4])
        for a, b in zip(blocks, back):
            assert (a == b).all()
        with pytest.raises(ConfigError):
            stack_columns([])
        with pytest.raises(ConfigError):
            split_columns(wide, [3, 5])

    def test_wide_round_matches_per_client_math(self, qmodel, test_group):
        """Stacking commutes stage by stage: a width-2 wide round's sliced
        outputs are bit-identical to two width-1 rounds on the same banked
        material, through every linear stage."""
        bank = _bank(qmodel, test_group, rounds=2)
        rounds = [bank.take(), bank.take()]
        ring = qmodel.ring
        rng = np.random.default_rng(3)
        batch = bank.batch

        def _rand(shape):
            return ring.reduce(
                rng.integers(0, 2**32, size=shape, dtype=np.uint64)
            )

        xs = [_rand((16, batch)) for _ in rounds]
        wide = WideServerRound(
            qmodel, [r.server_us for r in rounds], batch,
            group=test_group, ro=bank.ro,
        )
        narrows = [
            WideServerRound(
                qmodel, [r.server_us], batch, group=test_group, ro=bank.ro
            )
            for r in rounds
        ]
        wide.start(xs)
        for narrow, x in zip(narrows, xs):
            narrow.start([x])
        while not wide.complete:
            got = wide.linear()
            solo = [narrow.linear()[0] for narrow in narrows]
            for g, s in zip(got, solo):
                assert (g == s).all()
            if wide.complete:
                break
            # Stand-in for the per-client interactive ReLU: any blocks of
            # the right shape must commute identically.
            zs = [_rand(s.shape) for s in solo]
            wide.resume(zs)
            for narrow, z in zip(narrows, zs):
                narrow.resume([z])


class TestBatchedEquivalence:
    @pytest.mark.parametrize("width", [1, 2, 4])
    def test_batched_equals_sequential_in_memory(
        self, qmodel, meta, test_group, width
    ):
        inputs = _inputs(width)
        per_client, sched, boxes = _run_batched_in_memory(
            qmodel, meta, test_group, inputs, batch_max=width
        )
        for box in boxes:
            assert "exc" not in box, box["exc"]
        # Map each consumed round to the input it served.
        inputs_by_round = {}
        for i, out in per_client.items():
            assert out["error"] is None, out["error"]
            assert out["round_ids"], f"client {i} got no round"
            inputs_by_round[out["round_ids"][0]] = inputs[i]
        assert sorted(inputs_by_round) == list(range(width))
        metrics = sched.metrics()
        assert metrics["batch_width_max"] == width  # batching really engaged
        assert metrics["batched"] == width

        solo = _solo_logits_by_round(qmodel, meta, test_group, inputs_by_round)
        for i, out in per_client.items():
            round_id = out["round_ids"][0]
            # Byte-identical to the solo session on the same banked round
            # (share-split-dependent truncation included), and exact.
            assert (out["logits"] == solo[round_id]).all()
            expect = qmodel.forward_int(qmodel.encoder.encode(inputs[i].T))
            assert (out["logits"] == expect).all()

    def test_batched_equals_sequential_tcp_traced(
        self, qmodel, meta, test_group, tmp_path
    ):
        """TCP + tracing leg of the equivalence matrix: three concurrent
        PredictionClients coalesce into one wide round; logits match the
        solo baseline byte-for-byte and every trace carries the batching
        attributes."""
        n = 3
        inputs = _inputs(n)
        bank = _bank(qmodel, test_group, rounds=n)
        trace_dir = tmp_path / "traces"
        trace_dir.mkdir()
        per_client = {}
        with PredictionServer(
            qmodel, bank, port=0, max_sessions=n, group=test_group, seed=3,
            batch_window_ms=400.0, batch_max=n, trace_dir=str(trace_dir),
        ) as srv:

            def _client(i):
                with PredictionClient(
                    meta, 2, port=srv.port, group=test_group, seed=300 + i
                ) as client:
                    logits, _ = client.predict(inputs[i])
                    per_client[i] = (logits, list(client.session.round_ids))

            threads = [
                threading.Thread(target=_client, args=(i,)) for i in range(n)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            srv.wait_idle(timeout_s=60.0)
            metrics = srv.metrics()
            assert metrics["scheduler"]["batch_width_max"] == n
            assert metrics["scheduler"]["batched_rounds"] == 1
            assert metrics["scheduler"]["p95_wait_ms"] > 0
            assert metrics["predictions"] == n

        assert sorted(per_client) == list(range(n))
        inputs_by_round = {
            rids[0]: inputs[i] for i, (_, rids) in per_client.items()
        }
        solo = _solo_logits_by_round(qmodel, meta, test_group, inputs_by_round)
        for i, (logits, rids) in per_client.items():
            assert (logits == solo[rids[0]]).all()

        exported = sorted(trace_dir.glob("session-*.json"))
        assert len(exported) == n
        for path in exported:
            doc = load_trace(str(path))
            round_spans = [
                s for p, s in iter_spans(doc) if p.startswith("round0") and "/" not in p
            ]
            assert len(round_spans) == 1
            attrs = round_spans[0]["attrs"]
            assert attrs["batched"] is True
            assert attrs["batch_width"] == n
            assert attrs["batch_wait_ms"] >= 0
        _assert_no_leaked_serve_threads()

    def test_batched_over_mux_streams(self, qmodel, meta, test_group):
        """Per-client demux over one underlying channel: each client gets
        its own mux stream (tag = client id), sessions batch normally."""
        n = 3
        inputs = _inputs(n)
        server_chan, client_chan = make_channel_pair(timeout_s=60.0)
        server_mux = ChannelMux(server_chan)
        client_mux = ChannelMux(client_chan)
        channels = [
            (server_mux.stream(i + 1), client_mux.stream(i + 1))
            for i in range(n)
        ]
        per_client, sched, boxes = _run_batched_in_memory(
            qmodel, meta, test_group, inputs, batch_max=n, channels=channels
        )
        for box in boxes:
            assert "exc" not in box, box["exc"]
        assert sched.metrics()["batch_width_max"] == n
        for i, out in per_client.items():
            assert out["error"] is None
            expect = qmodel.forward_int(qmodel.encoder.encode(inputs[i].T))
            assert (out["logits"] == expect).all()
        # MuxChannel.close is stream-local: other streams stayed usable
        # through every close above, and a closed stream fails typed.
        with pytest.raises(ChannelError, match="closed"):
            channels[0][1].send(b"late")
        server_mux.close()
        client_mux.close()


class TestAdmissionControl:
    def test_min_bank_depth_denies_then_recovers(self, qmodel, meta, test_group):
        bank = _bank(qmodel, test_group)  # empty
        sched = BatchScheduler(bank, window_ms=1.0, min_bank_depth=1)
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        server_chan, client_chan = make_channel_pair(timeout_s=30.0)
        box = {}

        def _srv():
            box["result"] = ServerSession(
                server_chan, qmodel, bank, session_id=1,
                group=test_group, scheduler=sched,
            ).run()

        thread = threading.Thread(target=_srv, daemon=True)
        thread.start()
        x = _inputs(1)[0]
        session = ClientSession(client_chan, meta, 2, group=test_group)
        with pytest.raises(ProtocolError, match="bank depth"):
            session.predict_encoded(enc.encode(x.T))
        bank.fill(1)
        logits = session.predict_encoded(enc.encode(x.T))
        session.close()
        thread.join(timeout=30)
        assert (logits == qmodel.forward_int(qmodel.encoder.encode(x.T))).all()
        assert sched.metrics()["denied_bank_depth"] == 1
        assert box["result"].predictions == 1

    def test_queue_depth_denies_cleanly(self, qmodel, meta, test_group):
        """With max_queued=1 a second concurrent request is denied on the
        grant plane while the first waits out its window — and the denied
        session stays usable."""
        inputs = _inputs(2)
        bank = _bank(qmodel, test_group, rounds=2)
        sched = BatchScheduler(
            bank, window_ms=700.0, batch_max=1, max_queued=1
        )
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        sessions, threads = [], []
        for i in range(2):
            server_chan, client_chan = make_channel_pair(timeout_s=60.0)

            def _srv(server_chan=server_chan, sid=i + 1):
                ServerSession(
                    server_chan, qmodel, bank, session_id=sid,
                    group=test_group, scheduler=sched,
                ).run()

            t = threading.Thread(target=_srv, daemon=True)
            t.start()
            threads.append(t)
            sessions.append(
                ClientSession(client_chan, meta, 2, group=test_group)
            )
        # batch_max=1 seals client 0's group instantly... so park client 0
        # inside the *window* by raising batch_max via a fresh group:
        sched.batch_max = 2
        box = {}

        def _first():
            box["logits"] = sessions[0].predict_encoded(enc.encode(inputs[0].T))

        first = threading.Thread(target=_first, daemon=True)
        first.start()
        deadline = time.monotonic() + 5.0
        while sched.metrics()["queued"] < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        with pytest.raises(ProtocolError, match="queued"):
            sessions[1].predict_encoded(enc.encode(inputs[1].T))
        first.join(timeout=30)
        assert (
            box["logits"]
            == qmodel.forward_int(qmodel.encoder.encode(inputs[0].T))
        ).all()
        # The denied session recovers: its next request is granted.
        logits = sessions[1].predict_encoded(enc.encode(inputs[1].T))
        assert (
            logits == qmodel.forward_int(qmodel.encoder.encode(inputs[1].T))
        ).all()
        for s in sessions:
            s.close()
        for t in threads:
            t.join(timeout=30)
        assert sched.metrics()["denied_queue_depth"] == 1

    def test_partial_grant_denies_only_the_tail(self, qmodel, meta, test_group):
        """Three clients, two banked rounds: the bank grants what it has;
        exactly one client is denied with the typed exhaustion error."""
        inputs = _inputs(3)
        per_client, sched, boxes = _run_batched_in_memory(
            qmodel, meta, test_group, inputs, batch_max=3, rounds=2
        )
        for box in boxes:
            assert "exc" not in box, box["exc"]
        served = [o for o in per_client.values() if o["error"] is None]
        denied = [o for o in per_client.values() if o["error"] is not None]
        assert len(served) == 2 and len(denied) == 1
        assert "offline material exhausted" in denied[0]["error"]
        for i, out in per_client.items():
            if out["error"] is None:
                expect = qmodel.forward_int(qmodel.encoder.encode(inputs[i].T))
                assert (out["logits"] == expect).all()
        metrics = sched.metrics()
        assert metrics["denied_exhausted"] == 1
        assert metrics["batch_width_max"] == 2

    def test_env_var_enables_batching(self, qmodel, test_group, monkeypatch):
        monkeypatch.setenv("ABNN2_SERVE_BATCH", "1")
        bank = _bank(qmodel, test_group)
        srv = PredictionServer(qmodel, bank, port=0, group=test_group)
        try:
            assert srv.scheduler is not None
            assert srv.scheduler.window_ms == 10.0
        finally:
            srv.stop()
        _assert_no_leaked_serve_threads()


class TestBlastRadius:
    def test_peer_crash_fails_group_typed_server_survives(
        self, qmodel, meta, x2_like, test_group
    ):
        """One batch peer crashing mid-round aborts its group fast and
        typed; the server then serves a fresh client normally."""
        bank = _bank(qmodel, test_group, rounds=3)
        with PredictionServer(
            qmodel, bank, port=0, max_sessions=4, group=test_group,
            session_timeout_s=10.0, batch_window_ms=500.0, batch_max=2,
        ) as srv:
            crasher = PredictionClient(meta, 2, port=srv.port, group=test_group)
            victim = PredictionClient(meta, 2, port=srv.port, group=test_group)
            victim_box = {}

            def _victim():
                try:
                    victim.predict(x2_like)
                except (ProtocolError, ChannelError) as exc:
                    victim_box["error"] = exc

            victim_thread = threading.Thread(target=_victim, daemon=True)
            # The crasher enters the round and dies after the *grant* —
            # its slot is granted, so the wide barrier waits on it.
            send_ctrl(crasher.chan, op="round")
            victim_thread.start()
            grant = recv_ctrl(crasher.chan)
            assert grant["ok"] and grant.get("batched") is True
            crasher.chan.abort()
            victim_thread.join(timeout=60)
            assert "error" in victim_box, "victim should fail with its peer"

            # Blast radius ends at the group: a fresh client is served.
            with PredictionClient(
                meta, 2, port=srv.port, group=test_group
            ) as healthy:
                logits, _ = healthy.predict(x2_like)
            assert (
                logits == qmodel.forward_int(qmodel.encoder.encode(x2_like.T))
            ).all()
            srv.wait_idle(timeout_s=60.0)
            failures = [r for r in srv.records if r.error is not None]
            assert len(failures) == 2
            assert any("wide round aborted" in r.error for r in failures)
        _assert_no_leaked_serve_threads()


@pytest.fixture(scope="module")
def x2_like():
    return np.random.default_rng(0).normal(scale=0.25, size=(2, 16))


class TestShardedBank:
    def test_round_ids_unique_and_round_robin(self, qmodel, test_group):
        bank = ShardedTripletBank(
            qmodel, 2, shards=2, capacity=4, seed=11,
            auto_replenish=False, group=test_group,
        )
        assert bank.fill(4) == 4
        metrics = bank.metrics()
        assert metrics["shards"] == 2
        assert metrics["per_shard_depth"] == [2, 2]
        assert metrics["rounds_generated"] == 4
        rounds = bank.take_many(4)
        ids = sorted(r.round_id for r in rounds)
        assert ids == [
            0, 1, _SHARD_ROUND_ID_SPAN, _SHARD_ROUND_ID_SPAN + 1
        ]
        with pytest.raises(ProtocolError, match="offline material exhausted"):
            bank.take(timeout_s=0.0)

    def test_shard_material_is_mask_distinct(self, qmodel, test_group):
        """Shards derive disjoint seed streams: no two shards may ever
        deal the same input mask."""
        bank = ShardedTripletBank(
            qmodel, 2, shards=2, capacity=2, seed=11,
            auto_replenish=False, group=test_group,
        )
        bank.fill(2)
        first, second = bank.take(), bank.take()
        assert (
            first.client_material["input_mask"]
            != second.client_material["input_mask"]
        ).any()

    def test_persistence_per_shard(self, qmodel, test_group, tmp_path):
        bank = ShardedTripletBank(
            qmodel, 2, shards=2, capacity=4, seed=11,
            auto_replenish=False, group=test_group,
        )
        bank.fill(4)
        path = tmp_path / "bank.npz"
        assert bank.save(path) == 4
        assert (tmp_path / "bank.npz.shard0").exists()
        assert (tmp_path / "bank.npz.shard1").exists()
        reloaded = ShardedTripletBank(
            qmodel, 2, shards=2, capacity=4, seed=11,
            auto_replenish=False, group=test_group,
        )
        assert reloaded.load(path) == 4
        metrics = reloaded.metrics()
        assert metrics["rounds_generated"] == 0
        assert metrics["generation_payload_bytes"] == 0
        assert metrics["rounds_loaded"] == 4
        a, b = bank.take(), reloaded.take()
        assert a.round_id == b.round_id
        for u_orig, u_loaded in zip(a.server_us, b.server_us):
            assert (u_orig == u_loaded).all()

    def test_serves_batched_predictions(self, qmodel, meta, test_group):
        """End-to-end: a sharded bank behind the scheduler serves a wide
        round with rounds drawn round-robin from both shards."""
        n = 2
        inputs = _inputs(n)
        bank = ShardedTripletBank(
            qmodel, 2, shards=2, capacity=2, seed=11,
            auto_replenish=False, group=test_group,
        )
        bank.fill(2)
        sched = BatchScheduler(bank, window_ms=400.0, batch_max=n)
        enc = FixedPointEncoder(qmodel.ring, qmodel.encoder.frac_bits)
        per_client = {}
        server_threads = []
        client_threads = []
        for i in range(n):
            server_chan, client_chan = make_channel_pair(timeout_s=60.0)

            def _srv(server_chan=server_chan, sid=i + 1):
                ServerSession(
                    server_chan, qmodel, bank, session_id=sid,
                    group=test_group, scheduler=sched,
                ).run()

            def _cli(client_chan=client_chan, i=i):
                session = ClientSession(client_chan, meta, 2, group=test_group)
                per_client[i] = (
                    session.predict_encoded(enc.encode(inputs[i].T)),
                    list(session.round_ids),
                )
                session.close()

            st = threading.Thread(target=_srv, daemon=True)
            ct = threading.Thread(target=_cli, daemon=True)
            st.start()
            ct.start()
            server_threads.append(st)
            client_threads.append(ct)
        for t in client_threads + server_threads:
            t.join(timeout=120)
        sched.stop()
        assert sched.metrics()["batch_width_max"] == n
        all_ids = sorted(r for _, rids in per_client.values() for r in rids)
        assert all_ids == [0, _SHARD_ROUND_ID_SPAN]  # one round per shard
        for i, (logits, _) in per_client.items():
            expect = qmodel.forward_int(qmodel.encoder.encode(inputs[i].T))
            assert (logits == expect).all()
