"""Pipelined online execution: the layer-graph planner's contract.

The equivalence matrix under test (docs/PROTOCOLS.md §15): pipelining
with streamed garbling is a *local* execution strategy — for a fixed
seed the logit shares must be byte-identical to the sequential executor
across every cell of {in-memory, TCP} x {traced, untraced} x batch
widths {1, 2, 4} x chunk sizes {1, 16, unbounded} x {banked, unbanked}
offline material, and the per-stream mux byte totals must be a function
of the protocol configuration alone (chunk size), never of the
transport or of tracer attachment.  On top of the matrix:

* peak garbled-table residency stays O(chunk) (the streaming memory
  bound), pinned against :func:`repro.gc.stream.table_block_bytes`;
* per-layer stream spans conform to the Table 1 closed form plus the
  exact chunk-framing overhead, *byte equality*, even though the spans
  interleave with the main stream (tracer overlap conformance);
* a transport that opts out of mux framing degrades to the sequential
  executor with a byte-identical wire transcript.
"""

from __future__ import annotations

import socket
import threading
import time

import numpy as np
import pytest

from repro.core.pipeline import PipelineConfig
from repro.core.plan import GC_STREAM_BASE, MAIN_STREAM, build_plan
from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta, secure_predict
from repro.crypto.group import MODP_TEST
from repro.errors import ConfigError
from repro.gc.stream import table_block_bytes
from repro.net import tcp
from repro.net.channel import make_channel_pair
from repro.nn.model import mnist_mlp
from repro.nn.quantize import quantize_model
from repro.perf.costmodel import gc_relu_wire_bits, gc_stream_overhead_bits
from repro.perf.report import check_conformance, conformance_rows
from repro.perf.trace import iter_spans
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

HIDDEN = 12
INPUT_DIM = 20
CLASSES = 5
CHUNKS = (1, 16, None)
TIMEOUT_S = 60.0


@pytest.fixture(scope="module")
def pmodel():
    """Small untrained 3-Dense/2-ReLU MLP; ternary => bit-exact logits."""
    model = mnist_mlp(seed=3, hidden=HIDDEN, input_dim=INPUT_DIM, classes=CLASSES)
    return quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)


@pytest.fixture(scope="module")
def xs():
    rng = np.random.default_rng(42)
    return rng.normal(size=(4, INPUT_DIM))


@pytest.fixture(scope="module")
def test_group():
    """Module-scoped copy of the fast insecure test group (the session
    fixtures below are module-scoped and cannot request the function-
    scoped conftest one)."""
    return MODP_TEST


@pytest.fixture(scope="module")
def sequential_ref(pmodel, xs, test_group):
    """Sequential-executor logits per batch width, the matrix baseline."""
    refs = {}
    for batch in (1, 2, 4):
        report = secure_predict(pmodel, xs[:batch], group=test_group, seed=0)
        expect = pmodel.forward_int(pmodel.encoder.encode(xs[:batch].T))
        assert (report.logits_int == expect).all()
        refs[batch] = report.logits_int
    return refs


class _no_thread_leak:
    """Assert the with-block leaves no extra live threads behind."""

    def __enter__(self):
        self._before = set(threading.enumerate())
        return self

    def __exit__(self, exc_type, *exc):
        if exc_type is not None:
            return False
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            leaked = [
                t for t in threading.enumerate()
                if t not in self._before and t.is_alive()
            ]
            if not leaked:
                return False
            time.sleep(0.01)
        raise AssertionError(f"leaked threads: {[t.name for t in leaked]}")


def _tcp_pair(timeout_s=30.0):
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
    box = {}

    def _serve():
        box["server"] = tcp.listen(port, timeout_s=timeout_s)

    thread = threading.Thread(target=_serve, daemon=True)
    thread.start()
    client = tcp.connect("127.0.0.1", port, timeout_s=timeout_s)
    thread.join(timeout=timeout_s)
    return box["server"], client


def _both(server_fn, client_fn, channels):
    """Run both parties on threads; re-raise the first party error."""
    server_chan, client_chan = channels
    out: dict = {}
    errors: list[BaseException] = []

    def runner(name, fn, chan):
        def body():
            try:
                out[name] = fn(chan)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        return threading.Thread(target=body, name=f"party-{name}", daemon=True)

    threads = [
        runner("server", server_fn, server_chan),
        runner("client", client_fn, client_chan),
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=TIMEOUT_S)
    if errors:
        raise errors[0]
    assert not any(t.is_alive() for t in threads), "party thread hung"
    return out["server"], out["client"]


def _detach_tracing(party):
    """The 'untraced' matrix axis: IO attribution becomes a no-op.

    The tracer object itself stays (spans structure the phase stats);
    what the matrix pins is that *recording* bytes never changes them.
    """
    party.tracer.record_io = lambda *_a, **_k: None


def _run_pipelined(
    qmodel,
    x,
    group,
    *,
    chunk,
    channels=None,
    banked=False,
    untraced=False,
    pipeline=True,
    seed=0,
):
    """One direct-party run; returns (logits, server, client)."""
    meta = ModelMeta.from_model(qmodel)
    batch = x.shape[0]
    x_ring = qmodel.encoder.encode(x.T)
    pipe = PipelineConfig(chunk=chunk) if pipeline else None
    if channels is None:
        channels = make_channel_pair(timeout_s=TIMEOUT_S)

    def server_fn(chan):
        server = Abnn2Server(
            chan, qmodel, batch, group=group, seed=seed + 1, pipeline=pipe
        )
        if untraced:
            _detach_tracing(server)
        server.offline(rounds=1)
        if banked:
            server.load_offline_round(server.export_offline_round())
        server.online()
        return server

    def client_fn(chan):
        client = Abnn2Client(
            chan, meta, batch, group=group, seed=seed + 2, pipeline=pipe
        )
        if untraced:
            _detach_tracing(client)
        client.offline(rounds=1)
        if banked:
            client.load_offline_round(client.export_offline_round())
        logits = client.online(x_ring)
        return client, logits

    server, (client, logits) = _both(server_fn, client_fn, channels)
    return logits, server, client


# --------------------------------------------------------------------- #
# the equivalence matrix
# --------------------------------------------------------------------- #
class TestEquivalenceMatrix:
    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize("batch", [1, 2, 4])
    def test_logits_match_sequential(
        self, pmodel, xs, test_group, sequential_ref, chunk, batch
    ):
        """Chunk size x batch width: logit shares byte-identical."""
        with _no_thread_leak():
            logits, server, client = _run_pipelined(
                pmodel, xs[:batch], test_group, chunk=chunk
            )
        assert (logits == sequential_ref[batch]).all()
        # The pipelined executor actually ran: both parties hold a mux
        # with the planned streams (main + one per ReLU layer).
        plan = build_plan(pmodel_meta(pmodel), pipelined=True)
        expected_tags = {MAIN_STREAM} | set(plan.stream_tags())
        for party in (server, client):
            assert party._mux is not None
            assert set(party._mux.stream_totals()) == expected_tags

    @pytest.mark.parametrize("chunk", [16, None])
    def test_banked_rounds_match(
        self, pmodel, xs, test_group, sequential_ref, chunk
    ):
        """export/load round-tripped material composes with pipelining."""
        logits, _server, _client = _run_pipelined(
            pmodel, xs[:2], test_group, chunk=chunk, banked=True
        )
        assert (logits == sequential_ref[2]).all()

    def test_stream_totals_invariant_across_matrix(
        self, pmodel, xs, test_group, sequential_ref
    ):
        """Per-stream byte totals depend on the chunk size alone — not on
        transport, tracer attachment, or banked offline material."""
        x = xs[:2]
        base_logits, base_s, base_c = _run_pipelined(
            pmodel, x, test_group, chunk=16
        )
        ref = {
            "server": base_s._mux.stream_totals(),
            "client": base_c._mux.stream_totals(),
        }
        variants = {
            "untraced": dict(untraced=True),
            "banked": dict(banked=True),
        }
        for name, kwargs in variants.items():
            logits, server, client = _run_pipelined(
                pmodel, x, test_group, chunk=16, **kwargs
            )
            assert (logits == base_logits).all(), name
            assert server._mux.stream_totals() == ref["server"], name
            assert client._mux.stream_totals() == ref["client"], name

        channels = _tcp_pair(timeout_s=TIMEOUT_S)
        try:
            logits, server, client = _run_pipelined(
                pmodel, x, test_group, chunk=16, channels=channels
            )
            assert (logits == base_logits).all()
            assert server._mux.stream_totals() == ref["server"]
            assert client._mux.stream_totals() == ref["client"]
        finally:
            channels[0].close()
            channels[1].close()

    def test_stream_totals_mirror_between_parties(self, pmodel, xs, test_group):
        """Per tag: one party's sends are the other party's receives."""
        _logits, server, client = _run_pipelined(pmodel, xs[:2], test_group, chunk=16)
        st, ct = server._mux.stream_totals(), client._mux.stream_totals()
        assert set(st) == set(ct)
        for tag in st:
            assert st[tag]["sent_bytes"] == ct[tag]["recv_bytes"]
            assert st[tag]["recv_bytes"] == ct[tag]["sent_bytes"]
            assert st[tag]["sent_msgs"] == ct[tag]["recv_msgs"]
            assert st[tag]["recv_msgs"] == ct[tag]["sent_msgs"]

    def test_chunking_overhead_is_the_closed_form(self, pmodel, xs, test_group):
        """Shrinking the chunk adds exactly the framing overhead delta on
        each GC stream (per party, sent+received)."""
        runs = {
            chunk: _run_pipelined(pmodel, xs[:2], test_group, chunk=chunk)
            for chunk in (None, 16, 1)
        }
        n_and = 3 * 32 - 2  # relu template AND gates at l=32
        for tag in (GC_STREAM_BASE, GC_STREAM_BASE + 1):
            totals = {}
            for chunk, (_l, server, _c) in runs.items():
                per_stream = server._mux.stream_totals()[tag]
                totals[chunk] = per_stream["sent_bytes"] + per_stream["recv_bytes"]
            for chunk in (16, 1):
                n_chunks = -(-n_and // chunk)
                expected = (
                    gc_stream_overhead_bits(n_chunks) - gc_stream_overhead_bits(1)
                ) // 8
                assert totals[chunk] - totals[None] == expected

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            PipelineConfig(chunk=0)
        with pytest.raises(ConfigError):
            PipelineConfig(window=0)


def pmodel_meta(qmodel):
    return ModelMeta.from_model(qmodel)


# --------------------------------------------------------------------- #
# streaming memory bound
# --------------------------------------------------------------------- #
class TestResidency:
    def test_peak_table_residency_is_o_chunk(self, pmodel, xs, test_group):
        """At chunk=16 the largest garbled-table block either party ever
        holds for transfer is one chunk, ~5.9x below the full table."""
        chunk, batch = 16, 4
        report = secure_predict(
            pmodel, xs[:batch], group=test_group, seed=0,
            pipeline=PipelineConfig(chunk=chunk),
        )
        n_inst = HIDDEN * batch
        n_and = 3 * 32 - 2
        full_bytes = table_block_bytes(n_and, n_inst)
        expected_peak = table_block_bytes(chunk, n_inst)
        for trace in (report.server_trace, report.client_trace):
            peaks = [
                span["attrs"]["peak_table_bytes"]
                for _path, span in iter_spans(trace)
                if span["name"] == "relu" and "peak_table_bytes" in span["attrs"]
            ]
            assert len(peaks) == 2  # one per ReLU layer
            for peak in peaks:
                assert peak == expected_peak
                assert peak * 5 < full_bytes

    def test_unbounded_chunk_ships_whole_table(self, pmodel, xs, test_group):
        report = secure_predict(
            pmodel, xs[:1], group=test_group, seed=0, pipeline=PipelineConfig()
        )
        n_and = 3 * 32 - 2
        for _path, span in iter_spans(report.server_trace):
            if span["name"] == "relu":
                assert span["attrs"]["stream_chunks"] == 1
                assert span["attrs"]["peak_table_bytes"] == table_block_bytes(
                    n_and, HIDDEN
                )


# --------------------------------------------------------------------- #
# tracer overlap conformance (per-stream spans vs Table 1 closed forms)
# --------------------------------------------------------------------- #
class TestStreamSpanConformance:
    @pytest.mark.parametrize("chunk", [16, 1])
    def test_relu_spans_byte_exact_despite_interleaving(
        self, pmodel, xs, test_group, chunk
    ):
        """Every streamed ReLU span equals gc_relu_wire_bits plus the
        exact chunk-framing overhead — on both parties, to the byte,
        even though table transfer interleaves with the main stream."""
        batch = 2
        report = secure_predict(
            pmodel, xs[:batch], group=test_group, seed=0,
            pipeline=PipelineConfig(chunk=chunk),
        )
        n_and = 3 * 32 - 2
        n_chunks = -(-n_and // chunk)
        for trace in (report.server_trace, report.client_trace):
            assert check_conformance(trace) == []
            relu_rows = [r for r in conformance_rows(trace) if r.kind == "relu"]
            assert len(relu_rows) == 2
            for row in relu_rows:
                assert row.ok is True
                assert row.slack_min_bits == row.slack_max_bits == 0
                predicted = gc_relu_wire_bits(
                    32, HIDDEN * batch
                ) + gc_stream_overhead_bits(n_chunks)
                assert row.predicted_bits == predicted
                assert row.core_bits == predicted  # byte equality, no slack
            # The spans advertise how they were streamed.
            for _path, span in iter_spans(trace):
                if span["name"] == "relu":
                    assert span["attrs"]["stream_chunks"] == n_chunks

    def test_sequential_spans_unchanged(self, pmodel, xs, test_group):
        """No pipeline => no stream_chunks attr, legacy predicted form."""
        report = secure_predict(pmodel, xs[:2], group=test_group, seed=0)
        for trace in (report.server_trace, report.client_trace):
            assert check_conformance(trace) == []
            for _path, span in iter_spans(trace):
                if span["name"] == "relu":
                    assert "stream_chunks" not in span["attrs"]


# --------------------------------------------------------------------- #
# graceful degradation
# --------------------------------------------------------------------- #
class _MuxlessChannel:
    """A transport that opts out of mux framing (both endpoints agree)."""

    supports_mux = False

    def __init__(self, inner):
        self._inner = inner

    @property
    def party(self):
        return self._inner.party

    @property
    def stats(self):
        return self._inner.stats

    @property
    def tracer(self):
        return self._inner.tracer

    @tracer.setter
    def tracer(self, value):
        self._inner.tracer = value

    @property
    def timeout_s(self):
        return self._inner.timeout_s

    def send(self, obj):
        self._inner.send(obj)

    def recv(self):
        return self._inner.recv()

    def exchange(self, obj):
        self.send(obj)
        return self.recv()

    def close(self):
        self._inner.close()


class TestGracefulDegrade:
    def test_muxless_transport_runs_sequential_transcript(
        self, pmodel, xs, test_group, sequential_ref
    ):
        """pipeline= on a mux-incapable transport falls back to the
        sequential executor with a byte-identical wire transcript."""
        x = xs[:2]
        _logits, ref_server, ref_client = _run_pipelined(
            pmodel, x, test_group, chunk=None, pipeline=False
        )
        raw = make_channel_pair(timeout_s=TIMEOUT_S)
        channels = (_MuxlessChannel(raw[0]), _MuxlessChannel(raw[1]))
        with _no_thread_leak():
            logits, server, client = _run_pipelined(
                pmodel, x, test_group, chunk=16, channels=channels
            )
        assert (logits == sequential_ref[2]).all()
        assert server._mux is None and client._mux is None
        ref_stats = ref_server.chan.stats
        stats = raw[0].stats
        assert stats.bytes_sent == ref_stats.bytes_sent
        assert stats.messages_sent == ref_stats.messages_sent
        assert stats.rounds == ref_stats.rounds

    def test_optimized_relu_has_nothing_streamable(
        self, pmodel, xs, test_group
    ):
        """The optimized ReLU's stage-2 tables depend on online-revealed
        signs, so its plan declares nothing streamable and the pipelined
        request degrades to the sequential executor."""
        x = xs[:2]
        ref = secure_predict(
            pmodel, x, relu_variant="optimized", group=test_group, seed=0
        )
        report = secure_predict(
            pmodel, x, relu_variant="optimized", group=test_group, seed=0,
            pipeline=PipelineConfig(chunk=16),
        )
        assert (report.logits_int == ref.logits_int).all()
        assert report.online_client.payload_bytes == ref.online_client.payload_bytes
