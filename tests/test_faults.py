"""Deterministic fault injection: the session must fail typed, never wedge.

The soak matrix runs `secure_predict` under every fault class with fixed
seeds (overridable via ``ABNN2_FAULT_SEEDS``): the run must either
produce logits identical to the fault-free reference or raise a typed
``ChannelError``/``ProtocolError`` within the deadline — no hangs, no
silent wrong answers, no leaked server threads.
"""

import os
import threading
import time

import numpy as np
import pytest

from repro.core.protocol import secure_predict
from repro.errors import ChannelError, ConfigError, ProtocolError
from repro.net import make_channel_pair
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, FaultyChannel
from repro.nn.model import mnist_mlp
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

SEEDS = tuple(
    int(s) for s in os.environ.get("ABNN2_FAULT_SEEDS", "0,1,2").split(",")
)
TIMEOUT_S = 3.0
#: recv deadline + runner join grace + scheduling slack
DEADLINE_S = TIMEOUT_S + 10.0 + 5.0


@pytest.fixture(scope="module")
def tiny_model():
    """Untrained but valid QNN — fault tests need determinism, not accuracy."""
    model = mnist_mlp(seed=7, hidden=4, input_dim=16)
    return quantize_model(model, FragmentScheme.ternary(), Ring(32), frac_bits=6)


@pytest.fixture(scope="module")
def tiny_x():
    return np.random.default_rng(0).normal(scale=0.25, size=(1, 16))


@pytest.fixture(scope="module")
def reference(tiny_model, tiny_x):
    """Fault-free run: golden logits plus per-party message counts."""
    from repro.crypto.group import MODP_TEST

    server_chan, client_chan = make_channel_pair(timeout_s=TIMEOUT_S)
    report = secure_predict(
        tiny_model, tiny_x, group=MODP_TEST, seed=9,
        timeout_s=TIMEOUT_S, channels=(server_chan, client_chan),
    )
    return report.logits_int, server_chan.stats.snapshot()


def _assert_no_leaked_server_threads():
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        leaked = [t for t in threading.enumerate() if t.name == "abnn2-server"]
        if not leaked:
            return
        time.sleep(0.05)
    raise AssertionError(f"leaked protocol threads: {leaked}")


class TestPlan:
    def test_seeded_plan_is_deterministic(self):
        a = FaultPlan.seeded("corrupt", seed=4, max_index=11)
        b = FaultPlan.seeded("corrupt", seed=4, max_index=11)
        assert a.specs == b.specs
        assert 0 <= a.specs[0].message_index < 11

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            FaultSpec(kind="gamma-ray", message_index=0)

    def test_duplicate_index_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan(
                (FaultSpec("drop", 3), FaultSpec("corrupt", 3))
            )


class TestFaultyChannelUnit:
    def test_delay_preserves_message(self):
        server, client = make_channel_pair(timeout_s=2)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("delay", 0, delay_s=0.01),)))
        faulty.send(b"payload")
        assert client.recv() == b"payload"
        assert len(faulty.fired) == 1

    def test_drop_swallows_and_skips_stats(self):
        server, client = make_channel_pair(timeout_s=0.1)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("drop", 0),)))
        faulty.send(b"payload")
        assert faulty.stats.total_messages == 0
        with pytest.raises(ChannelError, match="timed out"):
            client.recv()

    def test_drop_followed_by_send_reports_sequence_gap(self):
        """A later message must not masquerade as the dropped one."""
        server, client = make_channel_pair(timeout_s=2)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("drop", 0),)))
        faulty.send(b"lost")
        faulty.send(b"next")
        with pytest.raises(ChannelError, match="sequence gap"):
            client.recv()

    def test_truncate_raises_protocol_error(self, rng):
        server, client = make_channel_pair(timeout_s=2)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("truncate", 0),)))
        faulty.send(rng.integers(0, 99, size=64, dtype=np.uint64))
        with pytest.raises(ProtocolError, match="truncated"):
            client.recv()

    def test_corrupt_raises_crc_error(self, rng):
        server, client = make_channel_pair(timeout_s=2)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("corrupt", 0, seed=3),)))
        faulty.send(rng.integers(0, 99, size=64, dtype=np.uint64))
        with pytest.raises(ChannelError, match="CRC mismatch"):
            client.recv()

    def test_disconnect_raises_both_sides(self):
        server, client = make_channel_pair(timeout_s=2)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("disconnect", 1),)))
        faulty.send(b"ok")
        assert client.recv() == b"ok"
        with pytest.raises(ChannelError, match="injected disconnect"):
            faulty.send(b"never arrives")
        with pytest.raises(ChannelError, match="connection lost"):
            client.recv()

    def test_faults_indexed_by_send_count(self):
        server, client = make_channel_pair(timeout_s=2)
        faulty = FaultyChannel(server, FaultPlan((FaultSpec("drop", 2),)))
        faulty.send(b"a")
        faulty.send(b"b")
        faulty.send(b"dropped")
        faulty.send(b"c")
        assert client.recv() == b"a"
        assert client.recv() == b"b"
        # The message after the drop is detected as out of sequence.
        with pytest.raises(ChannelError, match="sequence gap"):
            client.recv()


class TestSoak:
    """The acceptance matrix: every fault class x every fixed seed."""

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_secure_predict_under_fault(
        self, kind, seed, tiny_model, tiny_x, test_group, reference
    ):
        ref_logits, ref_stats = reference
        # Alternate which party hosts the injector; index into that
        # party's send sequence from the fault-free message counts.
        party = seed % 2
        plan = FaultPlan.seeded(
            kind, seed=seed, max_index=ref_stats.messages_sent[party], delay_s=0.02
        )
        server_chan, client_chan = make_channel_pair(timeout_s=TIMEOUT_S)
        endpoints = [server_chan, client_chan]
        endpoints[party] = FaultyChannel(endpoints[party], plan)

        start = time.monotonic()
        try:
            report = secure_predict(
                tiny_model, tiny_x, group=test_group, seed=9,
                timeout_s=TIMEOUT_S, channels=tuple(endpoints),
            )
        except (ChannelError, ProtocolError):
            pass  # typed, attributable failure: acceptable
        else:
            # The run survived (e.g. a delay, or a drop of nothing the
            # peer waited on) — then the answer must be *right*.
            assert (report.logits_int == ref_logits).all(), (
                f"fault {kind}/seed {seed} silently corrupted the prediction"
            )
        elapsed = time.monotonic() - start
        assert elapsed < DEADLINE_S, (
            f"fault {kind}/seed {seed} exceeded the deadline ({elapsed:.1f}s)"
        )
        _assert_no_leaked_server_threads()

class TestOverTcp:
    """The same session layer must hold over real sockets."""

    def _tcp_pair(self, timeout_s):
        import socket

        from repro.net import tcp

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        box = {}

        def _serve():
            box["server"] = tcp.listen(port, timeout_s=timeout_s)

        thread = threading.Thread(target=_serve, daemon=True)
        thread.start()
        client = tcp.connect("127.0.0.1", port, timeout_s=timeout_s)
        thread.join(timeout=timeout_s)
        return box["server"], client

    def test_fault_free_run_matches_in_memory(
        self, tiny_model, tiny_x, test_group, reference
    ):
        ref_logits, ref_stats = reference
        server_chan, client_chan = self._tcp_pair(timeout_s=30.0)
        try:
            report = secure_predict(
                tiny_model, tiny_x, group=test_group, seed=9,
                timeout_s=30.0, channels=(server_chan, client_chan),
            )
        finally:
            server_chan.close()
            client_chan.close()
        assert (report.logits_int == ref_logits).all()
        tcp_stats = server_chan.stats
        # Accounting is transport-independent: payloads, messages, rounds.
        assert tcp_stats.bytes_sent == ref_stats.bytes_sent
        assert tcp_stats.messages_sent == ref_stats.messages_sent
        assert tcp_stats.rounds == ref_stats.rounds

    @pytest.mark.parametrize("kind", ["corrupt", "truncate", "disconnect"])
    def test_faulted_run_fails_typed(
        self, kind, tiny_model, tiny_x, test_group, reference
    ):
        _ref_logits, ref_stats = reference
        plan = FaultPlan.seeded(kind, seed=1, max_index=ref_stats.messages_sent[1])
        server_chan, client_chan = self._tcp_pair(timeout_s=TIMEOUT_S)
        start = time.monotonic()
        try:
            with pytest.raises((ChannelError, ProtocolError)):
                secure_predict(
                    tiny_model, tiny_x, group=test_group, seed=9,
                    timeout_s=TIMEOUT_S,
                    channels=(server_chan, FaultyChannel(client_chan, plan)),
                )
        finally:
            server_chan.close()
            client_chan.close()
        assert time.monotonic() - start < DEADLINE_S
        _assert_no_leaked_server_threads()


class TestDelayCompletes:
    def test_delay_class_always_completes(self, tiny_model, tiny_x, test_group, reference):
        """Delays are the one class that must never break the protocol."""
        ref_logits, ref_stats = reference
        plan = FaultPlan.seeded("delay", seed=0, max_index=ref_stats.messages_sent[1])
        server_chan, client_chan = make_channel_pair(timeout_s=TIMEOUT_S)
        report = secure_predict(
            tiny_model, tiny_x, group=test_group, seed=9, timeout_s=TIMEOUT_S,
            channels=(server_chan, FaultyChannel(client_chan, plan)),
        )
        assert (report.logits_int == ref_logits).all()
        _assert_no_leaked_server_threads()
