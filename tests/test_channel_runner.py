"""Channels, traffic accounting, and the two-party thread runner."""

import threading
import time

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.net.channel import make_channel_pair
from repro.net.runner import run_protocol


class TestChannel:
    def test_send_recv_both_directions(self):
        server, client = make_channel_pair()
        server.send(b"from-server")
        client.send(b"from-client")
        assert client.recv() == b"from-server"
        assert server.recv() == b"from-client"

    def test_exchange(self):
        server, client = make_channel_pair()

        def _client():
            assert client.recv() == 1
            client.send(2)

        thread = threading.Thread(target=_client)
        thread.start()
        assert server.exchange(1) == 2
        thread.join()

    def test_recv_timeout(self):
        server, _client = make_channel_pair(timeout_s=0.05)
        with pytest.raises(ChannelError, match="timed out"):
            server.recv()

    def test_closed_channel(self):
        server, client = make_channel_pair()
        server.close()
        with pytest.raises(ChannelError):
            server.send(b"x")
        with pytest.raises(ChannelError, match="peer closed"):
            client.recv()

    def test_arrays_roundtrip(self, rng):
        server, client = make_channel_pair()
        arr = rng.integers(0, 100, size=(4, 4), dtype=np.uint64)
        server.send(arr)
        assert (client.recv() == arr).all()

    def test_abort_distinct_from_close(self):
        server, client = make_channel_pair()
        server.abort()
        with pytest.raises(ChannelError, match="connection lost"):
            client.recv()

    def test_injected_corruption_caught_by_crc(self):
        server, client = make_channel_pair()
        server._inject_frame(b"\x02" + b"\x00" * 8, valid_crc=False)
        with pytest.raises(ChannelError, match="CRC mismatch"):
            client.recv()

    def test_skipped_frame_reported_as_gap(self):
        server, client = make_channel_pair()
        server._skip_frame()
        server.send(1)
        with pytest.raises(ChannelError, match="sequence gap"):
            client.recv()


class TestStats:
    def test_payload_byte_attribution(self):
        server, client = make_channel_pair()
        server.send(b"12345678")  # 8 payload bytes from party 0
        client.recv()
        client.send(b"12")  # 2 payload bytes from party 1
        server.recv()
        stats = server.stats
        assert stats.bytes_sent[0] == 8
        assert stats.bytes_sent[1] == 2
        assert stats.total_bytes == 10
        assert stats.total_messages == 2

    def test_framed_bytes_exceed_payload(self):
        server, client = make_channel_pair()
        server.send(b"abc")
        client.recv()
        assert server.stats.framed_bytes_sent[0] > server.stats.bytes_sent[0]

    def test_rounds_count_direction_flips(self):
        server, client = make_channel_pair()
        # s, s, c, s  -> 3 direction flips/rounds
        server.send(1)
        server.send(2)
        client.recv(), client.recv()
        client.send(3)
        server.recv()
        server.send(4)
        client.recv()
        assert server.stats.rounds == 3

    def test_snapshot_detached(self):
        server, client = make_channel_pair()
        server.send(1)
        client.recv()
        snap = server.stats.snapshot()
        server.send(2)
        client.recv()
        assert snap.total_messages == 1
        assert server.stats.total_messages == 2

    def test_reset(self):
        server, client = make_channel_pair()
        server.send(1)
        client.recv()
        server.stats.reset()
        assert server.stats.total_bytes == 0
        assert server.stats.rounds == 0


class TestRunner:
    def test_results_and_timing(self):
        def server_fn(chan):
            chan.send(10)
            return "server-result"

        def client_fn(chan):
            return chan.recv() + 1

        result = run_protocol(server_fn, client_fn)
        assert result.server == "server-result"
        assert result.client == 11
        assert result.server_time_s >= 0
        assert result.wall_time_s > 0
        assert result.rounds == 1

    def test_extra_args(self):
        result = run_protocol(
            lambda chan, x: x * 2,
            lambda chan, y, z: y + z,
            server_args=(5,),
            client_args=(1, 2),
        )
        assert result.server == 10
        assert result.client == 3

    def test_server_exception_propagates(self):
        def bad_server(chan):
            raise ValueError("server boom")

        def client_fn(chan):
            try:
                chan.recv()
            except ChannelError:
                pass

        with pytest.raises(ValueError, match="server boom"):
            run_protocol(bad_server, client_fn)

    def test_client_exception_preferred_over_secondary_channel_error(self):
        # The client dies first; the server's "peer closed" must not mask it.
        def server_fn(chan):
            chan.recv()

        def bad_client(chan):
            raise RuntimeError("client boom")

        with pytest.raises(RuntimeError, match="client boom"):
            run_protocol(server_fn, bad_client, timeout_s=5)

    def test_stats_snapshot_returned(self):
        result = run_protocol(lambda c: c.send(b"xy"), lambda c: c.recv())
        assert result.total_bytes == 2

    def test_explicit_channels_used(self):
        server_chan, client_chan = make_channel_pair(timeout_s=5)
        result = run_protocol(
            lambda c: c.send(b"abc"),
            lambda c: c.recv(),
            channels=(server_chan, client_chan),
        )
        assert result.client == b"abc"
        assert server_chan.stats.total_bytes == 3

    def test_secondary_exception_attached_as_context(self):
        """Both failures must be visible: primary raised, secondary chained."""

        def server_fn(chan):
            chan.recv()  # dies with "peer closed" after the client crashes

        def bad_client(chan):
            raise RuntimeError("client boom")

        with pytest.raises(RuntimeError, match="client boom") as excinfo:
            run_protocol(server_fn, bad_client, timeout_s=5)
        assert isinstance(excinfo.value.__context__, ChannelError)

    def test_no_thread_leak_after_client_crash(self):
        def server_fn(chan):
            chan.recv()

        def bad_client(chan):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            run_protocol(server_fn, bad_client, timeout_s=5)
        assert not [t for t in threading.enumerate() if t.name == "abnn2-server"]

    def test_timeout_error_carries_partial_stats(self):
        """A wedged server must yield a bounded, informative TimeoutError."""

        def wedged_server(chan):
            chan.recv()  # consume, then wedge outside any channel wait
            time.sleep(3.0)

        def client_fn(chan):
            chan.send(b"12345")
            return "done"

        start = time.monotonic()
        with pytest.raises(TimeoutError, match="traffic so far: 5 payload bytes"):
            run_protocol(wedged_server, client_fn, timeout_s=0.2, join_grace_s=0.2)
        assert time.monotonic() - start < 2.5

    def test_timeout_wakes_server_blocked_in_recv(self):
        """Closing both endpoints unblocks a server stuck past the runner's
        patience (its own recv deadline is much longer)."""

        def stuck_server(chan):
            chan.recv()

        def client_fn(chan):
            return "client finished without sending"

        channels = make_channel_pair(timeout_s=60)
        start = time.monotonic()
        with pytest.raises((ChannelError, TimeoutError)):
            run_protocol(
                stuck_server, client_fn,
                timeout_s=0.2, join_grace_s=0.5, channels=channels,
            )
        assert time.monotonic() - start < 5.0
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            if not [t for t in threading.enumerate() if t.name == "abnn2-server"]:
                break
            time.sleep(0.02)
        assert not [t for t in threading.enumerate() if t.name == "abnn2-server"]
