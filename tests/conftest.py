"""Shared fixtures: fast insecure group, seeded RNGs, a small trained model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crypto.group import MODP_TEST
from repro.nn.data import synthetic_mnist
from repro.nn.model import mnist_mlp
from repro.nn.train import TrainConfig, train_classifier
from repro.utils.ring import Ring


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def ring32():
    return Ring(32)


@pytest.fixture
def ring64():
    return Ring(64)


@pytest.fixture
def test_group():
    """256-bit MODP group: insecure, but makes base OTs fast in tests."""
    return MODP_TEST


@pytest.fixture(scope="session")
def small_dataset():
    return synthetic_mnist(n_train=600, n_test=150, seed=99)


@pytest.fixture(scope="session")
def trained_model(small_dataset):
    """A small trained MLP shared across protocol tests (session scope)."""
    model = mnist_mlp(seed=7, hidden=32, input_dim=784)
    train_classifier(
        model,
        small_dataset.train_x,
        small_dataset.train_y,
        TrainConfig(epochs=10, seed=1),
    )
    return model
