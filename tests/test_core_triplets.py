"""ABNN2 dot-product triplet generation (Algorithm 1 + optimizations)."""

import numpy as np
import pytest

from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.errors import ConfigError
from repro.net import run_protocol
from repro.perf.costmodel import abnn2_comm_bits
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


def _run_triplets(w, r, config, seed=9):
    return run_protocol(
        lambda ch: generate_triplets_server(ch, w, config, seed=seed),
        lambda ch: generate_triplets_client(
            ch, r, config, np.random.default_rng(seed + 1), seed=seed + 2
        ),
    )


def _random_weights(scheme, shape, rng):
    lo, hi = scheme.weight_range
    return rng.integers(lo, hi + 1, size=shape)


SCHEMES = [
    "binary",
    "ternary",
    "3(2,1)",
    "3(3)",
    "4(2,2)",
    "8(2,2,2,2)",
    "8(3,3,2)",
    "8(4,4)",
]


class TestCorrectness:
    @pytest.mark.parametrize("scheme_name", SCHEMES)
    @pytest.mark.parametrize("o", [1, 4])
    def test_reconstruction(self, scheme_name, o, test_group, rng):
        from repro.quant.fragments import TABLE2_SCHEMES

        scheme = TABLE2_SCHEMES[scheme_name]
        ring = Ring(32)
        m, n = 5, 9
        w = _random_weights(scheme, (m, n), rng)
        r = ring.sample(rng, (n, o))
        config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=o, group=test_group)
        result = _run_triplets(w, r, config)
        got = ring.add(result.server, result.client)
        assert (got == ring.matmul(ring.reduce(w), r)).all()

    @pytest.mark.parametrize("bits", [16, 32, 64])
    def test_ring_widths(self, bits, test_group, rng):
        scheme = FragmentScheme.from_bits((2, 2))
        ring = Ring(bits)
        w = _random_weights(scheme, (4, 6), rng)
        r = ring.sample(rng, (6, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=4, n=6, o=2, group=test_group)
        result = _run_triplets(w, r, config)
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_forced_modes_agree(self, test_group, rng):
        scheme = FragmentScheme.from_bits((2, 2))
        ring = Ring(32)
        w = _random_weights(scheme, (3, 5), rng)
        r = ring.sample(rng, (5, 1))
        for mode in ("one", "multi"):
            config = TripletConfig(
                ring=ring, scheme=scheme, m=3, n=5, o=1, mode=mode, group=test_group
            )
            result = _run_triplets(w, r, config)
            got = ring.add(result.server, result.client)
            assert (got == ring.matmul(ring.reduce(w), r)).all()

    def test_chunked_execution(self, test_group, rng, monkeypatch):
        # Force tiny chunks so the accumulation crosses chunk boundaries.
        import repro.core.triplets as triplets_mod

        monkeypatch.setattr(triplets_mod, "_CHUNK_BUDGET_WORDS", 1)
        scheme = FragmentScheme.from_bits((2, 2, 2, 2))
        ring = Ring(32)
        w = _random_weights(scheme, (3, 4), rng)
        r = ring.sample(rng, (4, 2))
        config = TripletConfig(ring=ring, scheme=scheme, m=3, n=4, o=2, group=test_group)
        assert config.chunk_size(4) == 1024  # floor kicks in
        result = _run_triplets(w, r, config)
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_negative_weights_exact(self, test_group, rng):
        # The signed top fragment must produce exact signed products.
        scheme = FragmentScheme.from_bits((2, 2, 2, 2))
        ring = Ring(32)
        w = np.full((2, 3), -128, dtype=np.int64)  # most negative value
        r = ring.sample(rng, (3, 1))
        config = TripletConfig(ring=ring, scheme=scheme, m=2, n=3, o=1, group=test_group)
        result = _run_triplets(w, r, config)
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()


class TestCommunication:
    def test_matches_cost_model_multi(self, test_group, rng):
        scheme = FragmentScheme.from_bits((2, 2))
        ring = Ring(32)
        m, n, o = 8, 16, 4
        w = _random_weights(scheme, (m, n), rng)
        r = ring.sample(rng, (n, o))
        config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=o, group=test_group)
        result = _run_triplets(w, r, config)
        predicted = abnn2_comm_bits(scheme, m, n, o, 32, "multi") / 8
        # Base OTs and framing add a fixed overhead on top of the model.
        overhead = result.total_bytes - predicted
        assert 0 <= overhead < 20_000

    def test_matches_cost_model_one_batch(self, test_group, rng):
        scheme = FragmentScheme.from_bits((2, 2, 2, 2))
        ring = Ring(32)
        m, n = 16, 16
        w = _random_weights(scheme, (m, n), rng)
        r = ring.sample(rng, (n, 1))
        config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=1, group=test_group)
        result = _run_triplets(w, r, config)
        predicted = abnn2_comm_bits(scheme, m, n, 1, 32, "one") / 8
        overhead = result.total_bytes - predicted
        assert 0 <= overhead < 20_000

    def test_one_batch_beats_multi_for_single_column(self, test_group, rng):
        scheme = FragmentScheme.from_bits((2, 2))
        ring = Ring(32)
        m, n = 16, 32
        w = _random_weights(scheme, (m, n), rng)
        r = ring.sample(rng, (n, 1))

        def traffic(mode):
            config = TripletConfig(
                ring=ring, scheme=scheme, m=m, n=n, o=1, mode=mode, group=test_group
            )
            return _run_triplets(w, r, config).total_bytes

        assert traffic("one") < traffic("multi")

    def test_ot_count_property(self):
        scheme = FragmentScheme.from_bits((2, 2, 2, 2))
        config = TripletConfig(ring=Ring(32), scheme=scheme, m=10, n=20, o=5)
        assert config.total_ots == 4 * 10 * 20


class TestValidation:
    def test_bad_dimensions(self):
        with pytest.raises(ConfigError):
            TripletConfig(ring=Ring(32), scheme=FragmentScheme.binary(), m=0, n=1, o=1)

    def test_bad_mode(self):
        with pytest.raises(ConfigError):
            TripletConfig(
                ring=Ring(32), scheme=FragmentScheme.binary(), m=1, n=1, o=1, mode="banana"
            )

    def test_shape_mismatch_server(self, test_group):
        config = TripletConfig(
            ring=Ring(32), scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        with pytest.raises(ConfigError):
            generate_triplets_server(chan, np.zeros((3, 3), dtype=np.int64), config)

    def test_shape_mismatch_client(self, test_group):
        config = TripletConfig(
            ring=Ring(32), scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        with pytest.raises(ConfigError):
            generate_triplets_client(
                chan, np.zeros((4, 1), dtype=np.uint64), config, np.random.default_rng(0)
            )

    def test_radix_groups_mixed_scheme(self):
        config = TripletConfig(
            ring=Ring(32), scheme=FragmentScheme.from_bits((3, 3, 2)), m=1, n=1, o=1
        )
        assert config.radix_groups == [(4, [2]), (8, [0, 1])]
