"""Property-based tests: random circuits and random schemes.

These complement the targeted tests with structure-agnostic coverage:
any random DAG of gates must garble to the same function it evaluates in
the clear, and any random fragment decomposition must produce correct
triplets.  Hypothesis drives the structure; crypto randomness is seeded
per example for reproducibility.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gc.circuit import Circuit
from repro.gc.evaluate import decode_outputs, evaluate
from repro.gc.garble import garble
from repro.quant.fragments import FragmentScheme


@st.composite
def random_circuits(draw):
    """A random well-formed circuit with both parties' inputs."""
    n_garbler = draw(st.integers(1, 4))
    n_evaluator = draw(st.integers(1, 4))
    circ = Circuit()
    wires = circ.garbler_input(n_garbler) + circ.evaluator_input(n_evaluator)
    n_gates = draw(st.integers(1, 25))
    for _ in range(n_gates):
        op = draw(st.sampled_from(["xor", "and", "inv", "or"]))
        a = draw(st.sampled_from(wires))
        if op == "inv":
            wires.append(circ.inv(a))
        else:
            b = draw(st.sampled_from(wires))
            wires.append(getattr(circ, {"xor": "xor", "and": "and_", "or": "or_"}[op])(a, b))
    n_outputs = draw(st.integers(1, min(4, len(wires))))
    circ.mark_outputs(draw(st.lists(st.sampled_from(wires), min_size=n_outputs, max_size=n_outputs)))
    circ.validate()
    return circ


class TestRandomCircuits:
    @given(circ=random_circuits(), seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_garbled_matches_plain(self, circ, seed):
        rng = np.random.default_rng(seed)
        n_inst = 4
        g_bits = rng.integers(0, 2, size=(len(circ.garbler_inputs), n_inst), dtype=np.uint8)
        e_bits = rng.integers(0, 2, size=(len(circ.evaluator_inputs), n_inst), dtype=np.uint8)

        gcirc = garble(circ, n_inst, rng)
        out_labels = evaluate(
            circ,
            gcirc.tables,
            gcirc.encode(circ.garbler_inputs, g_bits),
            gcirc.encode(circ.evaluator_inputs, e_bits),
        )
        got = decode_outputs(out_labels, gcirc.output_decode_bits())
        expect = circ.eval_plain(g_bits.T, e_bits.T).T
        assert (got == expect).all()


class TestRandomSchemes:
    @given(
        widths=st.lists(st.integers(1, 4), min_size=1, max_size=4),
        signed=st.booleans(),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=40, deadline=None)
    def test_value_tables_cover_range_exactly(self, widths, signed, seed):
        """Every representable weight has exactly one digit vector, and the
        digit vectors enumerate the full cartesian product."""
        scheme = FragmentScheme.from_bits(tuple(widths), signed=signed)
        lo, hi = scheme.weight_range
        all_weights = np.arange(lo, hi + 1)
        digits = scheme.digits(all_weights)
        assert (scheme.compose(digits) == all_weights).all()
        # distinct weights -> distinct digit vectors
        seen = {tuple(row) for row in digits.reshape(-1, scheme.gamma)}
        assert len(seen) == all_weights.size

    @given(
        widths=st.lists(st.integers(1, 3), min_size=1, max_size=3),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=20, deadline=None)
    def test_fragment_products_sum_locally(self, widths, seed):
        """The OT decomposition identity w*r = sum_k vt_k[digit_k] * r
        holds in the ring for random weights and operands."""
        from repro.utils.ring import Ring

        scheme = FragmentScheme.from_bits(tuple(widths))
        ring = Ring(32)
        rng = np.random.default_rng(seed)
        lo, hi = scheme.weight_range
        w = rng.integers(lo, hi + 1, size=16)
        r = ring.sample(rng, 16)
        digits = scheme.digits(w)
        total = ring.zeros(16)
        for k in range(scheme.gamma):
            contribution = ring.reduce(scheme.values(k))[digits[:, k]]
            total = ring.add(total, ring.mul(contribution, r))
        assert (total == ring.mul(ring.reduce(w), r)).all()
