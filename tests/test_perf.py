"""Cost models, bench rows, and table formatting."""

import pytest

from repro.errors import ConfigError
from repro.net.netsim import LAN, WAN_SECUREML
from repro.perf.costmodel import (
    abnn2_comm_bits,
    abnn2_ot_count,
    gc_relu_comm_bits,
    minionn_comm_model_mb,
    network_offline_comm_bits,
    secureml_comm_bits,
    secureml_ot_count,
)
from repro.perf.timing import BenchRow, format_table, simulate_settings
from repro.quant.fragments import TABLE2_SCHEMES, FragmentScheme

MB = 1024 * 1024
FIG4_LAYERS = [(128, 784), (128, 128), (10, 128)]


class TestSecureMlModel:
    def test_table1_formulas(self):
        # l = 64: #OT per mult = 64*65/128 = 32.5
        assert secureml_ot_count(1, 1, 1, 64) == pytest.approx(32.5)
        assert secureml_comm_bits(1, 1, 1, 64) == pytest.approx(64 * 65 * 3)

    def test_scales_with_batch(self):
        assert secureml_comm_bits(2, 3, 4, 32) == 4 * secureml_comm_bits(2, 3, 1, 32)


class TestAbnn2Model:
    def test_ot_count_table1(self):
        scheme = TABLE2_SCHEMES["8(2,2,2,2)"]
        assert abnn2_ot_count(scheme, 128, 784) == 4 * 128 * 784

    def test_one_batch_formula(self):
        scheme = FragmentScheme.binary()
        got = abnn2_comm_bits(scheme, 1, 1, 1, 32, "one")
        assert got == 32 * 1 + 256

    def test_multi_batch_formula(self):
        scheme = FragmentScheme.binary()
        got = abnn2_comm_bits(scheme, 1, 1, 8, 32, "multi")
        assert got == 8 * 32 * 2 + 256

    def test_auto_mode(self):
        scheme = FragmentScheme.binary()
        assert abnn2_comm_bits(scheme, 1, 1, 1, 32) == abnn2_comm_bits(scheme, 1, 1, 1, 32, "one")
        assert abnn2_comm_bits(scheme, 1, 1, 2, 32) == abnn2_comm_bits(scheme, 1, 1, 2, 32, "multi")

    def test_invalid_mode(self):
        with pytest.raises(ConfigError):
            abnn2_comm_bits(FragmentScheme.binary(), 1, 1, 1, 32, "banana")

    def test_table2_binary_batch1_magnitude(self):
        # Paper: binary, batch 1, l=32 -> 4.06 MB offline for the Fig-4 net.
        bits = network_offline_comm_bits(FIG4_LAYERS, FragmentScheme.binary(), 1, 32)
        mb = bits / 8 / MB
        assert 3.3 <= mb <= 5.0

    def test_table2_2222_batch1_magnitude(self):
        # Paper: (2,2,2,2), batch 1 -> 19.52 MB.
        scheme = TABLE2_SCHEMES["8(2,2,2,2)"]
        mb = network_offline_comm_bits(FIG4_LAYERS, scheme, 1, 32) / 8 / MB
        assert 17.0 <= mb <= 23.0

    def test_table2_orderings(self):
        """The comm orderings of Table 2 hold in the model."""

        def mb(name, batch):
            return network_offline_comm_bits(FIG4_LAYERS, TABLE2_SCHEMES[name], batch, 32)

        # batch 1: (3,3,2) < (2,2,2,2) < (4,4) < (1,...,1)
        assert mb("8(3,3,2)", 1) < mb("8(2,2,2,2)", 1) < mb("8(4,4)", 1) < mb("8(1,...,1)", 1)
        # batch 128: (2,2,2,2) < (1,...,1) < (3,3,2) < (4,4)
        assert (
            mb("8(2,2,2,2)", 128)
            < mb("8(1,...,1)", 128)
            < mb("8(3,3,2)", 128)
            < mb("8(4,4)", 128)
        )
        # smaller eta is always cheaper; ternary < any multi-bit; binary cheapest
        assert mb("binary", 1) < mb("ternary", 1) < mb("3(2,1)", 1) < mb("4(2,2)", 1)

    def test_secureml_comparison_ratio(self):
        """Table 3's comm gap: ~4x for 8-bit, ~20x+ for ternary at l=64."""
        m, n = 128, 1000
        sm = secureml_comm_bits(m, n, 1, 64)
        ab8 = abnn2_comm_bits(TABLE2_SCHEMES["8(2,2,2,2)"], m, n, 1, 64, "one")
        ab_ternary = abnn2_comm_bits(TABLE2_SCHEMES["ternary"], m, n, 1, 64, "one")
        assert 3.0 < sm / ab8 < 8.0
        assert 15.0 < sm / ab_ternary < 40.0


class TestGcModel:
    def test_scales_linearly(self):
        assert gc_relu_comm_bits(32, 10) == 10 * gc_relu_comm_bits(32, 1)

    def test_grows_with_width(self):
        assert gc_relu_comm_bits(64, 1) > gc_relu_comm_bits(32, 1)


class TestMinionnModel:
    def test_anchors(self):
        assert minionn_comm_model_mb(1) == pytest.approx(18.1)
        assert minionn_comm_model_mb(128) == pytest.approx(1621.3)

    def test_monotone(self):
        assert minionn_comm_model_mb(64) < minionn_comm_model_mb(128)

    def test_invalid_batch(self):
        with pytest.raises(ConfigError):
            minionn_comm_model_mb(0)


class TestBenchRows:
    def test_projection(self):
        row = BenchRow("x", compute_s=1.0, payload_bytes=9 * MB, rounds=10)
        assert row.projected_s(WAN_SECUREML) == pytest.approx(1.0 + 1.0 + 0.72)
        assert row.comm_mb == pytest.approx(9.0)

    def test_as_dict_contains_models(self):
        row = BenchRow("x", 0.5, MB, 2, extras={"note": "hi"})
        d = row.as_dict([LAN, WAN_SECUREML])
        assert "LAN_s" in d and "WAN-9MBps-72ms_s" in d and d["note"] == "hi"

    def test_format_table_renders(self):
        rows = [BenchRow("a", 0.1, MB, 1), BenchRow("b", 0.2, 2 * MB, 2)]
        text = format_table(rows, [LAN], title="demo")
        assert "demo" in text and "a" in text and "b" in text and "LAN_s" in text

    def test_simulate_settings(self):
        assert simulate_settings("table2") == [LAN]
        assert len(simulate_settings("table3")) == 2
        assert len(simulate_settings("everything")) == 3
