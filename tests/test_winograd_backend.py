"""Winograd F(2x2,3x3) backend: transforms, grouped triplets, protocol.

The contract under test (docs/PROTOCOLS.md §16): the tile backend is a
per-layer-selectable drop-in next to im2col — byte-identical logits on
the same quantized model across the sequential, pipelined, and batched
serving paths — while drawing 2.25x fewer triplet elements for stride-1
3x3 convolutions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.matmul import SecureMatmulClient, SecureMatmulServer
from repro.core.protocol import (
    ModelMeta,
    WideServerRound,
    layer_triplet_config,
    secure_predict,
)
from repro.core.plan import PlanNode, build_plan
from repro.core.triplets import TripletConfig
from repro.errors import ConfigError, QuantizationError
from repro.net import run_protocol
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.lowering import Im2colSpec, lift_output, lower_shares
from repro.nn.model import Sequential
from repro.nn.quantize import QuantizedDense, quantize_model
from repro.nn.winograd import (
    WINOGRAD_OUTPUT_SCALE,
    WinogradSpec,
    check_winograd_headroom,
    divide_share_by4,
    lift_tiles,
    lower_tiles,
    transform_weights,
    winograd_scheme,
)
from repro.quant.fragments import FragmentScheme
from repro.quant.schemes import quantize_for_scheme
from repro.utils.ring import Ring


def _conv_via_winograd(spec, w_int, x_ring, ring):
    """The full integer tile pipeline: lower -> grouped matmul -> lift -> /4."""
    operand = lower_tiles(spec, x_ring, ring)
    wt = ring.reduce(transform_weights(spec, w_int))
    oc = w_int.shape[0]
    prod = ring.zeros((16 * oc, operand.shape[1]))
    for g in range(16):
        prod[g * oc : (g + 1) * oc] = ring.matmul(
            wt[g * oc : (g + 1) * oc],
            operand[g * spec.in_channels : (g + 1) * spec.in_channels],
        )
    lifted = lift_tiles(spec, oc, prod, ring)
    return ring.reduce(ring.to_signed(lifted) >> np.int64(2))


def _conv_via_im2col(ispec, w_int, x_ring, ring):
    prod = ring.matmul(ring.reduce(w_int), lower_shares(ispec, x_ring))
    return lift_output(ispec, w_int.shape[0], prod)


class TestWinogradSpec:
    def test_geometry(self):
        spec = WinogradSpec(2, 8, 8)
        assert (spec.out_h, spec.out_w) == (6, 6)
        assert (spec.tiles_h, spec.tiles_w) == (3, 3)
        assert spec.n_tiles == 9
        assert (spec.pad_h, spec.pad_w) == (8, 8)

    def test_odd_output_pads(self):
        spec = WinogradSpec(1, 7, 6)  # out 5x4 -> tiles 3x2
        assert spec.n_tiles == 6
        assert spec.pad_h == 8 and spec.pad_w == 6

    def test_eligibility(self):
        assert WinogradSpec.supports(Im2colSpec(1, 8, 8, kernel=3, stride=1))
        assert not WinogradSpec.supports(Im2colSpec(1, 8, 8, kernel=3, stride=2))
        assert not WinogradSpec.supports(Im2colSpec(1, 8, 8, kernel=2, stride=1))
        with pytest.raises(ConfigError):
            WinogradSpec.from_im2col(Im2colSpec(1, 8, 8, kernel=3, stride=2))
        with pytest.raises(ConfigError):
            WinogradSpec(1, 2, 5)


class TestTransforms:
    @pytest.mark.parametrize("h,w,ci,oc", [(8, 8, 2, 3), (7, 5, 1, 2), (3, 3, 3, 1)])
    def test_matches_plaintext_conv(self, h, w, ci, oc, rng):
        """Integer tile pipeline == direct conv, exactly, any geometry."""
        ring = Ring(32)
        spec = WinogradSpec(ci, h, w)
        ispec = Im2colSpec(ci, h, w, kernel=3, stride=1)
        w_int = rng.integers(-4, 5, size=(oc, ci * 9))
        x = ring.sample(rng, (spec.in_features, 3))
        # keep activations small enough that 4*conv fits the ring headroom
        x = ring.reduce(x & np.uint64(0xFFF))
        got = _conv_via_winograd(spec, w_int, x, ring)
        want = _conv_via_im2col(ispec, w_int, x, ring)
        assert (got == want).all()

    def test_lowering_is_additive(self, rng):
        """B^T d B on shares: the security-critical commutation."""
        ring = Ring(32)
        spec = WinogradSpec(2, 6, 6)
        z = ring.sample(rng, (spec.in_features, 2))
        z1 = ring.sample(rng, (spec.in_features, 2))
        z0 = ring.sub(z, z1)
        left = ring.add(lower_tiles(spec, z0, ring), lower_tiles(spec, z1, ring))
        assert (left == lower_tiles(spec, z, ring)).all()

    def test_lifting_is_additive(self, rng):
        ring = Ring(32)
        spec = WinogradSpec(1, 6, 6)
        shape = (16 * 3, 2 * spec.n_tiles)
        p = ring.sample(rng, shape)
        p1 = ring.sample(rng, shape)
        p0 = ring.sub(p, p1)
        left = ring.add(
            lift_tiles(spec, 3, p0, ring), lift_tiles(spec, 3, p1, ring)
        )
        assert (left == lift_tiles(spec, 3, p, ring)).all()

    def test_lift_rejects_zero_width(self):
        ring = Ring(32)
        spec = WinogradSpec(1, 6, 6)
        with pytest.raises(ConfigError, match="no columns"):
            lift_tiles(spec, 2, np.zeros((32, 0), dtype=np.uint64), ring)

    def test_transform_weights_shape_and_scale(self, rng):
        spec = WinogradSpec(2, 6, 6)
        w_int = rng.integers(-1, 2, size=(3, 18))
        wt = transform_weights(spec, w_int)
        assert wt.shape == (48, 2)
        # G2 = 2G: transformed weights are 4x the rational G g G^T form,
        # so the flat-kernel tile point (G row (1,1,1)) is the kernel sum.
        g = w_int.reshape(3, 2, 3, 3)
        p = 4 * 1 + 1  # tile point (a=1, b=1): rows (1,1,1) both sides
        assert (wt[p * 3 : (p + 1) * 3].T == g.sum(axis=(2, 3)).T).all()
        with pytest.raises(ConfigError):
            transform_weights(spec, w_int[:, :17])


class TestDivideBy4:
    @pytest.mark.parametrize("bits", [32, 64])
    def test_exact_on_small_values(self, bits, rng):
        """u + v = 4Z with |Z| << 2^l: division is exact w.h.p. (the
        failure probability at |Z| <= 2^12 is ~2^-18 per element, so a
        fixed-seed batch of 2000 is deterministically clean)."""
        ring = Ring(bits)
        z = rng.integers(-(2**12), 2**12, size=2000)
        m = ring.reduce(4 * z)
        v = ring.sample(rng, m.shape)
        u = ring.sub(m, v)
        got = ring.add(
            divide_share_by4(ring, u, party=0), divide_share_by4(ring, v, party=1)
        )
        assert (got == ring.reduce(z)).all()

    def test_wrap_failure_signature(self):
        """When the share split fails to wrap, the error is exactly the
        carry constant 2^(l-2) — the SecureML truncation failure class."""
        ring = Ring(8)
        z = np.arange(1, 32)  # positive: v=0 gives a non-wrapping split
        m = ring.reduce(4 * z)
        u, v = m, np.zeros_like(m)
        got = ring.add(
            divide_share_by4(ring, u, party=0), divide_share_by4(ring, v, party=1)
        )
        diff = ring.sub(got, ring.reduce(z))
        assert set(np.unique(diff)) <= {np.uint64(0), np.uint64(3 * 2**6)}

    def test_validation(self):
        ring = Ring(32)
        with pytest.raises(ConfigError):
            divide_share_by4(ring, np.zeros(1, dtype=np.uint64), party=2)
        with pytest.raises(ConfigError):
            divide_share_by4(Ring(2), np.zeros(1, dtype=np.uint64), party=0)


class TestHeadroom:
    def test_winograd_scheme_widens(self):
        base = FragmentScheme.ternary()
        wide = winograd_scheme(base)
        lo, hi = wide.weight_range
        assert lo <= -9 and hi >= 9  # covers 9 * max|w|
        assert wide.signed

    def test_check_refuses_narrow_ring(self):
        with pytest.raises(ConfigError, match="ring bits"):
            check_winograd_headroom(16, FragmentScheme.ternary(), 4, 6)
        check_winograd_headroom(32, FragmentScheme.ternary(), 4, 6)

    def test_quantize_model_refuses_narrow_ring(self, wino_net):
        with pytest.raises(ConfigError):
            quantize_model(
                wino_net,
                FragmentScheme.ternary(),
                Ring(16),
                frac_bits=6,
                input_shape=(1, 8, 8),
                linear_backend="winograd",
            )


class TestGroupedTriplets:
    def test_block_diagonal_product(self, test_group, rng):
        """U + V must equal the blockwise product, not the dense one."""
        ring = Ring(32)
        scheme = winograd_scheme(FragmentScheme.ternary())
        config = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=3, o=4, groups=16, group=test_group
        )
        lo, hi = scheme.weight_range
        w = rng.integers(lo, hi + 1, size=config.w_shape)
        r = ring.sample(rng, config.r_shape)

        def server_fn(chan):
            engine = SecureMatmulServer(chan, w, config, seed=1)
            engine.offline()
            return engine

        def client_fn(chan):
            engine = SecureMatmulClient(chan, config, np.random.default_rng(5), r_mat=r, seed=2)
            engine.offline()
            return engine

        result = run_protocol(server_fn, client_fn)
        z0 = ring.sample(rng, config.r_shape)
        y = ring.add(result.server.online(z0), result.client.online())
        expect = ring.zeros(config.out_shape)
        for g in range(16):
            expect[g * 2 : (g + 1) * 2] = ring.matmul(
                ring.reduce(w[g * 2 : (g + 1) * 2]),
                ring.add(z0, r)[g * 3 : (g + 1) * 3],
            )
        assert (y == expect).all()

    def test_sharded_draw_matches_sequential(self, test_group, rng):
        """The exec engine must honor the grouped (tile) triplet shape."""
        from repro.core.triplets import (
            generate_triplets_client,
            generate_triplets_server,
        )
        from repro.exec import (
            ShardPlan,
            parallel_triplets_client,
            parallel_triplets_server,
        )

        ring = Ring(32)
        scheme = winograd_scheme(FragmentScheme.ternary())
        config = TripletConfig(
            ring=ring, scheme=scheme, m=2, n=2, o=3, groups=16, group=test_group
        )
        lo, hi = scheme.weight_range
        w = rng.integers(lo, hi + 1, size=config.w_shape)
        r = ring.sample(rng, config.r_shape)
        plan = ShardPlan(shards=2, workers=2)

        seq = run_protocol(
            lambda ch: generate_triplets_server(ch, w, config, seed=1),
            lambda ch: generate_triplets_client(
                ch, r, config, np.random.default_rng(4), seed=2
            ),
        )
        par = run_protocol(
            lambda ch: parallel_triplets_server(ch, w, config, plan, seed=1),
            lambda ch: parallel_triplets_client(ch, r, config, plan, seed=2),
        )
        assert par.server.shape == config.out_shape
        expect = ring.zeros(config.out_shape)
        for g in range(16):
            expect[g * 2 : (g + 1) * 2] = ring.matmul(
                ring.reduce(w[g * 2 : (g + 1) * 2]), r[g * 2 : (g + 1) * 2]
            )
        assert (ring.add(seq.server, seq.client) == expect).all()
        assert (ring.add(par.server, par.client) == expect).all()


@pytest.fixture(scope="module")
def wino_net():
    return Sequential(
        [
            Conv2d(1, 2, kernel_size=3, seed=4),
            ReLU(),
            Conv2d(2, 3, kernel_size=3, seed=5),
            ReLU(),
            Flatten(),
            Dense(3 * 4 * 4, 4, seed=6),
        ]
    )


@pytest.fixture(scope="module")
def wino_inputs():
    rng = np.random.default_rng(77)
    return rng.uniform(0, 1, size=(2, 64))


def _quantize(net, backend, ring_bits=32):
    return quantize_model(
        net,
        FragmentScheme.ternary(),
        Ring(ring_bits),
        frac_bits=6,
        input_shape=(1, 8, 8),
        linear_backend=backend,
    )


class TestQuantizedBackend:
    def test_eligible_layers_marked(self, wino_net):
        qm = _quantize(wino_net, "winograd")
        assert [layer.backend for layer in qm.layers] == [
            "winograd", "winograd", "im2col",
        ]

    def test_ineligible_geometry_stays_im2col(self):
        net = Sequential(
            [Conv2d(1, 2, kernel_size=3, stride=2, seed=0), ReLU(), Flatten(),
             Dense(2 * 9, 3, seed=1)]
        )
        qm = quantize_model(
            net, FragmentScheme.ternary(), Ring(32), input_shape=(1, 8, 8),
            linear_backend="winograd",
        )
        assert [layer.backend for layer in qm.layers] == ["im2col", "im2col"]

    def test_unknown_backend_rejected(self, wino_net):
        with pytest.raises(QuantizationError):
            quantize_model(
                wino_net, FragmentScheme.ternary(), Ring(32),
                input_shape=(1, 8, 8), linear_backend="fft",
            )

    def test_dense_layer_refuses_winograd(self, rng):
        tensor = quantize_for_scheme(rng.normal(size=(3, 4)), FragmentScheme.ternary())
        with pytest.raises(QuantizationError):
            QuantizedDense(
                weights=tensor, bias_int=np.zeros(3, dtype=np.int64),
                truncate_bits=0, backend="winograd",
            )

    def test_forward_int_byte_identical(self, wino_net, wino_inputs):
        qi = _quantize(wino_net, "im2col")
        qw = _quantize(wino_net, "winograd")
        x_ring = qi.encoder.encode(np.asarray(wino_inputs).T)
        assert (qi.forward_int(x_ring) == qw.forward_int(x_ring)).all()

    def test_plan_carries_backend(self, wino_net):
        meta = ModelMeta.from_model(_quantize(wino_net, "winograd"))
        plan = build_plan(meta)
        backends = [n.backend for n in plan.linear_nodes]
        assert backends == ["winograd", "winograd", "im2col"]
        with pytest.raises(ConfigError):
            PlanNode("linear0", "linear", 0, (), backend="fft")

    def test_meta_grouped_dimensions(self, wino_net):
        meta = ModelMeta.from_model(_quantize(wino_net, "winograd"))
        layer0 = meta.layers[0]
        assert layer0.matmul_groups == 16
        assert layer0.matmul_cols == 1  # C_in per tile point
        assert layer0.batch_multiplier() == 9  # 3x3 tiles on a 6x6 map
        assert layer0.ot_scheme.name != layer0.scheme.name
        config = layer_triplet_config(Ring(32), layer0, 2)
        assert config.rows == 32 and config.r_shape == (16, 18)
        # the 2.25x: 16 elements per tile vs 9 per position * 4 positions
        im2col_elements = 2 * 9 * 36 * 2
        wino_elements = config.rows * config.n * config.o
        assert im2col_elements / wino_elements == 2.25


class TestSecureWinograd:
    def test_secure_equals_plaintext_and_im2col(
        self, wino_net, wino_inputs, test_group
    ):
        qw = _quantize(wino_net, "winograd")
        qi = _quantize(wino_net, "im2col")
        rep_w = secure_predict(qw, wino_inputs, group=test_group, seed=11)
        rep_i = secure_predict(qi, wino_inputs, group=test_group, seed=11)
        expect = qw.forward_int(qw.encoder.encode(np.asarray(wino_inputs).T))
        assert (rep_w.logits_int == expect).all()
        assert (rep_w.logits_int == rep_i.logits_int).all()

    def test_pipelined_byte_identical(self, wino_net, wino_inputs, test_group):
        from repro.core.pipeline import PipelineConfig

        qw = _quantize(wino_net, "winograd")
        seq = secure_predict(qw, wino_inputs, group=test_group, seed=13)
        piped = secure_predict(
            qw, wino_inputs, group=test_group, seed=13,
            pipeline=PipelineConfig(chunk=64, window=4),
        )
        assert (seq.logits_int == piped.logits_int).all()

    def test_wide_round_matches_solo_shares(self, wino_net, test_group, rng):
        """One wide matmul over stacked banked rounds == per-client solo."""
        from repro.net.channel import make_channel_pair

        qw = _quantize(wino_net, "winograd")
        meta = ModelMeta.from_model(qw)
        ring = qw.ring
        batch, width = 2, 3
        us_per_client = []
        solo_engines = []
        for c in range(width):
            us = []
            engines = []
            for idx, layer in enumerate(qw.layers):
                config = layer_triplet_config(ring, meta.layers[idx], batch)
                u = ring.sample(rng, config.out_shape)
                us.append(u)
                w = layer.w_int
                if meta.layers[idx].backend == "winograd":
                    w = transform_weights(meta.layers[idx].wino, w)
                engine = SecureMatmulServer(None, w, config)
                engine.preload(u)
                engines.append(engine)
            us_per_client.append(us)
            solo_engines.append(engines)

        wide = WideServerRound(qw, us_per_client, batch, group=test_group)
        x0_blocks = [
            ring.sample(rng, (meta.layers[0].in_features, batch))
            for _ in range(width)
        ]
        wide.start(x0_blocks)
        wide_blocks = wide.linear()

        # solo layer-0 references, same U material
        from repro.core.relu import truncate_share
        from repro.nn.lowering import conv_bias_vector

        layer = qw.layers[0]
        wspec = meta.layers[0].wino
        for c in range(width):
            operand = lower_tiles(wspec, x0_blocks[c], ring)
            y0 = solo_engines[c][0].online(operand)
            y0 = lift_tiles(wspec, layer.shape[0], y0, ring)
            y0 = divide_share_by4(ring, y0, party=0)
            bias = conv_bias_vector(layer.conv, layer.bias_int, layer.shape[0])
            y0 = ring.add(y0, ring.reduce(bias)[:, None])
            y0 = truncate_share(ring, y0, layer.truncate_bits, party=0)
            assert (wide_blocks[c] == y0).all()

    def test_wide_round_zero_width_slice_is_typed(self, wino_net, test_group, rng):
        """A wide operand sliced to zero client columns must raise a
        ConfigError from the lift guard, not a bare reshape failure."""
        qw = _quantize(wino_net, "winograd")
        meta = ModelMeta.from_model(qw)
        ring = qw.ring
        us = [
            ring.sample(rng, layer_triplet_config(ring, meta.layers[i], 1).out_shape)
            for i in range(len(qw.layers))
        ]
        wide = WideServerRound(qw, [us], 1, group=test_group)
        wide.start([ring.sample(rng, (meta.layers[0].in_features, 1))])
        wide._operand = wide._operand[:, :0]  # admission denied every client
        with pytest.raises(ConfigError):  # typed, not a bare reshape error
            wide.linear()


class TestPersistence:
    def test_model_and_meta_roundtrip_backend(self, wino_net, tmp_path):
        from repro.nn.persist import load_meta, load_model, save_meta, save_model

        qw = _quantize(wino_net, "winograd")
        save_model(tmp_path / "m.npz", qw)
        loaded = load_model(tmp_path / "m.npz")
        assert [l.backend for l in loaded.layers] == [
            l.backend for l in qw.layers
        ]
        meta = ModelMeta.from_model(qw)
        save_meta(tmp_path / "meta.json", meta)
        loaded_meta = load_meta(tmp_path / "meta.json")
        assert [l.backend for l in loaded_meta.layers] == [
            l.backend for l in meta.layers
        ]

    def test_old_meta_without_backend_defaults_im2col(self, wino_net, tmp_path):
        import json

        from repro.nn.persist import load_meta, save_meta

        meta = ModelMeta.from_model(_quantize(wino_net, "im2col"))
        save_meta(tmp_path / "meta.json", meta)
        doc = json.loads((tmp_path / "meta.json").read_text())
        for info in doc["layers"]:
            info.pop("backend")
        (tmp_path / "old.json").write_text(json.dumps(doc))
        loaded = load_meta(tmp_path / "old.json")
        assert all(l.backend == "im2col" for l in loaded.layers)

    def test_fingerprint_distinguishes_backends(self, wino_net):
        from repro.serve.persist import model_fingerprint

        assert model_fingerprint(_quantize(wino_net, "im2col")) != (
            model_fingerprint(_quantize(wino_net, "winograd"))
        )
