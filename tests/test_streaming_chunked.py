"""Memory-bounded streaming execution: chunked lowering equivalence.

Chunking (``Im2colSpec.chunk_cols``) is a *local* execution strategy:
columns of the lowered operand are independent and the ring arithmetic
is exact, so any column partition must produce byte-identical shares,
values and secure logits.  The sweeps here pin that across chunk sizes
{1, 7, an exact divisor, > n_positions} x backends {im2col, winograd}
x execution paths {sequential, pipelined, wide}.

Default geometry is reduced (tier-1 budget); set ``ABNN2_SERVE_SOAK=1``
for the full sweep the CI soak leg runs.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.core.matmul import SecureMatmulClient, SecureMatmulServer, grouped_product
from repro.core.pipeline import PipelineConfig
from repro.core.protocol import (
    ModelMeta,
    WideServerRound,
    layer_triplet_config,
    secure_predict,
)
from repro.core.triplets import BlockedShare
from repro.errors import ConfigError, ProtocolError
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.lowering import (
    Im2colSpec,
    PoolSpec,
    column_blocks,
    lower_shares,
    lower_shares_block,
)
from repro.nn.model import Sequential, vgg_cifar, vgg_imagenet
from repro.nn.data import synthetic_images
from repro.nn.quantize import quantize_model, set_chunk_cols
from repro.nn.winograd import WinogradSpec, lower_tiles, lower_tiles_block
from repro.quant.fragments import TABLE2_SCHEMES, FragmentScheme
from repro.utils.ring import Ring

SOAK = bool(os.environ.get("ABNN2_SERVE_SOAK"))

CHUNKS = [None, 1, 7, 10**6]


def _conv_net():
    return Sequential(
        [
            Conv2d(2, 3, 3, seed=3),
            ReLU(),
            Conv2d(3, 2, 3, seed=4),
            ReLU(),
            Flatten(),
            Dense(2 * 2 * 2, 5, seed=5),
        ]
    )


def _quantize(backend: str, chunk=None):
    return quantize_model(
        _conv_net(),
        TABLE2_SCHEMES["4(2,2)"],
        Ring(32),
        frac_bits=5,
        input_shape=(2, 6, 6),
        linear_backend=backend,
        chunk_cols=chunk,
    )


# --------------------------------------------------------------------- #
# block lowering primitives
# --------------------------------------------------------------------- #
class TestColumnBlocks:
    def test_partition_covers_exactly(self):
        assert list(column_blocks(10, 3)) == [(0, 3), (3, 6), (6, 9), (9, 10)]
        assert list(column_blocks(10, None)) == [(0, 10)]
        assert list(column_blocks(10, 100)) == [(0, 10)]
        assert list(column_blocks(0, 4)) == []

    def test_validation(self):
        with pytest.raises(ConfigError):
            list(column_blocks(10, 0))
        with pytest.raises(ConfigError):
            list(column_blocks(-1, 2))


class TestBlockLowering:
    @pytest.mark.parametrize("chunk", [1, 3, 7, 16, 1000])
    def test_im2col_blocks_equal_full(self, rng, ring32, chunk):
        spec = Im2colSpec(2, 6, 6, 3, 1)
        batch = 3
        act = ring32.sample(rng, (2 * 6 * 6, batch))
        full = lower_shares(spec, act)
        total = batch * spec.n_positions
        parts = [
            lower_shares_block(spec, act, lo, hi)
            for lo, hi in column_blocks(total, chunk)
        ]
        assert (np.concatenate(parts, axis=1) == full).all()

    @pytest.mark.parametrize("chunk", [1, 5, 9, 1000])
    def test_winograd_blocks_equal_full(self, rng, ring32, chunk):
        spec = WinogradSpec.from_im2col(Im2colSpec(2, 6, 6, 3, 1))
        batch = 2
        act = ring32.sample(rng, (2 * 6 * 6, batch))
        full = lower_tiles(spec, act, ring32)
        total = batch * spec.n_tiles
        parts = [
            lower_tiles_block(spec, act, ring32, lo, hi)
            for lo, hi in column_blocks(total, chunk)
        ]
        assert (np.concatenate(parts, axis=1) == full).all()

    def test_block_bounds_validated(self, rng, ring32):
        spec = Im2colSpec(1, 4, 4, 3, 1)
        act = ring32.sample(rng, (16, 1))
        with pytest.raises(ConfigError):
            lower_shares_block(spec, act, 2, 1)
        with pytest.raises(ConfigError):
            lower_shares_block(spec, act, 0, spec.n_positions + 1)


# --------------------------------------------------------------------- #
# BlockedShare
# --------------------------------------------------------------------- #
class TestBlockedShare:
    def test_columns_any_range(self, rng, ring32):
        full = ring32.sample(rng, (4, 20))
        share = BlockedShare.from_array(full, chunk=6)
        assert share.shape == (4, 20)
        assert share.n_blocks == 4
        for lo, hi in [(0, 20), (0, 6), (6, 12), (3, 15), (5, 6), (19, 20), (7, 7)]:
            assert (share.columns(lo, hi) == full[:, lo:hi]).all()
        assert (share.materialize() == full).all()

    def test_inside_block_is_zero_copy(self, rng, ring32):
        full = ring32.sample(rng, (2, 12))
        share = BlockedShare.from_array(full, chunk=4)
        view = share.columns(1, 3)
        assert view.base is not None  # a view into the block, not a copy

    def test_validation(self, ring32):
        with pytest.raises(ConfigError):
            BlockedShare([])
        with pytest.raises(ConfigError):
            BlockedShare([ring32.zeros((2, 3)), ring32.zeros((3, 3))])
        share = BlockedShare([ring32.zeros((2, 3))])
        with pytest.raises(ConfigError):
            share.columns(-1, 2)
        with pytest.raises(ConfigError):
            share.columns(2, 5)


# --------------------------------------------------------------------- #
# index overflow guards (satellite b)
# --------------------------------------------------------------------- #
class TestOverflowGuards:
    def test_im2col_overflow_names_dimension(self):
        with pytest.raises(ConfigError, match="in_channels"):
            Im2colSpec(2**22, 2**21, 2**21, 3, 1)

    def test_im2col_chunk_validation(self):
        with pytest.raises(ConfigError):
            Im2colSpec(1, 4, 4, 3, 1, chunk_cols=0)
        spec = Im2colSpec(1, 4, 4, 3, 1, chunk_cols=2)
        assert spec.chunk_cols == 2

    def test_pool_overflow_names_dimension(self):
        with pytest.raises(ConfigError, match="channels"):
            PoolSpec("avg", 2**22, 2**21, 2**21, 2)


# --------------------------------------------------------------------- #
# engine-level: online_block == online columns
# --------------------------------------------------------------------- #
class TestEngineBlocks:
    def _engine(self, rng, ring, m=3, n=4, o=11, groups=1):
        from repro.core.triplets import TripletConfig

        config = TripletConfig(
            ring=ring,
            scheme=FragmentScheme.ternary(),
            m=m,
            n=n,
            o=o,
            group=None,
            groups=groups,
        )
        w = ring.sample(rng, (groups * m, n))
        engine = SecureMatmulServer(None, w, config)
        u = ring.sample(rng, (groups * m, o))
        engine.preload(u)
        return engine, config, u

    def test_online_block_matches_online(self, rng, ring32):
        engine, config, _u = self._engine(rng, ring32)
        z0 = ring32.sample(rng, config.r_shape)
        full = engine.online(z0)
        for chunk in (1, 2, 5, 11, 100):
            parts = [
                engine.online_block(z0[:, lo:hi], lo, hi)
                for lo, hi in column_blocks(config.o, chunk)
            ]
            assert (np.concatenate(parts, axis=1) == full).all()

    def test_online_block_grouped(self, rng, ring32):
        engine, config, _u = self._engine(rng, ring32, m=2, n=3, o=9, groups=4)
        z0 = ring32.sample(rng, config.r_shape)
        full = engine.online(z0)
        parts = [
            engine.online_block(z0[:, lo:hi], lo, hi)
            for lo, hi in column_blocks(config.o, 4)
        ]
        assert (np.concatenate(parts, axis=1) == full).all()

    def test_online_block_validates(self, rng, ring32):
        engine, config, _u = self._engine(rng, ring32)
        z0 = ring32.sample(rng, config.r_shape)
        with pytest.raises(ConfigError):
            engine.online_block(z0[:, 0:2], 0, 3)  # width mismatch
        with pytest.raises(ConfigError):
            engine.online_block(z0[:, 0:2], 10, 12)  # out of range

    def test_blocked_u_preload_and_columns(self, rng, ring32):
        engine, config, u = self._engine(rng, ring32)
        blocked = BlockedShare.from_array(u, chunk=3)
        engine.preload(blocked)
        assert (engine.u == u).all()
        assert (engine.u_columns(2, 7) == u[:, 2:7]).all()

    def test_client_for_preload_guards_offline(self, ring32):
        from repro.core.triplets import TripletConfig

        config = TripletConfig(
            ring=ring32,
            scheme=FragmentScheme.ternary(),
            m=2,
            n=3,
            o=4,
            group=None,
        )
        client = SecureMatmulClient.for_preload(None, config)
        with pytest.raises(ProtocolError):
            client.offline()
        with pytest.raises(ProtocolError):
            client.mask_input(ring32.zeros(config.r_shape))
        v = ring32.zeros(config.out_shape)
        client.preload(BlockedShare.from_array(v, chunk=2))
        assert (client.v == v).all()


# --------------------------------------------------------------------- #
# protocol-level: secure logits byte-identical across chunkings
# --------------------------------------------------------------------- #
class TestSecureEquivalence:
    @pytest.mark.parametrize("backend", ["im2col", "winograd"])
    def test_chunked_logits_byte_identical(self, backend, test_group):
        rng = np.random.default_rng(77)
        x = rng.random((2, 2 * 6 * 6))
        baseline = None
        chunks = CHUNKS + [4, 16] if SOAK else CHUNKS
        for chunk in chunks:
            model = _quantize(backend, chunk)
            report = secure_predict(model, x, group=test_group, seed=21)
            if baseline is None:
                baseline = report.logits_int
                # Anchor against the plaintext integer reference up to
                # the probabilistic SecureML truncation noise (+-1 per
                # truncation, propagated) — byte-identity is asserted
                # across the chunk legs below, not against plaintext.
                ring = model.ring
                expected = model.forward_int(model.encoder.encode(x.T))
                diff = ring.to_signed(ring.sub(baseline, expected))
                assert np.abs(diff).max() <= 64
            assert (report.logits_int == baseline).all(), f"chunk={chunk}"

    @pytest.mark.parametrize("backend", ["im2col", "winograd"])
    def test_pipelined_chunked_byte_identical(self, backend, test_group):
        rng = np.random.default_rng(78)
        x = rng.random((2, 2 * 6 * 6))
        pipeline = PipelineConfig(chunk=64, window=4)
        seq = secure_predict(_quantize(backend, None), x, group=test_group, seed=23)
        piped = secure_predict(
            _quantize(backend, 7), x, group=test_group, seed=23, pipeline=pipeline
        )
        assert (seq.logits_int == piped.logits_int).all()

    @pytest.mark.parametrize("backend", ["im2col", "winograd"])
    def test_wide_round_chunked_byte_identical(self, backend, test_group, rng):
        """The wide (cross-session batched) server path chunks per layer
        too; same U material => identical linear output blocks."""
        qm = _quantize(backend, None)
        qc = set_chunk_cols(qm, 7)
        meta = ModelMeta.from_model(qm)
        ring = qm.ring
        batch, width = 2, 2
        us_per_client = [
            [
                ring.sample(rng, layer_triplet_config(ring, meta.layers[i], batch).out_shape)
                for i in range(len(qm.layers))
            ]
            for _ in range(width)
        ]
        x0_blocks = [
            ring.sample(rng, (meta.layers[0].in_features, batch)) for _ in range(width)
        ]
        outs = []
        for model in (qm, qc):
            wide = WideServerRound(model, us_per_client, batch, group=test_group)
            wide.start(list(x0_blocks))
            outs.append(wide.linear())
        for a, b in zip(*outs):
            assert (a == b).all()


# --------------------------------------------------------------------- #
# big-model zoo (tentpole part 3)
# --------------------------------------------------------------------- #
class TestBigModelZoo:
    def test_constructors_validate_geometry(self):
        with pytest.raises(ConfigError):
            vgg_cifar(side=7)
        with pytest.raises(ConfigError):
            vgg_imagenet(side=20)  # side % 4 != 2
        with pytest.raises(ConfigError):
            synthetic_images(0)

    def test_synthetic_images_shape_and_determinism(self):
        x, y = synthetic_images(6, channels=3, side=12, classes=4, seed=5)
        x2, y2 = synthetic_images(6, channels=3, side=12, classes=4, seed=5)
        assert x.shape == (6, 3 * 12 * 12) and y.shape == (6,)
        assert (x == x2).all() and (y == y2).all()
        assert x.min() >= 0.0 and x.max() <= 1.0
        assert set(np.unique(y)).issubset(set(range(4)))

    @pytest.mark.parametrize("backend", ["im2col", "winograd"])
    def test_zoo_headroom_and_forward(self, backend):
        side = 16 if not SOAK else 32
        net = vgg_cifar(base=2, side=side)
        x, _y = synthetic_images(2, side=side, seed=3)
        logits = net.forward(x.reshape(-1, 3, side, side))
        assert logits.shape == (2, 10)
        qm = quantize_model(
            net,
            TABLE2_SCHEMES["4(2,2)"],
            Ring(32),
            frac_bits=5,
            input_shape=(3, side, side),
            linear_backend=backend,
            chunk_cols=32,
        )
        conv_layers = [l for l in qm.layers if l.conv is not None]
        assert conv_layers and all(l.conv.chunk_cols == 32 for l in conv_layers)
        if backend == "winograd":
            assert any(l.backend == "winograd" for l in qm.layers)

    @pytest.mark.skipif(not SOAK, reason="full zoo equivalence needs ABNN2_SERVE_SOAK=1")
    def test_zoo_secure_chunked_equivalence_soak(self, test_group):
        side = 18
        net = vgg_imagenet(base=2, side=side)
        rng = np.random.default_rng(9)
        x = rng.random((2, 3 * side * side))
        base = quantize_model(
            net, TABLE2_SCHEMES["4(2,2)"], Ring(32), frac_bits=5,
            input_shape=(3, side, side),
        )
        baseline = secure_predict(base, x, group=test_group, seed=31).logits_int
        for chunk in (1, 7, 64, 10**6):
            report = secure_predict(
                set_chunk_cols(base, chunk), x, group=test_group, seed=31
            )
            assert (report.logits_int == baseline).all()


# --------------------------------------------------------------------- #
# model plumbing: set_chunk_cols / quantize / persist
# --------------------------------------------------------------------- #
class TestChunkPlumbing:
    def test_set_chunk_cols_shares_weights(self):
        qm = _quantize("im2col")
        qc = set_chunk_cols(qm, 9)
        convs = [l for l in qc.layers if l.conv is not None]
        assert convs and all(l.conv.chunk_cols == 9 for l in convs)
        assert all(l.conv.chunk_cols is None for l in qm.layers if l.conv)
        for a, b in zip(qm.layers, qc.layers):
            assert a.weights is b.weights  # no weight copies
        back = set_chunk_cols(qc, None)
        assert all(l.conv.chunk_cols is None for l in back.layers if l.conv)

    def test_persist_roundtrip_keeps_chunk_cols(self, tmp_path):
        from repro.nn.persist import load_meta, load_model, save_meta, save_model

        qc = _quantize("im2col", chunk=5)
        save_model(tmp_path / "m.npz", qc)
        loaded = load_model(tmp_path / "m.npz")
        assert [l.conv.chunk_cols for l in loaded.layers if l.conv] == [5, 5]
        meta = ModelMeta.from_model(qc)
        save_meta(tmp_path / "meta.json", meta)
        loaded_meta = load_meta(tmp_path / "meta.json")
        assert [l.conv.chunk_cols for l in loaded_meta.layers if l.conv] == [5, 5]

    def test_unchunked_bundle_has_no_chunk_key(self, tmp_path):
        """Old loaders must keep reading unchunked bundles: the optional
        field is omitted entirely when unset."""
        from repro.nn.persist import save_meta
        import json

        meta = ModelMeta.from_model(_quantize("im2col"))
        save_meta(tmp_path / "meta.json", meta)
        doc = json.loads((tmp_path / "meta.json").read_text())
        for info in doc["layers"]:
            if info["conv"]:
                assert "chunk_cols" not in info["conv"]
