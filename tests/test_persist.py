"""Model/metadata persistence roundtrips."""

import json

import numpy as np
import pytest

from repro.core.protocol import ModelMeta
from repro.errors import ConfigError
from repro.nn.layers import Conv2d, Dense, Flatten, ReLU
from repro.nn.model import Sequential
from repro.nn.persist import (
    load_meta,
    load_model,
    save_meta,
    save_model,
    scheme_from_dict,
    scheme_to_dict,
)
from repro.nn.quantize import quantize_model
from repro.quant.fragments import TABLE2_SCHEMES, FragmentScheme
from repro.utils.ring import Ring


class TestSchemeDict:
    @pytest.mark.parametrize("name", sorted(TABLE2_SCHEMES))
    def test_roundtrip(self, name):
        scheme = TABLE2_SCHEMES[name]
        restored = scheme_from_dict(scheme_to_dict(scheme))
        assert restored.name == scheme.name
        assert restored.gamma == scheme.gamma
        assert restored.weight_range == scheme.weight_range
        for i in range(scheme.gamma):
            assert (restored.values(i) == scheme.values(i)).all()

    def test_json_serializable(self):
        json.dumps(scheme_to_dict(FragmentScheme.from_bits((3, 3, 2))))


class TestModelBundle:
    def test_roundtrip_mlp(self, trained_model, small_dataset, tmp_path):
        qm = quantize_model(
            trained_model, FragmentScheme.from_bits((2, 2)), Ring(32), frac_bits=6
        )
        path = tmp_path / "model.npz"
        save_model(path, qm)
        restored = load_model(path)

        x = small_dataset.test_x[:5]
        assert (restored.predict(x) == qm.predict(x)).all()
        got = restored.forward_int(restored.encoder.encode(x.T))
        expect = qm.forward_int(qm.encoder.encode(x.T))
        assert (got == expect).all()
        assert restored.output_deferral == qm.output_deferral

    def test_roundtrip_conv(self, tmp_path, rng):
        model = Sequential(
            [Conv2d(1, 2, kernel_size=3, seed=1), ReLU(), Flatten(), Dense(2 * 36, 4, seed=2)]
        )
        qm = quantize_model(
            model, FragmentScheme.ternary(), Ring(32), frac_bits=6, input_shape=(1, 8, 8)
        )
        path = tmp_path / "conv.npz"
        save_model(path, qm)
        restored = load_model(path)
        x = rng.uniform(0, 1, size=(2, 64))
        assert (restored.predict(x) == qm.predict(x)).all()
        assert restored.layers[0].conv == qm.layers[0].conv

    def test_version_check(self, trained_model, tmp_path):
        qm = quantize_model(trained_model, FragmentScheme.ternary(), Ring(32))
        path = tmp_path / "model.npz"
        save_model(path, qm)
        # tamper with the version
        with np.load(path) as bundle:
            arrays = {k: bundle[k] for k in bundle.files}
        manifest = json.loads(bytes(arrays["manifest"]).decode())
        manifest["format_version"] = 999
        arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
        with open(path, "wb") as fh:
            np.savez(fh, **arrays)
        with pytest.raises(ConfigError):
            load_model(path)


class TestMetaFile:
    def test_roundtrip(self, trained_model, tmp_path):
        qm = quantize_model(trained_model, FragmentScheme.from_bits((2, 1)), Ring(32))
        meta = ModelMeta.from_model(qm)
        path = tmp_path / "meta.json"
        save_meta(path, meta)
        restored = load_meta(path)
        assert restored.ring_bits == meta.ring_bits
        assert restored.frac_bits == meta.frac_bits
        assert len(restored.layers) == len(meta.layers)
        for a, b in zip(restored.layers, meta.layers):
            assert (a.out_features, a.in_features) == (b.out_features, b.in_features)
            assert a.scheme.name == b.scheme.name
            assert a.truncate_bits == b.truncate_bits

    def test_meta_contains_no_weights(self, trained_model, tmp_path):
        qm = quantize_model(trained_model, FragmentScheme.ternary(), Ring(32))
        path = tmp_path / "meta.json"
        save_meta(path, ModelMeta.from_model(qm))
        text = path.read_text()
        doc = json.loads(text)
        # only architecture keys; nothing resembling a weight array
        assert "layers" in doc
        assert all("w" not in layer or layer["w"] is None for layer in doc["layers"])
        assert len(text) < 20_000  # weights would be megabytes

    def test_version_check(self, tmp_path):
        path = tmp_path / "meta.json"
        path.write_text(json.dumps({"format_version": 999}))
        with pytest.raises(ConfigError):
            load_meta(path)
