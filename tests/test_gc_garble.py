"""Half-gates garbling vs plaintext circuit semantics."""

import numpy as np
import pytest

from repro.errors import CryptoError, ProtocolError
from repro.gc.builder import add_words, relu_template
from repro.gc.circuit import Circuit
from repro.gc.evaluate import decode_outputs, evaluate
from repro.gc.garble import garble
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring


def _garbled_run(circ, g_bits, e_bits, rng):
    """Garble + evaluate; bit matrices are (n_wires_owned, n_inst)."""
    n_inst = g_bits.shape[1] if g_bits.size else e_bits.shape[1]
    gcirc = garble(circ, n_inst, rng)
    g_labels = gcirc.encode(circ.garbler_inputs, g_bits)
    e_labels = gcirc.encode(circ.evaluator_inputs, e_bits)
    out_labels = evaluate(circ, gcirc.tables, g_labels, e_labels)
    return decode_outputs(out_labels, gcirc.output_decode_bits())


class TestGarbledEquivalence:
    def test_single_gates(self, rng):
        circ = Circuit()
        (a,) = circ.garbler_input(1)
        (b,) = circ.evaluator_input(1)
        circ.mark_outputs([circ.and_(a, b), circ.xor(a, b), circ.inv(a)])
        # all four input combinations as four instances
        g = np.array([[0, 0, 1, 1]], dtype=np.uint8)
        e = np.array([[0, 1, 0, 1]], dtype=np.uint8)
        got = _garbled_run(circ, g, e, rng)
        expect = circ.eval_plain(g.T, e.T).T
        assert (got == expect).all()

    def test_adder_many_instances(self, rng):
        ring = Ring(12)
        circ = Circuit()
        x = circ.garbler_input(12)
        y = circ.evaluator_input(12)
        circ.mark_outputs(add_words(circ, x, y))
        n = 100
        xv, yv = ring.sample(rng, n), ring.sample(rng, n)
        got = ring.reduce(
            bits_to_int(
                _garbled_run(
                    circ, int_to_bits(xv, 12).T.copy(), int_to_bits(yv, 12).T.copy(), rng
                ).T
            )
        )
        assert (got == ring.add(xv, yv)).all()

    def test_relu_template_garbled(self, rng):
        ring = Ring(16)
        circ = relu_template(16)
        n = 40
        y, y1, z1 = ring.sample(rng, n), ring.sample(rng, n), ring.sample(rng, n)
        y0 = ring.sub(y, y1)
        g_bits = np.concatenate([int_to_bits(y1, 16), int_to_bits(z1, 16)], axis=1).T.copy()
        e_bits = int_to_bits(y0, 16).T.copy()
        got = ring.reduce(bits_to_int(_garbled_run(circ, g_bits, e_bits, rng).T))
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (got == ring.sub(relu, z1)).all()


class TestGarbledMaterial:
    def _simple(self):
        circ = Circuit()
        (a,) = circ.garbler_input(1)
        (b,) = circ.evaluator_input(1)
        circ.mark_outputs([circ.and_(a, b)])
        return circ

    def test_offset_lsb_is_one(self, rng):
        gcirc = garble(self._simple(), 4, rng)
        assert gcirc.offset[0] & np.uint64(1) == 1

    def test_table_count_matches_and_count(self, rng):
        circ = relu_template(8)
        gcirc = garble(circ, 3, rng)
        assert gcirc.tables.shape[0] == circ.and_count

    def test_encode_shape_check(self, rng):
        circ = self._simple()
        gcirc = garble(circ, 4, rng)
        with pytest.raises(CryptoError):
            gcirc.encode(circ.garbler_inputs, np.zeros((1, 3), dtype=np.uint8))

    def test_labels_differ_by_offset(self, rng):
        circ = self._simple()
        gcirc = garble(circ, 2, rng)
        zero = gcirc.encode(circ.garbler_inputs, np.zeros((1, 2), dtype=np.uint8))
        one = gcirc.encode(circ.garbler_inputs, np.ones((1, 2), dtype=np.uint8))
        assert ((zero ^ one) == gcirc.offset).all()

    def test_zero_instances_rejected(self, rng):
        with pytest.raises(CryptoError):
            garble(self._simple(), 0, rng)

    def test_evaluate_table_count_checked(self, rng):
        circ = self._simple()
        gcirc = garble(circ, 2, rng)
        g = gcirc.encode(circ.garbler_inputs, np.zeros((1, 2), dtype=np.uint8))
        e = gcirc.encode(circ.evaluator_inputs, np.zeros((1, 2), dtype=np.uint8))
        with pytest.raises(ProtocolError):
            evaluate(circ, gcirc.tables[:0], g, e)

    def test_decode_shape_checked(self, rng):
        circ = self._simple()
        gcirc = garble(circ, 2, rng)
        g = gcirc.encode(circ.garbler_inputs, np.zeros((1, 2), dtype=np.uint8))
        e = gcirc.encode(circ.evaluator_inputs, np.zeros((1, 2), dtype=np.uint8))
        out = evaluate(circ, gcirc.tables, g, e)
        with pytest.raises(ProtocolError):
            decode_outputs(out, np.zeros((5, 5), dtype=np.uint8))

    def test_wrong_label_gives_wrong_output(self, rng):
        # Flipping an input label must corrupt the decoded output
        # (sanity check that the tables bind to the labels).
        circ = self._simple()
        gcirc = garble(circ, 1, rng)
        g1 = gcirc.encode(circ.garbler_inputs, np.ones((1, 1), dtype=np.uint8))
        e1 = gcirc.encode(circ.evaluator_inputs, np.ones((1, 1), dtype=np.uint8))
        ok = decode_outputs(
            evaluate(circ, gcirc.tables, g1, e1), gcirc.output_decode_bits()
        )
        assert ok[0, 0] == 1
        corrupted = g1 ^ np.uint64(2)  # flip a non-select bit
        bad_labels = evaluate(circ, gcirc.tables, corrupted, e1)
        # The output label is (overwhelmingly) not the legitimate one.
        legit0 = gcirc.label0[circ.outputs[0]]
        legit1 = legit0 ^ gcirc.offset
        assert (bad_labels[0] != legit0).any() and (bad_labels[0] != legit1).any()
