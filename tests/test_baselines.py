"""Baseline protocols: SecureML, QUOTIENT, MiniONN — correctness and the
comparative shapes the paper's tables rely on."""

import numpy as np
import pytest

from repro.baselines.minionn import (
    MinionnConfig,
    minionn_predict,
    minionn_triplets_client,
    minionn_triplets_server,
)
from repro.baselines.quotient import (
    quotient_predict,
    quotient_triplets_client,
    quotient_triplets_server,
)
from repro.baselines.secureml import (
    SecureMlConfig,
    secureml_triplets_client,
    secureml_triplets_server,
)
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.errors import ConfigError
from repro.net import run_protocol
from repro.nn.quantize import quantize_model
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


class TestSecureMl:
    @pytest.mark.parametrize("bits", [16, 32, 64])
    @pytest.mark.parametrize("o", [1, 3])
    def test_triplet_reconstruction(self, bits, o, test_group, rng):
        ring = Ring(bits)
        m, n = 3, 5
        w = rng.integers(-(1 << 10), 1 << 10, size=(m, n))
        r = ring.sample(rng, (n, o))
        config = SecureMlConfig(ring=ring, m=m, n=n, o=o, group=test_group)
        result = run_protocol(
            lambda ch: secureml_triplets_server(ch, w, config, seed=1),
            lambda ch: secureml_triplets_client(ch, r, config, seed=2),
        )
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_ot_count_property(self):
        config = SecureMlConfig(ring=Ring(64), m=2, n=3, o=4)
        assert config.total_ots == 64 * 2 * 3 * 4

    def test_shape_validation(self, test_group):
        from repro.net.channel import make_channel_pair

        config = SecureMlConfig(ring=Ring(32), m=2, n=3, o=1, group=test_group)
        chan, _ = make_channel_pair()
        with pytest.raises(ConfigError):
            secureml_triplets_server(chan, np.zeros((5, 5), dtype=np.int64), config)
        with pytest.raises(ConfigError):
            secureml_triplets_client(chan, np.zeros((5, 5), dtype=np.uint64), config)

    def test_abnn2_beats_secureml_on_communication(self, test_group, rng):
        """The paper's core claim, in miniature: quantized OT decomposition
        moves far fewer bytes than per-bit Gilboa COTs."""
        ring = Ring(32)
        m, n = 8, 16
        scheme = FragmentScheme.from_bits((2, 2, 2, 2))
        lo, hi = scheme.weight_range
        w = rng.integers(lo, hi + 1, size=(m, n))
        r = ring.sample(rng, (n, 1))

        sm_config = SecureMlConfig(ring=ring, m=m, n=n, o=1, group=test_group)
        sm = run_protocol(
            lambda ch: secureml_triplets_server(ch, w, sm_config, seed=1),
            lambda ch: secureml_triplets_client(ch, r, sm_config, seed=2),
        )
        ab_config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=1, group=test_group)
        ab = run_protocol(
            lambda ch: generate_triplets_server(ch, w, ab_config, seed=1),
            lambda ch: generate_triplets_client(
                ch, r, ab_config, np.random.default_rng(3), seed=2
            ),
        )
        assert ab.total_bytes < sm.total_bytes


class TestQuotient:
    def test_triplet_reconstruction(self, test_group, rng):
        ring = Ring(32)
        m, n, o = 4, 7, 3
        w = rng.integers(-1, 2, size=(m, n))
        r = ring.sample(rng, (n, o))
        config = TripletConfig(
            ring=ring, scheme=FragmentScheme.ternary(), m=m, n=n, o=o, group=test_group
        )
        result = run_protocol(
            lambda ch: quotient_triplets_server(ch, w, config, seed=1),
            lambda ch: quotient_triplets_client(ch, r, config, seed=2),
        )
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_rejects_non_ternary(self, test_group):
        from repro.net.channel import make_channel_pair

        config = TripletConfig(
            ring=Ring(32), scheme=FragmentScheme.ternary(), m=1, n=2, o=1, group=test_group
        )
        chan, _ = make_channel_pair()
        with pytest.raises(ConfigError):
            quotient_triplets_server(chan, np.array([[2, 0]]), config)

    def test_end_to_end_prediction(self, trained_model, small_dataset, test_group):
        qm = quantize_model(trained_model, FragmentScheme.ternary(), Ring(32), frac_bits=6)
        x = small_dataset.test_x[:2]
        report = quotient_predict(qm, x, group=test_group)
        assert (report.predictions == qm.predict(x)).all()


class TestMinionn:
    def test_triplet_reconstruction(self, test_group, rng):
        ring = Ring(32)
        m, n, o = 3, 6, 4
        w = rng.integers(-300, 300, size=(m, n))
        r = ring.sample(rng, (n, o))
        config = MinionnConfig(ring=ring, m=m, n=n, o=o, key_bits=256)
        result = run_protocol(
            lambda ch: minionn_triplets_server(ch, w, config, seed=1),
            lambda ch: minionn_triplets_client(ch, r, config, seed=2),
        )
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_multi_chunk_batches(self, test_group, rng):
        # Force several ciphertext chunks per row by exceeding slot count.
        ring = Ring(32)
        config = MinionnConfig(ring=ring, m=2, n=3, o=9, key_bits=256)
        pk_slots = None
        from repro.crypto import paillier

        pk, _ = paillier.keygen(256, seed=1)
        pk_slots = config.packing(pk).slots
        assert pk_slots < 9  # the point of the test
        w = rng.integers(-50, 50, size=(2, 3))
        r = ring.sample(rng, (3, 9))
        result = run_protocol(
            lambda ch: minionn_triplets_server(ch, w, config, seed=1),
            lambda ch: minionn_triplets_client(ch, r, config, seed=2),
        )
        assert (ring.add(result.server, result.client) == ring.matmul(ring.reduce(w), r)).all()

    def test_end_to_end_prediction(self, trained_model, small_dataset, test_group):
        qm = quantize_model(
            trained_model, FragmentScheme.from_bits((2, 2)), Ring(32), frac_bits=6
        )
        x = small_dataset.test_x[:1]
        report = minionn_predict(qm, x, key_bits=256, group=test_group)
        assert (report.predictions == qm.predict(x)).all()

    def test_dimension_validation(self):
        with pytest.raises(ConfigError):
            MinionnConfig(ring=Ring(32), m=0, n=1, o=1)
