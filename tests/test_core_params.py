"""(N, gamma) scheme selection and the Table 1 cost formulas."""

import pytest

from repro.core.params import (
    comm_bits_per_weight,
    enumerate_costs,
    optimal_scheme,
    ot_count_per_weight,
    scheme_for,
)
from repro.errors import ConfigError


class TestCostFormulas:
    def test_one_batch_formula(self):
        # l(N-1) + 2k per fragment.
        assert comm_bits_per_weight((2,), 32, 1) == 32 * 3 + 256
        assert comm_bits_per_weight((2, 2), 32, 1) == 2 * (32 * 3 + 256)

    def test_multi_batch_formula(self):
        # o*l*N + 2k per fragment.
        assert comm_bits_per_weight((2,), 32, 8) == 8 * 32 * 4 + 256

    def test_ot_count(self):
        assert ot_count_per_weight((2, 2, 2, 2)) == 4
        assert ot_count_per_weight((4, 4)) == 2


class TestPaperOrdering:
    """Table 2's comm ordering must fall out of the analytic model."""

    def test_eta8_batch1_ordering(self):
        # Paper (batch 1, l=32): (3,3,2)=18.47MB < (2,2,2,2)=19.52 < (4,4)=20.72 < (1,..1)=32.42
        costs = {
            widths: comm_bits_per_weight(widths, 32, 1)
            for widths in [(1,) * 8, (2, 2, 2, 2), (3, 3, 2), (4, 4)]
        }
        assert costs[(3, 3, 2)] < costs[(2, 2, 2, 2)] < costs[(4, 4)] < costs[(1,) * 8]

    def test_eta8_multibatch_prefers_small_n(self):
        # Paper (batch 128): (2,2,2,2)=936MB < (3,3,2)=1163 < (4,4)=1851.
        costs = {
            widths: comm_bits_per_weight(widths, 32, 128)
            for widths in [(2, 2, 2, 2), (3, 3, 2), (4, 4)]
        }
        assert costs[(2, 2, 2, 2)] < costs[(3, 3, 2)] < costs[(4, 4)]

    def test_two_bit_fragments_beat_one_bit(self):
        # The paper's headline: (2,2,...) beats 1-out-of-2 OT everywhere.
        for eta in (4, 6, 8):
            two = comm_bits_per_weight((2,) * (eta // 2), 32, 1)
            one = comm_bits_per_weight((1,) * eta, 32, 1)
            assert two < one


class TestOptimalScheme:
    def test_comm_optimal_eta8_batch1(self):
        scheme = optimal_scheme(8, ring_bits=32, batch=1)
        widths = tuple((f.n_values - 1).bit_length() for f in scheme.fragments)
        assert sorted(widths, reverse=True) == [3, 3, 2]

    def test_comm_optimal_batch128_uses_two_bit(self):
        scheme = optimal_scheme(8, ring_bits=32, batch=128)
        widths = tuple((f.n_values - 1).bit_length() for f in scheme.fragments)
        assert widths == (2, 2, 2, 2)

    def test_ots_objective_minimizes_gamma(self):
        scheme = optimal_scheme(8, ring_bits=32, batch=1, objective="ots")
        assert scheme.gamma == 2  # (4,4) is the fewest fragments

    def test_result_covers_eta(self):
        for eta in range(1, 13):
            assert optimal_scheme(eta).eta == eta

    def test_invalid_inputs(self):
        with pytest.raises(ConfigError):
            optimal_scheme(0)
        with pytest.raises(ConfigError):
            optimal_scheme(4, objective="magic")

    def test_enumerate_costs_sorted(self):
        rows = enumerate_costs(6, ring_bits=32, batch=1)
        comms = [r["comm_bits"] for r in rows]
        assert comms == sorted(comms)
        assert {tuple(r["bit_widths"]) for r in rows} >= {(2, 2, 2), (3, 3), (1, 1, 1, 1, 1, 1)}


class TestSchemeFor:
    def test_lookup(self):
        assert scheme_for("8(2,2,2,2)").gamma == 4
        assert scheme_for("ternary").max_n == 3

    def test_unknown(self):
        with pytest.raises(ConfigError):
            scheme_for("17(5,5,5)")
