"""Secure matmul wrapper and the GC ReLU layer protocols."""

import numpy as np
import pytest

from repro.core.matmul import SecureMatmulClient, SecureMatmulServer
from repro.core.relu import relu_layer_client, relu_layer_server, truncate_share
from repro.core.triplets import TripletConfig
from repro.errors import ConfigError, ProtocolError
from repro.gc.protocol import GcSessions
from repro.net import run_protocol
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring


class TestSecureMatmul:
    def test_offline_online_flow(self, test_group, rng):
        ring = Ring(32)
        scheme = FragmentScheme.from_bits((2, 2))
        m, n, o = 4, 6, 2
        lo, hi = scheme.weight_range
        w = rng.integers(lo, hi + 1, size=(m, n))
        z = ring.sample(rng, (n, o))
        config = TripletConfig(ring=ring, scheme=scheme, m=m, n=n, o=o, group=test_group)

        def server_fn(chan):
            server = SecureMatmulServer(chan, w, config, seed=1)
            server.offline()
            z0 = chan.recv()
            return server.online(z0)

        def client_fn(chan):
            client = SecureMatmulClient(chan, config, np.random.default_rng(7), seed=2)
            client.offline()
            chan.send(client.mask_input(z))
            return client.online()

        result = run_protocol(server_fn, client_fn)
        got = ring.add(result.server, result.client)
        assert (got == ring.matmul(ring.reduce(w), z)).all()

    def test_online_before_offline_rejected(self, test_group):
        from repro.net.channel import make_channel_pair

        config = TripletConfig(
            ring=Ring(32), scheme=FragmentScheme.binary(), m=2, n=2, o=1, group=test_group
        )
        chan, _ = make_channel_pair()
        server = SecureMatmulServer(chan, np.zeros((2, 2), dtype=np.int64), config)
        with pytest.raises(ProtocolError):
            server.online(np.zeros((2, 1), dtype=np.uint64))
        client = SecureMatmulClient(chan, config, np.random.default_rng(0))
        with pytest.raises(ProtocolError):
            client.online()

    def test_shape_validation(self, test_group):
        from repro.net.channel import make_channel_pair

        config = TripletConfig(
            ring=Ring(32), scheme=FragmentScheme.binary(), m=2, n=3, o=1, group=test_group
        )
        chan, _ = make_channel_pair()
        with pytest.raises(ConfigError):
            SecureMatmulServer(chan, np.zeros((9, 9), dtype=np.int64), config)
        client = SecureMatmulClient(chan, config, np.random.default_rng(0))
        with pytest.raises(ConfigError):
            client.mask_input(np.zeros((9, 9), dtype=np.uint64))


class TestTruncateShare:
    @pytest.mark.parametrize("bits", [4, 8])
    def test_error_at_most_one_ulp(self, bits, rng):
        ring = Ring(32)
        values = ring.reduce(rng.integers(-(1 << 20), 1 << 20, size=500))
        s1 = ring.sample(rng, 500)
        s0 = ring.sub(values, s1)
        t0 = truncate_share(ring, s0, bits, party=0)
        t1 = truncate_share(ring, s1, bits, party=1)
        got = ring.to_signed(ring.add(t0, t1))
        expect = ring.to_signed(values) >> bits
        assert np.abs(got - expect).max() <= 1

    def test_zero_bits_is_identity(self, ring32, rng):
        share = ring32.sample(rng, 10)
        assert (truncate_share(ring32, share, 0, 0) == share).all()
        assert (truncate_share(ring32, share, 0, 1) == share).all()


def _run_relu(ring, y, z1, variant, group, n=None):
    rng = np.random.default_rng(5)
    y1 = ring.sample(rng, y.shape)
    y0 = ring.sub(y, y1)

    def server_fn(chan):
        sessions = GcSessions(chan, "evaluator", group=group, seed=1)
        return relu_layer_server(chan, y0, sessions, ring, variant)

    def client_fn(chan):
        sessions = GcSessions(chan, "garbler", group=group, seed=2)
        return relu_layer_client(
            chan, y1, z1, sessions, ring, np.random.default_rng(9), variant
        )

    return run_protocol(server_fn, client_fn)


class TestReluLayer:
    @pytest.mark.parametrize("variant", ["oblivious", "optimized"])
    def test_relu_correct(self, variant, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(-4000, 4000, size=40))
        z1 = ring.sample(rng, 40)
        result = _run_relu(ring, y, z1, variant, test_group)
        z0 = result.server
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (ring.add(z0, result.client) == relu).all()

    @pytest.mark.parametrize("variant", ["oblivious", "optimized"])
    def test_2d_shapes(self, variant, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(-100, 100, size=(6, 3)))
        z1 = ring.sample(rng, (6, 3))
        result = _run_relu(ring, y, z1, variant, test_group)
        assert result.server.shape == (6, 3)
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (ring.add(result.server, result.client) == relu).all()

    def test_all_negative_optimized(self, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(-4000, -1, size=20))
        z1 = ring.sample(rng, 20)
        result = _run_relu(ring, y, z1, "optimized", test_group)
        assert (ring.add(result.server, result.client) == 0).all()

    def test_all_positive_optimized(self, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(1, 4000, size=20))
        z1 = ring.sample(rng, 20)
        result = _run_relu(ring, y, z1, "optimized", test_group)
        assert (ring.add(result.server, result.client) == y).all()

    def test_optimized_cheaper_when_mostly_negative(self, test_group, rng):
        ring = Ring(16)
        y = ring.reduce(rng.integers(-4000, -1, size=64))
        z1 = ring.sample(rng, 64)
        oblivious = _run_relu(ring, y, z1, "oblivious", test_group).total_bytes
        optimized = _run_relu(ring, y, z1, "optimized", test_group).total_bytes
        assert optimized < oblivious

    def test_unknown_variant(self, test_group, rng):
        ring = Ring(16)
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        sessions = GcSessions(chan, "evaluator", group=test_group)
        with pytest.raises(ConfigError):
            relu_layer_server(chan, ring.zeros(3), sessions, ring, "nope")

    def test_z1_shape_mismatch(self, test_group, rng):
        ring = Ring(16)
        from repro.net.channel import make_channel_pair

        chan, _ = make_channel_pair()
        sessions = GcSessions(chan, "garbler", group=test_group)
        with pytest.raises(ConfigError):
            relu_layer_client(
                chan, ring.zeros(4), ring.zeros(5), sessions, ring,
                np.random.default_rng(0),
            )
