"""Boolean circuit templates and word-level builders (plaintext semantics)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.gc.builder import (
    add_words,
    and_broadcast,
    generic_activation_template,
    mux_words,
    neg_words,
    reconstruct_sub_template,
    relu_template,
    sign_template,
    sub_words,
)
from repro.gc.circuit import Circuit
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.ring import Ring


def _two_input_circuit(bits, op):
    circ = Circuit()
    x = circ.garbler_input(bits)
    y = circ.evaluator_input(bits)
    circ.mark_outputs(op(circ, x, y))
    circ.validate()
    return circ


def _eval_words(circ, bits, x_vals, y_vals):
    ring = Ring(bits)
    gx = int_to_bits(ring.reduce(x_vals), bits)
    ey = int_to_bits(ring.reduce(y_vals), bits)
    out = circ.eval_plain(gx, ey)
    return ring.reduce(bits_to_int(out))


class TestGatePrimitives:
    def test_xor_and_inv(self):
        circ = Circuit()
        (a,) = circ.garbler_input(1)
        (b,) = circ.evaluator_input(1)
        circ.mark_outputs([circ.xor(a, b), circ.and_(a, b), circ.inv(a), circ.or_(a, b)])
        for av in (0, 1):
            for bv in (0, 1):
                out = circ.eval_plain([[av]], [[bv]])[0]
                assert out.tolist() == [av ^ bv, av & bv, 1 - av, av | bv]

    def test_validate_catches_undefined_wire(self):
        circ = Circuit()
        (a,) = circ.garbler_input(1)
        circ.gates.append(type(circ.gates)() if False else None)  # placeholder
        circ.gates.pop()
        bad = circ.xor(a, 57)  # wire 57 never defined
        circ.mark_outputs([bad])
        with pytest.raises(ConfigError):
            circ.validate()

    def test_validate_catches_undriven_output(self):
        circ = Circuit()
        circ.garbler_input(1)
        circ.mark_outputs([99])
        with pytest.raises(ConfigError):
            circ.validate()

    def test_eval_input_count_checked(self):
        circ = Circuit()
        circ.garbler_input(2)
        with pytest.raises(ConfigError):
            circ.eval_plain([[1]], [[]])


class TestAdders:
    @given(
        x=st.integers(0, 2**16 - 1),
        y=st.integers(0, 2**16 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_add_matches_ring(self, x, y):
        circ = _two_input_circuit(16, add_words)
        got = int(np.asarray(_eval_words(circ, 16, x, y)).reshape(-1)[0])
        assert got == (x + y) % (1 << 16)

    @given(x=st.integers(0, 2**16 - 1), y=st.integers(0, 2**16 - 1))
    @settings(max_examples=60, deadline=None)
    def test_sub_matches_ring(self, x, y):
        circ = _two_input_circuit(16, sub_words)
        got = int(np.asarray(_eval_words(circ, 16, x, y)).reshape(-1)[0])
        assert got == (x - y) % (1 << 16)

    def test_add_and_count(self):
        for bits in (1, 8, 32):
            circ = _two_input_circuit(bits, add_words)
            assert circ.and_count == bits - 1

    def test_sub_and_count(self):
        circ = _two_input_circuit(32, sub_words)
        assert circ.and_count == 31

    def test_neg_words(self):
        circ = Circuit()
        x = circ.garbler_input(8)
        circ.mark_outputs(neg_words(circ, x))
        circ.validate()
        for value in (0, 1, 127, 200, 255):
            out = bits_to_int(circ.eval_plain(int_to_bits(np.uint64(value), 8), np.zeros((1, 0))))
            assert int(out[0]) == (-value) % 256

    def test_width_mismatch_raises(self):
        circ = Circuit()
        x = circ.garbler_input(4)
        y = circ.evaluator_input(5)
        with pytest.raises(ConfigError):
            add_words(circ, x, y)


class TestMux:
    def test_mux_selects(self):
        circ = Circuit()
        (sel,) = circ.garbler_input(1)
        a = circ.garbler_input(4)
        b = circ.evaluator_input(4)
        circ.mark_outputs(mux_words(circ, sel, a, b))
        for s in (0, 1):
            g_bits = np.concatenate([[s], int_to_bits(np.uint64(12), 4)])
            e_bits = int_to_bits(np.uint64(5), 4)
            out = int(bits_to_int(circ.eval_plain(g_bits[None, :], e_bits[None, :]))[0])
            assert out == (12 if s else 5)

    def test_and_broadcast(self):
        circ = Circuit()
        (bit,) = circ.garbler_input(1)
        x = circ.evaluator_input(4)
        circ.mark_outputs(and_broadcast(circ, bit, x))
        out = int(bits_to_int(circ.eval_plain([[0]], int_to_bits(np.uint64(15), 4)[None, :]))[0])
        assert out == 0


class TestTemplates:
    @pytest.mark.parametrize("bits", [8, 16, 32])
    def test_relu_template_semantics(self, bits, rng):
        ring = Ring(bits)
        circ = relu_template(bits)
        n = 64
        y = ring.sample(rng, n)
        y1 = ring.sample(rng, n)
        y0 = ring.sub(y, y1)
        z1 = ring.sample(rng, n)
        g = np.concatenate([int_to_bits(y1, bits), int_to_bits(z1, bits)], axis=1)
        out = ring.reduce(bits_to_int(circ.eval_plain(g, int_to_bits(y0, bits))))
        relu = np.where(ring.to_signed(y) > 0, y, 0).astype(np.uint64)
        assert (out == ring.sub(relu, z1)).all()

    def test_relu_and_count(self):
        assert relu_template(32).and_count == 3 * 32 - 2

    def test_sign_template(self, rng):
        ring = Ring(16)
        circ = sign_template(16)
        assert circ.and_count == 15
        y = ring.reduce(np.array([5, -5, 0, 30000, -30000]))
        y1 = ring.sample(rng, 5)
        y0 = ring.sub(y, y1)
        out = circ.eval_plain(int_to_bits(y1, 16), int_to_bits(y0, 16))
        assert out[:, 0].tolist() == [1, 0, 1, 1, 0]

    def test_reconstruct_sub_template(self, rng):
        ring = Ring(16)
        circ = reconstruct_sub_template(16)
        assert circ.and_count == 2 * 16 - 2
        y = ring.sample(rng, 10)
        y1 = ring.sample(rng, 10)
        z1 = ring.sample(rng, 10)
        g = np.concatenate([int_to_bits(y1, 16), int_to_bits(z1, 16)], axis=1)
        out = ring.reduce(bits_to_int(circ.eval_plain(g, int_to_bits(ring.sub(y, y1), 16))))
        assert (out == ring.sub(y, z1)).all()

    def test_generic_activation_identity(self, rng):
        ring = Ring(8)
        circ = generic_activation_template(8, lambda c, y: y)
        y = ring.sample(rng, 6)
        y1 = ring.sample(rng, 6)
        z1 = ring.sample(rng, 6)
        g = np.concatenate([int_to_bits(y1, 8), int_to_bits(z1, 8)], axis=1)
        out = ring.reduce(bits_to_int(circ.eval_plain(g, int_to_bits(ring.sub(y, y1), 8))))
        assert (out == ring.sub(y, z1)).all()

    def test_generic_activation_width_check(self):
        with pytest.raises(ConfigError):
            generic_activation_template(8, lambda c, y: y[:-1])
