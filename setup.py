"""Legacy setup shim.

Kept so ``pip install -e .`` works in offline environments that lack the
``wheel`` package (pip then falls back to ``setup.py develop``).  All real
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
