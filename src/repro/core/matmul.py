"""Secure matrix multiplication: offline triplets + the free online step.

The ABNN2 linear layer splits exactly as Section 3 describes:

* **Offline** (data independent): the parties run
  :mod:`repro.core.triplets` on the server's quantized ``W`` and the
  client's random ``R``, ending with ``U + V = W R``.
* **Online**: the client's real operand ``Z`` arrives additively shared
  with ``<Z>_1 = R``; the server computes ``<Y>_0 = W <Z>_0 + U`` locally
  and the client's share is simply ``<Y>_1 = V``.  No communication.

These classes are the user-facing wrapper around that flow for a single
matrix product; :mod:`repro.core.protocol` chains them per network layer.
"""

from __future__ import annotations

import numpy as np

from repro.core.triplets import (
    BlockedShare,
    TripletConfig,
    generate_triplets_client,
    generate_triplets_server,
)
from repro.errors import ConfigError, ProtocolError
from repro.net.channel import Channel
from repro.utils.ring import Ring


def grouped_product(
    ring: Ring, w: np.ndarray, z0: np.ndarray, m: int, n: int, groups: int
) -> np.ndarray:
    """``W @ Z0`` (block-diagonal when ``groups > 1``), any column count.

    ``w`` is the stacked ``(groups * m, n)`` ring-reduced weight matrix
    and ``z0`` the stacked ``(groups * n, cols)`` operand; columns are
    independent, so this serves both the full-width online step and any
    column block of it.  Shared by the online engines and the streamed
    triplet dealer (:mod:`repro.serve.dealer`), which computes the same
    product against ``R`` blocks.
    """
    if groups == 1:
        return ring.matmul(w, z0)
    prod = ring.zeros((groups * m, z0.shape[1]))
    for g in range(groups):
        prod[g * m : (g + 1) * m] = ring.matmul(
            w[g * m : (g + 1) * m], z0[g * n : (g + 1) * n]
        )
    return prod


class SecureMatmulServer:
    """Server side (model owner) of one secure W @ Z product."""

    def __init__(self, chan: Channel, w_int: np.ndarray, config: TripletConfig, seed: int | None = None) -> None:
        self.chan = chan
        self.config = config
        self.w_int = np.asarray(w_int, dtype=np.int64)
        if self.w_int.shape != config.w_shape:
            raise ConfigError(
                f"W shape {self.w_int.shape} disagrees with config {config.w_shape}"
            )
        self._seed = seed
        self._u: np.ndarray | BlockedShare | None = None

    def offline(self) -> None:
        """Run the OT-based triplet generation (interactive)."""
        self._u = generate_triplets_server(self.chan, self.w_int, self.config, seed=self._seed)

    def preload(self, u: np.ndarray | BlockedShare) -> None:
        """Adopt a precomputed ``U`` share instead of running :meth:`offline`.

        The serving layer's triplet bank generates material ahead of time
        (see :mod:`repro.serve.bank`); this installs one banked share after
        shape validation, so no OT traffic happens on this channel.  A
        :class:`BlockedShare` is kept blocked so the chunked online path
        never forces the full matrix into one allocation.
        """
        if isinstance(u, BlockedShare):
            if u.shape != self.config.out_shape:
                raise ConfigError(
                    f"expected U of shape {self.config.out_shape}, got {u.shape}"
                )
            self._u = u
            return
        u_arr = self.config.ring.reduce(u)
        if u_arr.shape != self.config.out_shape:
            raise ConfigError(
                f"expected U of shape {self.config.out_shape}, got {u_arr.shape}"
            )
        self._u = u_arr

    @property
    def u(self) -> np.ndarray:
        if self._u is None:
            raise ProtocolError("offline phase has not run yet")
        if isinstance(self._u, BlockedShare):
            return self._u.materialize()
        return self._u

    def u_columns(self, lo: int, hi: int) -> np.ndarray:
        """Columns ``[lo, hi)`` of ``U`` without materializing the rest."""
        if self._u is None:
            raise ProtocolError("offline phase has not run yet")
        if isinstance(self._u, BlockedShare):
            return self._u.columns(lo, hi)
        return self._u[:, lo:hi]

    def online(self, z0_share: np.ndarray) -> np.ndarray:
        """Local step: ``<Y>_0 = W <Z>_0 + U`` (no communication).

        With ``config.groups > 1`` the product is block-diagonal: output
        block ``g`` is ``W[g m:(g+1) m] @ <Z>_0[g n:(g+1) n]``.
        """
        config = self.config
        ring = config.ring
        z0 = ring.reduce(z0_share)
        if z0.shape != config.r_shape:
            raise ConfigError(
                f"expected share of shape {config.r_shape}, got {z0.shape}"
            )
        w = ring.reduce(self.w_int)
        prod = grouped_product(ring, w, z0, config.m, config.n, config.groups)
        return ring.add(prod, self.u)

    def online_block(self, z0_block: np.ndarray, lo: int, hi: int) -> np.ndarray:
        """Columns ``[lo, hi)`` of :meth:`online`, fed only that operand block.

        ``z0_block`` is ``(groups * n, hi - lo)`` — the lowered operand
        columns the chunked path materialized for this block.  Matmul
        columns are independent and ring arithmetic exact, so looping
        this over any column partition is byte-identical to one
        full-width :meth:`online` call.  ``U`` blocks are *not* freed as
        they are consumed: fault recovery may re-run the round against
        the same engine (the linear engines never mutate their shares).
        """
        config = self.config
        ring = config.ring
        z0 = ring.reduce(z0_block)
        if z0.ndim != 2 or z0.shape != (config.r_shape[0], hi - lo):
            raise ConfigError(
                f"expected operand block of shape ({config.r_shape[0]}, {hi - lo}), "
                f"got {z0.shape}"
            )
        if not (0 <= lo <= hi <= self.config.o):
            raise ConfigError(
                f"column block [{lo}, {hi}) outside [0, {self.config.o}) output columns"
            )
        w = ring.reduce(self.w_int)
        prod = grouped_product(ring, w, z0, config.m, config.n, config.groups)
        return ring.add(prod, self.u_columns(lo, hi))


class SecureMatmulClient:
    """Client side (data owner) of one secure W @ Z product."""

    def __init__(
        self,
        chan: Channel,
        config: TripletConfig,
        rng: np.random.Generator,
        r_mat: np.ndarray | None = None,
        seed: int | None = None,
    ) -> None:
        self.chan = chan
        self.config = config
        self._rng = rng
        self._seed = seed
        if r_mat is None:
            r_mat = config.ring.sample(rng, config.r_shape)
        self.r = config.ring.reduce(r_mat)
        if self.r.shape != config.r_shape:
            raise ConfigError(
                f"R shape {self.r.shape} disagrees with config {config.r_shape}"
            )
        self._v: np.ndarray | BlockedShare | None = None

    @classmethod
    def for_preload(cls, chan: Channel, config: TripletConfig) -> "SecureMatmulClient":
        """An engine that will only ever serve a banked ``V`` share.

        A dealt round's ``V`` already embeds ``R`` and the online path
        never calls :meth:`mask_input` on hidden layers, so no ``R`` is
        sampled or allocated — at conv scale a placeholder ``R`` would
        itself be a patch-matrix-sized array.
        """
        engine = cls.__new__(cls)
        engine.chan = chan
        engine.config = config
        engine._rng = None
        engine._seed = None
        engine.r = None
        engine._v = None
        return engine

    def offline(self) -> None:
        """Run the OT-based triplet generation (interactive)."""
        if self.r is None:
            raise ProtocolError("preload-only engine has no R to run offline with")
        self._v = generate_triplets_client(
            self.chan, self.r, self.config, self._rng, seed=self._seed
        )

    def preload(self, v: np.ndarray | BlockedShare) -> None:
        """Adopt a precomputed ``V`` share instead of running :meth:`offline`.

        Counterpart of :meth:`SecureMatmulServer.preload` for banked
        offline rounds dealt to a session by the serving layer.
        """
        if isinstance(v, BlockedShare):
            if v.shape != self.config.out_shape:
                raise ConfigError(
                    f"expected V of shape {self.config.out_shape}, got {v.shape}"
                )
            self._v = v
            return
        v_arr = self.config.ring.reduce(v)
        if v_arr.shape != self.config.out_shape:
            raise ConfigError(
                f"expected V of shape {self.config.out_shape}, got {v_arr.shape}"
            )
        self._v = v_arr

    @property
    def v(self) -> np.ndarray:
        if self._v is None:
            raise ProtocolError("offline phase has not run yet")
        if isinstance(self._v, BlockedShare):
            return self._v.materialize()
        return self._v

    def mask_input(self, z: np.ndarray) -> np.ndarray:
        """``<Z>_0 = Z - R``: the share the client transmits to the server."""
        if self.r is None:
            raise ProtocolError("preload-only engine has no R to mask with")
        ring = self.config.ring
        z_arr = ring.reduce(z)
        if z_arr.shape != self.r.shape:
            raise ConfigError(f"operand shape {z_arr.shape} != R shape {self.r.shape}")
        return ring.sub(z_arr, self.r)

    def online(self) -> np.ndarray:
        """Local step: the client's product share is just ``V``."""
        return self.v
