"""ABNN2 core protocols: the paper's primary contribution.

* :mod:`repro.core.triplets` — dot-product / matrix triplet generation on
  1-out-of-N OT extension (Algorithm 1), with the multi-batch OT-reuse
  optimization (Section 4.1.2) and the one-batch correlated-OT
  optimization (Section 4.1.3).
* :mod:`repro.core.matmul` — the offline+online secure matrix
  multiplication built on those triplets.
* :mod:`repro.core.relu` — the GC-based non-linear layer (Algorithm 2)
  and the paper's optimized two-stage ReLU.
* :mod:`repro.core.protocol` — end-to-end two-party QNN prediction.
* :mod:`repro.core.plan` — the layer-graph plan both executors walk.
* :mod:`repro.core.pipeline` — streamed-garbling pipelined execution.
* :mod:`repro.core.params` — (N, gamma) fragment-scheme selection.
"""

from repro.core.params import optimal_scheme, scheme_for
from repro.core.triplets import (
    TripletConfig,
    generate_triplets_server,
    generate_triplets_client,
)
from repro.core.matmul import SecureMatmulServer, SecureMatmulClient
from repro.core.pooling import (
    avgpool_share,
    maxpool_client,
    maxpool_server,
)
from repro.core.relu import (
    relu_layer_server,
    relu_layer_client,
    sigmoid_layer_server,
    sigmoid_layer_client,
    truncate_share,
)
from repro.core.plan import (
    GC_STREAM_BASE,
    MAIN_STREAM,
    LayerGraphPlan,
    PlanNode,
    build_plan,
)
from repro.core.pipeline import PipelineConfig
from repro.core.protocol import (
    Abnn2Server,
    Abnn2Client,
    secure_predict,
    PredictionReport,
)

__all__ = [
    "GC_STREAM_BASE",
    "MAIN_STREAM",
    "LayerGraphPlan",
    "PlanNode",
    "build_plan",
    "PipelineConfig",
    "optimal_scheme",
    "scheme_for",
    "TripletConfig",
    "generate_triplets_server",
    "generate_triplets_client",
    "SecureMatmulServer",
    "SecureMatmulClient",
    "relu_layer_server",
    "relu_layer_client",
    "sigmoid_layer_server",
    "sigmoid_layer_client",
    "truncate_share",
    "avgpool_share",
    "maxpool_server",
    "maxpool_client",
    "Abnn2Server",
    "Abnn2Client",
    "secure_predict",
    "PredictionReport",
]
