"""Secure non-linear layer: Algorithm 2 ReLU and the optimized variant.

Shares enter as ``(y0, y1)`` with ``y0 + y1 = y (mod 2^l)`` and leave as
``(z0, z1)`` with ``z0 + z1 = ReLU(y)``.  Roles: the **client garbles**
(it also picks the fresh output share ``z1``), the **server evaluates**
and obtains ``z0`` from the circuit's decoded output — exactly
Algorithm 2's interface.

Two variants:

* ``variant="oblivious"`` (default) — one circuit per element computing
  ``max(0, y0 + y1) - z1`` (:func:`repro.gc.builder.relu_template`,
  ``3l - 2`` AND gates).  Leaks nothing.
* ``variant="optimized"`` — the paper's Section 4.2 two-stage protocol:
  stage 1 garbles only the comparison ``y0 > -y1`` (``l - 1`` ANDs) and
  *reveals the sign bits to both parties*; stage 2 runs the
  reconstruct-and-reshare circuit (``2l - 2`` ANDs) only on positive
  neurons, while negative neurons cost nothing (``z0 = -z1`` locally).
  For mostly-negative layers this saves most of the GC work — the paper's
  claim — at the price of revealing the ReLU activation *pattern* (not
  the values).  The trade-off is noted in the paper's own description and
  flagged here because it is a real leakage difference.

:func:`truncate_share` is the SecureML-style local rescaling used between
a linear layer and its activation (see :mod:`repro.nn.quantize`).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ProtocolError
from repro.gc.builder import (
    piecewise_sigmoid_template,
    reconstruct_sub_template,
    relu_template,
    sign_template,
)
from repro.gc.protocol import GcSessions, run_evaluator, run_garbler
from repro.net.channel import Channel
from repro.utils.bits import bits_to_int, int_to_bits, pack_bits, unpack_bits
from repro.utils.ring import Ring

_TEMPLATE_CACHE: dict[tuple[str, int], object] = {}

VARIANTS = ("oblivious", "optimized")


def _template(kind: str, bits: int):
    key = (kind, bits)
    if key not in _TEMPLATE_CACHE:
        builders = {
            "relu": relu_template,
            "sign": sign_template,
            "reconstruct_sub": reconstruct_sub_template,
            "sigmoid": piecewise_sigmoid_template,
        }
        _TEMPLATE_CACHE[key] = builders[kind](bits)
    return _TEMPLATE_CACHE[key]


def truncate_share(ring: Ring, share: np.ndarray, bits: int, party: int) -> np.ndarray:
    """SecureML local truncation: divide a shared value by 2^bits.

    Party 0 shifts its share down; party 1 negates, shifts, negates.  The
    reconstructed result equals the arithmetic shift of the true value up
    to one unit in the last place, with failure probability ~|y| / 2^(l-1)
    (negligible for the activation magnitudes the pipeline maintains).
    """
    if bits == 0:
        return ring.reduce(share)
    if party == 0:
        return ring.reduce(np.asarray(share, dtype=np.uint64) >> np.uint64(bits))
    flipped = ring.neg(share)
    return ring.neg(np.asarray(flipped, dtype=np.uint64) >> np.uint64(bits))


def _to_bit_rows(ring: Ring, values: np.ndarray) -> np.ndarray:
    """(inst,) ring values -> (l, inst) bit matrix (wire-major layout)."""
    return np.ascontiguousarray(int_to_bits(values, ring.bits).T)


def _from_bit_rows(ring: Ring, bit_rows: np.ndarray) -> np.ndarray:
    return ring.reduce(bits_to_int(np.ascontiguousarray(bit_rows.T)))


# --------------------------------------------------------------------- #
# server (evaluator): holds y0, learns z0
# --------------------------------------------------------------------- #
def relu_layer_server(
    chan: Channel,
    y0: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
    variant: str = "oblivious",
) -> np.ndarray:
    """Server side of the ReLU layer; returns ``z0`` with ``y0``'s shape."""
    if variant not in VARIANTS:
        raise ConfigError(f"unknown ReLU variant {variant!r}")
    shape = np.shape(y0)
    flat = ring.reduce(y0).reshape(-1)
    n_inst = flat.shape[0]
    y0_bits = _to_bit_rows(ring, flat)

    if variant == "oblivious":
        out_bits = run_evaluator(chan, _template("relu", ring.bits), y0_bits, n_inst, sessions)
        return _from_bit_rows(ring, out_bits).reshape(shape)

    # Optimized: stage 1 comparison, sign revealed to both parties.
    sign_bits = run_evaluator(chan, _template("sign", ring.bits), y0_bits, n_inst, sessions)
    positive = sign_bits[0].astype(bool)
    chan.send(pack_bits(sign_bits[0]))

    z0 = ring.zeros(n_inst)
    n_pos = int(positive.sum())
    if n_pos:
        pos_bits = np.ascontiguousarray(y0_bits[:, positive])
        out_bits = run_evaluator(
            chan, _template("reconstruct_sub", ring.bits), pos_bits, n_pos, sessions
        )
        z0[positive] = _from_bit_rows(ring, out_bits)
    neg_share = chan.recv()  # -z1 for the negative neurons
    if neg_share.shape != (n_inst - n_pos,):
        raise ProtocolError("unexpected negative-share payload")
    z0[~positive] = ring.reduce(neg_share)
    return z0.reshape(shape)


# --------------------------------------------------------------------- #
# client (garbler): holds y1, picks/reuses z1
# --------------------------------------------------------------------- #
def relu_layer_client(
    chan: Channel,
    y1: np.ndarray,
    z1: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
    rng: np.random.Generator,
    variant: str = "oblivious",
) -> np.ndarray:
    """Client side of the ReLU layer; returns ``z1`` (the client's share).

    ``z1`` is passed in because ABNN2 fixes it during the *offline* phase
    (it doubles as the next linear layer's triplet operand R).
    """
    if variant not in VARIANTS:
        raise ConfigError(f"unknown ReLU variant {variant!r}")
    shape = np.shape(y1)
    flat_y1 = ring.reduce(y1).reshape(-1)
    flat_z1 = ring.reduce(z1).reshape(-1)
    if flat_z1.shape != flat_y1.shape:
        raise ConfigError("z1 must match y1's shape")
    n_inst = flat_y1.shape[0]
    y1_bits = _to_bit_rows(ring, flat_y1)

    if variant == "oblivious":
        garbler_bits = np.concatenate([y1_bits, _to_bit_rows(ring, flat_z1)], axis=0)
        run_garbler(chan, _template("relu", ring.bits), garbler_bits, n_inst, sessions, rng)
        return flat_z1.reshape(shape)

    run_garbler(chan, _template("sign", ring.bits), y1_bits, n_inst, sessions, rng)
    positive = unpack_bits(chan.recv(), n_inst).astype(bool)

    n_pos = int(positive.sum())
    if n_pos:
        pos_y1 = np.ascontiguousarray(y1_bits[:, positive])
        pos_z1 = _to_bit_rows(ring, flat_z1[positive])
        garbler_bits = np.concatenate([pos_y1, pos_z1], axis=0)
        run_garbler(
            chan,
            _template("reconstruct_sub", ring.bits),
            garbler_bits,
            n_pos,
            sessions,
            rng,
        )
    # Negative neurons: ReLU(y) = 0, so z0 must equal -z1.
    chan.send(ring.neg(flat_z1[~positive]))
    return flat_z1.reshape(shape)


# --------------------------------------------------------------------- #
# piecewise-sigmoid activation (Algorithm 2 with a different f)
# --------------------------------------------------------------------- #
def sigmoid_layer_server(
    chan: Channel,
    y0: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
    frac_bits: int,
) -> np.ndarray:
    """Server side of the 3-piece sigmoid layer; returns ``z0``.

    Shares of ``f(y0 + y1)`` in the same ``2^frac_bits`` fixed-point
    encoding as the inputs; see
    :func:`repro.gc.builder.piecewise_sigmoid_template`.
    """
    shape = np.shape(y0)
    flat = ring.reduce(y0).reshape(-1)
    n_inst = flat.shape[0]
    out_bits = run_evaluator(
        chan, _template("sigmoid", ring.bits), _to_bit_rows(ring, flat), n_inst, sessions
    )
    return _from_bit_rows(ring, out_bits).reshape(shape)


def sigmoid_layer_client(
    chan: Channel,
    y1: np.ndarray,
    z1: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
    frac_bits: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Client (garbler) side of the sigmoid layer; returns ``z1``.

    The public constants 1/2 and 1 enter the circuit as garbler inputs,
    encoded at the caller's fixed-point scale.
    """
    if not 0 < frac_bits < ring.bits:
        raise ConfigError(f"frac_bits must be in (0, {ring.bits}), got {frac_bits}")
    shape = np.shape(y1)
    flat_y1 = ring.reduce(y1).reshape(-1)
    flat_z1 = ring.reduce(z1).reshape(-1)
    if flat_z1.shape != flat_y1.shape:
        raise ConfigError("z1 must match y1's shape")
    n_inst = flat_y1.shape[0]
    half = np.full(n_inst, 1 << (frac_bits - 1), dtype=np.uint64)
    one = np.full(n_inst, 1 << frac_bits, dtype=np.uint64)
    garbler_bits = np.concatenate(
        [
            _to_bit_rows(ring, flat_y1),
            _to_bit_rows(ring, flat_z1),
            _to_bit_rows(ring, half),
            _to_bit_rows(ring, one),
        ],
        axis=0,
    )
    run_garbler(
        chan, _template("sigmoid", ring.bits), garbler_bits, n_inst, sessions, rng
    )
    return flat_z1.reshape(shape)
