"""Dot-product / matrix triplet generation over 1-out-of-N OT extension.

This is the paper's Algorithm 1 plus both Section 4.1 optimizations, for
server weight matrix ``W`` (eta-bit quantized, m x n) and client random
matrix ``R`` (uniform in Z_{2^l}, n x o):

* **OT layout.**  Every weight element contributes gamma fragments; OT
  ``(i, j, k)`` (row, column, fragment) carries the product of fragment
  value ``vt_k[digit]`` with the client's row ``R[j, :]``.  OTs are
  grouped by fragment radix (mixed-radix schemes like (3,3,2) run one
  KK13 session per distinct N) and processed in bounded chunks so memory
  stays flat regardless of matrix size.
* **Multi-batch (o > 1, Section 4.1.2).**  The server's choice digit is
  identical for all ``o`` columns, so one OT carries ``o`` masked
  products: client messages are ``{vt[t] * R[j, :] - s}`` packed to
  ``o * l`` bits.  Per-OT communication: ``o*l*N + 2*kappa`` bits —
  Table 1's M-Batch column.
* **One-batch (o = 1, Section 4.1.3).**  Correlated-OT trick: the pad of
  message 0 *is* the client's share ``s_i``, so only ``N - 1`` masked
  messages cross the wire: ``l*(N-1) + 2*kappa`` bits per OT — Table 1's
  1-Batch column.

Outputs satisfy ``U + V = W_signed @ R  (mod 2^l)`` with ``U`` on the
server and ``V`` on the client.  Signed weights cost nothing extra: the
top fragment's value table interprets its digit in two's complement (the
client enumerates message contents for every digit anyway).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.crypto.kk13 import Kk13Receiver, Kk13Sender
from repro.errors import ConfigError, ProtocolError
from repro.net.channel import Channel
from repro.perf.trace import channel_span
from repro.quant.fragments import FragmentScheme
from repro.utils.accum import segment_sum_u64
from repro.utils.bits import pack_ring_words, packed_word_count, unpack_ring_words
from repro.utils.ring import Ring

_U64 = np.uint64

#: Soft cap on pad-tensor words per chunk (~32 MiB of uint64).
_CHUNK_BUDGET_WORDS = 1 << 22
_TRIPLET_DOMAIN = 23


@dataclass
class TripletConfig:
    """Shared public parameters of one triplet generation.

    Both parties must construct identical configs (the model architecture
    and scheme are public); shapes are (m, n) for W and (n, o) for R.

    ``groups > 1`` runs a *block-diagonal* product over one OT session:
    W is stacked ``(groups * m, n)``, R stacked ``(groups * n, o)``, and
    block ``g`` of the output is ``W[g m:(g+1) m] @ R[g n:(g+1) n]`` —
    the shape the Winograd backend's 16 per-tile-position products take
    (:mod:`repro.nn.winograd`).  The OT layout is unchanged (flat index
    still runs over all ``rows * n`` weight elements); only the client's
    R-row lookup becomes group-aware, and ``groups=1`` reduces to the
    historical wire format byte-for-byte.
    """

    ring: Ring
    scheme: FragmentScheme
    m: int
    n: int
    o: int
    mode: str = "auto"  # "auto" | "multi" | "one"
    group: ModpGroup = DEFAULT_GROUP
    ro: RandomOracle = field(default_factory=lambda: default_ro)
    groups: int = 1

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.o) < 1:
            raise ConfigError("matrix dimensions must be positive")
        if self.groups < 1:
            raise ConfigError("groups must be positive")
        if self.mode not in ("auto", "multi", "one"):
            raise ConfigError(f"unknown triplet mode {self.mode!r}")

    @property
    def rows(self) -> int:
        """Stacked output rows: ``groups * m`` (equals ``m`` when ungrouped)."""
        return self.groups * self.m

    @property
    def w_shape(self) -> tuple[int, int]:
        return (self.rows, self.n)

    @property
    def r_shape(self) -> tuple[int, int]:
        return (self.groups * self.n, self.o)

    @property
    def out_shape(self) -> tuple[int, int]:
        """Shape of U, V, and the online product share."""
        return (self.rows, self.o)

    @property
    def resolved_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "one" if self.o == 1 else "multi"

    @property
    def radix_groups(self) -> list[tuple[int, list[int]]]:
        """Fragment indices grouped by radix N, deterministic order."""
        groups: dict[int, list[int]] = {}
        for idx, frag in enumerate(self.scheme.fragments):
            groups.setdefault(frag.n_values, []).append(idx)
        return sorted(groups.items())

    def chunk_size(self, n_values: int) -> int:
        width = packed_word_count(self.o, self.ring.bits)
        per_ot = max(1, n_values * width)
        return max(1024, _CHUNK_BUDGET_WORDS // per_ot)

    @property
    def total_ots(self) -> int:
        """gamma * rows * n — Table 1's #OT row for both ABNN2 modes."""
        return self.scheme.gamma * self.rows * self.n


class BlockedShare:
    """An offline share matrix held as contiguous column blocks.

    The streamed dealer (:mod:`repro.serve.dealer`) produces a conv
    layer's ``U``/``V`` block-by-block so the full ``(rows, o)`` matrix
    is never a single allocation, and the chunked online path consumes
    it the same way.  Semantically it *is* the concatenation of its
    blocks — :meth:`columns` serves any ``[lo, hi)`` range regardless of
    how the producer's block grid lines up with the consumer's, and
    :meth:`materialize` recovers the plain array for legacy callers.

    Blocks are never mutated after construction (the fault-recovery
    contract: re-running an online round must see identical material).
    """

    __slots__ = ("_blocks", "_bounds", "_rows")

    def __init__(self, blocks: list[np.ndarray]) -> None:
        if not blocks:
            raise ConfigError("BlockedShare needs at least one column block")
        arrs = [np.asarray(b) for b in blocks]
        rows = arrs[0].shape[0] if arrs[0].ndim == 2 else -1
        for arr in arrs:
            if arr.ndim != 2 or arr.shape[0] != rows:
                raise ConfigError(
                    f"BlockedShare blocks must share a row count; got "
                    f"{[a.shape for a in arrs]}"
                )
        self._blocks = arrs
        self._rows = rows
        bounds = []
        hi = 0
        for arr in arrs:
            hi += arr.shape[1]
            bounds.append(hi)
        self._bounds = bounds

    @classmethod
    def from_array(cls, arr: np.ndarray, chunk: int | None = None) -> "BlockedShare":
        """Split a plain share matrix on a ``chunk``-column grid."""
        a = np.asarray(arr)
        if a.ndim != 2:
            raise ConfigError(f"expected a 2-D share matrix, got shape {a.shape}")
        if a.shape[1] == 0:
            return cls([a])
        step = a.shape[1] if chunk is None else max(1, min(chunk, a.shape[1]))
        return cls([a[:, lo : lo + step] for lo in range(0, a.shape[1], step)])

    @property
    def shape(self) -> tuple[int, int]:
        return (self._rows, self._bounds[-1] if self._bounds else 0)

    @property
    def n_blocks(self) -> int:
        return len(self._blocks)

    def blocks(self) -> list[np.ndarray]:
        """The underlying column blocks, in order (do not mutate)."""
        return list(self._blocks)

    def columns(self, lo: int, hi: int) -> np.ndarray:
        """Columns ``[lo, hi)`` of the logical matrix.

        A range inside one block is a zero-copy view; a straddling range
        concatenates only the touched pieces.
        """
        total = self.shape[1]
        if not (0 <= lo <= hi <= total):
            raise ConfigError(f"column range [{lo}, {hi}) outside [0, {total})")
        pieces = []
        block_lo = 0
        for arr, block_hi in zip(self._blocks, self._bounds):
            if block_hi > lo and block_lo < hi:
                pieces.append(arr[:, max(lo, block_lo) - block_lo : min(hi, block_hi) - block_lo])
            if block_hi >= hi:
                break
            block_lo = block_hi
        if len(pieces) == 1:
            return pieces[0]
        if not pieces:
            return self._blocks[0][:, :0]
        return np.concatenate(pieces, axis=1)

    def materialize(self) -> np.ndarray:
        """The full share matrix as one contiguous array (legacy callers)."""
        if len(self._blocks) == 1:
            return self._blocks[0]
        return np.concatenate(self._blocks, axis=1)


def _flat_coords(start: int, count: int, n: int, k_count: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Decompose flat OT indices (i, j, k_pos lexicographic) of one group."""
    flat = np.arange(start, start + count, dtype=np.int64)
    i_idx = flat // (n * k_count)
    rem = flat % (n * k_count)
    return i_idx, rem // k_count, rem % k_count


# --------------------------------------------------------------------- #
# span workers: the chunk loops over one flat-index range of one radix
# group.  The sequential generators below run them over [0, total); the
# sharded execution engine (repro.exec.triplets) runs disjoint spans on
# independent OT sessions — OT instances are independent, so a span's
# contribution to U/V depends only on its own indices.
# --------------------------------------------------------------------- #
def server_group_span(
    chan: Channel,
    receiver: Kk13Receiver,
    choices: np.ndarray,
    config: TripletConfig,
    n_values: int,
    k_count: int,
    start: int,
    stop: int,
    chunk: int,
) -> np.ndarray:
    """Process flat OTs ``[start, stop)`` of one group; returns partial U.

    ``choices`` is the *full* flattened digit vector of the group, so
    absolute flat indices keep addressing the right (i, j, k) triple.
    """
    ring = config.ring
    mode = config.resolved_mode
    width = (
        packed_word_count(config.o, ring.bits)
        if mode == "multi"
        else packed_word_count(1, ring.bits)
    )
    u = ring.zeros(config.out_shape)
    for lo in range(start, stop, chunk):
        hi = min(stop, lo + chunk)
        batch = choices[lo:hi]
        i_idx, _, _ = _flat_coords(lo, hi - lo, config.n, k_count)
        if mode == "multi":
            got = receiver.recv_chosen(batch, width, domain=_TRIPLET_DOMAIN)
            values = unpack_ring_words(got, ring.bits, config.o)
        else:
            count = hi - lo
            pad = receiver.pads(batch, width, domain=_TRIPLET_DOMAIN)
            # Only the low l bits of the 64-bit pad are used.
            pad_val = unpack_ring_words(pad, ring.bits, 1)[:, 0]
            with channel_span(chan, "ot-transfer", m=count):
                packed = chan.recv()
            n_cipher = count * (n_values - 1)
            if packed.shape != (packed_word_count(n_cipher, ring.bits),):
                raise ProtocolError(
                    f"unexpected one-batch cipher shape {packed.shape}"
                )
            cipher = unpack_ring_words(packed[None, :], ring.bits, n_cipher)
            cipher = cipher.reshape(count, n_values - 1)
            chosen = np.clip(batch - 1, 0, None)
            opened = cipher[np.arange(count), chosen] ^ pad_val
            values = np.where(batch == 0, ring.neg(pad_val), opened)[:, None]
        # bincount-based segment sum; np.add.at is a numpy slow path.
        u = ring.add(u, segment_sum_u64(ring.reduce(values), i_idx, config.rows))
    return u


def client_group_span(
    chan: Channel,
    sender: Kk13Sender,
    value_table: np.ndarray,
    r: np.ndarray,
    config: TripletConfig,
    n_values: int,
    k_count: int,
    start: int,
    stop: int,
    chunk: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Client counterpart of :func:`server_group_span`; returns partial V.

    ``rng`` supplies the multi-batch share samples ``s`` — one generator
    per span, consumed in chunk order, so a span's output is a pure
    function of ``(rng state, value_table, r, start, stop, chunk)``.
    """
    ring = config.ring
    mode = config.resolved_mode
    v = ring.zeros(config.out_shape)
    for lo in range(start, stop, chunk):
        hi = min(stop, lo + chunk)
        count = hi - lo
        i_idx, j_idx, k_pos = _flat_coords(lo, count, config.n, k_count)
        vals = value_table[k_pos]  # (count, N)
        # Group-aware R row: stacked row i belongs to block i // m, whose
        # operand rows start at (i // m) * n.  Reduces to r[j_idx] when
        # groups == 1 (i // m is then always 0).
        r_rows = r[(i_idx // config.m) * config.n + j_idx]  # (count, o)
        products = ring.mul(vals[:, :, None], r_rows[:, None, :])  # (count, N, o)
        if mode == "multi":
            s = ring.sample(rng, (count, config.o))
            messages = ring.sub(products, s[:, None, :])
            sender.send_chosen(
                pack_ring_words(messages, ring.bits), domain=_TRIPLET_DOMAIN
            )
        else:
            width = packed_word_count(1, ring.bits)
            pads = sender.pads(count, width, domain=_TRIPLET_DOMAIN)
            # The low-l-bit pads, slot 0's doubling as the share s_i.
            pad_val = unpack_ring_words(pads, ring.bits, 1)[:, :, 0]  # (count, N)
            s = pad_val[:, 0:1]
            messages = ring.sub(products[:, 1:, 0], s)  # (count, N-1)
            cipher = messages ^ pad_val[:, 1:]
            with channel_span(chan, "ot-transfer", m=count):
                chan.send(pack_ring_words(cipher.reshape(1, -1), ring.bits)[0])
        v = ring.add(v, segment_sum_u64(ring.reduce(s), i_idx, config.rows))
    return v


# --------------------------------------------------------------------- #
# server: holds W, acts as OT receiver (choice = fragment digit)
# --------------------------------------------------------------------- #
def generate_triplets_server(
    chan: Channel,
    w_int: np.ndarray,
    config: TripletConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Server side; returns ``U`` of shape ``(rows, o)`` ring elements."""
    w = np.asarray(w_int, dtype=np.int64)
    if w.shape != config.w_shape:
        raise ConfigError(f"expected W of shape {config.w_shape}, got {w.shape}")
    ring = config.ring
    digits = config.scheme.digits(w)  # (rows, n, gamma)
    mode = config.resolved_mode

    u = ring.zeros(config.out_shape)
    for n_values, k_list in config.radix_groups:
        group_seed = None if seed is None else seed + n_values
        with channel_span(
            chan, f"radix{n_values}", n_values=n_values, fragments=len(k_list),
            m=config.rows, n=config.n, o=config.o, ring_bits=ring.bits, mode=mode,
        ):
            receiver = Kk13Receiver(
                chan, n_values, group=config.group, ro=config.ro, seed=group_seed
            )
            choices = digits[:, :, k_list].reshape(-1)
            u = ring.add(
                u,
                server_group_span(
                    chan, receiver, choices, config, n_values, len(k_list),
                    0, choices.shape[0], config.chunk_size(n_values),
                ),
            )
    return ring.reduce(u)


# --------------------------------------------------------------------- #
# client: holds R, acts as OT sender (N messages per OT)
# --------------------------------------------------------------------- #
def generate_triplets_client(
    chan: Channel,
    r_mat: np.ndarray,
    config: TripletConfig,
    rng: np.random.Generator,
    seed: int | None = None,
) -> np.ndarray:
    """Client side; returns ``V`` of shape ``(rows, o)`` ring elements."""
    r = np.asarray(r_mat, dtype=_U64)
    if r.shape != config.r_shape:
        raise ConfigError(f"expected R of shape {config.r_shape}, got {r.shape}")
    ring = config.ring
    mode = config.resolved_mode

    v = ring.zeros(config.out_shape)
    for n_values, k_list in config.radix_groups:
        group_seed = None if seed is None else seed + n_values
        with channel_span(
            chan, f"radix{n_values}", n_values=n_values, fragments=len(k_list),
            m=config.rows, n=config.n, o=config.o, ring_bits=ring.bits, mode=mode,
        ):
            sender = Kk13Sender(
                chan, n_values, group=config.group, ro=config.ro, seed=group_seed
            )
            # Per-digit signed contributions for each fragment in this group.
            value_table = ring.reduce(
                np.stack([config.scheme.values(k) for k in k_list])
            )  # (|K|, N)
            total = config.rows * config.n * len(k_list)
            v = ring.add(
                v,
                client_group_span(
                    chan, sender, value_table, r, config, n_values, len(k_list),
                    0, total, config.chunk_size(n_values), rng,
                ),
            )
    return ring.reduce(v)
