"""Layer-graph planner for the online phase.

The online phase used to be a hard-coded sequential loop inside
:class:`repro.core.protocol.Abnn2Server` / ``Abnn2Client``.  This module
makes the structure explicit: a :class:`LayerGraphPlan` is a small DAG
of :class:`PlanNode` steps — input share, per-layer linear product,
GC ReLU, pooling, logits — each declaring the named **wire values** it
consumes (``deps``), the mux stream its bulk transfer rides on
(``stream``), and whether its garbled tables can be streamed ahead of
the sequential round structure (``streamable``).

Both parties walk the same plan in declaration order (the chain is its
own topological order; :meth:`LayerGraphPlan.validate` pins that every
dependency is produced by an earlier node), dispatching per node kind.
The payoff of the explicit form:

* **Pipelining** — a ``streamable`` ReLU node's garbled tables depend
  only on *offline* material (the client's ``V`` share and its fresh
  ``z1``), so a background garbler can stream them on the node's own
  :class:`~repro.net.mux.ChannelMux` stream while earlier layers are
  still in flight on the main stream.  Only the per-layer label OT —
  whose choice bits are online data — stays on the sequential path.
* **Scheduling** — the serving layer's wide rounds
  (:class:`~repro.core.protocol.WideServerRound`) iterate the same
  plan's linear nodes, so batching and pipelining agree on layer
  structure by construction.

Sequential mode (``pipelined=False``) produces a plan whose every node
runs on the main channel in today's order — the executor then emits a
byte-identical wire transcript to the historical loop (pinned by
``tests/test_pipeline.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (protocol imports us)
    from repro.core.protocol import ModelMeta

#: Stream tag of the sequential round structure (input share, label OTs,
#: sign reveals, pooling, logits).  Mirrors the raw channel when the
#: plan is not pipelined.
MAIN_STREAM = 0

#: First tag of the per-layer garbled-table streams: layer ``i``'s ReLU
#: tables ride stream ``GC_STREAM_BASE + i``.
GC_STREAM_BASE = 1


@dataclass(frozen=True)
class PlanNode:
    """One step of the online phase.

    ``deps`` name the wire values this node consumes; every name is the
    ``name`` of an earlier node (the producer).  ``stream`` is the mux
    tag its bulk transfer uses — :data:`MAIN_STREAM` for everything on
    the sequential path.  ``streamable`` marks nodes whose garbler-side
    material is a pure function of offline state and may therefore be
    garbled and transferred ahead of the round structure.

    ``backend`` (linear nodes) records which lowering the layer's secure
    product uses — ``"im2col"`` or ``"winograd"`` — so every executor
    (sequential, pipelined, wide) resolves the same choice from the plan
    rather than re-deriving it.
    """

    name: str
    kind: str  # "input" | "linear" | "relu" | "pool" | "logits"
    layer: int  # model layer index (-1 for the input node)
    deps: tuple[str, ...]
    stream: int = MAIN_STREAM
    streamable: bool = False
    backend: str = "im2col"

    def __post_init__(self) -> None:
        if self.backend not in ("im2col", "winograd"):
            raise ConfigError(f"unknown linear backend {self.backend!r}")


@dataclass(frozen=True)
class LayerGraphPlan:
    """An ordered, validated node chain for one model architecture."""

    nodes: tuple[PlanNode, ...]
    relu_variant: str
    pipelined: bool

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Every dep must name an earlier node; names must be unique."""
        seen: set[str] = set()
        for node in self.nodes:
            if node.name in seen:
                raise ConfigError(f"duplicate plan node {node.name!r}")
            for dep in node.deps:
                if dep not in seen:
                    raise ConfigError(
                        f"plan node {node.name!r} depends on {dep!r}, "
                        "which no earlier node produces"
                    )
            seen.add(node.name)
        if self.pipelined:
            tags = [n.stream for n in self.nodes if n.stream != MAIN_STREAM]
            if len(tags) != len(set(tags)):
                raise ConfigError("plan assigns one stream tag to two nodes")

    def __iter__(self) -> Iterator[PlanNode]:
        return iter(self.nodes)

    def node(self, name: str) -> PlanNode:
        for node in self.nodes:
            if node.name == name:
                return node
        raise ConfigError(f"plan has no node named {name!r}")

    @property
    def streamed(self) -> tuple[PlanNode, ...]:
        """The nodes whose tables are pre-streamed, in execution order."""
        return tuple(n for n in self.nodes if n.streamable)

    @property
    def linear_nodes(self) -> tuple[PlanNode, ...]:
        return tuple(n for n in self.nodes if n.kind == "linear")

    def stream_tags(self) -> tuple[int, ...]:
        return tuple(n.stream for n in self.streamed)


def build_plan(
    meta: "ModelMeta", relu_variant: str = "oblivious", pipelined: bool = False
) -> LayerGraphPlan:
    """The plan for one architecture.

    Only the oblivious ReLU is streamable: the optimized two-stage
    variant garbles its second stage over the *online-revealed* sign
    pattern, so its tables cannot exist before the round reaches the
    layer.  Max-pool resharing garbles offline-known inputs too, but
    rides the main stream for now (its GC work is small relative to the
    ReLU layers).  A pipelined plan with a non-streamable variant
    therefore degrades to the sequential round structure over the mux.
    """
    nodes: list[PlanNode] = [PlanNode("input", "input", -1, ())]
    prev = "input"
    n_layers = len(meta.layers)
    for idx, layer in enumerate(meta.layers):
        linear = PlanNode(
            f"linear{idx}", "linear", idx, (prev,),
            backend=getattr(layer, "backend", "im2col"),
        )
        nodes.append(linear)
        prev = linear.name
        if idx == n_layers - 1:
            break
        streamable = pipelined and relu_variant == "oblivious"
        relu = PlanNode(
            f"relu{idx}",
            "relu",
            idx,
            (prev,),
            stream=GC_STREAM_BASE + idx if streamable else MAIN_STREAM,
            streamable=streamable,
        )
        nodes.append(relu)
        prev = relu.name
        if layer.pool is not None:
            pool = PlanNode(f"pool{idx}", "pool", idx, (prev,))
            nodes.append(pool)
            prev = pool.name
    nodes.append(PlanNode("logits", "logits", n_layers - 1, (prev,)))
    return LayerGraphPlan(
        nodes=tuple(nodes), relu_variant=relu_variant, pipelined=pipelined
    )
