"""Secure pooling on additively shared feature maps.

Two kinds, with very different costs (see
:class:`repro.nn.lowering.PoolSpec`):

* **Average pooling** (power-of-two windows) is *free*: summation
  distributes over additive shares, and dividing by ``k^2`` is the same
  SecureML share-local truncation used after linear layers.  No
  communication, no rounds.
* **Max pooling** cannot be taken share-locally; each window runs a
  garbled-circuit comparison tree (:func:`repro.gc.builder.maxpool_template`)
  with the same garbler/evaluator roles as the ReLU layer, producing
  fresh additive shares of the window maxima.

Both operate on the flat ``(features, batch)`` activation layout used
throughout the pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.core.relu import _from_bit_rows, _to_bit_rows, truncate_share
from repro.errors import ConfigError
from repro.gc.builder import maxpool_template
from repro.gc.protocol import GcSessions, run_evaluator, run_garbler
from repro.net.channel import Channel
from repro.nn.lowering import PoolSpec, gather_windows
from repro.utils.ring import Ring

_MAXPOOL_CACHE: dict[tuple[int, int], object] = {}


def _maxpool_circuit(bits: int, window: int):
    key = (bits, window)
    if key not in _MAXPOOL_CACHE:
        _MAXPOOL_CACHE[key] = maxpool_template(bits, window)
    return _MAXPOOL_CACHE[key]


# --------------------------------------------------------------------- #
# average pooling: share-local
# --------------------------------------------------------------------- #
def avgpool_share(ring: Ring, spec: PoolSpec, share: np.ndarray, party: int) -> np.ndarray:
    """One party's pooled share: window-sum then truncate by 2*log2(k)."""
    if spec.kind != "avg":
        raise ConfigError(f"avgpool_share called with kind={spec.kind!r}")
    windows = gather_windows(spec, ring.reduce(share))  # (out, win, batch)
    summed = ring.sum(windows, axis=1)
    return truncate_share(ring, summed, spec.avg_shift_bits, party)


def avgpool_exact(ring: Ring, spec: PoolSpec, values: np.ndarray) -> np.ndarray:
    """Plaintext reference: exact arithmetic-shift average."""
    windows = gather_windows(spec, ring.reduce(values))
    summed = ring.to_signed(ring.sum(windows, axis=1))
    return ring.reduce(summed >> np.int64(spec.avg_shift_bits))


# --------------------------------------------------------------------- #
# max pooling: garbled comparison trees
# --------------------------------------------------------------------- #
def _window_bits(ring: Ring, spec: PoolSpec, share: np.ndarray) -> np.ndarray:
    """(in_features, batch) share -> (window * l, out * batch) bit rows.

    Wire order matches :func:`repro.gc.builder.maxpool_template`: all l
    bits of window element 0, then element 1, ...; instances are
    (out_feature, batch) pairs flattened feature-major.
    """
    windows = gather_windows(spec, ring.reduce(share))  # (out, win, batch)
    per_elem = windows.transpose(1, 0, 2).reshape(spec.window, -1)  # (win, inst)
    return np.concatenate([_to_bit_rows(ring, row) for row in per_elem], axis=0)


def maxpool_server(
    chan: Channel,
    spec: PoolSpec,
    share0: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
) -> np.ndarray:
    """Server (evaluator) side; returns its share of the pooled map."""
    if spec.kind != "max":
        raise ConfigError(f"maxpool_server called with kind={spec.kind!r}")
    batch = np.asarray(share0).shape[1]
    n_inst = spec.out_features * batch
    circuit = _maxpool_circuit(ring.bits, spec.window)
    out_bits = run_evaluator(
        chan, circuit, _window_bits(ring, spec, share0), n_inst, sessions
    )
    return _from_bit_rows(ring, out_bits).reshape(spec.out_features, batch)


def maxpool_client(
    chan: Channel,
    spec: PoolSpec,
    share1: np.ndarray,
    z1: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
    rng: np.random.Generator,
) -> np.ndarray:
    """Client (garbler) side; ``z1`` is its fresh output share."""
    if spec.kind != "max":
        raise ConfigError(f"maxpool_client called with kind={spec.kind!r}")
    batch = np.asarray(share1).shape[1]
    z1_flat = ring.reduce(z1).reshape(-1)
    if z1_flat.shape[0] != spec.out_features * batch:
        raise ConfigError(
            f"z1 must hold {spec.out_features * batch} elements, got {z1_flat.shape[0]}"
        )
    n_inst = spec.out_features * batch
    circuit = _maxpool_circuit(ring.bits, spec.window)
    garbler_bits = np.concatenate(
        [_window_bits(ring, spec, share1), _to_bit_rows(ring, z1_flat)], axis=0
    )
    run_garbler(chan, circuit, garbler_bits, n_inst, sessions, rng)
    return ring.reduce(z1)


def maxpool_exact(ring: Ring, spec: PoolSpec, values: np.ndarray) -> np.ndarray:
    """Plaintext reference: exact signed max per window."""
    windows = gather_windows(spec, ring.reduce(values))
    return ring.reduce(ring.to_signed(windows).max(axis=1))
