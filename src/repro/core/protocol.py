"""End-to-end two-party QNN prediction (the full ABNN2 pipeline).

Flow (paper Section 3, Figure 2):

* **Offline** — for every linear layer the parties generate dot-product
  triplets.  The client's triplet operand for layer 0 is the input mask
  ``r`` (= ``<x>_1``); for layer ``i > 0`` it is the random ReLU output
  share ``z1^i`` it will reuse online.  All OT traffic happens here.
* **Online** — the client sends ``<x>_0 = x - r``; each linear layer is
  then *local* (``<y>_0 = W <z>_0 + u + b``, ``<y>_1 = v``); hidden layers
  truncate shares locally and run the GC ReLU; finally the server sends
  ``<y>_0`` of the logits and the client reconstructs.

Security: semi-honest, as composed from the proven sub-protocols (KK13
OTs, additive sharing, Yao GC).  The ``optimized`` ReLU variant
additionally reveals the activation sign pattern — see
:mod:`repro.core.relu`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.matmul import SecureMatmulClient, SecureMatmulServer
from repro.core.pipeline import (
    GarbleStreamWorker,
    PipelineConfig,
    build_stream_jobs,
    send_label_pairs,
    streamed_relu_server,
)
from repro.core.plan import MAIN_STREAM, LayerGraphPlan, build_plan
from repro.core.pooling import avgpool_share, maxpool_client, maxpool_server
from repro.core.relu import relu_layer_client, relu_layer_server, truncate_share
from repro.core.triplets import BlockedShare, TripletConfig
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ChannelError, ConfigError, ProtocolError
from repro.gc.protocol import GcSessions
from repro.net.channel import Channel
from repro.net.mux import ChannelMux
from repro.net.runner import run_protocol
from repro.perf.trace import Tracer
from repro.nn.quantize import QuantizedModel
from repro.nn.lowering import (
    Im2colSpec,
    PoolSpec,
    column_blocks,
    conv_bias_vector,
    lift_output,
    lower_shares,
    lower_shares_block,
)
from repro.nn.winograd import (
    WINOGRAD_TILE_POINTS,
    WinogradSpec,
    divide_share_by4,
    lift_tiles,
    lower_tiles,
    lower_tiles_block,
    transform_weights,
    winograd_scheme,
)
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class LayerMeta:
    """Public facts about one linear layer (architecture is not secret).

    ``conv`` carries the im2col geometry for convolution layers; for
    those, ``matmul_rows/cols`` describe the lowered product while
    ``in_features``/``out_features`` stay in flat-activation terms.

    ``backend`` selects the conv lowering (``"im2col"`` or
    ``"winograd"``).  A winograd layer's secure product is *grouped*:
    16 block-diagonal ``(C_out, C_in) x (C_in, batch * n_tiles)``
    products over the transformed operand (see
    :mod:`repro.nn.winograd`), and its triplet/OT scheme is the
    *transformed-weight* scheme (public, derived from the layer scheme's
    weight range).
    """

    out_features: int
    in_features: int
    scheme: FragmentScheme
    truncate_bits: int
    conv: Im2colSpec | None = None
    pool: PoolSpec | None = None
    backend: str = "im2col"

    @property
    def relu_features(self) -> int:
        """Flat feature count entering the ReLU (before any pooling)."""
        if self.pool:
            return self.pool.in_features
        return self.out_features

    @property
    def wino(self) -> WinogradSpec | None:
        """Tile geometry when this layer runs the winograd backend."""
        if self.backend != "winograd":
            return None
        return WinogradSpec.from_im2col(self.conv)

    @property
    def matmul_rows(self) -> int:
        """m of the secure product (out_channels for conv)."""
        if self.conv:
            return self.relu_features // self.conv.n_positions
        return self.relu_features

    @property
    def matmul_cols(self) -> int:
        """n of the secure product (patch length for conv, in_channels
        per tile point for winograd)."""
        if self.backend == "winograd":
            return self.conv.in_channels
        return self.conv.patch_len if self.conv else self.in_features

    @property
    def matmul_groups(self) -> int:
        """Block-diagonal group count of the secure product (16 tile
        points for winograd, 1 otherwise)."""
        return WINOGRAD_TILE_POINTS if self.backend == "winograd" else 1

    @property
    def ot_scheme(self) -> FragmentScheme:
        """The fragment scheme the offline OTs actually decompose: the
        layer scheme, or its transformed-weight widening for winograd."""
        if self.backend == "winograd":
            return winograd_scheme(self.scheme)
        return self.scheme

    def batch_multiplier(self) -> int:
        """Factor on the triplet batch o (output positions for conv,
        tile count for winograd)."""
        if self.backend == "winograd":
            return self.wino.n_tiles
        return self.conv.n_positions if self.conv else 1


@dataclass(frozen=True)
class ModelMeta:
    """Everything the *client* needs to know about the model: shapes and
    schemes, but no weights."""

    layers: tuple[LayerMeta, ...]
    ring_bits: int
    frac_bits: int

    @classmethod
    def from_model(cls, model: QuantizedModel) -> "ModelMeta":
        layers = tuple(
            LayerMeta(
                out_features=layer.out_features,
                in_features=layer.in_features,
                scheme=layer.scheme,
                truncate_bits=layer.truncate_bits,
                conv=layer.conv,
                pool=layer.pool,
                backend=layer.backend,
            )
            for layer in model.layers
        )
        return cls(layers=layers, ring_bits=model.ring.bits, frac_bits=model.encoder.frac_bits)


def layer_triplet_config(
    ring: Ring,
    layer: LayerMeta,
    batch: int,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
) -> TripletConfig:
    """The offline triplet configuration for one linear layer.

    Shared by the per-party executors and :class:`WideServerRound` so
    the grouped winograd shape (``groups=16``, transformed-weight OT
    scheme) can never diverge between the solo and batched paths.
    """
    return TripletConfig(
        ring=ring,
        scheme=layer.ot_scheme,
        m=layer.matmul_rows,
        n=layer.matmul_cols,
        o=batch * layer.batch_multiplier(),
        group=group,
        ro=ro,
        groups=layer.matmul_groups,
    )


@dataclass
class PhaseStats:
    """Traffic and time attributable to one protocol phase.

    Derived from the phase's tracer span: ``payload_bytes`` is the
    span's inclusive sent+received payload, ``rounds`` its inclusive
    direction-flip count (the :class:`~repro.net.channel.ChannelStats`
    convention — pinned by ``tests/test_rounds_convention.py``).
    """

    seconds: float
    payload_bytes: int
    rounds: int


class _PartyBase:
    def __init__(
        self,
        chan: Channel,
        meta: ModelMeta,
        batch: int,
        relu_variant: str = "oblivious",
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        tracer: Tracer | None = None,
        pipeline: PipelineConfig | None = None,
    ) -> None:
        if batch < 1:
            raise ConfigError("batch must be positive")
        self.chan = chan
        self.meta = meta
        self.batch = batch
        self.relu_variant = relu_variant
        self.group = group
        self.ro = ro
        self.ring = Ring(meta.ring_bits)
        self.rng = make_rng(seed)
        self._seed = seed
        self.pipeline = pipeline
        self._mux: ChannelMux | None = None
        self._gc_mux: GcSessions | None = None
        self.tracer = tracer if tracer is not None else Tracer(
            party="server" if chan.party == 0 else "client"
        )
        # Every byte this party moves is attributed to the innermost span.
        chan.tracer = self.tracer
        self.offline_stats: PhaseStats | None = None
        self.online_stats: PhaseStats | None = None

    @property
    def plan(self) -> LayerGraphPlan:
        """The sequential layer-graph plan for this party's architecture."""
        return build_plan(self.meta, self.relu_variant, pipelined=False)

    def _pipelined_plan(self) -> LayerGraphPlan | None:
        """The pipelined plan, or ``None`` when pipelining cannot run.

        Degrades gracefully: no :class:`PipelineConfig`, a transport that
        opts out of mux framing (``chan.supports_mux = False`` — a
        *transport* property, so both endpoints agree), or an
        architecture/variant with nothing streamable (e.g. the optimized
        ReLU, whose stage-2 tables depend on online-revealed signs) all
        fall back to the sequential executor over the raw channel.
        """
        if self.pipeline is None:
            return None
        if not getattr(self.chan, "supports_mux", True):
            return None
        plan = build_plan(self.meta, self.relu_variant, pipelined=True)
        if not plan.streamed:
            return None
        return plan

    def _ensure_mux(self, role: str) -> ChannelMux:
        """The persistent mux + main-stream GC session for this party.

        Created once and reused across online rounds so the per-stream
        sequence numbers and the amortized base OTs survive round
        boundaries, mirroring how the raw-channel ``_gc`` session does.
        """
        if self._mux is None:
            self._mux = ChannelMux(self.chan)
            self._gc_mux = GcSessions(
                self._mux.stream(MAIN_STREAM),
                role,
                group=self.group,
                ro=self.ro,
                seed=self._seed,
            )
        return self._mux

    def _layer_config(self, layer: LayerMeta) -> TripletConfig:
        return layer_triplet_config(
            self.ring, layer, self.batch, group=self.group, ro=self.ro
        )

    def _track_phase(self, label: str, fn):
        span = self.tracer.start_span(label)
        try:
            return fn()
        finally:
            # Recorded even when the phase dies mid-way (channel fault,
            # peer crash): error reports can then cite partial stats.
            # end_span also closes any inner spans the failure left open.
            self.tracer.end_span(span)
            totals = span.totals()
            stats = PhaseStats(
                seconds=span.duration_s,
                payload_bytes=totals["sent_bytes"] + totals["recv_bytes"],
                rounds=totals["rounds"],
            )
            setattr(self, f"{label}_stats", stats)

    def _triplet_span(self, idx: int, layer: LayerMeta, round_idx: int):
        """Span for one layer's offline triplet generation, carrying the
        public dimensions the conformance checker feeds the cost model."""
        config = self._layer_config(layer)
        # m is the *stacked* row count (groups * m): the grouped product
        # runs gamma * rows * n OTs of o columns each, which is exactly
        # what the closed-form cost model prices for an (m, n, o) triple,
        # so conformance stays byte-exact for both backends.
        return self.tracer.span(
            f"layer{idx}/triplets",
            m=config.rows,
            n=config.n,
            o=config.o,
            ring_bits=self.ring.bits,
            mode=config.resolved_mode,
            frag_n_values=[frag.n_values for frag in config.scheme.fragments],
            groups=config.groups,
            backend=layer.backend,
            round=round_idx,
        )


def _matmul_weights(layer, meta: LayerMeta) -> np.ndarray:
    """The weight matrix the secure product actually multiplies: the
    stored im2col form, or its winograd transform ``G2 g G2^T`` stacked
    per tile point (both are public structure; values stay secret)."""
    if meta.backend == "winograd":
        return transform_weights(meta.wino, layer.w_int)
    return layer.w_int


def _chunked_online(ring, engine, total, chunk, lower_block, lower_full):
    """Run one linear layer's online step over a bounded-column loop.

    ``lower_block(lo, hi)`` materializes operand columns ``[lo, hi)``
    only; each block goes straight through the engine so at most one
    chunk of the lowered operand exists at a time.  Purely local compute
    (no channel), and byte-identical for every chunk grid because matmul
    columns are independent and ring arithmetic is exact.  ``chunk=None``
    (or >= ``total``) keeps the historical single-allocation path via
    ``lower_full()`` (the whole-operand lowering is cheaper than a
    full-width gather through the block index math).
    """
    if chunk is None or chunk >= total:
        return engine.online(lower_full())
    out = ring.zeros(engine.config.out_shape)
    for lo, hi in column_blocks(total, chunk):
        out[:, lo:hi] = engine.online_block(lower_block(lo, hi), lo, hi)
    return out


def server_linear_share(ring, layer, meta: LayerMeta, engine, share0) -> np.ndarray:
    """The server's linear-node math: ``W <z>_0 + U + b`` with lowering,
    lifting, and (winograd) the exact share-local division by 4.

    Shared by the sequential/pipelined executors
    (:meth:`Abnn2Server._linear_layer`) and the batched
    :meth:`WideServerRound.linear` so the chunked im2col loop — driven by
    the conv spec's ``chunk_cols`` — can never diverge between paths.
    ``share0``'s column count is the effective batch (wide rounds pass
    the stacked multi-client operand).  Truncation stays with the caller.
    """
    if meta.backend == "winograd":
        wspec = meta.wino
        total = share0.shape[1] * wspec.n_tiles
        y0 = _chunked_online(
            ring, engine, total, layer.conv.chunk_cols,
            lambda lo, hi: lower_tiles_block(wspec, share0, ring, lo, hi),
            lambda: lower_tiles(wspec, share0, ring),
        )
        y0 = lift_tiles(wspec, layer.shape[0], y0, ring)
        # The reconstructed lifted value is exactly 4 * (W * z); both
        # parties divide their share locally (exact w.h.p., see
        # repro.nn.winograd.divide_share_by4).
        y0 = divide_share_by4(ring, y0, party=0)
        bias = conv_bias_vector(layer.conv, layer.bias_int, layer.shape[0])
        return ring.add(y0, ring.reduce(bias)[:, None])
    if layer.conv:
        spec = layer.conv
        total = share0.shape[1] * spec.n_positions
        y0 = _chunked_online(
            ring, engine, total, spec.chunk_cols,
            lambda lo, hi: lower_shares_block(spec, share0, lo, hi),
            lambda: lower_shares(spec, share0),
        )
        y0 = lift_output(spec, layer.shape[0], y0)
        bias = conv_bias_vector(spec, layer.bias_int, layer.shape[0])
        return ring.add(y0, ring.reduce(bias)[:, None])
    y0 = engine.online(share0)
    return ring.add(y0, ring.reduce(layer.bias_int)[:, None])


class Abnn2Server(_PartyBase):
    """The model owner.  Construct, then call :meth:`offline`, then
    :meth:`online` once per prediction batch."""

    #: Hook for baselines that swap the offline triplet generation.
    matmul_server_cls = SecureMatmulServer

    def __init__(self, chan: Channel, model: QuantizedModel, batch: int, **kwargs) -> None:
        super().__init__(chan, ModelMeta.from_model(model), batch, **kwargs)
        self.model = model
        self._pending: list[list[SecureMatmulServer]] = []
        self._gc = GcSessions(chan, "evaluator", group=self.group, ro=self.ro, seed=self._seed)

    def offline(self, rounds: int = 1) -> None:
        """Precompute triplet material for ``rounds`` prediction batches.

        Triplet material is strictly single-use (reusing the client's
        masks would leak input differences), so each future :meth:`online`
        call consumes one precomputed round.  Callable again later to
        top up.
        """
        if rounds < 1:
            raise ConfigError("rounds must be positive")

        def _run():
            for round_idx in range(rounds):
                matmuls = []
                for idx, layer in enumerate(self.model.layers):
                    server = self.matmul_server_cls(
                        self.chan,
                        _matmul_weights(layer, self.meta.layers[idx]),
                        self._layer_config(self.meta.layers[idx]),
                        seed=None
                        if self._seed is None
                        else self._seed + 101 * idx + 10007 * round_idx,
                    )
                    with self._triplet_span(idx, self.meta.layers[idx], round_idx):
                        server.offline()
                    matmuls.append(server)
                self._pending.append(matmuls)

        self._track_phase("offline", _run)

    @property
    def rounds_available(self) -> int:
        """Prediction batches the precomputed material still covers."""
        return len(self._pending)

    def export_offline_round(self) -> list[np.ndarray]:
        """Pop one precomputed round as raw per-layer ``U`` shares.

        This is the bank-side extraction hook (:mod:`repro.serve.bank`):
        the arrays round-trip through :meth:`load_offline_round` on a
        *different* server instance without touching any channel.
        """
        if not self._pending:
            raise ProtocolError(
                "offline material exhausted: call offline(rounds=...) first"
            )
        return [matmul.u for matmul in self._pending.pop(0)]

    def load_offline_round(self, us: list[np.ndarray]) -> None:
        """Append one banked round (per-layer ``U`` shares) to the queue.

        No communication happens: the matmul engines are constructed with
        their triplet shares preloaded, so the next :meth:`online` call can
        run with zero offline traffic on this channel.
        """
        if len(us) != len(self.model.layers):
            raise ConfigError(
                f"banked round has {len(us)} layers, model has {len(self.model.layers)}"
            )
        matmuls = []
        for idx, (layer, u) in enumerate(zip(self.model.layers, us)):
            server = self.matmul_server_cls(
                self.chan,
                _matmul_weights(layer, self.meta.layers[idx]),
                self._layer_config(self.meta.layers[idx]),
            )
            server.preload(u)
            matmuls.append(server)
        self._pending.append(matmuls)

    def online(self) -> np.ndarray:
        """Run one prediction batch; returns the server's logit share
        (already transmitted to the client).  Consumes one offline round
        — but only a round that *completed*: a fault mid-round leaves the
        banked material queued, so the round is genuinely re-runnable
        (the linear engines never mutate their triplet shares)."""
        if not self._pending:
            raise ProtocolError(
                "offline material exhausted: call offline(rounds=...) first "
                "(checked before any bytes cross the wire)"
            )
        matmuls = self._pending[0]
        plan = self._pipelined_plan()
        if plan is not None:
            run = lambda: self._online_pipelined(matmuls, plan)  # noqa: E731
        else:
            seq_plan = self.plan
            run = lambda: self._online_sequential(matmuls, seq_plan)  # noqa: E731
        y0 = self._track_phase("online", run)
        self._pending.pop(0)
        return y0

    def _linear_layer(self, matmuls, idx: int, share0: np.ndarray) -> np.ndarray:
        """One linear node: ``W <z>_0 + U + b`` plus conv lowering/lifting
        inside the layer's matmul span, then (hidden layers) truncation."""
        layer = self.model.layers[idx]
        meta = self.meta.layers[idx]
        with self.tracer.span(
            f"layer{idx}/matmul", m=meta.matmul_rows, n=meta.matmul_cols,
            o=self.batch * meta.batch_multiplier(),
            groups=meta.matmul_groups, backend=meta.backend,
            chunk_cols=layer.conv.chunk_cols if layer.conv else None,
        ):
            y0 = server_linear_share(self.ring, layer, meta, matmuls[idx], share0)
        if idx < len(self.model.layers) - 1:
            y0 = truncate_share(self.ring, y0, layer.truncate_bits, party=0)
        return y0

    def _pool_layer(self, chan, sessions, idx: int, share0: np.ndarray) -> np.ndarray:
        layer = self.model.layers[idx]
        with self.tracer.span(f"layer{idx}/pool", kind=layer.pool.kind):
            if layer.pool.kind == "avg":
                return avgpool_share(self.ring, layer.pool, share0, party=0)
            return maxpool_server(chan, layer.pool, share0, sessions, self.ring)

    def _online_sequential(self, matmuls, plan: LayerGraphPlan) -> np.ndarray:
        """Plan-driven walk emitting the historical sequential transcript."""
        share0 = y0 = None
        for node in plan:
            if node.kind == "input":
                with self.tracer.span("input-share"):
                    share0 = self.ring.reduce(self.chan.recv())  # <x>_0
            elif node.kind == "linear":
                y0 = self._linear_layer(matmuls, node.layer, share0)
            elif node.kind == "relu":
                meta = self.meta.layers[node.layer]
                with self.tracer.span(
                    f"layer{node.layer}/relu", variant=self.relu_variant,
                    n_relus=meta.relu_features * self.batch,
                    ring_bits=self.ring.bits,
                ):
                    share0 = relu_layer_server(
                        self.chan, y0, self._gc, self.ring, self.relu_variant
                    )
            elif node.kind == "pool":
                share0 = self._pool_layer(self.chan, self._gc, node.layer, share0)
            else:  # logits
                with self.tracer.span("logits-share"):
                    self.chan.send(y0)
        return y0

    def _online_pipelined(self, matmuls, plan: LayerGraphPlan) -> np.ndarray:
        """Evaluator side of the pipelined plan.

        Single-threaded: the sequential round structure (input share,
        label OTs, pooling, logits) runs on the mux main stream while
        each streamable ReLU's chunked tables are consumed from that
        node's own stream — frames the client streamed ahead while this
        side was still busy with earlier layers.
        """
        mux = self._ensure_mux("evaluator")
        main = mux.stream(MAIN_STREAM)
        saved_tracer = getattr(self.chan, "tracer", None)
        self.chan.tracer = None  # bytes are attributed per stream instead
        main.tracer = self.tracer
        try:
            share0 = y0 = None
            for node in plan:
                if node.kind == "input":
                    with self.tracer.span("input-share"):
                        share0 = self.ring.reduce(main.recv())
                elif node.kind == "linear":
                    y0 = self._linear_layer(matmuls, node.layer, share0)
                elif node.kind == "relu":
                    meta = self.meta.layers[node.layer]
                    with self.tracer.span(
                        f"layer{node.layer}/relu", variant=self.relu_variant,
                        n_relus=meta.relu_features * self.batch,
                        ring_bits=self.ring.bits, streamed=node.streamable,
                    ) as span:
                        if node.streamable:
                            gstream = mux.stream(node.stream)
                            gstream.tracer = self.tracer
                            share0, info = streamed_relu_server(
                                gstream, y0, self._gc_mux, self.ring,
                                ro=self.ro, tracer=self.tracer,
                            )
                            span.attrs["stream_chunks"] = info["chunks"]
                            span.attrs["peak_table_bytes"] = info["peak_table_bytes"]
                        else:
                            share0 = relu_layer_server(
                                main, y0, self._gc_mux, self.ring, self.relu_variant
                            )
                elif node.kind == "pool":
                    share0 = self._pool_layer(main, self._gc_mux, node.layer, share0)
                else:  # logits
                    with self.tracer.span("logits-share"):
                        main.send(y0)
            return y0
        except ChannelError as exc:
            mux.abort(exc)
            raise ProtocolError(f"pipelined online round failed: {exc}") from exc
        except BaseException as exc:
            mux.abort(exc)
            raise
        finally:
            main.tracer = None
            self.chan.tracer = saved_tracer


class Abnn2Client(_PartyBase):
    """The data owner.  Knows the architecture (:class:`ModelMeta`) but
    never the weights; learns the prediction."""

    #: Hook for baselines that swap the offline triplet generation.
    matmul_client_cls = SecureMatmulClient

    def __init__(self, chan: Channel, meta: ModelMeta, batch: int, **kwargs) -> None:
        super().__init__(chan, meta, batch, **kwargs)
        self._pending: list[dict] = []
        self._gc = GcSessions(chan, "garbler", group=self.group, ro=self.ro, seed=self._seed)

    def offline(self, rounds: int = 1) -> None:
        """Precompute triplets and fresh shares for ``rounds`` batches.

        Must mirror the server's ``offline(rounds=...)`` call; material
        is single-use (see :meth:`Abnn2Server.offline`).
        """
        if rounds < 1:
            raise ConfigError("rounds must be positive")

        def _run():
            for round_idx in range(rounds):
                matmuls = []
                relu_shares = []
                pool_shares = []
                operand = self.ring.sample(
                    self.rng, (self.meta.layers[0].in_features, self.batch)
                )
                input_mask = operand
                for idx, layer in enumerate(self.meta.layers):
                    if layer.backend == "winograd":
                        r_mat = lower_tiles(layer.wino, operand, self.ring)
                    elif layer.conv:
                        r_mat = lower_shares(layer.conv, operand)
                    else:
                        r_mat = operand
                    client = self.matmul_client_cls(
                        self.chan,
                        self._layer_config(layer),
                        self.rng,
                        r_mat=r_mat,
                        seed=None
                        if self._seed is None
                        else self._seed + 101 * idx + 10007 * round_idx,
                    )
                    with self._triplet_span(idx, layer, round_idx):
                        client.offline()
                    matmuls.append(client)
                    if idx < len(self.meta.layers) - 1:
                        # The ReLU output share z1 doubles as the next R —
                        # after any pooling is applied to it.
                        z1_relu = self.ring.sample(
                            self.rng, (layer.relu_features, self.batch)
                        )
                        relu_shares.append(z1_relu)
                        if layer.pool is None:
                            operand = z1_relu
                            pool_shares.append(None)
                        elif layer.pool.kind == "avg":
                            # Average pooling is share-local and deterministic,
                            # so the next operand is derivable offline.
                            operand = avgpool_share(
                                self.ring, layer.pool, z1_relu, party=1
                            )
                            pool_shares.append(None)
                        else:
                            # Max pooling reshares: pick the fresh share now.
                            operand = self.ring.sample(
                                self.rng, (layer.pool.out_features, self.batch)
                            )
                            pool_shares.append(operand)
                self._pending.append(
                    {
                        "matmuls": matmuls,
                        "relu_shares": relu_shares,
                        "pool_shares": pool_shares,
                        "input_mask": input_mask,
                    }
                )

        self._track_phase("offline", _run)

    @property
    def rounds_available(self) -> int:
        """Prediction batches the precomputed material still covers."""
        return len(self._pending)

    def export_offline_round(self) -> dict:
        """Pop one precomputed round as plain arrays (bank extraction hook).

        The returned dict holds exactly what :meth:`online` consumes:
        per-layer ``V`` matmul shares, the fresh ReLU output shares, the
        max-pool reshares (``None`` where a layer has no max pool), and
        the input mask.  Round-trips through :meth:`load_offline_round`.
        """
        if not self._pending:
            raise ProtocolError(
                "offline material exhausted: call offline(rounds=...) first"
            )
        material = self._pending.pop(0)
        return {
            "v": [matmul.v for matmul in material["matmuls"]],
            "relu_shares": list(material["relu_shares"]),
            "pool_shares": list(material["pool_shares"]),
            "input_mask": material["input_mask"],
        }

    def load_offline_round(self, material: dict) -> None:
        """Append one banked round (see :meth:`export_offline_round`).

        Shapes are validated against the architecture metadata so a
        malformed or mismatched bank surfaces as a :class:`ConfigError`
        here, not as a desynchronized online phase.  No communication
        happens.
        """
        n_layers = len(self.meta.layers)
        vs = material["v"]
        relu_shares = material["relu_shares"]
        pool_shares = material["pool_shares"]
        input_mask = self.ring.reduce(material["input_mask"])
        if len(vs) != n_layers:
            raise ConfigError(f"banked round has {len(vs)} layers, meta has {n_layers}")
        if len(relu_shares) != n_layers - 1 or len(pool_shares) != n_layers - 1:
            raise ConfigError(
                "banked round must carry one ReLU/pool share per hidden layer"
            )
        expected_mask = (self.meta.layers[0].in_features, self.batch)
        if input_mask.shape != expected_mask:
            raise ConfigError(
                f"expected input mask of shape {expected_mask}, got {input_mask.shape}"
            )
        matmuls = []
        checked_relu = []
        checked_pool = []
        for idx, layer in enumerate(self.meta.layers):
            config = self._layer_config(layer)
            # The banked V already embeds R; the online path never needs R
            # again, so the engine skips allocating one entirely.
            client = self.matmul_client_cls.for_preload(self.chan, config)
            client.preload(vs[idx])
            matmuls.append(client)
            if idx < n_layers - 1:
                z1 = self.ring.reduce(relu_shares[idx])
                if z1.shape != (layer.relu_features, self.batch):
                    raise ConfigError(
                        f"layer {idx}: expected ReLU share of shape "
                        f"{(layer.relu_features, self.batch)}, got {z1.shape}"
                    )
                checked_relu.append(z1)
                pool = pool_shares[idx]
                if layer.pool is not None and layer.pool.kind == "max":
                    if pool is None:
                        raise ConfigError(f"layer {idx}: missing max-pool reshare")
                    pool = self.ring.reduce(pool)
                    if pool.shape != (layer.pool.out_features, self.batch):
                        raise ConfigError(
                            f"layer {idx}: expected pool share of shape "
                            f"{(layer.pool.out_features, self.batch)}, got {pool.shape}"
                        )
                checked_pool.append(pool)
        self._pending.append(
            {
                "matmuls": matmuls,
                "relu_shares": checked_relu,
                "pool_shares": checked_pool,
                "input_mask": input_mask,
            }
        )

    def online(self, x_ring: np.ndarray) -> np.ndarray:
        """Run one prediction batch on fixed-point inputs shaped
        ``(features, batch)``; returns the reconstructed integer logits.
        Consumes one offline round."""
        if not self._pending:
            raise ProtocolError(
                "offline material exhausted: call offline(rounds=...) first "
                "(checked before any bytes cross the wire)"
            )
        x = self.ring.reduce(x_ring)
        expected = (self.meta.layers[0].in_features, self.batch)
        if x.shape != expected:
            raise ConfigError(f"expected input of shape {expected}, got {x.shape}")
        material = self._pending[0]
        plan = self._pipelined_plan()
        if plan is not None:
            run = lambda: self._online_pipelined(material, plan, x)  # noqa: E731
        else:
            seq_plan = self.plan
            run = lambda: self._online_sequential(material, seq_plan, x)  # noqa: E731
        logits = self._track_phase("online", run)
        # Only a completed round consumes the bank (mirrors the server).
        self._pending.pop(0)
        return logits

    def _linear_layer(self, material, idx: int) -> np.ndarray:
        """One linear node: ``y1 = V`` (wire-free) plus conv lifting inside
        the matmul span, then (hidden layers) truncation."""
        layer = self.meta.layers[idx]
        with self.tracer.span(
            f"layer{idx}/matmul", m=layer.matmul_rows, n=layer.matmul_cols,
            o=self.batch * layer.batch_multiplier(),
            groups=layer.matmul_groups, backend=layer.backend,
        ):
            y1 = material["matmuls"][idx].online()
            if layer.backend == "winograd":
                y1 = lift_tiles(layer.wino, layer.matmul_rows, y1, self.ring)
                y1 = divide_share_by4(self.ring, y1, party=1)
            elif layer.conv:
                y1 = lift_output(layer.conv, layer.matmul_rows, y1)
        if idx < len(self.meta.layers) - 1:
            y1 = truncate_share(self.ring, y1, layer.truncate_bits, party=1)
        return y1

    def _online_sequential(self, material, plan: LayerGraphPlan, x) -> np.ndarray:
        """Plan-driven walk emitting the historical sequential transcript."""
        logits = y1 = z1_relu = None
        for node in plan:
            if node.kind == "input":
                # <x>_0 = x - r travels in flat form; each party lowers its
                # own share locally where a conv layer needs it.
                with self.tracer.span("input-share"):
                    self.chan.send(self.ring.sub(x, material["input_mask"]))
            elif node.kind == "linear":
                y1 = self._linear_layer(material, node.layer)
            elif node.kind == "relu":
                layer = self.meta.layers[node.layer]
                with self.tracer.span(
                    f"layer{node.layer}/relu", variant=self.relu_variant,
                    n_relus=layer.relu_features * self.batch,
                    ring_bits=self.ring.bits,
                ):
                    z1_relu = relu_layer_client(
                        self.chan,
                        y1,
                        material["relu_shares"][node.layer],
                        self._gc,
                        self.ring,
                        self.rng,
                        self.relu_variant,
                    )
            elif node.kind == "pool":
                layer = self.meta.layers[node.layer]
                if layer.pool.kind == "max":
                    with self.tracer.span(f"layer{node.layer}/pool", kind="max"):
                        maxpool_client(
                            self.chan,
                            layer.pool,
                            z1_relu,
                            material["pool_shares"][node.layer],
                            self._gc,
                            self.ring,
                            self.rng,
                        )
                # avg pooling is share-local and applied to the *next*
                # operand offline; the client does nothing here.
            else:  # logits
                with self.tracer.span("logits-share"):
                    y0 = self.ring.reduce(self.chan.recv())
                logits = self.ring.add(y0, y1)
        return logits

    def _online_pipelined(self, material, plan: LayerGraphPlan, x) -> np.ndarray:
        """Garbler side of the pipelined plan.

        Every linear share ``y1`` is offline-known (the banked ``V``), so
        all of them — and from them every streamable ReLU's garbler input
        bits — are computed up front; a background
        :class:`~repro.core.pipeline.GarbleStreamWorker` then garbles and
        streams each layer's tables on its own stream while this thread
        walks the sequential round structure on the main stream.  Per
        layer only the label OT (the server's online ``y0`` bits) stays
        on the critical path.
        """
        mux = self._ensure_mux("garbler")
        main = mux.stream(MAIN_STREAM)
        saved_tracer = getattr(self.chan, "tracer", None)
        self.chan.tracer = None  # bytes are attributed per stream instead
        main.tracer = self.tracer
        worker = None
        try:
            y1s = {
                node.layer: self._linear_layer(material, node.layer)
                for node in plan.linear_nodes
            }
            worker = GarbleStreamWorker(
                mux,
                build_stream_jobs(
                    plan, material["relu_shares"], y1s, self.ring, self._seed
                ),
                self.pipeline,
                ro=self.ro,
            )
            worker.start()
            logits = None
            for node in plan:
                if node.kind == "input":
                    with self.tracer.span("input-share"):
                        main.send(self.ring.sub(x, material["input_mask"]))
                elif node.kind == "linear":
                    pass  # computed up front
                elif node.kind == "relu":
                    layer = self.meta.layers[node.layer]
                    with self.tracer.span(
                        f"layer{node.layer}/relu", variant=self.relu_variant,
                        n_relus=layer.relu_features * self.batch,
                        ring_bits=self.ring.bits, streamed=node.streamable,
                    ) as span:
                        if node.streamable:
                            send_label_pairs(
                                self._gc_mux,
                                worker.pairs(node.name, mux.timeout_s),
                            )
                            info, wtracer = worker.result(node.name, mux.timeout_s)
                            span.attrs["stream_chunks"] = info["chunks"]
                            span.attrs["peak_table_bytes"] = info["peak_table_bytes"]
                            self.tracer.adopt(
                                wtracer, "gc-stream",
                                layer=node.layer, stream=node.stream,
                                chunks=info["chunks"],
                                peak_unacked_chunks=info["peak_unacked_chunks"],
                            )
                        else:
                            relu_layer_client(
                                main, y1s[node.layer],
                                material["relu_shares"][node.layer],
                                self._gc_mux, self.ring, self.rng,
                                self.relu_variant,
                            )
                elif node.kind == "pool":
                    layer = self.meta.layers[node.layer]
                    if layer.pool.kind == "max":
                        with self.tracer.span(f"layer{node.layer}/pool", kind="max"):
                            maxpool_client(
                                main, layer.pool,
                                self.ring.reduce(material["relu_shares"][node.layer]),
                                material["pool_shares"][node.layer],
                                self._gc_mux, self.ring, self.rng,
                            )
                else:  # logits
                    with self.tracer.span("logits-share"):
                        y0 = self.ring.reduce(main.recv())
                    logits = self.ring.add(y0, y1s[len(self.meta.layers) - 1])
            return logits
        except ChannelError as exc:
            mux.abort(exc)
            raise ProtocolError(f"pipelined online round failed: {exc}") from exc
        except BaseException as exc:
            mux.abort(exc)
            raise
        finally:
            if worker is not None:
                worker.join(timeout=mux.timeout_s + 1.0)
            main.tracer = None
            self.chan.tracer = saved_tracer


# --------------------------------------------------------------------- #
# wide rounds: one server-side compute over many clients' columns
# --------------------------------------------------------------------- #
def stack_columns(blocks: list) -> np.ndarray:
    """Concatenate per-client column blocks into one wide operand.

    Accepts plain arrays or :class:`~repro.core.triplets.BlockedShare`
    entries (dealer-banked material) — the wide round's stacked ``U`` is
    one allocation either way, which is the batching trade: a wide round
    holds ``width`` clients' material at once by design.
    """
    if not blocks:
        raise ConfigError("cannot stack zero column blocks")
    return np.concatenate(
        [
            np.asarray(b.materialize() if isinstance(b, BlockedShare) else b)
            for b in blocks
        ],
        axis=1,
    )


def split_columns(wide: np.ndarray, widths: list[int]) -> list[np.ndarray]:
    """Inverse of :func:`stack_columns` for the given per-block widths."""
    if wide.shape[1] != sum(widths):
        raise ConfigError(
            f"wide array has {wide.shape[1]} columns, blocks claim {sum(widths)}"
        )
    out = []
    start = 0
    for width in widths:
        out.append(wide[:, start : start + width])
        start += width
    return out


class WideServerRound:
    """Server-side compute of one *batched* online round over ``width``
    clients' columns.

    Every column-local step of :meth:`Abnn2Server.online` — the linear
    layers (``W <Z>_0 + U + b``), im2col lowering/lifting, share-local
    truncation, and average pooling — commutes with stacking per-client
    batches as extra columns, because ``lower_shares``/``lift_output``
    order columns image-major (each client's images stay a contiguous
    column block).  So one wide matmul over the concatenation of ``width``
    banked rounds produces, per client, *bit-identical* shares to the solo
    round it would have run with the same material.

    What does **not** commute is anything interactive per client: the GC
    ReLU (each client garbles with its own keys) and max-pool resharing.
    The caller (:class:`repro.serve.scheduler.BatchScheduler`) therefore
    runs those on per-client session threads and only funnels the
    column-local math through this class:

    * :meth:`start` with each client's input share ``<x>_0``;
    * :meth:`linear` computes the next linear layer wide (plus truncation
      on hidden layers) and returns per-client blocks;
    * after the per-client ReLU (and any max-pool reshare), feed the
      per-client activation shares back via :meth:`resume` — average
      pooling, being share-local, is applied wide in here;
    * when :attr:`complete`, the last :meth:`linear` blocks are each
      client's logit share, ready to send on its own channel.

    No channel is touched: this class is pure local compute, which is
    what makes it safe to run under a scheduler barrier while the session
    threads own all per-client I/O.
    """

    def __init__(
        self,
        model: QuantizedModel,
        us_per_client: list[list[np.ndarray]],
        batch: int,
        *,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
    ) -> None:
        if not us_per_client:
            raise ConfigError("a wide round needs at least one client")
        if batch < 1:
            raise ConfigError("batch must be positive")
        self.model = model
        self.meta = ModelMeta.from_model(model)
        self.ring = Ring(self.meta.ring_bits)
        self.batch = batch
        self.width = len(us_per_client)
        self.wide_batch = batch * self.width
        self.n_layers = len(model.layers)
        # The same layer-graph plan the per-client executors walk: the
        # wide round advances one linear node per :meth:`linear` call, so
        # batching and pipelining agree on layer structure by construction.
        self.plan = build_plan(self.meta, pipelined=False)
        self._linear_nodes = self.plan.linear_nodes
        self._matmuls: list[SecureMatmulServer] = []
        for idx, layer in enumerate(model.layers):
            meta = self.meta.layers[idx]
            config = layer_triplet_config(
                self.ring, meta, self.wide_batch, group=group, ro=ro
            )
            engine = SecureMatmulServer(None, _matmul_weights(layer, meta), config)
            # A client's U covers batch*multiplier columns; clients'
            # images are contiguous in the image-major wide layout, so
            # concatenation in client order *is* the wide U.
            engine.preload(
                stack_columns([us[idx] for us in us_per_client])
            )
            self._matmuls.append(engine)
        self._operand: np.ndarray | None = None
        self._layer = 0

    @property
    def complete(self) -> bool:
        """True once the final linear layer has been computed."""
        return self._layer >= len(self._linear_nodes)

    def _split(self, wide: np.ndarray) -> list[np.ndarray]:
        return split_columns(wide, [self.batch] * self.width)

    def start(self, x0_blocks: list[np.ndarray]) -> None:
        """Install each client's input share ``<x>_0`` (features, batch)."""
        if len(x0_blocks) != self.width:
            raise ConfigError(
                f"wide round spans {self.width} clients, got {len(x0_blocks)} inputs"
            )
        expected = (self.meta.layers[0].in_features, self.batch)
        for block in x0_blocks:
            if np.asarray(block).shape != expected:
                raise ConfigError(
                    f"expected input share of shape {expected}, "
                    f"got {np.asarray(block).shape}"
                )
        self._operand = self.ring.reduce(stack_columns(x0_blocks))
        self._layer = 0

    def linear(self) -> list[np.ndarray]:
        """Compute the next linear layer wide; returns per-client blocks.

        Hidden layers come back truncated (ready for the per-client
        ReLU); the final layer's blocks are the untruncated logit shares,
        exactly as :meth:`Abnn2Server.online` would send them.
        """
        if self._operand is None:
            raise ProtocolError("wide round has no pending operand")
        if self.complete:
            raise ProtocolError("wide round already computed all layers")
        idx = self._linear_nodes[self._layer].layer
        layer = self.model.layers[idx]
        meta = self.meta.layers[idx]
        share0, self._operand = self._operand, None
        # Lowering/lifting orders columns image-major, and the wide
        # layout keeps each client's images contiguous, so the shared
        # (chunked) linear math is bit-identical to the solo rounds
        # (same banked U).
        y0 = server_linear_share(self.ring, layer, meta, self._matmuls[idx], share0)
        if idx < self.n_layers - 1:
            y0 = truncate_share(self.ring, y0, layer.truncate_bits, party=0)
        self._layer += 1
        return self._split(y0)

    def resume(self, z0_blocks: list[np.ndarray]) -> None:
        """Feed back per-client activation shares after the interactive
        steps: post-ReLU shares (or post-reshare blocks where the layer
        max-pools).  Share-local average pooling is applied wide here."""
        if self.complete:
            raise ProtocolError("wide round already computed all layers")
        if self._layer == 0:
            raise ProtocolError("resume before the first linear layer")
        if len(z0_blocks) != self.width:
            raise ConfigError(
                f"wide round spans {self.width} clients, got {len(z0_blocks)} blocks"
            )
        layer = self.model.layers[self._linear_nodes[self._layer - 1].layer]
        share0 = self.ring.reduce(stack_columns(z0_blocks))
        if layer.pool is not None and layer.pool.kind == "avg":
            share0 = avgpool_share(self.ring, layer.pool, share0, party=0)
        self._operand = share0


# --------------------------------------------------------------------- #
# one-call convenience API
# --------------------------------------------------------------------- #
@dataclass
class PredictionReport:
    """Everything a benchmark or example wants from one joint run."""

    logits_int: np.ndarray  # (classes, batch) ring elements
    predictions: np.ndarray  # (batch,) argmax class indices
    offline_server: PhaseStats
    offline_client: PhaseStats
    online_server: PhaseStats
    online_client: PhaseStats
    total_bytes: int
    rounds: int
    wall_time_s: float
    #: exported trace documents (see :mod:`repro.perf.trace`), one per party
    server_trace: dict | None = None
    client_trace: dict | None = None

    @property
    def offline_bytes(self) -> int:
        return self.offline_client.payload_bytes

    @property
    def online_bytes(self) -> int:
        return self.online_client.payload_bytes


def _joint_predict(
    server_cls,
    client_cls,
    model: QuantizedModel,
    x_float: np.ndarray,
    relu_variant: str = "oblivious",
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
    seed: int | None = 0,
    timeout_s: float = 600.0,
    channels=None,
    pipeline: PipelineConfig | None = None,
) -> PredictionReport:
    """Shared driver for ABNN2 and the baseline predictors."""
    x = np.atleast_2d(np.asarray(x_float, dtype=np.float64))
    batch = x.shape[0]
    meta = ModelMeta.from_model(model)
    x_ring = model.encoder.encode(x.T)

    def server_fn(chan: Channel):
        server = server_cls(
            chan, model, batch, relu_variant=relu_variant, group=group, ro=ro,
            seed=None if seed is None else seed + 1, pipeline=pipeline,
        )
        server.offline()
        server.online()
        return server

    def client_fn(chan: Channel):
        client = client_cls(
            chan, meta, batch, relu_variant=relu_variant, group=group, ro=ro,
            seed=None if seed is None else seed + 2, pipeline=pipeline,
        )
        client.offline()
        logits = client.online(x_ring)
        return client, logits

    result = run_protocol(server_fn, client_fn, timeout_s=timeout_s, channels=channels)
    server = result.server
    client, logits = result.client
    ring = model.ring
    predictions = np.argmax(ring.to_signed(logits), axis=0)
    return PredictionReport(
        logits_int=logits,
        predictions=predictions,
        offline_server=server.offline_stats,
        offline_client=client.offline_stats,
        online_server=server.online_stats,
        online_client=client.online_stats,
        total_bytes=result.total_bytes,
        rounds=result.rounds,
        wall_time_s=result.wall_time_s,
        server_trace=server.tracer.to_dict(),
        client_trace=client.tracer.to_dict(),
    )


def secure_predict(
    model: QuantizedModel,
    x_float: np.ndarray,
    relu_variant: str = "oblivious",
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
    seed: int | None = 0,
    timeout_s: float = 600.0,
    channels=None,
    pipeline: PipelineConfig | None = None,
) -> PredictionReport:
    """Run the complete two-party prediction on one machine (two threads).

    ``x_float`` is ``(batch, features)``; the client encodes it in fixed
    point, both phases run back to back, and the report carries the phase
    split a deployment would see.  ``channels`` overrides the default
    in-memory pair with explicit (server, client) endpoints — e.g. TCP
    channels or :class:`~repro.net.faults.FaultyChannel` wrappers.
    ``pipeline`` turns on the layer-pipelined online phase with streamed
    garbling (see :mod:`repro.core.pipeline`) on both parties.
    """
    return _joint_predict(
        Abnn2Server,
        Abnn2Client,
        model,
        x_float,
        relu_variant=relu_variant,
        group=group,
        ro=ro,
        seed=seed,
        timeout_s=timeout_s,
        channels=channels,
        pipeline=pipeline,
    )
