"""Pipelined execution of a layer-graph plan: streamed garbling machinery.

The observation that makes the online phase pipelinable is that the
client's garbler inputs for every oblivious ReLU are **offline-known**:
``y1`` is the banked matmul share ``V`` (plus bias-free local lowering
and truncation) and ``z1`` is the offline-sampled output share.  Nothing
about layer ``k``'s garbled circuit depends on online data except the
*evaluator's* input bits (the server's ``y0``), which enter via the
label OT.  So a background :class:`GarbleStreamWorker` can garble and
stream every layer's tables on its own :class:`~repro.net.mux.ChannelMux`
stream (:func:`repro.gc.stream.garble_stream`) while the main threads
walk the sequential round structure — input share, per-layer label OTs,
pooling, logits — on the :data:`~repro.core.plan.MAIN_STREAM`.

Thread/tracer model (tracers are single-threaded):

* the main thread keeps the party tracer, attached to the main stream;
* the worker gets a fresh :class:`~repro.perf.trace.Tracer` per job,
  attached to that job's GC stream, grafted back into the party trace as
  a closed ``gc-stream`` child of the layer's ReLU span via
  :meth:`~repro.perf.trace.Tracer.adopt` once the job completes —
  so per-layer stream bytes stay attributed even though transfer and
  compute overlap;
* the server is single-threaded: chunk frames are *routed* by whichever
  recv pumps the mux, but bytes are recorded at ``_pop`` time in the
  consuming call, i.e. inside the ReLU span's ``gc-stream`` child.

Failure containment: any exception on either side poisons the mux
(:meth:`~repro.net.mux.ChannelMux.abort`), which wakes every stream
blocked in ``recv``; transport-level :class:`~repro.errors.ChannelError`
is wrapped into :class:`~repro.errors.ProtocolError` so a fault
mid-chunk surfaces identically on both parties and the caller's banked
round is never consumed (:meth:`repro.core.protocol.Abnn2Server.online`
pops its bank only after a fully successful round).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

import numpy as np

from repro.core.plan import LayerGraphPlan, PlanNode
from repro.core.relu import _from_bit_rows, _template, _to_bit_rows
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ConfigError, ProtocolError
from repro.gc.circuit import Circuit
from repro.gc.garble import LABEL_WORDS
from repro.gc.protocol import _OT_DOMAIN_GC_INPUTS, GcSessions
from repro.gc.stream import DEFAULT_WINDOW, evaluate_stream, garble_stream
from repro.net.mux import ChannelMux
from repro.perf.trace import Tracer
from repro.utils.ring import Ring
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the pipelined online phase.

    ``chunk`` is the **protocol-level** garbling granularity: AND gates
    per streamed table block (``None`` = whole circuit in one block —
    pipelined transfer but no memory bound).  ``window`` is the
    garbler-local flow-control limit on unacked chunks in flight.
    """

    chunk: int | None = None
    window: int = DEFAULT_WINDOW

    def __post_init__(self) -> None:
        if self.chunk is not None and self.chunk < 1:
            raise ConfigError(f"gc stream chunk must be >= 1, got {self.chunk}")
        if self.window < 1:
            raise ConfigError(f"gc stream window must be >= 1, got {self.window}")


@dataclass
class StreamJob:
    """One streamable node's garbling work order (client side)."""

    node: PlanNode
    circuit: Circuit
    garbler_bits: np.ndarray
    n_inst: int
    rng: np.random.Generator


def build_stream_jobs(
    plan: LayerGraphPlan,
    relu_shares: list[np.ndarray],
    y1s: dict[int, np.ndarray],
    ring: Ring,
    seed: int | None,
) -> list[StreamJob]:
    """Work orders for every streamed node, from offline-known inputs.

    ``y1s`` maps layer index to the client's truncated linear share (the
    ReLU's ``y1``); ``relu_shares`` is the banked per-hidden-layer ``z1``
    list.  Each job gets its own deterministic RNG so the stream worker's
    label sampling never races the main thread's generator.
    """
    circuit = _template("relu", ring.bits)
    jobs: list[StreamJob] = []
    for node in plan.streamed:
        idx = node.layer
        flat_y1 = ring.reduce(y1s[idx]).reshape(-1)
        flat_z1 = ring.reduce(relu_shares[idx]).reshape(-1)
        if flat_z1.shape != flat_y1.shape:
            raise ConfigError(
                f"layer {idx}: z1 share shape {flat_z1.shape} does not match "
                f"linear share shape {flat_y1.shape}"
            )
        bits = np.concatenate(
            [_to_bit_rows(ring, flat_y1), _to_bit_rows(ring, flat_z1)], axis=0
        )
        jobs.append(
            StreamJob(
                node=node,
                circuit=circuit,
                garbler_bits=bits,
                n_inst=flat_y1.shape[0],
                rng=make_rng(None if seed is None else seed + 7919 * (idx + 1)),
            )
        )
    return jobs


class _JobState:
    __slots__ = ("pairs", "pairs_evt", "info", "tracer", "done_evt")

    def __init__(self) -> None:
        self.pairs: np.ndarray | None = None
        self.pairs_evt = threading.Event()
        self.info: dict[str, int] | None = None
        self.tracer: Tracer | None = None
        self.done_evt = threading.Event()


class GarbleStreamWorker:
    """Background garbler: runs :class:`StreamJob`\\ s in plan order.

    Jobs run strictly sequentially — job ``k+1``'s tables start flowing
    as soon as job ``k``'s last chunk is acked (the evaluator acks after
    *evaluating*, so the hand-off naturally tracks the main round's
    progress; the ``window`` bounds how far ahead of the evaluator any
    single stream runs).

    The main thread consumes two artifacts per job: :meth:`pairs` (the
    evaluator-input label pairs, published before the first gate is
    garbled, feeding the on-main-stream label OT) and :meth:`result`
    (the stream info dict plus the job's tracer, available once the
    stream is fully acked).  On any failure the worker poisons the mux
    and releases every waiter.
    """

    def __init__(
        self,
        mux: ChannelMux,
        jobs: list[StreamJob],
        config: PipelineConfig,
        ro: RandomOracle = default_ro,
    ) -> None:
        self._mux = mux
        self._jobs = list(jobs)
        self._config = config
        self._ro = ro
        self.exc: BaseException | None = None
        self._states = {job.node.name: _JobState() for job in self._jobs}
        self._thread = threading.Thread(
            target=self._run, name="abnn2-gc-stream", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def _run(self) -> None:
        try:
            for job in self._jobs:
                state = self._states[job.node.name]
                stream = self._mux.stream(job.node.stream)
                tracer = Tracer()
                stream.tracer = tracer
                try:
                    info = garble_stream(
                        stream,
                        job.circuit,
                        job.garbler_bits,
                        job.n_inst,
                        job.rng,
                        chunk=self._config.chunk,
                        window=self._config.window,
                        ro=self._ro,
                        on_pairs=lambda pairs, s=state: self._publish(s, pairs),
                    )
                finally:
                    stream.tracer = None
                state.info = info
                state.tracer = tracer
                state.done_evt.set()
        except BaseException as exc:  # noqa: BLE001 - surfaced via pairs()/result()
            self.exc = exc
            self._mux.abort(exc)
        finally:
            # Release every waiter; late callers see self.exc first.
            for state in self._states.values():
                state.pairs_evt.set()
                state.done_evt.set()

    @staticmethod
    def _publish(state: _JobState, pairs: np.ndarray) -> None:
        state.pairs = pairs
        state.pairs_evt.set()

    def _state(self, name: str) -> _JobState:
        try:
            return self._states[name]
        except KeyError:
            raise ConfigError(f"no stream job for plan node {name!r}") from None

    def _wait(self, evt: threading.Event, what: str, name: str, timeout: float) -> None:
        if not evt.wait(timeout):
            raise ProtocolError(
                f"timed out waiting for the {what} of streamed node {name!r}"
            )

    def _reraise(self) -> None:
        if self.exc is not None:
            if isinstance(self.exc, ProtocolError):
                raise self.exc
            raise ProtocolError(f"gc stream worker failed: {self.exc}") from self.exc

    def pairs(self, name: str, timeout: float) -> np.ndarray:
        """Evaluator-input label pairs for node ``name`` (blocks briefly)."""
        state = self._state(name)
        self._wait(state.pairs_evt, "label pairs", name, timeout)
        if state.pairs is None:
            self._reraise()
            raise ProtocolError(f"stream worker produced no pairs for {name!r}")
        return state.pairs

    def result(self, name: str, timeout: float) -> tuple[dict[str, int], Tracer]:
        """Stream info + per-job tracer once node ``name`` is fully acked."""
        state = self._state(name)
        self._wait(state.done_evt, "table stream", name, timeout)
        if state.info is None or state.tracer is None:
            self._reraise()
            raise ProtocolError(f"stream worker produced no result for {name!r}")
        return state.info, state.tracer

    def join(self, timeout: float | None = None) -> None:
        if self._thread.is_alive():
            self._thread.join(timeout)

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()


def send_label_pairs(sessions: GcSessions, pairs: np.ndarray) -> None:
    """Garbler side of the label OT for one streamed execution.

    Runs on the main stream (it needs the evaluator's online choice
    bits) — the only part of a streamed ReLU that stays on the
    sequential round structure.
    """
    if pairs.shape[0]:
        sessions.ot.send_chosen(pairs, domain=_OT_DOMAIN_GC_INPUTS)


def streamed_relu_server(
    gstream,
    y0: np.ndarray,
    sessions: GcSessions,
    ring: Ring,
    *,
    ro: RandomOracle = default_ro,
    tracer: Tracer | None = None,
) -> tuple[np.ndarray, dict[str, int]]:
    """Server (evaluator) side of one streamed oblivious ReLU layer.

    The label OT runs on ``sessions``' channel (the main stream); the
    chunked tables arrive on ``gstream``.  Returns ``(z0, info)`` with
    ``z0`` shaped like ``y0``.
    """
    shape = np.shape(y0)
    flat = ring.reduce(y0).reshape(-1)
    n_inst = flat.shape[0]
    circuit = _template("relu", ring.bits)
    y0_bits = _to_bit_rows(ring, flat)
    n_eval_bits = len(circuit.evaluator_inputs)
    if n_eval_bits:
        my_labels = sessions.ot.recv_chosen(
            y0_bits.reshape(-1), LABEL_WORDS, domain=_OT_DOMAIN_GC_INPUTS
        ).reshape(n_eval_bits, n_inst, LABEL_WORDS)
    else:
        my_labels = np.zeros((0, n_inst, LABEL_WORDS), dtype=np.uint64)
    if tracer is not None:
        with tracer.span("gc-stream", stream=gstream.tag):
            out_bits, info = evaluate_stream(gstream, circuit, my_labels, n_inst, ro=ro)
    else:
        out_bits, info = evaluate_stream(gstream, circuit, my_labels, n_inst, ro=ro)
    return _from_bit_rows(ring, out_bits).reshape(shape), info
