"""Fragment-scheme selection: the paper's optimal (N, gamma) choices.

Contribution 2 of the paper: "Among all possible combinations of protocol
parameters N and gamma, we give the optimal parameter values for
different bitwidth of quantized weights."  This module reproduces that
search analytically from Table 1's cost formulas:

* one-batch communication per weight element:
  ``sum_i [ l * (N_i - 1) + 2*kappa ]`` bits,
* multi-batch communication per weight element:
  ``sum_i [ o * l * N_i + 2*kappa ]`` bits,

with ``N_i = 2**b_i`` over all compositions ``(b_1, .., b_gamma)`` of the
weight bitwidth eta (fragment width capped at 4 bits — the paper caps N
at 16).  A "time" objective uses the same formulas as a proxy for OT
masking work, which is what dominates wall-clock in the offline phase.
"""

from __future__ import annotations

from functools import lru_cache

from repro.errors import ConfigError
from repro.quant.fragments import TABLE2_SCHEMES, FragmentScheme

KAPPA = 128
MAX_FRAGMENT_BITS = 4  # the paper caps N at 16 = 2^4


def scheme_for(name: str) -> FragmentScheme:
    """Look up a scheme by Table 2 notation (e.g. ``"8(2,2,2,2)"``)."""
    if name in TABLE2_SCHEMES:
        return TABLE2_SCHEMES[name]
    raise ConfigError(
        f"unknown scheme {name!r}; known: {sorted(TABLE2_SCHEMES)}"
    )


@lru_cache(maxsize=None)
def _compositions(eta: int, max_part: int) -> tuple[tuple[int, ...], ...]:
    """All ordered compositions of ``eta`` into parts in [1, max_part]."""
    if eta == 0:
        return ((),)
    out = []
    for head in range(1, min(eta, max_part) + 1):
        for tail in _compositions(eta - head, max_part):
            out.append((head,) + tail)
    return tuple(out)


def comm_bits_per_weight(
    bit_widths: tuple[int, ...], ring_bits: int, batch: int, kappa: int = KAPPA
) -> int:
    """Table 1 communication (bits) for one weight element's OTs."""
    total = 0
    for width in bit_widths:
        n = 1 << width
        if batch == 1:
            total += ring_bits * (n - 1) + 2 * kappa
        else:
            total += batch * ring_bits * n + 2 * kappa
    return total


def ot_count_per_weight(bit_widths: tuple[int, ...]) -> int:
    """gamma — the number of (N 1)-OT invocations per weight element."""
    return len(bit_widths)


def optimal_scheme(
    eta: int,
    ring_bits: int = 32,
    batch: int = 1,
    objective: str = "comm",
    kappa: int = KAPPA,
) -> FragmentScheme:
    """The cheapest fragment decomposition of an eta-bit weight.

    ``objective`` is ``"comm"`` (bits on the wire, the Table 1 measure) or
    ``"ots"`` (fewest OT invocations, i.e. smallest gamma; ties broken by
    communication).  The search space is every composition of eta into
    fragments of at most :data:`MAX_FRAGMENT_BITS` bits.
    """
    if not 1 <= eta <= 16:
        raise ConfigError(f"eta must be in [1, 16], got {eta}")
    if objective not in ("comm", "ots"):
        raise ConfigError(f"unknown objective {objective!r}")
    candidates = _compositions(eta, MAX_FRAGMENT_BITS)

    def cost(widths: tuple[int, ...]) -> tuple:
        comm = comm_bits_per_weight(widths, ring_bits, batch, kappa)
        ots = ot_count_per_weight(widths)
        return (comm, ots) if objective == "comm" else (ots, comm)

    best = min(candidates, key=cost)
    return FragmentScheme.from_bits(best)


def enumerate_costs(
    eta: int, ring_bits: int = 32, batch: int = 1, kappa: int = KAPPA
) -> list[dict]:
    """Cost table over all compositions — the data behind the ablation bench."""
    rows = []
    for widths in _compositions(eta, MAX_FRAGMENT_BITS):
        rows.append(
            {
                "bit_widths": widths,
                "gamma": len(widths),
                "max_n": 1 << max(widths),
                "comm_bits": comm_bits_per_weight(widths, ring_bits, batch, kappa),
            }
        )
    rows.sort(key=lambda r: r["comm_bits"])
    return rows
