"""ABNN2: secure two-party arbitrary-bitwidth quantized NN predictions.

Reproduction of Shen et al., DAC 2022.  Typical usage::

    from repro import (
        Ring, FragmentScheme, mnist_mlp, synthetic_mnist,
        train_classifier, quantize_model, secure_predict,
    )

    data = synthetic_mnist()
    model = mnist_mlp()
    train_classifier(model, data.train_x, data.train_y)
    qmodel = quantize_model(model, FragmentScheme.from_bits((2, 2, 2, 2)), Ring(32))
    report = secure_predict(qmodel, data.test_x[:8])
    print(report.predictions)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table.
"""

from repro.core.params import optimal_scheme, scheme_for
from repro.core.protocol import (
    Abnn2Client,
    Abnn2Server,
    ModelMeta,
    PredictionReport,
    secure_predict,
)
from repro.nn.data import SyntheticMnist, synthetic_mnist
from repro.nn.model import Sequential, mnist_mlp
from repro.nn.quantize import QuantizedModel, quantize_model
from repro.nn.train import TrainConfig, train_classifier
from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import Ring

__version__ = "1.0.0"

__all__ = [
    "Ring",
    "FragmentScheme",
    "FixedPointEncoder",
    "SyntheticMnist",
    "synthetic_mnist",
    "Sequential",
    "mnist_mlp",
    "TrainConfig",
    "train_classifier",
    "QuantizedModel",
    "quantize_model",
    "optimal_scheme",
    "scheme_for",
    "Abnn2Server",
    "Abnn2Client",
    "ModelMeta",
    "PredictionReport",
    "secure_predict",
    "__version__",
]
