"""Cross-session request batching: many clients, one wide online round.

ABNN2's multi-batch trick amortizes one OT extension over the ``o``
activation columns of a single client's batch.  This module applies the
same economics *across users*: concurrent granted rounds for the same
``(model, batch)`` are held for a short window, their input shares are
stacked as extra columns of one :class:`~repro.core.protocol.WideServerRound`,
and each client's output-share columns are sliced back onto its own
session channel.  Per-client shares are **bit-identical** to the solo
round each client would have run with the same banked material, because
every merged step is column-local (see ``WideServerRound``'s docstring
for the commutation argument); the client-side wire protocol is entirely
unchanged — batching is invisible except for the grant arriving up to
``window_ms`` later.

Execution model (fork/join on the session threads themselves)::

    session thread A ──┐                         ┌── ReLU(A) ──┐
    session thread B ──┤→ [barrier: wide linear] ┤── ReLU(B) ──┤→ [barrier] → ...
    session thread C ──┘     (one leader runs    └── ReLU(C) ──┘
                              the stacked matmul)

Per-client I/O — the grant, the dealt material, the input share, the GC
ReLU and max-pool resharing (which *cannot* merge: each client garbles
with its own keys), and the logits — stays on the owning session thread;
only the column-local linear algebra crosses the barrier.  A slot that
fails mid-round aborts the barrier, so its batch peers fail fast with a
typed error instead of hanging — the blast radius of one bad client is
bounded by ``batch_max``.

Admission control happens *before* anything is granted: a full request
queue or a bank below its depth threshold produces a structured deny on
the existing JSON grant/deny plane (:class:`repro.errors.AdmissionDenied`),
never a mid-protocol stall.
"""

from __future__ import annotations

import threading
import time
from collections import deque

from repro.core.pooling import maxpool_server
from repro.core.protocol import WideServerRound
from repro.core.relu import relu_layer_server
from repro.errors import AdmissionDenied, ConfigError, ProtocolError
from repro.serve.session import encode_client_round, send_ctrl

#: How many wait-time samples back the p95 estimate in ``metrics()``.
_WAIT_SAMPLE_CAP = 4096


class _Slot:
    """One session's seat in a wide group (owned by its session thread)."""

    __slots__ = ("round", "inbox", "outbox")

    def __init__(self) -> None:
        self.round = None  # OfflineRound once granted
        self.inbox = None  # per-client share handed *to* the wide compute
        self.outbox = None  # per-client block handed back by the leader


class _WideGroup:
    """Slots collected within one batching window."""

    __slots__ = (
        "deadline",
        "slots",
        "sealed",
        "prep_claimed",
        "ready",
        "granted",
        "deny_reason",
        "wide",
        "barrier",
        "stage",
    )

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.slots: list[_Slot] = []
        self.sealed = False
        self.prep_claimed = False
        self.ready = threading.Event()
        self.granted: list[_Slot] = []
        self.deny_reason: str | None = None
        self.wide: WideServerRound | None = None
        self.barrier: threading.Barrier | None = None
        self.stage = 0

    @property
    def width(self) -> int:
        return len(self.granted)


class BatchScheduler:
    """Coalesce concurrent bank-mode rounds into wide online rounds.

    ``window_ms`` is how long the first arrival waits for company;
    ``batch_max`` seals a group early once that many requests joined (a
    full group never waits out its window).  ``max_queued`` and
    ``min_bank_depth`` are the admission thresholds — exceeding either
    denies the round cleanly at grant time.

    One scheduler serves one bank (single or sharded) and is shared by
    every :class:`~repro.serve.session.ServerSession` of a server;
    :meth:`serve_round` runs on the session's own thread and returns only
    when that client's round is fully served.
    """

    def __init__(
        self,
        bank,
        *,
        window_ms: float = 10.0,
        batch_max: int = 8,
        max_queued: int = 64,
        min_bank_depth: int = 0,
        exhaustion_wait_s: float = 0.0,
        round_timeout_s: float = 600.0,
    ) -> None:
        if window_ms < 0:
            raise ConfigError("window_ms must be non-negative")
        if batch_max < 1:
            raise ConfigError("batch_max must be positive")
        if max_queued < 1:
            raise ConfigError("max_queued must be positive")
        if min_bank_depth < 0:
            raise ConfigError("min_bank_depth must be non-negative")
        self.bank = bank
        self.window_ms = window_ms
        self.batch_max = batch_max
        self.max_queued = max_queued
        self.min_bank_depth = min_bank_depth
        self.exhaustion_wait_s = exhaustion_wait_s
        self.round_timeout_s = round_timeout_s
        self._window_s = window_ms / 1000.0
        self._cond = threading.Condition()
        self._open: _WideGroup | None = None
        self._queued = 0
        self._stopped = False
        self._widths: deque[int] = deque(maxlen=_WAIT_SAMPLE_CAP)
        self._waits: deque[float] = deque(maxlen=_WAIT_SAMPLE_CAP)
        self._counters = {
            "requests": 0,
            "batched_sessions": 0,
            "batched_rounds": 0,
            "denied_queue_depth": 0,
            "denied_bank_depth": 0,
            "denied_exhausted": 0,
        }

    # ------------------------------------------------------------------ #
    # the session-thread entry point
    # ------------------------------------------------------------------ #
    def serve_round(self, party, *, round_idx: int) -> int:
        """Serve one granted round for ``party``'s session, batched.

        Called by :class:`~repro.serve.session.ServerSession` instead of
        the solo ``bank.take`` + ``party.online()`` path.  Blocks through
        the batching window, the wide compute, and the per-client
        interactive steps; returns the group width on success.  Raises
        :class:`~repro.errors.AdmissionDenied` *before any bytes flow*
        when the round cannot be granted, and :class:`ProtocolError` when
        a batch peer's failure aborts the wide round mid-flight.
        """
        t_enq = time.monotonic()
        group, slot = self._enqueue()
        try:
            self._await_sealed(group)
            self._prepare(group)
        finally:
            with self._cond:
                self._queued -= 1
        if slot.round is None:
            raise AdmissionDenied(
                group.deny_reason or "offline material exhausted"
            )
        wait_ms = (time.monotonic() - t_enq) * 1e3
        with self._cond:
            self._waits.append(wait_ms)
        self._run_slot(party, group, slot, round_idx, wait_ms)
        return group.width

    # ------------------------------------------------------------------ #
    # group formation
    # ------------------------------------------------------------------ #
    def _enqueue(self) -> tuple[_WideGroup, _Slot]:
        with self._cond:
            self._counters["requests"] += 1
            if self._stopped:
                raise AdmissionDenied("server is shutting down")
            if self._queued >= self.max_queued:
                self._counters["denied_queue_depth"] += 1
                raise AdmissionDenied(
                    f"admission denied: {self._queued} round requests queued "
                    f"(limit {self.max_queued})"
                )
            if self.min_bank_depth:
                depth = self.bank.depth
                if depth < self.min_bank_depth:
                    self._counters["denied_bank_depth"] += 1
                    raise AdmissionDenied(
                        f"admission denied: bank depth {depth} below "
                        f"threshold {self.min_bank_depth}"
                    )
            group = self._open
            if group is None or group.sealed:
                group = _WideGroup(time.monotonic() + self._window_s)
                self._open = group
            slot = _Slot()
            group.slots.append(slot)
            self._queued += 1
            if len(group.slots) >= self.batch_max:
                self._seal_locked(group)
            return group, slot

    def _seal_locked(self, group: _WideGroup) -> None:
        if group.sealed:
            return
        group.sealed = True
        if self._open is group:
            self._open = None
        self._cond.notify_all()

    def _await_sealed(self, group: _WideGroup) -> None:
        with self._cond:
            while not group.sealed:
                remaining = group.deadline - time.monotonic()
                if remaining <= 0 or self._stopped:
                    self._seal_locked(group)
                    break
                self._cond.wait(timeout=remaining)

    def _prepare(self, group: _WideGroup) -> None:
        """Exactly one slot thread draws the rounds and builds the wide
        compute + barrier; the rest wait for ``group.ready``."""
        with self._cond:
            claimed, group.prep_claimed = group.prep_claimed, True
        if claimed:
            if not group.ready.wait(timeout=self.round_timeout_s):
                raise ProtocolError("batched round preparation timed out")
            return
        try:
            wanted = len(group.slots)
            try:
                rounds = self.bank.take_many(
                    wanted, timeout_s=self.exhaustion_wait_s
                )
            except ProtocolError as exc:
                group.deny_reason = str(exc)
                rounds = []
            for slot, rnd in zip(group.slots, rounds):
                slot.round = rnd
            group.granted = group.slots[: len(rounds)]
            if rounds:
                group.wide = WideServerRound(
                    self.bank.model,
                    [rnd.server_us for rnd in rounds],
                    self.bank.batch,
                    group=self.bank.group,
                    ro=self.bank.ro,
                )
                group.barrier = threading.Barrier(
                    len(rounds), action=self._make_advance(group)
                )
            with self._cond:
                self._counters["batched_sessions"] += len(rounds)
                self._counters["denied_exhausted"] += wanted - len(rounds)
                if rounds:
                    self._counters["batched_rounds"] += 1
                    self._widths.append(len(rounds))
        finally:
            group.ready.set()

    # ------------------------------------------------------------------ #
    # the wide round itself
    # ------------------------------------------------------------------ #
    def _make_advance(self, group: _WideGroup):
        """The barrier action: one leader thread runs the stacked linear
        algebra between the per-client interactive stages."""

        def _advance() -> None:
            wide = group.wide
            if group.stage == 0:
                wide.start([slot.inbox for slot in group.granted])
            else:
                wide.resume([slot.inbox for slot in group.granted])
            blocks = wide.linear()
            for slot, block in zip(group.granted, blocks):
                slot.outbox = block
            group.stage += 1

        return _advance

    def _step(self, group: _WideGroup) -> None:
        try:
            group.barrier.wait(timeout=self.round_timeout_s)
        except threading.BrokenBarrierError as exc:
            raise ProtocolError(
                "wide round aborted: a batched peer session failed"
            ) from exc

    def _run_slot(self, party, group, slot, round_idx, wait_ms) -> None:
        chan, tracer, ring = party.chan, party.tracer, party.ring
        rnd = slot.round
        try:
            send_ctrl(
                chan, ok=True, round_id=rnd.round_id,
                batched=True, width=group.width,
            )
            with tracer.span(
                f"round{round_idx}", round_id=rnd.round_id, mode="bank",
                batched=True, batch_width=group.width,
                batch_wait_ms=round(wait_ms, 3),
            ):
                with tracer.span("deal"):
                    chan.send(encode_client_round(rnd.client_material))

                def _run():
                    with tracer.span("input-share"):
                        slot.inbox = ring.reduce(chan.recv())
                    self._step(group)
                    for idx, layer in enumerate(party.meta.layers[:-1]):
                        with tracer.span(
                            f"layer{idx}/relu", variant=party.relu_variant,
                            n_relus=layer.relu_features * self.bank.batch,
                            ring_bits=ring.bits,
                        ):
                            z0 = relu_layer_server(
                                chan, slot.outbox, party._gc, ring,
                                party.relu_variant,
                            )
                        if layer.pool is not None and layer.pool.kind == "max":
                            with tracer.span(f"layer{idx}/pool", kind="max"):
                                z0 = maxpool_server(
                                    chan, layer.pool, z0, party._gc, ring
                                )
                        slot.inbox = z0
                        self._step(group)
                    with tracer.span("logits-share"):
                        chan.send(slot.outbox)
                    return slot.outbox

                party._track_phase("online", _run)
        except Exception:
            # Fail fast for the whole group: peers parked on the barrier
            # get BrokenBarrierError -> ProtocolError instead of waiting
            # out the round timeout for a slot that will never arrive.
            group.barrier.abort()
            raise

    # ------------------------------------------------------------------ #
    # lifecycle + observability
    # ------------------------------------------------------------------ #
    def stop(self) -> None:
        """Deny new requests and release any window waiters immediately."""
        with self._cond:
            self._stopped = True
            if self._open is not None:
                self._seal_locked(self._open)
            self._cond.notify_all()

    def metrics(self) -> dict:
        """Scheduler counters (also stamped into server ``metrics()``)."""
        with self._cond:
            widths = list(self._widths)
            waits = sorted(self._waits)
            out = dict(self._counters)
            out["queued"] = self._queued
        out["batched"] = out.pop("batched_sessions")
        out["batch_width"] = widths[-1] if widths else 0
        out["batch_width_max"] = max(widths) if widths else 0
        out["batch_width_mean"] = (
            sum(widths) / len(widths) if widths else 0.0
        )
        if waits:
            idx = max(0, int(len(waits) * 0.95 + 0.5) - 1)
            out["p95_wait_ms"] = waits[idx]
            out["mean_wait_ms"] = sum(waits) / len(waits)
        else:
            out["p95_wait_ms"] = 0.0
            out["mean_wait_ms"] = 0.0
        out["window_ms"] = self.window_ms
        out["batch_max"] = self.batch_max
        out["max_queued"] = self.max_queued
        out["min_bank_depth"] = self.min_bank_depth
        return out
