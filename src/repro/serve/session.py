"""Per-connection session protocol between a serving process and a client.

Runs on top of any established channel (TCP or in-memory), which is what
lets the concurrency tests drive the exact production session logic over
:func:`repro.net.channel.make_channel_pair`.  Control messages are JSON
objects carried as ``bytes`` payloads; bulk offline material travels as
a tuple of arrays (:func:`encode_client_round`).

Message flow (client to the left, server to the right)::

    hello {batch, relu, mode}      ->
                                   <- welcome {ok, session, mode}
    round {}                       ->
                                   <- grant {ok, round_id} | deny {ok: False, error}
    [bank mode: <- client-half offline material]
    ... online prediction protocol (input share ... logits share) ...
    round {} | done {}             ->
                                   <- ... | bye {ok}

Every round is explicitly *granted* before any protocol bytes flow, so
an exhausted bank produces a typed deny the client raises as
``ProtocolError("offline material exhausted")`` — never a desynchronized
stream.  In ``interactive`` mode the grant is followed by a joint
two-party offline phase instead of dealt material, preserving the
paper's original security model at the cost of per-round OT traffic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from repro.core.protocol import Abnn2Client, Abnn2Server, ModelMeta
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import AdmissionDenied, ChannelError, ConfigError, ProtocolError
from repro.perf.trace import Tracer

#: Version of the session-layer message flow (independent of the wire
#: framing version); checked in the hello/welcome exchange.
SERVE_PROTOCOL = 1

#: Serving modes: ``bank`` deals precomputed material (trusted-dealer
#: model, zero offline traffic); ``interactive`` runs the joint OT-based
#: offline phase per round (the paper's two-party model).
MODES = ("bank", "interactive")

#: Hard cap on one JSON control frame.  Legitimate control messages are
#: tens of bytes; without a cap a hostile peer could make ``json.loads``
#: chew through an arbitrarily large allocation before any field is
#: validated.  Oversized frames fail typed, like every other malformed
#: control input.
MAX_CTRL_BYTES = 64 * 1024


# --------------------------------------------------------------------- #
# control + material codecs
# --------------------------------------------------------------------- #
def send_ctrl(chan, **fields) -> None:
    """Send one JSON control message as a bytes payload."""
    chan.send(json.dumps(fields, sort_keys=True).encode())


def recv_ctrl(chan) -> dict:
    """Receive one JSON control message; malformed input fails typed."""
    obj = chan.recv()
    if not isinstance(obj, (bytes, bytearray)):
        raise ProtocolError(
            f"expected a control message, got {type(obj).__name__}"
        )
    if len(obj) > MAX_CTRL_BYTES:
        raise ProtocolError(
            f"control frame of {len(obj)} bytes exceeds the "
            f"{MAX_CTRL_BYTES}-byte cap"
        )
    try:
        doc = json.loads(bytes(obj).decode())
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"malformed control message: {exc}") from exc
    if not isinstance(doc, dict):
        raise ProtocolError("control message must be a JSON object")
    return doc


def encode_client_round(material: dict) -> tuple:
    """Flatten a client-half offline round into one wire message.

    Layout: a JSON header (layer counts, which pool reshares exist)
    followed by the input mask, the per-layer ``V`` shares, the ReLU
    shares, and the present pool reshares, all as ring-element arrays.
    """
    pool_present = [p is not None for p in material["pool_shares"]]
    header = {
        "n_layers": len(material["v"]),
        "pool_present": pool_present,
    }
    parts = [json.dumps(header, sort_keys=True).encode()]
    parts.append(np.asarray(material["input_mask"], dtype=np.uint64))
    parts.extend(np.asarray(v, dtype=np.uint64) for v in material["v"])
    parts.extend(np.asarray(z, dtype=np.uint64) for z in material["relu_shares"])
    parts.extend(
        np.asarray(p, dtype=np.uint64)
        for p in material["pool_shares"]
        if p is not None
    )
    return tuple(parts)


def decode_client_round(obj) -> dict:
    """Inverse of :func:`encode_client_round`; structural checks only.

    Shape/semantic validation happens in
    :meth:`repro.core.protocol.Abnn2Client.load_offline_round`.
    """
    if not isinstance(obj, tuple) or not obj or not isinstance(obj[0], (bytes, bytearray)):
        raise ProtocolError("malformed offline-round message")
    try:
        header = json.loads(bytes(obj[0]).decode())
        n_layers = int(header["n_layers"])
        pool_present = [bool(p) for p in header["pool_present"]]
    except (ValueError, KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed offline-round header: {exc}") from exc
    if n_layers < 1 or len(pool_present) != n_layers - 1:
        raise ProtocolError("inconsistent offline-round header")
    expected = 2 + n_layers + (n_layers - 1) + sum(pool_present)
    if len(obj) != expected:
        raise ProtocolError(
            f"offline-round message has {len(obj)} parts, expected {expected}"
        )
    arrays = list(obj[1:])
    if not all(isinstance(a, np.ndarray) for a in arrays):
        raise ProtocolError("offline-round parts must be arrays")
    input_mask = arrays.pop(0)
    vs = [arrays.pop(0) for _ in range(n_layers)]
    relu_shares = [arrays.pop(0) for _ in range(n_layers - 1)]
    pool_shares = [arrays.pop(0) if present else None for present in pool_present]
    return {
        "v": vs,
        "relu_shares": relu_shares,
        "pool_shares": pool_shares,
        "input_mask": input_mask,
    }


# --------------------------------------------------------------------- #
# server side
# --------------------------------------------------------------------- #
@dataclass
class SessionResult:
    """What one served session amounted to."""

    session_id: int
    predictions: int = 0
    mode: str = ""
    error: str | None = None


class ServerSession:
    """Drive the server side of one client connection to completion.

    Owns one :class:`~repro.core.protocol.Abnn2Server` party and one
    tracer for the whole connection; each granted round appears as a
    ``round{k}`` span (carrying the bank ``round_id``) in the exported
    trace, so per-session trees stay isolated by construction.
    """

    def __init__(
        self,
        chan,
        model,
        bank,
        *,
        session_id: int,
        relu_variant: str = "oblivious",
        keep_alive: bool = True,
        max_rounds: int | None = None,
        exhaustion_wait_s: float = 0.0,
        allow_interactive: bool = True,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        tracer: Tracer | None = None,
        scheduler=None,
    ) -> None:
        self.chan = chan
        self.model = model
        self.bank = bank
        self.session_id = session_id
        self.relu_variant = relu_variant
        self.keep_alive = keep_alive
        self.max_rounds = max_rounds
        self.exhaustion_wait_s = exhaustion_wait_s
        self.allow_interactive = allow_interactive
        self.group = group
        self.ro = ro
        self.seed = seed
        self.tracer = tracer if tracer is not None else Tracer(party="server")
        #: optional :class:`repro.serve.scheduler.BatchScheduler`; when
        #: set, bank-mode rounds go through the cross-session batching
        #: path instead of the solo take+online path.
        self.scheduler = scheduler

    def _deny_hello(self, error: str) -> SessionResult:
        send_ctrl(self.chan, ok=False, error=error)
        # Consume the peer's trailing traffic before our side closes:
        # under TCP, closing with its best-effort done/close frame still
        # unread resets the connection, and the client can then see
        # ConnectionResetError instead of this structured deny.
        drain = getattr(self.chan, "drain", None)
        if drain is not None:
            drain(1.0)
        return SessionResult(self.session_id, error=error)

    def run(self) -> SessionResult:
        """Serve rounds until the client says ``done`` or the session dies.

        Raises on channel faults (the server's accept loop records the
        failed session and keeps accepting); protocol-level rejections
        are answered with typed denies instead of raised.
        """
        hello = recv_ctrl(self.chan)
        if hello.get("op") != "hello":
            return self._deny_hello(f"expected hello, got {hello.get('op')!r}")
        if hello.get("protocol") != SERVE_PROTOCOL:
            return self._deny_hello(
                f"serve protocol mismatch: client speaks "
                f"{hello.get('protocol')}, server speaks {SERVE_PROTOCOL}"
            )
        mode = hello.get("mode", "bank")
        if mode not in MODES:
            return self._deny_hello(f"unknown mode {mode!r}")
        if mode == "interactive" and not self.allow_interactive:
            return self._deny_hello("interactive mode is disabled on this server")
        batch = hello.get("batch")
        if not isinstance(batch, int) or batch < 1:
            return self._deny_hello(f"invalid batch {batch!r}")
        if mode == "bank" and batch != self.bank.batch:
            return self._deny_hello(
                f"bank material is shaped for batch={self.bank.batch}, "
                f"client asked for batch={batch}"
            )
        relu = hello.get("relu", "oblivious")
        if relu != self.relu_variant:
            return self._deny_hello(
                f"relu variant mismatch: server runs {self.relu_variant!r}, "
                f"client asked for {relu!r}"
            )

        result = SessionResult(self.session_id, mode=mode)
        party = Abnn2Server(
            self.chan, self.model, batch,
            relu_variant=self.relu_variant, group=self.group, ro=self.ro,
            seed=self.seed, tracer=self.tracer,
        )
        allowed = self.max_rounds if self.keep_alive else 1
        send_ctrl(
            self.chan, ok=True, session=self.session_id, mode=mode,
            protocol=SERVE_PROTOCOL, batch=batch,
        )
        while True:
            try:
                request = recv_ctrl(self.chan)
            except ChannelError as exc:
                if result.predictions and "closed" in str(exc):
                    # Client hung up instead of saying done: tolerated
                    # after at least one completed round.
                    break
                raise
            op = request.get("op")
            if op == "done":
                send_ctrl(self.chan, ok=True)
                break
            if op != "round":
                send_ctrl(self.chan, ok=False, error=f"unknown op {op!r}")
                result.error = f"unknown op {op!r}"
                break
            if allowed is not None and result.predictions >= allowed:
                send_ctrl(
                    self.chan, ok=False,
                    error="session round limit reached (keep-alive disabled)"
                    if not self.keep_alive
                    else "session round limit reached",
                )
                continue
            if mode == "bank" and self.scheduler is not None:
                try:
                    self.scheduler.serve_round(
                        party, round_idx=result.predictions
                    )
                except AdmissionDenied as exc:
                    # Same typed grant/deny plane as the solo path: the
                    # round was refused before any protocol bytes flowed.
                    send_ctrl(self.chan, ok=False, error=str(exc))
                    continue
                result.predictions += 1
                continue
            if mode == "bank":
                try:
                    rnd = self.bank.take(timeout_s=self.exhaustion_wait_s)
                except ProtocolError as exc:
                    # Typed deny *instead of* starting the round: neither
                    # party ever sends online-protocol bytes it cannot
                    # finish, so exhaustion never desyncs the channel.
                    send_ctrl(self.chan, ok=False, error=str(exc))
                    continue
                party.load_offline_round(rnd.server_us)
                send_ctrl(self.chan, ok=True, round_id=rnd.round_id)
                with self.tracer.span(
                    f"round{result.predictions}", round_id=rnd.round_id, mode=mode
                ):
                    with self.tracer.span("deal"):
                        self.chan.send(encode_client_round(rnd.client_material))
                    party.online()
            else:
                send_ctrl(self.chan, ok=True)
                with self.tracer.span(
                    f"round{result.predictions}", mode=mode
                ):
                    party.offline(rounds=1)
                    party.online()
            result.predictions += 1
        return result


# --------------------------------------------------------------------- #
# client side
# --------------------------------------------------------------------- #
class ClientSession:
    """Drive the client side of a serving connection over any channel."""

    def __init__(
        self,
        chan,
        meta: ModelMeta,
        batch: int,
        *,
        relu_variant: str = "oblivious",
        mode: str = "bank",
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        if mode not in MODES:
            raise ConfigError(f"unknown mode {mode!r}; choose from {MODES}")
        self.chan = chan
        self.mode = mode
        self.party = Abnn2Client(
            chan, meta, batch, relu_variant=relu_variant, group=group, ro=ro,
            seed=seed, tracer=tracer,
        )
        self.tracer = self.party.tracer
        self.rounds_done = 0
        self.round_ids: list[int] = []
        send_ctrl(
            chan, op="hello", protocol=SERVE_PROTOCOL, batch=batch,
            relu=relu_variant, mode=mode,
        )
        welcome = recv_ctrl(chan)
        if not welcome.get("ok"):
            raise ProtocolError(
                f"server rejected the session: {welcome.get('error', 'unknown error')}"
            )
        self.session_id = welcome.get("session")

    def predict_encoded(self, x_ring: np.ndarray) -> np.ndarray:
        """One prediction on fixed-point inputs ``(features, batch)``."""
        send_ctrl(self.chan, op="round")
        grant = recv_ctrl(self.chan)
        if not grant.get("ok"):
            raise ProtocolError(
                f"server denied the round: {grant.get('error', 'unknown error')}"
            )
        with self.tracer.span(
            f"round{self.rounds_done}",
            round_id=grant.get("round_id", -1), mode=self.mode,
        ):
            if self.mode == "bank":
                with self.tracer.span("deal"):
                    material = decode_client_round(self.chan.recv())
                self.party.load_offline_round(material)
            else:
                self.party.offline(rounds=1)
            logits = self.party.online(x_ring)
        self.rounds_done += 1
        if "round_id" in grant:
            self.round_ids.append(grant["round_id"])
        return logits

    def close(self) -> None:
        """Tell the server we are done (best effort) and close the channel."""
        try:
            send_ctrl(self.chan, op="done")
            recv_ctrl(self.chan)
        except (ChannelError, ProtocolError):
            pass
        self.chan.close()

    def __enter__(self) -> "ClientSession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
