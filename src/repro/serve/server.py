"""Multi-session prediction server: accept loop over a triplet bank.

One :class:`PredictionServer` owns one :class:`~repro.net.tcp.Listener`,
one :class:`~repro.serve.bank.TripletBank`, and a thread-per-session
accept loop.  The loop stays minimal by design — it only accepts raw
sockets and hands them to session threads, so a slow or hostile client's
handshake can never block further accepts.  Concurrency is bounded by a
``max_sessions`` semaphore; sockets accepted beyond the bound wait for a
slot before their handshake runs.

A session failing — bad handshake, client crash mid-protocol, malformed
control message — is *recorded* (and its partial trace still exported),
never fatal: the listener keeps accepting.  Each session gets a fresh
session id, a fresh tracer whose exported root is annotated with the
session id and a bank-metrics snapshot (depth, sessions served,
replenish lag), and a deterministically derived seed when the server is
seeded.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from dataclasses import dataclass, field

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ChannelError, ConfigError, HandshakeError, ReproError
from repro.net.tcp import Listener, TcpChannel
from repro.nn.quantize import QuantizedModel
from repro.perf.trace import Tracer
from repro.serve.bank import TripletBank
from repro.serve.scheduler import BatchScheduler
from repro.serve.session import ServerSession

#: Session ids are assigned from this counter; 0 is reserved for the
#: legacy point-to-point :func:`repro.net.tcp.listen` path.
_FIRST_SESSION_ID = 1

#: Stride separating per-session seed derivations from the bank's
#: per-generation stride (7919) so the two streams never collide.
_SESSION_SEED_STRIDE = 104729


@dataclass
class SessionRecord:
    """Bookkeeping for one accepted connection, success or failure."""

    session_id: int
    addr: tuple = ()
    predictions: int = 0
    mode: str = ""
    error: str | None = None
    duration_s: float = 0.0
    trace_path: str | None = None
    done: threading.Event = field(default_factory=threading.Event, repr=False)


class PredictionServer:
    """Serve many sequential and concurrent prediction sessions.

    Lifecycle::

        bank = TripletBank(model, batch, seed=7)
        bank.fill(rounds)                       # or bank.load(path)
        with PredictionServer(model, bank, port=0) as srv:
            srv.serve_forever(max_total_sessions=3)   # or srv.start()
        # srv.records holds one SessionRecord per accepted connection

    :meth:`start` runs the accept loop on a background thread (the shape
    the tests drive); :meth:`serve_forever` runs it on the caller's
    thread, optionally stopping after a fixed number of accepted
    sessions (the CLI's ``--exit-after``).
    """

    def __init__(
        self,
        model: QuantizedModel,
        bank: TripletBank,
        *,
        port: int = 0,
        host: str = "127.0.0.1",
        max_sessions: int = 4,
        keep_alive: bool = True,
        relu_variant: str = "oblivious",
        session_timeout_s: float = 600.0,
        exhaustion_wait_s: float = 0.0,
        allow_interactive: bool = True,
        trace_dir: str | None = None,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        batch_window_ms: float | None = None,
        batch_max: int = 8,
        max_queued: int = 64,
        min_bank_depth: int = 0,
        channel_wrap=None,
        backlog: int = 16,
    ) -> None:
        if max_sessions < 1:
            raise ConfigError("max_sessions must be positive")
        self.model = model
        self.bank = bank
        self.max_sessions = max_sessions
        self.keep_alive = keep_alive
        self.relu_variant = relu_variant
        self.session_timeout_s = session_timeout_s
        self.exhaustion_wait_s = exhaustion_wait_s
        self.allow_interactive = allow_interactive
        self.trace_dir = trace_dir
        self.group = group
        self.ro = ro
        self.seed = seed
        #: optional callable wrapping each accepted session's channel
        #: (e.g. a :class:`repro.net.netsim.ShapedChannel` for shaped-link
        #: benchmarking, or a fault injector).
        self.channel_wrap = channel_wrap
        # Cross-session batching: opt in per server, or fleet-wide via
        # ABNN2_SERVE_BATCH=1 (the CI soak leg) with a default window.
        if batch_window_ms is None and os.environ.get("ABNN2_SERVE_BATCH"):
            batch_window_ms = 10.0
        self.scheduler = (
            BatchScheduler(
                bank,
                window_ms=batch_window_ms,
                batch_max=batch_max,
                max_queued=max_queued,
                min_bank_depth=min_bank_depth,
                exhaustion_wait_s=exhaustion_wait_s,
                round_timeout_s=session_timeout_s,
            )
            if batch_window_ms is not None
            else None
        )

        self.listener = Listener(port, host=host, backlog=backlog)
        self.host = self.listener.host
        self.port = self.listener.port

        self.records: list[SessionRecord] = []
        self._records_lock = threading.Lock()
        self._session_ids = itertools.count(_FIRST_SESSION_ID)
        self._slots = threading.BoundedSemaphore(max_sessions)
        self._stop = threading.Event()
        self._accept_thread: threading.Thread | None = None
        # Guards _session_threads *and* the spawn-vs-stop decision: a
        # session thread is only ever started while holding this lock and
        # _stop is unset, so stop()'s join snapshot (taken under the same
        # lock, after _stop is set) can never miss a thread.
        self._threads_lock = threading.Lock()
        self._session_threads: list[threading.Thread] = []
        self._sessions_served = 0
        self._sessions_failed = 0

    # ------------------------------------------------------------------ #
    # accept loop
    # ------------------------------------------------------------------ #
    def start(self) -> "PredictionServer":
        """Run the accept loop on a background thread; returns self."""
        if self._accept_thread is not None:
            raise ConfigError("server already started")
        self.bank.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, args=(None,), name="abnn2-serve-accept",
            daemon=True,
        )
        self._accept_thread.start()
        return self

    def serve_forever(self, max_total_sessions: int | None = None) -> None:
        """Run the accept loop on this thread.

        ``max_total_sessions`` bounds how many connections are accepted
        before the loop drains and returns — the CLI's ``--exit-after``
        and the only way a foreground server terminates besides
        :meth:`stop` from another thread (or Ctrl-C).
        """
        self.bank.start()
        self._accept_loop(max_total_sessions)
        self._join_sessions(timeout_s=self.session_timeout_s)

    def _accept_loop(self, max_total_sessions: int | None) -> None:
        accepted = 0
        while not self._stop.is_set():
            if max_total_sessions is not None and accepted >= max_total_sessions:
                break
            try:
                # Short poll so stop() is honored promptly; no client
                # connecting within a poll is not an error.
                sock, addr = self.listener.accept_socket(timeout_s=0.25)
            except ChannelError:
                if self._stop.is_set():
                    break
                continue
            accepted += 1
            self._slots.acquire()  # bound concurrent sessions (backpressure)
            session_id = next(self._session_ids)
            record = SessionRecord(session_id, addr=addr)
            with self._threads_lock:
                # Checked under the lock stop() snapshots with: either
                # this thread lands in the list before the snapshot, or
                # the stop flag is already visible here and no thread is
                # spawned — a client accepted concurrently with stop()
                # can never leave an unjoined session thread behind.
                if self._stop.is_set():
                    self._slots.release()
                    sock.close()
                    break
                with self._records_lock:
                    self.records.append(record)
                thread = threading.Thread(
                    target=self._run_session, args=(sock, record),
                    name=f"abnn2-session-{session_id}", daemon=True,
                )
                self._session_threads.append(thread)
                thread.start()

    # ------------------------------------------------------------------ #
    # one session
    # ------------------------------------------------------------------ #
    def _session_seed(self, session_id: int) -> int | None:
        if self.seed is None:
            return None
        return self.seed + _SESSION_SEED_STRIDE * session_id

    def _run_session(self, sock, record: SessionRecord) -> None:
        t0 = time.monotonic()
        tracer = Tracer(party="server")
        chan = None
        try:
            # The handshake runs here, on the session thread — a client
            # that stalls or speaks the wrong version costs one slot, not
            # the accept loop.
            chan = TcpChannel(
                sock, party=0, timeout_s=self.session_timeout_s,
                session_id=record.session_id,
            )
            if self.channel_wrap is not None:
                chan = self.channel_wrap(chan)
            chan.tracer = tracer
            session = ServerSession(
                chan, self.model, self.bank,
                session_id=record.session_id,
                relu_variant=self.relu_variant,
                keep_alive=self.keep_alive,
                exhaustion_wait_s=self.exhaustion_wait_s,
                allow_interactive=self.allow_interactive,
                group=self.group, ro=self.ro,
                seed=self._session_seed(record.session_id),
                tracer=tracer,
                scheduler=self.scheduler,
            )
            result = session.run()
            record.predictions = result.predictions
            record.mode = result.mode
            record.error = result.error
        except HandshakeError as exc:
            # A failed handshake is the *client's* problem: log it on the
            # record and keep serving everyone else.
            record.error = f"handshake failed: {exc}"
        except (ReproError, OSError) as exc:
            # Client crashed mid-protocol, channel fault, malformed
            # traffic — the session dies, the server does not.
            record.error = f"{type(exc).__name__}: {exc}"
        finally:
            record.duration_s = time.monotonic() - t0
            with self._records_lock:
                if record.error is None:
                    self._sessions_served += 1
                else:
                    self._sessions_failed += 1
                served = self._sessions_served
            bank_metrics = self.bank.metrics()
            tracer.annotate(
                session_id=record.session_id,
                predictions=record.predictions,
                sessions_served=served,
                bank_depth=bank_metrics["depth"],
                bank_rounds_served=bank_metrics["rounds_served"],
                bank_replenish_lag_s=bank_metrics["replenish_lag_s"],
                error=record.error or "",
            )
            if self.trace_dir is not None:
                path = os.path.join(
                    self.trace_dir, f"session-{record.session_id}.json"
                )
                try:
                    tracer.save(path)
                    record.trace_path = path
                except OSError:
                    pass  # trace export must never take a session down
            if chan is not None:
                chan.close()
            else:
                sock.close()
            self._slots.release()
            record.done.set()

    # ------------------------------------------------------------------ #
    # inspection / shutdown
    # ------------------------------------------------------------------ #
    def metrics(self) -> dict:
        """Server counters plus a bank snapshot, one flat document."""
        with self._records_lock:
            out = {
                "sessions_served": self._sessions_served,
                "sessions_failed": self._sessions_failed,
                "sessions_active": sum(
                    1 for r in self.records if not r.done.is_set()
                ),
                "predictions": sum(r.predictions for r in self.records),
                "max_sessions": self.max_sessions,
            }
        out["bank"] = self.bank.metrics()
        out["scheduler"] = (
            self.scheduler.metrics() if self.scheduler is not None else None
        )
        return out

    def wait_idle(self, timeout_s: float = 30.0) -> None:
        """Block until every accepted session has finished."""
        deadline = time.monotonic() + timeout_s
        with self._records_lock:
            records = list(self.records)
        for record in records:
            if not record.done.wait(timeout=max(0.0, deadline - time.monotonic())):
                raise TimeoutError(
                    f"session {record.session_id} still running after {timeout_s}s"
                )

    def _join_sessions(self, timeout_s: float) -> None:
        deadline = time.monotonic() + timeout_s
        with self._threads_lock:
            threads = list(self._session_threads)
        for thread in threads:
            thread.join(timeout=max(0.1, deadline - time.monotonic()))

    def stop(self) -> None:
        """Stop accepting, drain session threads, stop the bank.

        Ordering matters: the stop flag goes up and the listener socket
        closes *first* (so a blocked accept wakes immediately and no new
        connection can be accepted), then the accept thread is joined,
        and only then are session threads snapshotted and joined — the
        spawn-under-lock in :meth:`_accept_loop` guarantees the snapshot
        is complete even when the accept loop runs on a foreign thread
        (:meth:`serve_forever`).
        """
        with self._threads_lock:
            self._stop.set()
        self.listener.close()
        if self.scheduler is not None:
            # Release any sessions parked in a batching window so the
            # join below cannot wait out a whole window per group.
            self.scheduler.stop()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=10.0)
            self._accept_thread = None
        self._join_sessions(timeout_s=self.session_timeout_s + 10.0)
        self.bank.stop()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
