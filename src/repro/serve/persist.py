"""Triplet-bank persistence: offline material that survives a restart.

The deployment story the paper (and MiniONN/SecureML before it) sells is
*amortization*: the expensive OT-based offline phase runs ahead of time
and many online predictions draw from it.  For that to survive a server
restart, banked rounds must live on disk.  This module stores them the
same way :mod:`repro.nn.persist` stores models — an ``.npz`` of arrays
plus a JSON manifest — so bundles stay inspectable and diffable.

A bank bundle is only valid for the exact model (weights included), ring,
and batch it was generated for: reusing triplets against different
weights silently breaks correctness, and reusing them twice breaks
security.  The manifest therefore records a :func:`model_fingerprint`
and the loader refuses anything that does not match.

Round layout inside the ``.npz`` (round ``r``, layer ``i``):

* ``r{r}_u{i}`` — the server's per-layer ``U`` triplet share,
* ``r{r}_v{i}`` — the client's per-layer ``V`` triplet share,
* ``r{r}_relu{i}`` — the client's fresh ReLU output share (hidden layers),
* ``r{r}_pool{i}`` — the client's max-pool reshare (only where present),
* ``r{r}_mask`` — the client's input mask.

A share the streamed dealer produced in column blocks
(:class:`repro.core.triplets.BlockedShare`) is stored block-by-block as
``r{r}_u{i}_b{j}`` / ``r{r}_v{i}_b{j}`` with the per-layer block counts
recorded in the manifest (``u_blocks`` / ``v_blocks``; absent or 0 means
the historical single-array key).  Bundles holding only plain arrays are
byte-compatible with pre-streaming readers.

Writes are **atomic**: the bundle is staged to a temp file in the target
directory and :func:`os.replace`'d into place, so a crash mid-save leaves
either the old bank or no bank — never a truncated ``.npz`` that poisons
the next restart.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile

import numpy as np

from repro.core.triplets import BlockedShare
from repro.errors import ConfigError
from repro.nn.quantize import QuantizedModel

#: Bumped whenever the bank bundle layout changes.
BANK_FORMAT_VERSION = 1


def model_fingerprint(model: QuantizedModel) -> str:
    """Hex digest binding a bank to one exact model configuration.

    Covers ring width, fixed-point scaling, and every layer's scheme,
    truncation, linear backend, weights, and biases — anything that
    changes the triplet material or the shares' meaning.  The backend
    component is appended only for non-default backends so fingerprints
    of existing im2col banks stay stable.
    """
    h = hashlib.sha256()
    h.update(f"ring={model.ring.bits};frac={model.encoder.frac_bits};".encode())
    for layer in model.layers:
        h.update(f"{layer.scheme.name};t={layer.truncate_bits};".encode())
        if layer.backend != "im2col":
            h.update(f"backend={layer.backend};".encode())
        h.update(np.ascontiguousarray(layer.w_int, dtype=np.int64).tobytes())
        h.update(np.ascontiguousarray(layer.bias_int, dtype=np.int64).tobytes())
    return h.hexdigest()


def _store_share(arrays: dict, key: str, share) -> int:
    """Stash one U/V share; returns its block count (0 = plain array)."""
    if isinstance(share, BlockedShare):
        for j, block in enumerate(share.blocks()):
            arrays[f"{key}_b{j}"] = np.asarray(block, dtype=np.uint64)
        return share.n_blocks
    arrays[key] = np.asarray(share, dtype=np.uint64)
    return 0


def save_bank(path, *, fingerprint: str, batch: int, rounds: list[dict]) -> None:
    """Atomically write banked offline rounds to an ``.npz`` bundle.

    ``rounds`` entries are dicts with ``server_us`` (list of arrays or
    :class:`BlockedShare`) and ``client`` (the
    :meth:`Abnn2Client.export_offline_round` dict).
    """
    pool_present: list[list[bool]] = []
    u_blocks: list[list[int]] = []
    v_blocks: list[list[int]] = []
    arrays: dict[str, np.ndarray] = {}
    for r, rnd in enumerate(rounds):
        client = rnd["client"]
        u_blocks.append(
            [_store_share(arrays, f"r{r}_u{i}", u) for i, u in enumerate(rnd["server_us"])]
        )
        v_blocks.append(
            [_store_share(arrays, f"r{r}_v{i}", v) for i, v in enumerate(client["v"])]
        )
        for i, z1 in enumerate(client["relu_shares"]):
            arrays[f"r{r}_relu{i}"] = np.asarray(z1, dtype=np.uint64)
        present = []
        for i, pool in enumerate(client["pool_shares"]):
            present.append(pool is not None)
            if pool is not None:
                arrays[f"r{r}_pool{i}"] = np.asarray(pool, dtype=np.uint64)
        pool_present.append(present)
        arrays[f"r{r}_mask"] = np.asarray(client["input_mask"], dtype=np.uint64)
    n_layers = len(rounds[0]["server_us"]) if rounds else 0
    manifest = {
        "format_version": BANK_FORMAT_VERSION,
        "fingerprint": fingerprint,
        "batch": batch,
        "n_rounds": len(rounds),
        "n_layers": n_layers,
        "pool_present": pool_present,
    }
    # Blocked-share counts are recorded only when present, keeping
    # all-plain bundles byte-identical to the historical layout.
    if any(any(counts) for counts in u_blocks):
        manifest["u_blocks"] = u_blocks
    if any(any(counts) for counts in v_blocks):
        manifest["v_blocks"] = v_blocks
    arrays["manifest"] = np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)
    # Stage next to the target so os.replace stays a same-filesystem
    # atomic rename: a crash anywhere before the replace leaves the old
    # bank (or nothing) on disk, never a truncated bundle.
    path = os.fspath(path)
    directory = os.path.dirname(path) or "."
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".tmp.", dir=directory
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            np.savez(fh, **arrays)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def load_bank(path, *, fingerprint: str, batch: int) -> list[dict]:
    """Inverse of :func:`save_bank`; refuses mismatched model or batch.

    Shape validation is deliberately left to
    :meth:`repro.core.protocol.Abnn2Client.load_offline_round` — the
    fingerprint pins the semantic identity, the loader only restores
    structure.
    """
    with np.load(path) as bundle:
        manifest = json.loads(bytes(bundle["manifest"]).decode())
        if manifest.get("format_version") != BANK_FORMAT_VERSION:
            raise ConfigError(
                f"unsupported bank format {manifest.get('format_version')}"
            )
        if manifest["fingerprint"] != fingerprint:
            raise ConfigError(
                "bank fingerprint mismatch: this bundle was generated for a "
                "different model (or model revision); regenerate the bank"
            )
        if manifest["batch"] != batch:
            raise ConfigError(
                f"bank was generated for batch={manifest['batch']}, "
                f"server is configured for batch={batch}"
            )
        n_layers = manifest["n_layers"]
        u_blocks = manifest.get("u_blocks")
        v_blocks = manifest.get("v_blocks")

        def _load_share(key: str, n_b: int):
            if n_b:
                return BlockedShare([bundle[f"{key}_b{j}"] for j in range(n_b)])
            return bundle[key]

        rounds = []
        for r in range(manifest["n_rounds"]):
            present = manifest["pool_present"][r]
            u_counts = u_blocks[r] if u_blocks else [0] * n_layers
            v_counts = v_blocks[r] if v_blocks else [0] * n_layers
            client = {
                "v": [_load_share(f"r{r}_v{i}", v_counts[i]) for i in range(n_layers)],
                "relu_shares": [bundle[f"r{r}_relu{i}"] for i in range(n_layers - 1)],
                "pool_shares": [
                    bundle[f"r{r}_pool{i}"] if present[i] else None
                    for i in range(n_layers - 1)
                ],
                "input_mask": bundle[f"r{r}_mask"],
            }
            rounds.append(
                {
                    "server_us": [
                        _load_share(f"r{r}_u{i}", u_counts[i]) for i in range(n_layers)
                    ],
                    "client": client,
                }
            )
    return rounds
