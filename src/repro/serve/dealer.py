"""Streamed trusted-dealer generation of offline rounds.

The self-play generator (:mod:`repro.serve.bank`) runs the real
two-party OT protocol against itself — faithful, but it materializes
every conv layer's lowered ``R`` (the full patch matrix) and holds each
layer's whole ``U``/``V`` while the OT chunks fill them in.  For
ImageNet-class geometries that working set alone breaks a bounded-RSS
deployment.

This module exploits what the bank already is — a **trusted dealer**
(PROTOCOLS.md §11: the serving process plays both parties, so it knows
``W`` and ``R`` outright) — to generate the identical *kind* of material
in closed form, block by block:

    for each column block [lo, hi) of the lowered operand:
        R_blk = lower_shares_block(operand, lo, hi)   # never whole
        V_blk = uniform sample                         # client share
        U_blk = W @ R_blk - V_blk                      # server share

``U + V = W @ R (mod 2^l)`` holds per block by construction, so the
dealt round is a valid offline round for the exact same online phase;
the per-layer shares come out as :class:`~repro.core.triplets.BlockedShare`
so the chunked online path (and persistence) can keep them blocked
end to end.  Peak working set per conv layer drops from the full patch
matrix to one column block.

Determinism caveat: the dealt material is a pure function of
``(model, batch, seed, stream_chunk_cols)`` — the per-block ``V`` draws
consume the RNG in block order, so changing the *generation* chunking
changes the material (changing the online ``chunk_cols`` never does).
Dealer material also differs from self-play material at the same seed
(different RNG consumption), which shifts only the probabilistic
truncation noise, never correctness.
"""

from __future__ import annotations

import numpy as np

from repro.core.matmul import grouped_product
from repro.core.protocol import (
    ModelMeta,
    _matmul_weights,
    layer_triplet_config,
)
from repro.core.pooling import avgpool_share
from repro.core.triplets import BlockedShare
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ConfigError
from repro.nn.lowering import column_blocks, lower_shares_block
from repro.nn.quantize import QuantizedModel
from repro.nn.winograd import lower_tiles_block
from repro.utils.ring import Ring
from repro.utils.rng import make_rng


def _deal_linear_shares(
    ring: Ring, w: np.ndarray, config, lower_block, total: int,
    chunk: int | None, rng: np.random.Generator,
) -> tuple[BlockedShare | np.ndarray, BlockedShare | np.ndarray]:
    """One layer's ``(U, V)`` with ``U + V = W @ R``, dealt per block."""
    u_parts: list[np.ndarray] = []
    v_parts: list[np.ndarray] = []
    for lo, hi in column_blocks(total, chunk):
        r_blk = lower_block(lo, hi)
        v_blk = ring.sample(rng, (config.rows, hi - lo))
        prod = grouped_product(ring, w, r_blk, config.m, config.n, config.groups)
        u_parts.append(ring.sub(prod, v_blk))
        v_parts.append(v_blk)
    if chunk is None or len(u_parts) == 1:
        return u_parts[0], v_parts[0]
    return BlockedShare(u_parts), BlockedShare(v_parts)


def dealer_offline_round(
    model: QuantizedModel,
    batch: int,
    *,
    seed: int | None,
    stream_chunk_cols: int | None = None,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
) -> tuple[list, dict]:
    """Deal one offline round without OT traffic or whole-layer buffers.

    Returns ``(server_us, client_material)`` in exactly the shapes
    :meth:`Abnn2Server.load_offline_round` /
    :meth:`Abnn2Client.load_offline_round` consume (conv-layer shares as
    :class:`BlockedShare` when ``stream_chunk_cols`` splits them).
    ``stream_chunk_cols`` bounds the dealt column blocks; ``None`` falls
    back to each conv spec's own ``chunk_cols``.

    The operand chaining mirrors :meth:`Abnn2Client.offline` verbatim:
    layer 0's ``R`` is the input mask, each hidden layer's ``R`` is the
    fresh ReLU output share (post-pooling), so the dealt round drops into
    the unchanged online phase.
    """
    if batch < 1:
        raise ConfigError("batch must be positive")
    meta = ModelMeta.from_model(model)
    ring = model.ring
    rng = make_rng(seed)
    server_us: list = []
    vs: list = []
    relu_shares: list[np.ndarray] = []
    pool_shares: list = []
    operand = ring.sample(rng, (meta.layers[0].in_features, batch))
    input_mask = operand
    for idx, layer_meta in enumerate(meta.layers):
        layer = model.layers[idx]
        config = layer_triplet_config(ring, layer_meta, batch, group=group, ro=ro)
        w = ring.reduce(_matmul_weights(layer, layer_meta))
        chunk = stream_chunk_cols
        if chunk is None and layer.conv is not None:
            chunk = layer.conv.chunk_cols
        if layer_meta.backend == "winograd":
            wspec = layer_meta.wino
            src = operand
            u, v = _deal_linear_shares(
                ring, w, config,
                lambda lo, hi, s=src, ws=wspec: lower_tiles_block(ws, s, ring, lo, hi),
                batch * wspec.n_tiles, chunk, rng,
            )
        elif layer_meta.conv is not None:
            spec = layer_meta.conv
            src = operand
            u, v = _deal_linear_shares(
                ring, w, config,
                lambda lo, hi, s=src, sp=spec: lower_shares_block(sp, s, lo, hi),
                batch * spec.n_positions, chunk, rng,
            )
        else:
            src = operand
            u, v = _deal_linear_shares(
                ring, w, config, lambda lo, hi, s=src: s[:, lo:hi],
                batch, None, rng,
            )
        server_us.append(u)
        vs.append(v)
        if idx < len(meta.layers) - 1:
            z1_relu = ring.sample(rng, (layer_meta.relu_features, batch))
            relu_shares.append(z1_relu)
            if layer_meta.pool is None:
                operand = z1_relu
                pool_shares.append(None)
            elif layer_meta.pool.kind == "avg":
                operand = avgpool_share(ring, layer_meta.pool, z1_relu, party=1)
                pool_shares.append(None)
            else:
                operand = ring.sample(rng, (layer_meta.pool.out_features, batch))
                pool_shares.append(operand)
    client_material = {
        "v": vs,
        "relu_shares": relu_shares,
        "pool_shares": pool_shares,
        "input_mask": input_mask,
    }
    return server_us, client_material
