"""Client-side wrapper: connect, keep the session open, predict many times.

:class:`PredictionClient` is the TCP counterpart of
:class:`~repro.serve.server.PredictionServer`: it connects with the
wildcard session id (the server assigns one), runs the session-layer
hello, and then exposes :meth:`predict` — float features in, logits and
argmax labels out — once per offline round the server grants.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import ModelMeta
from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ChannelError, ConfigError
from repro.net import tcp
from repro.perf.trace import Tracer
from repro.quant.fixed_point import FixedPointEncoder
from repro.serve.session import ClientSession
from repro.utils.ring import Ring


class PredictionClient:
    """One serving connection from the data owner's side.

    ::

        with PredictionClient(meta, batch=4, port=srv.port) as client:
            logits, labels = client.predict(x)       # round 1
            logits, labels = client.predict(x2)      # round 2 (keep-alive)
    """

    def __init__(
        self,
        meta: ModelMeta,
        batch: int,
        *,
        host: str = "127.0.0.1",
        port: int,
        mode: str = "bank",
        relu_variant: str = "oblivious",
        timeout_s: float = 600.0,
        group: ModpGroup = DEFAULT_GROUP,
        ro: RandomOracle = default_ro,
        seed: int | None = None,
        tracer: Tracer | None = None,
        channel_wrap=None,
    ) -> None:
        self.meta = meta
        self.batch = batch
        self.ring = Ring(meta.ring_bits)
        self.encoder = FixedPointEncoder(self.ring, meta.frac_bits)
        self.chan = tcp.connect(
            host, port, timeout_s=timeout_s, session_id=tcp.SESSION_ANY
        )
        if channel_wrap is not None:
            # e.g. a ShapedChannel for link-shaped benchmarking.
            self.chan = channel_wrap(self.chan)
        try:
            self.session = ClientSession(
                self.chan, meta, batch, relu_variant=relu_variant, mode=mode,
                group=group, ro=ro, seed=seed, tracer=tracer,
            )
        except Exception:
            # Best-effort teardown: a socket already reset by the server
            # must not raise out of close() here and replace the typed
            # deny reason the session-layer exception carries.
            try:
                self.chan.close()
            except (ChannelError, OSError):
                pass
            raise
        self.tracer = self.session.tracer
        self.session_id = self.session.session_id

    @property
    def rounds_done(self) -> int:
        return self.session.rounds_done

    def predict(self, x_float: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One secure prediction on ``(batch, features)`` float inputs.

        Returns ``(logits, labels)``: signed fixed-point logits shaped
        ``(classes, batch)`` and the argmax label per column.
        """
        x = np.asarray(x_float, dtype=np.float64)
        expected = (self.batch, self.meta.layers[0].in_features)
        if x.shape != expected:
            raise ConfigError(f"expected input of shape {expected}, got {x.shape}")
        logits = self.session.predict_encoded(self.encoder.encode(x.T))
        labels = np.argmax(self.ring.to_signed(logits), axis=0)
        return logits, labels

    def close(self) -> None:
        self.session.close()

    def __enter__(self) -> "PredictionClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
