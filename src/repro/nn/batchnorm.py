"""Batch normalization for inference, and folding it into linear layers.

The secure pipeline only understands linear layers and the GC
activations, so BatchNorm must disappear before quantization.  For
inference BN is the affine map ``y = gamma * (x - mu) / sigma + beta``,
which folds exactly into the preceding Dense/Conv2d:

    W' = W * (gamma / sigma)[:, None]        (per output row/channel)
    b' = (b - mu) * gamma / sigma + beta

:func:`fold_batchnorm` rewrites a :class:`~repro.nn.model.Sequential`
in-place-free, returning an equivalent model with every
``linear -> BatchNorm`` pair merged — after which ``quantize_model``
applies unchanged.  This is the standard deployment move for QNNs (the
paper's INT4/INT8 references assume it).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import Conv2d, Dense, Layer
from repro.nn.model import Sequential


class BatchNorm(Layer):
    """Inference-time batch normalization over features or channels.

    Running statistics are part of the layer state (set them from
    training or calibration data via :meth:`calibrate`).
    """

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        if num_features < 1:
            raise ConfigError("num_features must be positive")
        self.num_features = num_features
        self.eps = eps
        self.gamma = np.ones(num_features)
        self.beta = np.zeros(num_features)
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def _axes(self, x: np.ndarray) -> tuple:
        if x.ndim == 2:  # (batch, features)
            return (0,)
        if x.ndim == 4:  # (batch, channels, h, w)
            return (0, 2, 3)
        raise ConfigError(f"BatchNorm expects 2-D or 4-D input, got {x.ndim}-D")

    def calibrate(self, x: np.ndarray) -> None:
        """Set running statistics from a calibration batch."""
        axes = self._axes(np.asarray(x))
        self.running_mean = np.asarray(x).mean(axis=axes)
        self.running_var = np.asarray(x).var(axis=axes)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._axes(np.asarray(x))  # validates dimensionality
        scale = self.gamma / np.sqrt(self.running_var + self.eps)
        shift = self.beta - self.running_mean * scale
        if x.ndim == 2:
            return x * scale + shift
        return x * scale[None, :, None, None] + shift[None, :, None, None]

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.gamma, self.beta]


def _fold_into(linear, bn: BatchNorm):
    """Return a *new* linear layer with bn folded in."""
    if isinstance(linear, Dense):
        merged = Dense(linear.weight.shape[1], linear.weight.shape[0])
        expected = linear.weight.shape[0]
    elif isinstance(linear, Conv2d):
        merged = Conv2d(
            linear.in_channels, linear.out_channels, linear.kernel_size, linear.stride
        )
        expected = linear.out_channels
    else:
        raise ConfigError(
            f"BatchNorm must follow Dense or Conv2d, found {type(linear).__name__}"
        )
    if bn.num_features != expected:
        raise ConfigError(
            f"BatchNorm over {bn.num_features} features cannot fold into a "
            f"layer with {expected} outputs"
        )
    scale = bn.gamma / np.sqrt(bn.running_var + bn.eps)
    merged.weight = linear.weight * scale[:, None]
    merged.bias = (linear.bias - bn.running_mean) * scale + bn.beta
    return merged


def fold_batchnorm(model: Sequential) -> Sequential:
    """An equivalent model with every ``linear -> BatchNorm`` pair merged."""
    folded: list[Layer] = []
    for layer in model.layers:
        if isinstance(layer, BatchNorm):
            if not folded or not isinstance(folded[-1], (Dense, Conv2d)):
                raise ConfigError("BatchNorm must directly follow Dense or Conv2d")
            folded[-1] = _fold_into(folded[-1], layer)
        else:
            folded.append(layer)
    return Sequential(folded)
