"""Sequential model container and the paper's evaluation architecture."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import AvgPool2d, Conv2d, Dense, Flatten, Layer, ReLU


class Sequential:
    """An ordered stack of layers with forward/backward passes."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ConfigError("a model needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad
        for layer in reversed(self.layers):
            out = layer.backward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class indices for a batch of inputs."""
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))

    @property
    def dense_layers(self) -> list[Dense]:
        return [layer for layer in self.layers if isinstance(layer, Dense)]


def mnist_mlp(seed: int = 1, hidden: int = 128, input_dim: int = 784, classes: int = 10) -> Sequential:
    """The paper's Figure-4 network: FC(784->128), ReLU, FC(128->128),
    ReLU, FC(128->10)."""
    return Sequential(
        [
            Dense(input_dim, hidden, seed=seed),
            ReLU(),
            Dense(hidden, hidden, seed=seed + 1),
            ReLU(),
            Dense(hidden, classes, seed=seed + 2),
        ]
    )


def vgg_cifar(
    seed: int = 1, base: int = 8, classes: int = 10, side: int = 32
) -> Sequential:
    """A VGG-style CIFAR-shaped conv stack (valid padding, 3x3 stride 1).

    Conv(3->b) / ReLU / AvgPool2 / Conv(b->2b) / ReLU / Conv(2b->2b) /
    ReLU / Flatten / FC(64) / ReLU / FC(classes).  Every convolution is
    3x3 stride-1, so the whole stack is winograd-eligible; average
    pooling keeps the secure path free of extra GC trees.  ``side=32``
    is the CIFAR geometry; any ``side >= 8`` with ``side - 2`` even
    works (valid 3x3 convs shrink the map by 2, the pool halves it).
    """
    if side < 8 or (side - 2) % 2:
        raise ConfigError(
            f"vgg_cifar needs side >= 8 with side - 2 even, got {side}"
        )
    s1 = (side - 2) // 2  # after conv1 + pool
    s3 = s1 - 4  # after conv2 and conv3
    if s3 < 1:
        raise ConfigError(f"side {side} collapses before the conv stack ends")
    return Sequential(
        [
            Conv2d(3, base, 3, seed=seed),
            ReLU(),
            AvgPool2d(2),
            Conv2d(base, 2 * base, 3, seed=seed + 1),
            ReLU(),
            Conv2d(2 * base, 2 * base, 3, seed=seed + 2),
            ReLU(),
            Flatten(),
            Dense(2 * base * s3 * s3, 64, seed=seed + 3),
            ReLU(),
            Dense(64, classes, seed=seed + 4),
        ]
    )


def vgg_imagenet(
    seed: int = 1, base: int = 16, classes: int = 16, side: int = 226
) -> Sequential:
    """A VGG-style ImageNet-shaped conv stack (valid padding, 3x3 stride 1).

    Conv(3->b) / ReLU / AvgPool2 / Conv(b->2b) / ReLU / AvgPool2 /
    Conv(2b->4b) / ReLU / Flatten / FC(128) / ReLU / FC(classes).
    ``side=226`` reproduces the 224-map ImageNet entry (valid conv eats
    the usual pad); the two conv+pool stages demand ``side % 4 == 2`` so
    every pool sees an even map.  Smaller ``side`` (e.g. 34) gives the
    same layer *structure* at test-tractable scale — the big-model
    benchmark drives the full-size conv layers individually.
    """
    if side < 14 or side % 4 != 2:
        raise ConfigError(
            f"vgg_imagenet needs side % 4 == 2 with side >= 14, got {side}"
        )
    s1 = (side - 2) // 2  # after conv1 + pool
    s2 = (s1 - 2) // 2  # after conv2 + pool
    s3 = s2 - 2  # after conv3
    if s3 < 1:
        raise ConfigError(f"side {side} collapses before the conv stack ends")
    return Sequential(
        [
            Conv2d(3, base, 3, seed=seed),
            ReLU(),
            AvgPool2d(2),
            Conv2d(base, 2 * base, 3, seed=seed + 1),
            ReLU(),
            AvgPool2d(2),
            Conv2d(2 * base, 4 * base, 3, seed=seed + 2),
            ReLU(),
            Flatten(),
            Dense(4 * base * s3 * s3, 128, seed=seed + 3),
            ReLU(),
            Dense(128, classes, seed=seed + 4),
        ]
    )
