"""Sequential model container and the paper's evaluation architecture."""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import Dense, Layer, ReLU


class Sequential:
    """An ordered stack of layers with forward/backward passes."""

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ConfigError("a model needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = np.asarray(x, dtype=np.float64)
        for layer in self.layers:
            out = layer.forward(out)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        out = grad
        for layer in reversed(self.layers):
            out = layer.backward(out)
        return out

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Class indices for a batch of inputs."""
        return np.argmax(self.forward(x), axis=1)

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))

    @property
    def dense_layers(self) -> list[Dense]:
        return [layer for layer in self.layers if isinstance(layer, Dense)]


def mnist_mlp(seed: int = 1, hidden: int = 128, input_dim: int = 784, classes: int = 10) -> Sequential:
    """The paper's Figure-4 network: FC(784->128), ReLU, FC(128->128),
    ReLU, FC(128->10)."""
    return Sequential(
        [
            Dense(input_dim, hidden, seed=seed),
            ReLU(),
            Dense(hidden, hidden, seed=seed + 1),
            ReLU(),
            Dense(hidden, classes, seed=seed + 2),
        ]
    )
