"""Persistence: ship a quantized model to the server, its metadata to the
client.

A deployment has three artifacts:

* the **server bundle** (``save_model`` / ``load_model``): weights,
  biases, schemes — an ``.npz`` with a JSON manifest inside;
* the **client metadata** (``save_meta`` / ``load_meta``): a JSON file
  with layer shapes, fragment schemes, ring/fixed-point parameters — no
  weights, exactly :class:`repro.core.protocol.ModelMeta`;
* the code, which is shared.

The formats are deliberately plain (npz + json) so they can be inspected
and diffed; they are versioned for forward compatibility.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.protocol import LayerMeta, ModelMeta
from repro.errors import ConfigError
from repro.nn.lowering import Im2colSpec, PoolSpec
from repro.nn.quantize import QuantizedDense, QuantizedModel
from repro.quant.fragments import FragmentScheme, FragmentSpec
from repro.quant.schemes import QuantizedTensor
from repro.utils.ring import Ring

FORMAT_VERSION = 1


# --------------------------------------------------------------------- #
# scheme <-> dict
# --------------------------------------------------------------------- #
def scheme_to_dict(scheme: FragmentScheme) -> dict:
    return {
        "name": scheme.name,
        "eta": scheme.eta,
        "signed": scheme.signed,
        "fragments": [
            {"n_values": f.n_values, "values": list(f.values)} for f in scheme.fragments
        ],
    }


def scheme_from_dict(data: dict) -> FragmentScheme:
    fragments = [
        FragmentSpec(f["n_values"], tuple(f["values"])) for f in data["fragments"]
    ]
    return FragmentScheme(data["name"], data["eta"], fragments, data["signed"])


def _spec_to_dict(spec: Im2colSpec | None) -> dict | None:
    if spec is None:
        return None
    data = {
        "in_channels": spec.in_channels,
        "height": spec.height,
        "width": spec.width,
        "kernel": spec.kernel,
        "stride": spec.stride,
    }
    # The chunking policy is optional metadata: emitted only when set so
    # unchunked bundles stay byte-identical to the historical layout.
    if spec.chunk_cols is not None:
        data["chunk_cols"] = spec.chunk_cols
    return data


def _spec_from_dict(data: dict | None) -> Im2colSpec | None:
    return Im2colSpec(**data) if data else None


def _pool_to_dict(pool: PoolSpec | None) -> dict | None:
    if pool is None:
        return None
    return {
        "kind": pool.kind,
        "channels": pool.channels,
        "height": pool.height,
        "width": pool.width,
        "kernel": pool.kernel,
    }


def _pool_from_dict(data: dict | None) -> PoolSpec | None:
    return PoolSpec(**data) if data else None


# --------------------------------------------------------------------- #
# server bundle
# --------------------------------------------------------------------- #
def save_model(path, model: QuantizedModel) -> None:
    """Write the full quantized model (server side) to an ``.npz``."""
    manifest = {
        "format_version": FORMAT_VERSION,
        "ring_bits": model.ring.bits,
        "frac_bits": model.encoder.frac_bits,
        "output_deferral": model.output_deferral,
        "layers": [
            {
                "scheme": scheme_to_dict(layer.scheme),
                "scale": layer.weights.scale,
                "shift": layer.weights.shift,
                "truncate_bits": layer.truncate_bits,
                "conv": _spec_to_dict(layer.conv),
                "pool": _pool_to_dict(layer.pool),
                "backend": layer.backend,
            }
            for layer in model.layers
        ],
    }
    arrays = {"manifest": np.frombuffer(json.dumps(manifest).encode(), dtype=np.uint8)}
    for idx, layer in enumerate(model.layers):
        arrays[f"w{idx}"] = layer.w_int
        arrays[f"b{idx}"] = layer.bias_int
    with open(path, "wb") as fh:
        np.savez(fh, **arrays)


def load_model(path) -> QuantizedModel:
    """Inverse of :func:`save_model`."""
    with np.load(path) as bundle:
        manifest = json.loads(bytes(bundle["manifest"]).decode())
        if manifest.get("format_version") != FORMAT_VERSION:
            raise ConfigError(
                f"unsupported model format {manifest.get('format_version')}"
            )
        layers = []
        for idx, info in enumerate(manifest["layers"]):
            tensor = QuantizedTensor(
                ints=bundle[f"w{idx}"].astype(np.int64),
                scale=info["scale"],
                scheme=scheme_from_dict(info["scheme"]),
                shift=info["shift"],
            )
            layers.append(
                QuantizedDense(
                    weights=tensor,
                    bias_int=bundle[f"b{idx}"].astype(np.int64),
                    truncate_bits=info["truncate_bits"],
                    conv=_spec_from_dict(info["conv"]),
                    pool=_pool_from_dict(info.get("pool")),
                    backend=info.get("backend", "im2col"),
                )
            )
    return QuantizedModel(
        layers,
        Ring(manifest["ring_bits"]),
        manifest["frac_bits"],
        output_deferral=manifest["output_deferral"],
    )


# --------------------------------------------------------------------- #
# client metadata
# --------------------------------------------------------------------- #
def save_meta(path, meta: ModelMeta) -> None:
    """Write the weight-free architecture metadata (client side) as JSON."""
    doc = {
        "format_version": FORMAT_VERSION,
        "ring_bits": meta.ring_bits,
        "frac_bits": meta.frac_bits,
        "layers": [
            {
                "out_features": layer.out_features,
                "in_features": layer.in_features,
                "scheme": scheme_to_dict(layer.scheme),
                "truncate_bits": layer.truncate_bits,
                "conv": _spec_to_dict(layer.conv),
                "pool": _pool_to_dict(layer.pool),
                "backend": layer.backend,
            }
            for layer in meta.layers
        ],
    }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2))


def load_meta(path) -> ModelMeta:
    """Inverse of :func:`save_meta`."""
    doc = json.loads(pathlib.Path(path).read_text())
    if doc.get("format_version") != FORMAT_VERSION:
        raise ConfigError(f"unsupported meta format {doc.get('format_version')}")
    layers = tuple(
        LayerMeta(
            out_features=info["out_features"],
            in_features=info["in_features"],
            scheme=scheme_from_dict(info["scheme"]),
            truncate_bits=info["truncate_bits"],
            conv=_spec_from_dict(info["conv"]),
            pool=_pool_from_dict(info.get("pool")),
            backend=info.get("backend", "im2col"),
        )
        for info in doc["layers"]
    )
    return ModelMeta(layers=layers, ring_bits=doc["ring_bits"], frac_bits=doc["frac_bits"])
