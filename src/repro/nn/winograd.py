"""Winograd F(2x2,3x3) lowering: transform-domain secure convolution.

A stride-1 3x3 convolution can be computed per 4x4 input tile as

    Y_tile = A^T [ (B^T d B) (.) (G g G^T) ] A

with the classic F(2x2,3x3) matrices.  Two facts make this a drop-in
second backend next to im2col (:mod:`repro.nn.lowering`):

* ``B^T d B`` and ``A^T m A`` are **public integer linear maps**, so
  each party applies them to its own additive share locally — exactly
  like the im2col gather, they commute with sharing.
* The only secret-dependent bilinear step is the element-wise tile
  product with the transformed weights, and summed over input channels
  that is 16 independent ``(C_out, C_in) @ (C_in, batch * n_tiles)``
  matrix products — one *grouped* dot-product triplet draw
  (:class:`repro.core.triplets.TripletConfig` with ``groups=16``).

Triplet-element count per layer drops from ``9 C_in * C_out * out_h *
out_w`` (im2col) to ``16 C_in * C_out * n_tiles``: ~2.25x fewer at
stride 1 since each tile covers four output positions.

**Integer-exact scaling.**  ``G`` has half-integer entries; we use
``G2 = 2 G`` (integer), making every transformed weight integral and the
lifted output exactly ``4 * Y``.  The division by 4 is share-local and
*exact* (up to the same wrap-failure class as SecureML truncation):
since ``u + v = 4Y (mod 2^l)`` and ``4 | 4Y``, the shares' low dibits
are complementary — ``u mod 4 = (4 - v mod 4) mod 4`` deterministically.
Hence ``floor(u/4) + ceil(v/4) = (4Y)/4 + c * 2^(l-2) (mod 2^l)`` where
the carry ``c`` is 1 unless the value wraps; party 0 subtracts the
constant ``2^(l-2)`` and both parties end with exact shares of ``Y``
except with probability ``~4|Y|/2^l`` (see PROTOCOLS.md section 16).
No interaction, no leakage: each party only touches its own share.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ConfigError
from repro.nn.lowering import Im2colSpec
from repro.quant.headroom import (  # noqa: F401  (re-exported for callers)
    WINOGRAD_TILE_POINTS,
    check_winograd_headroom,
    winograd_scheme,
)
from repro.utils.ring import Ring

_U64 = np.uint64

#: ``B^T`` — input transform (row L1 norms all 2).
BT_INT = np.array(
    [[1, 0, -1, 0], [0, 1, 1, 0], [0, -1, 1, 0], [0, 1, 0, -1]], dtype=np.int64
)

#: ``2 G`` — integer weight transform; ``G2 g G2^T = 4 * G g G^T``.
G2_INT = np.array([[2, 0, 0], [1, 1, 1], [1, -1, 1], [0, 0, 2]], dtype=np.int64)

#: ``A^T`` — output transform (applied to shares of the tile products).
AT_INT = np.array([[1, 1, 1, 0], [0, 1, -1, -1]], dtype=np.int64)

#: The uniform scale the integer ``G2`` convention introduces: the lifted
#: output is ``4 * conv`` and :func:`divide_share_by4` removes it.
WINOGRAD_OUTPUT_SCALE = 4


@dataclass(frozen=True)
class WinogradSpec:
    """Tile geometry of one F(2x2,3x3) lowering (mirrors Im2colSpec).

    Only ``kernel=3, stride=1`` convolutions are eligible; the right and
    bottom edges are zero-padded up to a whole number of 2x2 output
    tiles (padding zeros is share-exact: both parties pad with 0 and the
    reconstructed padded value is 0).
    """

    in_channels: int
    height: int
    width: int
    kernel: int = 3
    stride: int = 1

    def __post_init__(self) -> None:
        if self.kernel != 3 or self.stride != 1:
            raise ConfigError(
                "winograd F(2x2,3x3) supports kernel=3, stride=1 only; "
                f"got kernel={self.kernel}, stride={self.stride}"
            )
        if min(self.in_channels, self.height, self.width) < 1:
            raise ConfigError("winograd geometry must be positive")
        if self.height < 3 or self.width < 3:
            raise ConfigError(
                f"kernel 3 does not fit a {self.height}x{self.width} input"
            )

    @staticmethod
    def supports(spec: Im2colSpec) -> bool:
        """Whether an im2col geometry is eligible for this backend."""
        return spec.kernel == 3 and spec.stride == 1

    @classmethod
    def from_im2col(cls, spec: Im2colSpec) -> "WinogradSpec":
        if not cls.supports(spec):
            raise ConfigError(
                f"winograd backend cannot lower kernel={spec.kernel}, "
                f"stride={spec.stride} (needs 3x3 stride 1)"
            )
        return cls(spec.in_channels, spec.height, spec.width)

    @property
    def out_h(self) -> int:
        return self.height - 2

    @property
    def out_w(self) -> int:
        return self.width - 2

    @property
    def n_positions(self) -> int:
        return self.out_h * self.out_w

    @property
    def tiles_h(self) -> int:
        return -(-self.out_h // 2)

    @property
    def tiles_w(self) -> int:
        return -(-self.out_w // 2)

    @property
    def n_tiles(self) -> int:
        """2x2 output tiles per image — the per-image triplet batch factor."""
        return self.tiles_h * self.tiles_w

    @property
    def pad_h(self) -> int:
        """Padded input height: each tile reads a 4x4 window at stride 2."""
        return 2 * self.tiles_h + 2

    @property
    def pad_w(self) -> int:
        return 2 * self.tiles_w + 2

    @property
    def in_features(self) -> int:
        return self.in_channels * self.height * self.width


@lru_cache(maxsize=None)
def _transform_mats(bits: int) -> tuple[np.ndarray, np.ndarray]:
    """(BT, AT) as ring elements of ``Ring(bits)`` (signed entries reduced)."""
    ring = Ring(bits)
    return ring.reduce(BT_INT), ring.reduce(AT_INT)


def lower_tiles(spec: WinogradSpec, activation: np.ndarray, ring: Ring) -> np.ndarray:
    """Share-locally lower a flat activation into the tile-transform domain.

    ``activation`` is ``(in_features, batch)``; the result is
    ``(16 * in_channels, batch * n_tiles)``: row ``p * C_in + ci`` holds
    tile position ``p = 4a + b`` of channel ``ci`` (the grouped-triplet
    operand block layout), columns are image-major (all tiles of image 0
    first) so per-client column blocks stay contiguous for wide rounds.

    All arithmetic is in-ring (uint64 wraparound then mask), so the map
    commutes with additive sharing exactly.
    """
    act = np.asarray(activation)
    if act.ndim != 2 or act.shape[0] != spec.in_features:
        raise ConfigError(
            f"expected ({spec.in_features}, batch) activation, got {act.shape}"
        )
    batch = act.shape[1]
    bt, _ = _transform_mats(ring.bits)
    cube = ring.reduce(act).reshape(spec.in_channels, spec.height, spec.width, batch)
    padded = np.zeros(
        (spec.in_channels, spec.pad_h, spec.pad_w, batch), dtype=_U64
    )
    padded[:, : spec.height, : spec.width] = cube
    # (C, th, tw, B, 4, 4): 4x4 input windows at stride 2.
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (4, 4), axis=(1, 2)
    )[:, ::2, ::2]
    # x~ = B^T d B per tile; uint64 matmul wraps mod 2^64, reduce masks to 2^l.
    xt = ring.reduce(bt @ windows @ bt.T)  # (C, th, tw, B, 4, 4)
    # rows (a, b, C) -> p * C_in + ci; cols (B, th, tw) -> image-major tiles.
    xt = xt.transpose(4, 5, 0, 3, 1, 2)
    return np.ascontiguousarray(
        xt.reshape(16 * spec.in_channels, batch * spec.n_tiles)
    )


def lower_tiles_block(
    spec: WinogradSpec, activation: np.ndarray, ring: Ring, lo: int, hi: int
) -> np.ndarray:
    """Lower columns ``[lo, hi)`` of :func:`lower_tiles`'s output only.

    Columns are the image-major flat tile axis (``batch * n_tiles``,
    image outer, tiles row-major over ``tiles_h x tiles_w``).  The result
    is ``(16 * in_channels, hi - lo)``, byte-identical to
    ``lower_tiles(spec, activation, ring)[:, lo:hi]``, but only the
    block's 4x4 windows — never the full transformed operand — are
    materialized (the zero-padded input cube is the same size as the
    activation itself, which the caller holds anyway).
    """
    act = np.asarray(activation)
    if act.ndim != 2 or act.shape[0] != spec.in_features:
        raise ConfigError(
            f"expected ({spec.in_features}, batch) activation, got {act.shape}"
        )
    batch = act.shape[1]
    total = batch * spec.n_tiles
    if not (0 <= lo <= hi <= total):
        raise ConfigError(
            f"column block [{lo}, {hi}) outside [0, {total}) tile columns"
        )
    bt, _ = _transform_mats(ring.bits)
    cube = ring.reduce(act).reshape(spec.in_channels, spec.height, spec.width, batch)
    padded = np.zeros((spec.in_channels, spec.pad_h, spec.pad_w, batch), dtype=_U64)
    padded[:, : spec.height, : spec.width] = cube
    cols = np.arange(lo, hi, dtype=np.int64)
    imgs, tiles = np.divmod(cols, spec.n_tiles)
    ti, tj = np.divmod(tiles, spec.tiles_w)
    span = np.arange(4, dtype=np.int64)
    rows = 2 * ti[:, None] + span[None, :]  # (ncols, 4)
    colns = 2 * tj[:, None] + span[None, :]  # (ncols, 4)
    # (C, ncols, 4, 4): each block column's 4x4 window.
    windows = padded[:, rows[:, :, None], colns[:, None, :], imgs[:, None, None]]
    xt = ring.reduce(bt @ windows @ bt.T)  # (C, ncols, 4, 4)
    return np.ascontiguousarray(
        xt.transpose(2, 3, 0, 1).reshape(16 * spec.in_channels, hi - lo)
    )


def lift_tiles(
    spec: WinogradSpec, out_channels: int, product: np.ndarray, ring: Ring
) -> np.ndarray:
    """Share-locally lift tile products back to flat features.

    ``product`` is ``(16 * out_channels, batch * n_tiles)`` (the grouped
    matmul output, row ``p * C_out + oc``); the result is
    ``(out_channels * n_positions, batch)`` in C order (oc, oh, ow) —
    shares of ``4 * conv`` (see :data:`WINOGRAD_OUTPUT_SCALE`).
    """
    prod = np.asarray(product)
    if prod.ndim != 2 or prod.shape[1] == 0:
        raise ConfigError(f"winograd product has no columns to lift (shape {prod.shape})")
    if prod.shape[0] != 16 * out_channels or prod.shape[1] % spec.n_tiles:
        raise ConfigError(f"unexpected winograd product shape {prod.shape}")
    batch = prod.shape[1] // spec.n_tiles
    _, at = _transform_mats(ring.bits)
    m = ring.reduce(prod).reshape(
        4, 4, out_channels, batch, spec.tiles_h, spec.tiles_w
    )
    m = m.transpose(2, 3, 4, 5, 0, 1)  # (oc, B, th, tw, 4, 4)
    y = ring.reduce(at @ m @ at.T)  # (oc, B, th, tw, 2, 2)
    # Assemble the padded output plane, then crop to the true geometry.
    y = y.transpose(0, 1, 2, 4, 3, 5).reshape(
        out_channels, batch, 2 * spec.tiles_h, 2 * spec.tiles_w
    )
    y = y[:, :, : spec.out_h, : spec.out_w]
    y = y.transpose(0, 2, 3, 1).reshape(out_channels * spec.n_positions, batch)
    return np.ascontiguousarray(y)


def transform_weights(spec: WinogradSpec, w_int: np.ndarray) -> np.ndarray:
    """``G2 g G2^T`` per (oc, ci) filter, stacked for the grouped triplet.

    ``w_int`` is the layer's im2col weight matrix ``(out_channels,
    C_in * 9)`` with patch order (ci, kh, kw); the result is the stacked
    ``(16 * out_channels, C_in)`` int64 matrix whose group-``p`` block
    (rows ``[p * C_out, (p+1) * C_out)``) multiplies operand rows
    ``[p * C_in, (p+1) * C_in)`` of :func:`lower_tiles`.
    """
    w = np.asarray(w_int, dtype=np.int64)
    if w.ndim != 2 or w.shape[1] != spec.in_channels * 9:
        raise ConfigError(
            f"expected weights of shape (oc, {spec.in_channels * 9}), got {w.shape}"
        )
    out_channels = w.shape[0]
    g = w.reshape(out_channels, spec.in_channels, 3, 3)
    wt = G2_INT @ g @ G2_INT.T  # (oc, ci, 4, 4), exact int64
    return np.ascontiguousarray(
        wt.transpose(2, 3, 0, 1).reshape(16 * out_channels, spec.in_channels)
    )


def lower_tiles_value(spec: WinogradSpec, activation: np.ndarray) -> np.ndarray:
    """Float64 twin of :func:`lower_tiles` (overflow accounting, no ring).

    Same layout and transform; used by the quantizer's range check to
    track the true transform-domain magnitudes the integer pipeline hits.
    """
    act = np.asarray(activation, dtype=np.float64)
    if act.ndim != 2 or act.shape[0] != spec.in_features:
        raise ConfigError(
            f"expected ({spec.in_features}, batch) activation, got {act.shape}"
        )
    batch = act.shape[1]
    cube = act.reshape(spec.in_channels, spec.height, spec.width, batch)
    padded = np.zeros((spec.in_channels, spec.pad_h, spec.pad_w, batch))
    padded[:, : spec.height, : spec.width] = cube
    windows = np.lib.stride_tricks.sliding_window_view(
        padded, (4, 4), axis=(1, 2)
    )[:, ::2, ::2]
    bt = BT_INT.astype(np.float64)
    xt = (bt @ windows @ bt.T).transpose(4, 5, 0, 3, 1, 2)
    return xt.reshape(16 * spec.in_channels, batch * spec.n_tiles)


def lift_tiles_value(
    spec: WinogradSpec, out_channels: int, product: np.ndarray
) -> np.ndarray:
    """Float64 twin of :func:`lift_tiles` (result is ``4 * conv`` values)."""
    prod = np.asarray(product, dtype=np.float64)
    if prod.ndim != 2 or prod.shape[0] != 16 * out_channels:
        raise ConfigError(f"unexpected winograd product shape {prod.shape}")
    batch = prod.shape[1] // spec.n_tiles
    at = AT_INT.astype(np.float64)
    m = prod.reshape(4, 4, out_channels, batch, spec.tiles_h, spec.tiles_w)
    y = at @ m.transpose(2, 3, 4, 5, 0, 1) @ at.T
    y = y.transpose(0, 1, 2, 4, 3, 5).reshape(
        out_channels, batch, 2 * spec.tiles_h, 2 * spec.tiles_w
    )
    y = y[:, :, : spec.out_h, : spec.out_w]
    return y.transpose(0, 2, 3, 1).reshape(out_channels * spec.n_positions, batch)


def divide_share_by4(ring: Ring, share: np.ndarray, party: int) -> np.ndarray:
    """Exact share-local division of a 4-divisible shared value by 4.

    Given ``u + v = M (mod 2^l)`` with ``4 | M``: ``u mod 4`` and
    ``v mod 4`` sum to 0 or 4, so ``floor(u/4) + ceil(v/4)`` equals
    ``M/4 + 2^(l-2)`` whenever ``u + v`` wrapped past ``2^l`` once —
    which it does except with probability ``~|M|/2^(l-2)`` over the
    uniform share split.  Party 0 subtracts the constant; the result is
    exact shares of ``M/4`` (same failure class and probability as
    SecureML share truncation, error magnitude ``2^(l-2)`` when it hits).
    """
    if ring.bits < 3:
        raise ConfigError("winograd division needs a ring of at least 3 bits")
    if party not in (0, 1):
        raise ConfigError(f"party must be 0 or 1, got {party}")
    s = ring.reduce(share)
    if party == 0:
        return ring.sub(s >> _U64(2), _U64(1) << _U64(ring.bits - 2))
    return ring.reduce((s >> _U64(2)) + ((s & _U64(3)) != 0).astype(_U64))
