"""Quantization-aware fine-tuning with the straight-through estimator.

Post-training quantization is lossy at very low bitwidths (the ternary
rows of EXPERIMENTS.md drop a couple of accuracy points; binary {0,1}
collapses).  The standard recovery — used by the QNN literature the
paper builds on (QSGD, XONN, QUOTIENT all train *for* their weight
space) — is a short fine-tune where the forward pass sees the quantized
weights but gradients flow to the float shadow weights as if
quantization were the identity (the straight-through estimator, STE).

:func:`finetune_quantized` wraps the plain trainer: before every forward
pass each Dense layer's weights are replaced by their dequantized
projection onto the fragment scheme's grid, and after the gradient step
the float shadows are restored and updated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.nn.train import TrainConfig, softmax_cross_entropy
from repro.quant.fragments import FragmentScheme
from repro.quant.schemes import quantize_for_scheme
from repro.utils.rng import derive_rng


@dataclass
class QatConfig:
    epochs: int = 3
    batch_size: int = 64
    learning_rate: float = 0.01
    seed: int = 0


def _project(weight: np.ndarray, scheme: FragmentScheme) -> np.ndarray:
    """Quantize-dequantize: the forward-pass weights under STE."""
    q = quantize_for_scheme(weight, scheme)
    return q.dequantize()


def finetune_quantized(
    model: Sequential,
    scheme: FragmentScheme | list[FragmentScheme],
    x: np.ndarray,
    y: np.ndarray,
    config: QatConfig = QatConfig(),
) -> list[float]:
    """STE fine-tune of ``model``'s Dense layers toward ``scheme``'s grid.

    Mutates the model's float weights; quantize afterwards with
    :func:`repro.nn.quantize.quantize_model` as usual.  Returns per-epoch
    losses.
    """
    dense_layers = [layer for layer in model.layers if isinstance(layer, Dense)]
    if isinstance(scheme, FragmentScheme):
        schemes = [scheme] * len(dense_layers)
    else:
        schemes = list(scheme)
        if len(schemes) != len(dense_layers):
            raise ConfigError(
                f"got {len(schemes)} schemes for {len(dense_layers)} Dense layers"
            )

    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    rng = derive_rng(config.seed, "qat")
    history = []
    for _epoch in range(config.epochs):
        order = rng.permutation(x.shape[0])
        losses = []
        for start in range(0, x.shape[0], config.batch_size):
            idx = order[start : start + config.batch_size]
            # Swap in projected weights for the forward/backward pass.
            shadows = [layer.weight.copy() for layer in dense_layers]
            for layer, layer_scheme in zip(dense_layers, schemes):
                layer.weight[...] = _project(layer.weight, layer_scheme)
            logits = model.forward(x[idx])
            loss, grad = softmax_cross_entropy(logits, y[idx])
            model.backward(grad)
            # STE: apply the quantized-forward gradients to the shadows.
            for layer, shadow in zip(dense_layers, shadows):
                layer.weight[...] = shadow - config.learning_rate * layer.grad_weight
                layer.bias -= config.learning_rate * layer.grad_bias
            losses.append(loss)
        history.append(float(np.mean(losses)))
    return history
