"""Plaintext neural-network substrate: layers, training, quantization, data.

This is the model zoo the secure protocols consume.  Training is a small
numpy SGD loop; the Figure-4 architecture of the paper (784-128-128-10
MLP with ReLU) is :func:`mnist_mlp`.
"""

from repro.nn.data import synthetic_mnist, SyntheticMnist
from repro.nn.layers import Dense, ReLU, Flatten, Conv2d, AvgPool2d
from repro.nn.model import Sequential, mnist_mlp
from repro.nn.train import train_classifier, TrainConfig
from repro.nn.quantize import QuantizedModel, quantize_model

__all__ = [
    "synthetic_mnist",
    "SyntheticMnist",
    "Dense",
    "ReLU",
    "Flatten",
    "Conv2d",
    "AvgPool2d",
    "Sequential",
    "mnist_mlp",
    "train_classifier",
    "TrainConfig",
    "QuantizedModel",
    "quantize_model",
]
