"""Synthetic MNIST-like dataset.

The sandbox has no network access, so instead of the real MNIST files we
generate a deterministic, learnable 10-class problem with the same tensor
geometry (28x28 grayscale digits, values in [0, 1]).  Each class is a
smooth random template; samples are randomly shifted, scaled and
noise-corrupted copies.  The secure protocols are data-oblivious — every
784-dim input exercises identical code paths — so this substitution only
matters for the (reported separately) accuracy numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import derive_rng

IMAGE_SIDE = 28
N_CLASSES = 10


def _smooth(image: np.ndarray, passes: int = 3) -> np.ndarray:
    """Cheap separable box blur to make templates low-frequency."""
    out = image.astype(np.float64)
    for _ in range(passes):
        out = (np.roll(out, 1, 0) + out + np.roll(out, -1, 0)) / 3.0
        out = (np.roll(out, 1, 1) + out + np.roll(out, -1, 1)) / 3.0
    return out


def _class_templates(seed: int) -> np.ndarray:
    """(10, 28, 28) smooth templates, normalized to [0, 1]."""
    templates = np.empty((N_CLASSES, IMAGE_SIDE, IMAGE_SIDE))
    for cls in range(N_CLASSES):
        rng = derive_rng(seed, "template", cls)
        raw = rng.normal(size=(IMAGE_SIDE, IMAGE_SIDE))
        smooth = _smooth(raw, passes=4)
        smooth -= smooth.min()
        peak = smooth.max()
        templates[cls] = smooth / peak if peak > 0 else smooth
    return templates


@dataclass
class SyntheticMnist:
    """A fixed train/test split of the synthetic digit problem."""

    train_x: np.ndarray  # (n_train, 784) float64 in [0, 1]
    train_y: np.ndarray  # (n_train,) int64
    test_x: np.ndarray
    test_y: np.ndarray

    @property
    def input_dim(self) -> int:
        return self.train_x.shape[1]


def synthetic_mnist(
    n_train: int = 2000,
    n_test: int = 500,
    seed: int = 2022,
    noise: float = 0.25,
    max_shift: int = 2,
) -> SyntheticMnist:
    """Generate the dataset; fully determined by ``seed``."""
    if n_train < N_CLASSES or n_test < N_CLASSES:
        raise ConfigError("need at least one sample per class in each split")
    templates = _class_templates(seed)

    def _make_split(count: int, label: str) -> tuple[np.ndarray, np.ndarray]:
        rng = derive_rng(seed, "split", label)
        ys = rng.integers(0, N_CLASSES, size=count)
        xs = np.empty((count, IMAGE_SIDE * IMAGE_SIDE))
        for i, cls in enumerate(ys):
            img = templates[cls]
            dx, dy = rng.integers(-max_shift, max_shift + 1, size=2)
            img = np.roll(np.roll(img, dx, axis=0), dy, axis=1)
            gain = rng.uniform(0.7, 1.0)
            sample = gain * img + rng.normal(scale=noise, size=img.shape)
            xs[i] = np.clip(sample, 0.0, 1.0).reshape(-1)
        return xs, ys.astype(np.int64)

    train_x, train_y = _make_split(n_train, "train")
    test_x, test_y = _make_split(n_test, "test")
    return SyntheticMnist(train_x=train_x, train_y=train_y, test_x=test_x, test_y=test_y)


def synthetic_images(
    n: int,
    channels: int = 3,
    side: int = 32,
    classes: int = 10,
    seed: int = 2026,
    noise: float = 0.25,
    max_shift: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """CIFAR/ImageNet-shaped synthetic samples for the big-model zoo.

    Returns ``(x, y)`` with ``x`` of shape ``(n, channels * side * side)``
    (flat C-order, the layout the conv stack's im2col lowering expects)
    in ``[0, 1]`` and ``y`` of shape ``(n,)``.  Same construction as
    :func:`synthetic_mnist` — smooth per-class templates, shifted and
    noise-corrupted — just parameterized over geometry; the secure
    protocols are data-oblivious, so these only feed accuracy numbers
    and end-to-end equivalence checks.
    """
    if min(n, channels, side, classes) < 1:
        raise ConfigError("image geometry must be positive")
    templates = np.empty((classes, channels, side, side))
    for cls in range(classes):
        rng = derive_rng(seed, "image-template", cls)
        raw = rng.normal(size=(channels, side, side))
        smooth = np.stack([_smooth(plane, passes=4) for plane in raw])
        smooth -= smooth.min()
        peak = smooth.max()
        templates[cls] = smooth / peak if peak > 0 else smooth
    rng = derive_rng(seed, "image-split", n)
    ys = rng.integers(0, classes, size=n)
    xs = np.empty((n, channels * side * side))
    for i, cls in enumerate(ys):
        img = templates[cls]
        dx, dy = rng.integers(-max_shift, max_shift + 1, size=2)
        img = np.roll(np.roll(img, dx, axis=1), dy, axis=2)
        gain = rng.uniform(0.7, 1.0)
        sample = gain * img + rng.normal(scale=noise, size=img.shape)
        xs[i] = np.clip(sample, 0.0, 1.0).reshape(-1)
    return xs, ys.astype(np.int64)
