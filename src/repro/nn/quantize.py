"""Post-training quantization of a Sequential model for secure inference.

A :class:`QuantizedModel` is the object both the plaintext integer
reference and the secure two-party protocol consume.  Design decisions
(also recorded in DESIGN.md):

* **Weights** become integers on the fragment scheme's grid, one scale
  per layer.
* **Activations** are fixed-point ring elements with ``frac_bits``
  fractional bits.
* **Rescaling.**  Multi-bit schemes use power-of-two weight scales
  (``2**-shift``); after each hidden linear layer the pipeline divides the
  accumulator by ``2**shift`` — securely realized by SecureML-style
  *local share truncation* (each party shifts its own share; error is at
  most one unit in the last place with overwhelming probability).  This
  keeps activations at the ``2^f`` fixed-point scale so deep nets fit in
  Z_{2^32}.
* **Float-scale schemes** (ternary/binary) skip truncation: their scale
  is *deferred* to the logits, which is harmless because ReLU is
  positively homogeneous and argmax ignores positive scaling.
* **Biases** are folded in at each layer's accumulator scale so the
  server can add them to its share locally.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import QuantizationError
from repro.nn.layers import AvgPool2d, Conv2d, Dense, Flatten, MaxPool2d, ReLU
from repro.nn.lowering import (
    Im2colSpec,
    PoolSpec,
    conv_bias_vector,
    gather_windows,
    lift_output,
    lower_shares,
)
from repro.nn.winograd import (
    WinogradSpec,
    check_winograd_headroom,
    lift_tiles,
    lift_tiles_value,
    lower_tiles,
    lower_tiles_value,
    transform_weights,
)
from repro.nn.model import Sequential
from repro.quant.fixed_point import FixedPointEncoder
from repro.quant.fragments import FragmentScheme
from repro.quant.schemes import QuantizedTensor, quantize_for_scheme
from repro.utils.ring import Ring


@dataclass
class QuantizedDense:
    """One linear layer of the secure pipeline.

    ``conv`` distinguishes the two linear forms: ``None`` is a plain FC
    layer (weights ``(out, in)``); an :class:`Im2colSpec` means weights
    are ``(out_channels, patch_len)`` and the secure matmul runs against
    the locally-lowered activation (see :mod:`repro.nn.lowering`).

    ``backend`` selects the conv lowering: ``"im2col"`` (default) or
    ``"winograd"`` (F(2x2,3x3) tile transforms, eligible for stride-1
    3x3 convolutions only — :mod:`repro.nn.winograd`).  Weights are
    stored in im2col patch form either way; the winograd path derives
    its transformed weight stack on demand.
    """

    weights: QuantizedTensor  # ints shaped (out, in) / (oc, patch_len)
    bias_int: np.ndarray  # int64 (out,) or (oc,), at accumulator scale
    truncate_bits: int  # right-shift applied to the accumulator (0 = none)
    conv: Im2colSpec | None = None
    pool: PoolSpec | None = None  # applied after this layer's ReLU
    backend: str = "im2col"

    def __post_init__(self) -> None:
        if self.backend not in ("im2col", "winograd"):
            raise QuantizationError(f"unknown linear backend {self.backend!r}")
        if self.backend == "winograd":
            if self.conv is None:
                raise QuantizationError("winograd backend needs a conv layer")
            WinogradSpec.from_im2col(self.conv)  # validates eligibility

    @property
    def wino(self) -> WinogradSpec | None:
        """Tile geometry when this layer runs the winograd backend."""
        if self.backend != "winograd":
            return None
        return WinogradSpec.from_im2col(self.conv)

    @property
    def w_int(self) -> np.ndarray:
        return self.weights.ints

    @property
    def scheme(self) -> FragmentScheme:
        return self.weights.scheme

    @property
    def shape(self) -> tuple[int, int]:
        return self.weights.ints.shape

    @property
    def in_features(self) -> int:
        """Flat activation length entering the layer."""
        return self.conv.in_features if self.conv else self.shape[1]

    @property
    def linear_out_features(self) -> int:
        """Flat activation length after the linear step (before pooling)."""
        if self.conv:
            return self.shape[0] * self.conv.n_positions
        return self.shape[0]

    @property
    def out_features(self) -> int:
        """Flat activation length leaving the layer (after pooling)."""
        return self.pool.out_features if self.pool else self.linear_out_features


class QuantizedModel:
    """Integer FC/ReLU pipeline over Z_{2^l}; ReLU between every FC pair."""

    def __init__(
        self,
        layers: list[QuantizedDense],
        ring: Ring,
        frac_bits: int,
        output_deferral: float = 1.0,
    ) -> None:
        if not layers:
            raise QuantizationError("quantized model needs at least one layer")
        for prev, nxt in zip(layers, layers[1:]):
            if prev.out_features != nxt.in_features:
                raise QuantizationError(
                    f"layers do not chain: {prev.out_features} features out, "
                    f"{nxt.in_features} expected in"
                )
        self.layers = layers
        self.ring = ring
        self.encoder = FixedPointEncoder(ring, frac_bits)
        #: Integer logits approximate ``real_logits * 2^f * output_deferral``.
        self.output_deferral = output_deferral

    # ------------------------------------------------------------------ #
    @property
    def input_dim(self) -> int:
        return self.layers[0].in_features

    @property
    def output_dim(self) -> int:
        return self.layers[-1].out_features

    # ------------------------------------------------------------------ #
    def truncate_exact(self, acts: np.ndarray, bits: int) -> np.ndarray:
        """Reference truncation: arithmetic shift of the plaintext value.

        The secure pipeline's share-local truncation agrees with this up
        to one unit in the last place (w.h.p.); tests account for that.
        """
        if bits == 0:
            return acts
        signed = self.ring.to_signed(acts)
        return self.ring.reduce(signed >> np.int64(bits))

    def _pool_exact(self, spec: PoolSpec, acts: np.ndarray) -> np.ndarray:
        """Plaintext pooling reference (see repro.core.pooling for the
        secure realizations this mirrors)."""
        windows = gather_windows(spec, acts)  # (out, window, batch)
        if spec.kind == "avg":
            summed = self.ring.to_signed(self.ring.sum(windows, axis=1))
            return self.ring.reduce(summed >> np.int64(spec.avg_shift_bits))
        return self.ring.reduce(self.ring.to_signed(windows).max(axis=1))

    def forward_int(self, x_ring: np.ndarray) -> np.ndarray:
        """The plaintext integer reference of the secure computation.

        ``x_ring`` is ``(features, batch)`` of ring elements; the result is
        ``(classes, batch)`` integer logits.
        """
        acts = self.ring.reduce(x_ring)
        for i, layer in enumerate(self.layers):
            if layer.backend == "winograd":
                # Transform-domain conv: the lifted value is exactly
                # 4 * (W * x), so the plaintext division is an exact
                # arithmetic shift — this path equals the im2col path
                # bit-for-bit (given the headroom check).
                wspec = layer.wino
                operand = lower_tiles(wspec, acts, self.ring)
                wt = self.ring.reduce(transform_weights(wspec, layer.w_int))
                oc, ci = layer.shape[0], wspec.in_channels
                prod = self.ring.zeros((16 * oc, operand.shape[1]))
                for g in range(16):
                    prod[g * oc : (g + 1) * oc] = self.ring.matmul(
                        wt[g * oc : (g + 1) * oc], operand[g * ci : (g + 1) * ci]
                    )
                acts = lift_tiles(wspec, oc, prod, self.ring)
                acts = self.truncate_exact(acts, 2)  # exact /4 on the value
                bias = conv_bias_vector(layer.conv, layer.bias_int, oc)
                acts = self.ring.add(acts, self.ring.reduce(bias)[:, None])
            else:
                w_ring = self.ring.reduce(layer.w_int)
                operand = lower_shares(layer.conv, acts) if layer.conv else acts
                acts = self.ring.matmul(w_ring, operand)
                acts = self.ring.add(acts, self.ring.reduce(layer.bias_int)[:, None])
                if layer.conv:
                    acts = lift_output(layer.conv, layer.shape[0], acts)
            if i < len(self.layers) - 1:
                acts = self.truncate_exact(acts, layer.truncate_bits)
                signed = self.ring.to_signed(acts)
                acts = self.ring.reduce(np.where(signed > 0, signed, 0))
                if layer.pool:
                    acts = self._pool_exact(layer.pool, acts)
        return acts

    def predict(self, x_float: np.ndarray) -> np.ndarray:
        """Float batch (batch, features) -> class indices, via the integer path."""
        x_ring = self.encoder.encode(np.asarray(x_float).T)
        logits = self.forward_int(x_ring)
        return np.argmax(self.ring.to_signed(logits), axis=0)

    def logits_float(self, x_float: np.ndarray) -> np.ndarray:
        """Decoded float logits, (batch, classes)."""
        x_ring = self.encoder.encode(np.asarray(x_float).T)
        logits = self.forward_int(x_ring)
        return self.encoder.decode(logits, extra_scale=self.output_deferral).T

    def accuracy(self, x: np.ndarray, y: np.ndarray) -> float:
        return float(np.mean(self.predict(x) == np.asarray(y)))

    # ------------------------------------------------------------------ #
    def max_abs_activation(self, x_float: np.ndarray) -> float:
        """Largest |integer value| along the pipeline (overflow check)."""
        acts = np.asarray(x_float, dtype=np.float64).T * self.encoder.scale
        worst = float(np.abs(acts).max()) if acts.size else 0.0
        for i, layer in enumerate(self.layers):
            if layer.backend == "winograd":
                # Track the true transform-domain peaks: the input tiles
                # (gain <= 4), the 16 grouped accumulators, and the
                # pre-division 4*conv output.
                wspec = layer.wino
                xt = lower_tiles_value(wspec, acts)
                worst = max(worst, float(np.abs(xt).max()))
                wt = transform_weights(wspec, layer.w_int).astype(np.float64)
                oc, ci = layer.shape[0], wspec.in_channels
                prod = np.empty((16 * oc, xt.shape[1]))
                for g in range(16):
                    prod[g * oc : (g + 1) * oc] = (
                        wt[g * oc : (g + 1) * oc] @ xt[g * ci : (g + 1) * ci]
                    )
                worst = max(worst, float(np.abs(prod).max()))
                lifted = lift_tiles_value(wspec, oc, prod)
                worst = max(worst, float(np.abs(lifted).max()))
                bias = conv_bias_vector(layer.conv, layer.bias_int, oc)
                acts = np.floor(lifted / 4.0) + bias[:, None].astype(np.float64)
                worst = max(worst, float(np.abs(acts).max()))
            else:
                operand = lower_shares(layer.conv, acts) if layer.conv else acts
                acts = layer.w_int.astype(np.float64) @ operand + layer.bias_int[:, None]
                worst = max(worst, float(np.abs(acts).max()))
                if layer.conv:
                    acts = lift_output(layer.conv, layer.shape[0], acts)
            if i < len(self.layers) - 1:
                acts = np.floor(acts / 2.0**layer.truncate_bits)
                acts = np.maximum(acts, 0.0)
                if layer.pool:
                    windows = gather_windows(layer.pool, acts)
                    if layer.pool.kind == "avg":
                        acts = np.floor(
                            windows.sum(axis=1) / 2.0**layer.pool.avg_shift_bits
                        )
                    else:
                        acts = windows.max(axis=1)
        return worst

    def check_range(self, x_float: np.ndarray) -> None:
        worst = self.max_abs_activation(x_float)
        limit = 2.0 ** (self.ring.bits - 1)
        if worst >= limit:
            raise QuantizationError(
                f"activations reach {worst:.3g}, overflowing the "
                f"{self.ring.bits}-bit ring; lower frac_bits or widen the ring"
            )


def _collect_linear_layers(
    model: Sequential, input_shape: tuple[int, int, int] | None
) -> list[tuple]:
    """Walk the model; return (layer, Im2colSpec | None, PoolSpec | None)
    per linear layer.

    Tracks activation geometry through Conv2d and pooling layers so each
    convolution gets a concrete :class:`Im2colSpec` and each pooling step
    a :class:`PoolSpec`; Flatten and ReLU are transparent (flat C-order
    feature vectors are the pipeline's native activation form).  Pooling
    must appear in the Conv2d -> ReLU -> pool pattern: the secure layer
    applies it after the ReLU of its linear layer.
    """
    collected: list[list] = []  # [layer, conv_spec, pool_spec]
    geometry = input_shape  # (channels, height, width) or None
    seen_relu_since_linear = False
    for layer in model.layers:
        if isinstance(layer, Dense):
            collected.append([layer, None, None])
            geometry = None
            seen_relu_since_linear = False
        elif isinstance(layer, Conv2d):
            if geometry is None:
                raise QuantizationError(
                    "Conv2d needs input_shape=(channels, height, width) "
                    "and cannot follow a Dense layer"
                )
            spec = Im2colSpec(
                in_channels=geometry[0],
                height=geometry[1],
                width=geometry[2],
                kernel=layer.kernel_size,
                stride=layer.stride,
            )
            if spec.in_channels != layer.in_channels:
                raise QuantizationError(
                    f"Conv2d expects {layer.in_channels} channels, "
                    f"geometry provides {spec.in_channels}"
                )
            collected.append([layer, spec, None])
            geometry = (layer.out_channels, spec.out_h, spec.out_w)
            seen_relu_since_linear = False
        elif isinstance(layer, (AvgPool2d, MaxPool2d)):
            if geometry is None or not collected:
                raise QuantizationError(
                    "pooling needs a preceding Conv2d (known geometry)"
                )
            if not seen_relu_since_linear:
                raise QuantizationError(
                    "the secure pipeline supports the Conv2d -> ReLU -> pool "
                    "pattern; put the activation before the pooling layer"
                )
            if collected[-1][2] is not None:
                raise QuantizationError("two pooling layers in a row")
            pool = PoolSpec(
                kind="avg" if isinstance(layer, AvgPool2d) else "max",
                channels=geometry[0],
                height=geometry[1],
                width=geometry[2],
                kernel=layer.kernel_size,
            )
            collected[-1][2] = pool
            geometry = (pool.channels, pool.out_h, pool.out_w)
        elif isinstance(layer, ReLU):
            seen_relu_since_linear = True
        elif not isinstance(layer, Flatten):
            raise QuantizationError(
                f"cannot quantize layer {type(layer).__name__}; "
                "supported: Dense, Conv2d, ReLU, Flatten, AvgPool2d, MaxPool2d"
            )
    if collected and collected[-1][2] is not None:
        raise QuantizationError("pooling after the final linear layer is unsupported")
    return [tuple(entry) for entry in collected]


def set_chunk_cols(model: QuantizedModel, chunk_cols: int | None) -> QuantizedModel:
    """A copy of ``model`` with every conv layer's ``chunk_cols`` replaced.

    ``chunk_cols`` bounds the lowered-operand columns the secure linear
    layers materialize at once (see :class:`~repro.nn.lowering.Im2colSpec`).
    Weights, bias, and scheme objects are shared with the original —
    chunking is a local memory policy, it never changes results, wire
    bytes, or the model fingerprint — so variants are cheap to spawn.
    """
    layers = [
        replace(layer, conv=replace(layer.conv, chunk_cols=chunk_cols))
        if layer.conv is not None
        else layer
        for layer in model.layers
    ]
    return QuantizedModel(
        layers, model.ring, model.encoder.frac_bits,
        output_deferral=model.output_deferral,
    )


def quantize_model(
    model: Sequential,
    scheme: FragmentScheme | list[FragmentScheme],
    ring: Ring,
    frac_bits: int = 6,
    input_shape: tuple[int, int, int] | None = None,
    linear_backend: str = "im2col",
    chunk_cols: int | None = None,
) -> QuantizedModel:
    """Quantize every linear layer of ``model`` onto fragment scheme(s).

    ``scheme`` may be a single scheme for all layers or one per linear
    layer.  Dense/ReLU architectures need no extra arguments; models with
    Conv2d layers must pass ``input_shape=(channels, height, width)`` so
    each convolution's im2col lowering (:mod:`repro.nn.lowering`) can be
    resolved.  ReLU is implied between linear layers on the secure path;
    Flatten is a no-op (activations are already flat feature vectors).

    ``linear_backend`` selects the conv lowering: ``"winograd"`` marks
    every *eligible* convolution (3x3, stride 1) to run the F(2x2,3x3)
    tile backend; ineligible geometries and Dense layers stay on im2col.
    Each marked layer must pass the transform-domain ring-headroom check
    (:func:`repro.nn.winograd.check_winograd_headroom`) or a
    :class:`~repro.errors.ConfigError` is raised.

    ``chunk_cols`` bounds the lowered-operand columns each conv layer's
    secure matmul materializes at once (``None`` = unchunked; see
    :func:`set_chunk_cols` to change it on an existing model).
    """
    if linear_backend not in ("im2col", "winograd"):
        raise QuantizationError(f"unknown linear backend {linear_backend!r}")
    linear_layers = _collect_linear_layers(model, input_shape)
    if isinstance(scheme, FragmentScheme):
        schemes = [scheme] * len(linear_layers)
    else:
        schemes = list(scheme)
        if len(schemes) != len(linear_layers):
            raise QuantizationError(
                f"got {len(schemes)} schemes for {len(linear_layers)} linear layers"
            )

    encoder = FixedPointEncoder(ring, frac_bits)
    quantized = []
    deferral = 1.0  # integer activations = real * 2^f * deferral
    for idx, ((layer, spec, pool), layer_scheme) in enumerate(zip(linear_layers, schemes)):
        q = quantize_for_scheme(layer.weight, layer_scheme)
        last = idx == len(linear_layers) - 1
        accumulator_deferral = deferral / q.scale
        bias_int = np.rint(layer.bias * encoder.scale * accumulator_deferral).astype(
            np.int64
        )
        if q.shift is not None and not last:
            truncate_bits = q.shift
            deferral = accumulator_deferral * q.scale  # shift undoes 1/scale
        else:
            truncate_bits = 0
            deferral = accumulator_deferral
        backend = "im2col"
        if (
            linear_backend == "winograd"
            and spec is not None
            and WinogradSpec.supports(spec)
        ):
            check_winograd_headroom(
                ring.bits, layer_scheme, spec.in_channels, frac_bits
            )
            backend = "winograd"
        quantized.append(
            QuantizedDense(
                weights=q,
                bias_int=bias_int,
                truncate_bits=truncate_bits,
                conv=spec if spec is None or chunk_cols is None
                else replace(spec, chunk_cols=chunk_cols),
                pool=pool,
                backend=backend,
            )
        )
    return QuantizedModel(quantized, ring, frac_bits, output_deferral=deferral)
