"""Lowering convolution onto the secure matmul: im2col on *shares*.

im2col is a linear data rearrangement (gather + duplicate), so it
commutes with additive secret sharing: ``im2col(z0) + im2col(z1) =
im2col(z0 + z1)``.  Each party can therefore lower its share of a conv
layer's input *locally*, after which the layer is an ordinary secure
matrix product ``W_matrix @ im2col(Z)`` with

* ``W_matrix``: ``(out_channels, in_channels * kh * kw)`` quantized weights,
* the triplet batch dimension ``o`` becoming ``out_h * out_w * batch`` —
  which is exactly where ABNN2's multi-batch OT reuse shines.

Activations flow between layers as flat feature vectors in C order
(``channels * height * width``, the same order ``numpy`` flattening and
:class:`repro.nn.layers.Flatten` produce), so a Dense layer can follow a
conv stack without extra bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ConfigError

#: Largest element count any derived geometry (flat activations, lowered
#: patch matrices, gather index tables) may reach.  Indices and sizes are
#: carried as int64; products beyond this bound would overflow the index
#: math (and on platforms whose default int is 32-bit, silently corrupt
#: intermediate arithmetic), so specs reject them with a typed error that
#: names the offending dimension instead.
_INDEX_LIMIT = np.iinfo(np.int64).max


def _check_index_limit(what: str, **factors: int) -> None:
    """Raise a :class:`ConfigError` naming the dimension when the product
    of ``factors`` (exact Python ints) exceeds int64 index math."""
    total = 1
    for value in factors.values():
        total *= int(value)
    if total > _INDEX_LIMIT:
        detail = " * ".join(f"{name}={value}" for name, value in factors.items())
        raise ConfigError(
            f"{what} element count overflows int64 index math: "
            f"{detail} = {total} > {_INDEX_LIMIT}"
        )


def column_blocks(total: int, chunk: int | None) -> Iterator[tuple[int, int]]:
    """Yield ``(lo, hi)`` column ranges covering ``[0, total)``.

    ``chunk`` bounds each block; ``None`` (or any chunk >= total) yields
    the single full-width block, so unchunked execution is the
    degenerate case of the same loop.  The grid is shared by the chunked
    lowering, the blocked online matmul, and the streamed triplet dealer
    so their column blocks always line up.
    """
    if total < 0:
        raise ConfigError("column count must be non-negative")
    if chunk is not None and chunk < 1:
        raise ConfigError("chunk_cols must be positive")
    step = total if chunk is None else min(chunk, total)
    if total == 0:
        return
    for lo in range(0, total, step):
        yield lo, min(total, lo + step)


@dataclass(frozen=True)
class Im2colSpec:
    """Geometry of one conv layer's input lowering.

    ``allow_gaps`` opts into ``stride > kernel`` geometries, where the
    sliding window skips input columns/rows entirely.  Such layers are
    well-defined but almost always a configuration mistake, so they are
    rejected unless requested explicitly.

    ``chunk_cols`` bounds how many columns of the lowered operand the
    secure linear layer materializes at once (``None`` = unchunked).
    Chunking is a purely local compute/memory decision: wire bytes and
    results are identical for every setting (matmul columns are
    independent and ring arithmetic is exact), so the two parties need
    not agree on it and it is excluded from model fingerprints.
    """

    in_channels: int
    height: int
    width: int
    kernel: int
    stride: int
    allow_gaps: bool = False
    chunk_cols: int | None = None

    def __post_init__(self) -> None:
        if min(self.in_channels, self.height, self.width, self.kernel, self.stride) < 1:
            raise ConfigError("im2col geometry must be positive")
        if self.chunk_cols is not None and self.chunk_cols < 1:
            raise ConfigError("chunk_cols must be positive (or None for unchunked)")
        if self.kernel > self.height or self.kernel > self.width:
            raise ConfigError(
                f"kernel {self.kernel} does not fit a {self.height}x{self.width} input"
            )
        if self.out_h < 1 or self.out_w < 1:
            raise ConfigError(
                f"stride {self.stride} overshoots the {self.height}x{self.width} "
                f"input for kernel {self.kernel}: no output positions"
            )
        if self.stride > self.kernel and not self.allow_gaps:
            raise ConfigError(
                f"stride {self.stride} > kernel {self.kernel} skips input "
                "columns; pass allow_gaps=True to accept the gap geometry"
            )
        # Derived sizes are computed in exact Python ints here, so any
        # overflow of the int64 index math surfaces as a typed error
        # naming the dimension, never as silently wrapped indices.
        _check_index_limit(
            "im2col input (in_channels * height * width)",
            in_channels=self.in_channels, height=self.height, width=self.width,
        )
        _check_index_limit(
            "im2col patch matrix (patch_len * n_positions)",
            patch_len=self.patch_len, n_positions=self.n_positions,
        )

    @property
    def out_h(self) -> int:
        return (self.height - self.kernel) // self.stride + 1

    @property
    def out_w(self) -> int:
        return (self.width - self.kernel) // self.stride + 1

    @property
    def n_positions(self) -> int:
        """Patches per image — the per-image factor on the triplet batch."""
        return self.out_h * self.out_w

    @property
    def in_features(self) -> int:
        """Flat activation length entering the layer."""
        return self.in_channels * self.height * self.width

    @property
    def patch_len(self) -> int:
        """Rows of the lowered operand: in_channels * kh * kw."""
        return self.in_channels * self.kernel * self.kernel

    def patch_offsets(self) -> np.ndarray:
        """(patch_len,) within-patch offsets into the flat activation."""
        c_idx, ki, kj = np.meshgrid(
            np.arange(self.in_channels, dtype=np.int64),
            np.arange(self.kernel, dtype=np.int64),
            np.arange(self.kernel, dtype=np.int64),
            indexing="ij",
        )
        return ((c_idx * self.height + ki) * self.width + kj).reshape(-1)

    def position_offsets(self, positions: np.ndarray | None = None) -> np.ndarray:
        """Flat-activation offset of each patch's top-left corner.

        ``positions`` selects a subset of the ``n_positions`` output
        positions (row-major over ``out_h x out_w``); ``None`` means all
        of them.  Chunked lowering passes the block's positions here so
        the full index table is never materialized.
        """
        if positions is None:
            positions = np.arange(self.n_positions, dtype=np.int64)
        else:
            positions = np.asarray(positions, dtype=np.int64)
        oi, oj = np.divmod(positions, self.out_w)
        return (oi * self.stride) * self.width + oj * self.stride

    def gather_indices(self, positions: np.ndarray | None = None) -> np.ndarray:
        """(patch_len, len(positions)) indices into the flat activation."""
        return (
            self.patch_offsets()[:, None] + self.position_offsets(positions)[None, :]
        )


def lower_shares(spec: Im2colSpec, activation: np.ndarray) -> np.ndarray:
    """Locally lower a flat activation (share) for the conv matmul.

    ``activation`` is ``(in_features, batch)``; the result is
    ``(patch_len, batch * n_positions)`` with **image-major** column
    order: all positions of image 0, then all positions of image 1, ...
    Keeping each image's positions contiguous makes the lifted output of
    :func:`lift_output` contiguous per image, which is what lets the
    serving layer stack per-client batches as extra column blocks.
    """
    act = np.asarray(activation)
    if act.ndim != 2 or act.shape[0] != spec.in_features:
        raise ConfigError(
            f"expected ({spec.in_features}, batch) activation, got {act.shape}"
        )
    gathered = act[spec.gather_indices()]  # (patch_len, n_positions, batch)
    # image-major columns: (patch_len, batch * n_positions) with each
    # image's positions contiguous
    return np.ascontiguousarray(
        gathered.transpose(0, 2, 1).reshape(spec.patch_len, -1)
    )


def lower_shares_block(
    spec: Im2colSpec, activation: np.ndarray, lo: int, hi: int
) -> np.ndarray:
    """Lower columns ``[lo, hi)`` of :func:`lower_shares`'s output only.

    Columns are the image-major flat axis (``batch * n_positions``, image
    outer).  The result is ``(patch_len, hi - lo)`` and byte-identical to
    ``lower_shares(spec, activation)[:, lo:hi]``, but only the block —
    never the full patch matrix or the full gather-index table — is
    materialized.
    """
    act = np.asarray(activation)
    if act.ndim != 2 or act.shape[0] != spec.in_features:
        raise ConfigError(
            f"expected ({spec.in_features}, batch) activation, got {act.shape}"
        )
    total = act.shape[1] * spec.n_positions
    if not (0 <= lo <= hi <= total):
        raise ConfigError(
            f"column block [{lo}, {hi}) outside [0, {total}) lowered columns"
        )
    cols = np.arange(lo, hi, dtype=np.int64)
    imgs, poss = np.divmod(cols, spec.n_positions)
    idx = spec.gather_indices(poss)  # (patch_len, hi - lo)
    return np.ascontiguousarray(act[idx, imgs[None, :]])


def lift_output(spec: Im2colSpec, out_channels: int, product: np.ndarray) -> np.ndarray:
    """Reshape the conv matmul output back into a flat feature vector.

    ``product`` is ``(out_channels, batch * n_positions)`` (image-major
    columns, as produced against :func:`lower_shares`); the result is
    ``(out_channels * n_positions, batch)`` in C order (oc, oh, ow).
    """
    prod = np.asarray(product)
    if prod.ndim != 2 or prod.shape[1] == 0:
        # A zero-width product (a batched round sliced down to no client
        # columns after an admission deny) must surface as a typed error,
        # not as a bare reshape failure downstream.
        raise ConfigError(f"conv product has no columns to lift (shape {prod.shape})")
    if prod.shape[0] != out_channels or prod.shape[1] % spec.n_positions:
        raise ConfigError(f"unexpected conv product shape {prod.shape}")
    batch = prod.shape[1] // spec.n_positions
    cube = prod.reshape(out_channels, batch, spec.n_positions)
    return np.ascontiguousarray(
        cube.transpose(0, 2, 1).reshape(out_channels * spec.n_positions, batch)
    )


def conv_bias_vector(
    spec: Im2colSpec, bias: np.ndarray, out_channels: int | None = None
) -> np.ndarray:
    """Broadcast a per-channel bias over output positions (flat order).

    ``out_channels`` pins the expected bias length; a wrong-sized bias
    would otherwise silently repeat into a misaligned flat vector and
    corrupt every downstream share.
    """
    b = np.asarray(bias)
    if b.ndim != 1:
        raise ConfigError(f"conv bias must be 1-D per-channel, got shape {b.shape}")
    if out_channels is not None and b.shape[0] != out_channels:
        raise ConfigError(
            f"conv bias has {b.shape[0]} channels, layer expects {out_channels}"
        )
    return np.repeat(b, spec.n_positions)


# --------------------------------------------------------------------- #
# pooling
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class PoolSpec:
    """Geometry of a non-overlapping pooling step on flat activations.

    ``kind`` is ``"avg"`` or ``"max"``.  Secure realization differs
    sharply (which is the point of supporting both):

    * **avg** with a power-of-two window is share-local — each party
      sums its own share per window and runs SecureML truncation by
      ``2 * log2(k)`` bits; zero communication.
    * **max** needs a garbled-circuit comparison tree per window
      (:mod:`repro.core.pooling`).
    """

    kind: str
    channels: int
    height: int
    width: int
    kernel: int

    def __post_init__(self) -> None:
        if self.kind not in ("avg", "max"):
            raise ConfigError(f"unknown pool kind {self.kind!r}")
        if min(self.channels, self.height, self.width, self.kernel) < 1:
            raise ConfigError("pool geometry must be positive")
        if self.height % self.kernel or self.width % self.kernel:
            raise ConfigError(
                f"pool {self.kernel} does not tile a {self.height}x{self.width} map"
            )
        if self.kind == "avg" and (self.kernel & (self.kernel - 1)):
            raise ConfigError(
                "secure average pooling needs a power-of-two window "
                "(division becomes share-local truncation)"
            )
        _check_index_limit(
            "pool input (channels * height * width)",
            channels=self.channels, height=self.height, width=self.width,
        )
        _check_index_limit(
            "pool window table (out_features * window)",
            out_features=self.out_features, window=self.window,
        )

    @property
    def window(self) -> int:
        return self.kernel * self.kernel

    @property
    def out_h(self) -> int:
        return self.height // self.kernel

    @property
    def out_w(self) -> int:
        return self.width // self.kernel

    @property
    def in_features(self) -> int:
        return self.channels * self.height * self.width

    @property
    def out_features(self) -> int:
        return self.channels * self.out_h * self.out_w

    @property
    def avg_shift_bits(self) -> int:
        """Division by k^2 as a right shift (avg pooling only)."""
        return 2 * (self.kernel.bit_length() - 1)

    def gather_indices(self) -> np.ndarray:
        """(out_features, window) indices into the flat activation."""
        k = self.kernel
        c_idx = np.arange(self.channels, dtype=np.int64)[:, None, None]
        oi = np.arange(self.out_h, dtype=np.int64)[None, :, None]
        oj = np.arange(self.out_w, dtype=np.int64)[None, None, :]
        base = (c_idx * self.height + oi * k) * self.width + oj * k
        base = base.reshape(-1, 1)  # (out_features, 1)
        di, dj = np.meshgrid(
            np.arange(k, dtype=np.int64), np.arange(k, dtype=np.int64), indexing="ij"
        )
        offsets = (di * self.width + dj).reshape(1, -1)  # (1, window)
        return base + offsets


def gather_windows(spec: PoolSpec, activation: np.ndarray) -> np.ndarray:
    """(in_features, batch) share -> (out_features, window, batch) windows."""
    act = np.asarray(activation)
    if act.ndim != 2 or act.shape[0] != spec.in_features:
        raise ConfigError(
            f"expected ({spec.in_features}, batch) activation, got {act.shape}"
        )
    return act[spec.gather_indices()]
