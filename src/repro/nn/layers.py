"""Plaintext layers: Dense, ReLU, Flatten, Conv2d, AvgPool2d.

Layers operate on float64 batches shaped ``(batch, features)`` (Dense)
or ``(batch, channels, h, w)`` (Conv/Pool).  Dense carries the gradients
needed by :mod:`repro.nn.train`; convolution supports inference (the
paper's evaluation network is an MLP, convolution is provided as the
natural extension since it lowers to the same secure matmul via im2col).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.utils.rng import derive_rng


class Layer:
    """Base class: stateless unless a subclass adds parameters."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray) -> np.ndarray:
        raise NotImplementedError(f"{type(self).__name__} does not support training")

    @property
    def parameters(self) -> list[np.ndarray]:
        return []


class Dense(Layer):
    """Fully connected layer ``y = x W^T + b`` with He initialization."""

    def __init__(self, in_features: int, out_features: int, seed: int = 0) -> None:
        if in_features < 1 or out_features < 1:
            raise ConfigError("Dense dimensions must be positive")
        rng = derive_rng(seed, "dense", in_features, out_features)
        bound = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(scale=bound, size=(out_features, in_features))
        self.bias = np.zeros(out_features)
        self._x: np.ndarray | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.weight.T + self.bias

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ConfigError("backward called before forward")
        self.grad_weight = grad.T @ self._x
        self.grad_bias = grad.sum(axis=0)
        return grad @ self.weight

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Elementwise ``max(0, x)``."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigError("backward called before forward")
        return grad * self._mask


class Flatten(Layer):
    """(batch, ...) -> (batch, prod(...))."""

    def __init__(self) -> None:
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        return grad.reshape(self._shape)


def im2col(x: np.ndarray, kh: int, kw: int, stride: int) -> tuple[np.ndarray, int, int]:
    """Unfold (b, c, h, w) into (b, out_h * out_w, c * kh * kw) patches."""
    b, c, h, w = x.shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConfigError(f"kernel {kh}x{kw} does not fit input {h}x{w}")
    cols = np.empty((b, out_h * out_w, c * kh * kw), dtype=x.dtype)
    idx = 0
    for i in range(out_h):
        for j in range(out_w):
            patch = x[:, :, i * stride : i * stride + kh, j * stride : j * stride + kw]
            cols[:, idx, :] = patch.reshape(b, -1)
            idx += 1
    return cols, out_h, out_w


class Conv2d(Layer):
    """Valid-padding convolution, lowered to matmul via im2col.

    Inference-only: the secure pipeline treats it as a linear layer whose
    weight matrix is ``(out_channels, in_channels * kh * kw)``, exactly
    like Dense after the im2col transform.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        seed: int = 0,
    ) -> None:
        if min(in_channels, out_channels, kernel_size, stride) < 1:
            raise ConfigError("Conv2d hyper-parameters must be positive")
        rng = derive_rng(seed, "conv", in_channels, out_channels, kernel_size)
        fan_in = in_channels * kernel_size * kernel_size
        self.weight = rng.normal(scale=np.sqrt(2.0 / fan_in), size=(out_channels, fan_in))
        self.bias = np.zeros(out_channels)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self._cols: np.ndarray | None = None
        self._x_shape: tuple | None = None
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)

    def forward(self, x: np.ndarray) -> np.ndarray:
        cols, out_h, out_w = im2col(x, self.kernel_size, self.kernel_size, self.stride)
        self._cols = cols
        self._x_shape = x.shape
        out = cols @ self.weight.T + self.bias  # (b, oh*ow, oc)
        return out.transpose(0, 2, 1).reshape(x.shape[0], self.out_channels, out_h, out_w)

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._cols is None:
            raise ConfigError("backward called before forward")
        b, oc, oh, ow = grad.shape
        flat = grad.reshape(b, oc, oh * ow).transpose(0, 2, 1)  # (b, ohw, oc)
        self.grad_weight = np.einsum("bpo,bpk->ok", flat, self._cols)
        self.grad_bias = flat.sum(axis=(0, 1))
        grad_cols = flat @ self.weight  # (b, ohw, patch_len)
        # Scatter patches back (col2im).
        _, c, h, w = self._x_shape
        k, s = self.kernel_size, self.stride
        out = np.zeros(self._x_shape, dtype=grad.dtype)
        idx = 0
        for i in range(oh):
            for j in range(ow):
                patch = grad_cols[:, idx, :].reshape(b, c, k, k)
                out[:, :, i * s : i * s + k, j * s : j * s + k] += patch
                idx += 1
        return out

    @property
    def parameters(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def gradients(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2d(Layer):
    """Non-overlapping max pooling.

    On the secure path this costs a garbled-circuit tree per window (see
    :mod:`repro.core.pooling`) — unlike average pooling, a maximum cannot
    be taken share-locally.
    """

    def __init__(self, kernel_size: int) -> None:
        if kernel_size < 1:
            raise ConfigError("pool size must be positive")
        self.kernel_size = kernel_size
        self._mask: np.ndarray | None = None
        self._in_shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ConfigError(f"input {h}x{w} not divisible by pool {k}")
        self._in_shape = x.shape
        windows = x.reshape(b, c, h // k, k, w // k, k)
        out = windows.max(axis=(3, 5))
        self._mask = windows == out[:, :, :, None, :, None]
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigError("backward called before forward")
        # Route the gradient to each window's argmax and fold the window
        # axes back (the exact inverse of the forward reshape).
        grad_windows = grad[:, :, :, None, :, None] * self._mask
        return grad_windows.reshape(self._in_shape)


class AvgPool2d(Layer):
    """Non-overlapping average pooling — a public linear map, free to
    evaluate on additive shares (each party averages its own share)."""

    def __init__(self, kernel_size: int) -> None:
        if kernel_size < 1:
            raise ConfigError("pool size must be positive")
        self.kernel_size = kernel_size
        self._in_shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        b, c, h, w = x.shape
        k = self.kernel_size
        if h % k or w % k:
            raise ConfigError(f"input {h}x{w} not divisible by pool {k}")
        self._in_shape = x.shape
        return x.reshape(b, c, h // k, k, w // k, k).mean(axis=(3, 5))

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_shape is None:
            raise ConfigError("backward called before forward")
        k = self.kernel_size
        spread = np.repeat(np.repeat(grad, k, axis=2), k, axis=3)
        return spread / (k * k)
