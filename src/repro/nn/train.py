"""Minimal SGD trainer for Dense/ReLU classifiers.

Softmax cross-entropy loss, mini-batch SGD with optional momentum.  This
exists so the reproduction can *train the models it secures* instead of
shipping magic weight files; it is not meant to compete with a real DL
framework.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.nn.model import Sequential
from repro.utils.rng import derive_rng


@dataclass
class TrainConfig:
    epochs: int = 10
    batch_size: int = 64
    learning_rate: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    seed: int = 0
    verbose: bool = False


def softmax_cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean loss and gradient w.r.t. logits."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    n = logits.shape[0]
    loss = float(-np.log(probs[np.arange(n), labels] + 1e-12).mean())
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


def train_classifier(
    model: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig = TrainConfig(),
) -> list[float]:
    """Train in place; returns the per-epoch mean losses."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.int64)
    if x.shape[0] != y.shape[0]:
        raise ConfigError("x and y disagree on the number of samples")
    rng = derive_rng(config.seed, "trainer")
    trainable = [layer for layer in model.layers if hasattr(layer, "gradients")]
    velocities = {
        id(layer): [np.zeros_like(p) for p in layer.parameters] for layer in trainable
    }

    history = []
    for epoch in range(config.epochs):
        order = rng.permutation(x.shape[0])
        losses = []
        for start in range(0, x.shape[0], config.batch_size):
            idx = order[start : start + config.batch_size]
            logits = model.forward(x[idx])
            loss, grad = softmax_cross_entropy(logits, y[idx])
            model.backward(grad)
            for layer in trainable:
                vel = velocities[id(layer)]
                for p, g, v in zip(layer.parameters, layer.gradients, vel):
                    g = g + config.weight_decay * p
                    v *= config.momentum
                    v -= config.learning_rate * g
                    p += v
            losses.append(loss)
        history.append(float(np.mean(losses)))
        if config.verbose:
            print(f"epoch {epoch + 1}/{config.epochs}: loss={history[-1]:.4f}")
    return history
