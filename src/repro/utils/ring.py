"""Arithmetic over the ring Z_{2^l} backed by numpy uint64 arrays.

All secret shares in ABNN2 live in Z_{2^l} for some bit width ``l <= 64``
(the paper uses l = 32 and l = 64).  This module centralizes the masking
discipline: every value is stored as ``numpy.uint64`` and reduced modulo
``2**l`` after each operation, so protocol code never hand-rolls masks.

The class is deliberately small and stateless apart from the width; it is
safe to share one :class:`Ring` instance between both protocol parties.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import ConfigError

_U64 = np.uint64

#: Word budget for the expanded (rows, n, cols) intermediate inside
#: :meth:`Ring.matmul` — the uint64 product is materialized in row chunks
#: no larger than this, bounding the transient at ~8 MiB regardless of
#: the matrix sizes.  The memory cost model prices the same constant.
MATMUL_EXPANSION_WORDS = 1 << 20


class Ring:
    """The ring of integers modulo ``2**bits`` for ``1 <= bits <= 64``.

    Elements are represented as ``numpy.uint64`` scalars or arrays whose
    values are always strictly below ``2**bits``.  Arithmetic helpers
    (:meth:`add`, :meth:`sub`, :meth:`mul`, :meth:`neg`) apply the modular
    reduction; :meth:`reduce` canonicalizes arbitrary integer input.
    """

    __slots__ = ("bits", "modulus", "_mask")

    def __init__(self, bits: int) -> None:
        if not 1 <= bits <= 64:
            raise ConfigError(f"ring width must be in [1, 64], got {bits}")
        self.bits = int(bits)
        self.modulus = 1 << self.bits
        # For bits == 64 the mask is all ones and uint64 wraps natively.
        self._mask = _U64((1 << self.bits) - 1 if self.bits < 64 else 0xFFFFFFFFFFFFFFFF)

    # ------------------------------------------------------------------ #
    # canonicalization
    # ------------------------------------------------------------------ #
    def reduce(self, x) -> np.ndarray:
        """Map arbitrary integers (python ints, signed arrays) into the ring."""
        arr = np.asarray(x)
        if arr.dtype.kind == "f":
            raise ConfigError("ring elements must be integers, got floats")
        # Signed values are mapped via two's complement, matching the
        # fixed-point encoding used throughout the paper.
        out = arr.astype(np.int64, copy=False).astype(_U64)
        return out & self._mask

    def zeros(self, shape) -> np.ndarray:
        """An all-zero ring array of the given shape."""
        return np.zeros(shape, dtype=_U64)

    # ------------------------------------------------------------------ #
    # modular arithmetic
    # ------------------------------------------------------------------ #
    def add(self, a, b) -> np.ndarray:
        return (np.asarray(a, dtype=_U64) + np.asarray(b, dtype=_U64)) & self._mask

    def sub(self, a, b) -> np.ndarray:
        return (np.asarray(a, dtype=_U64) - np.asarray(b, dtype=_U64)) & self._mask

    def neg(self, a) -> np.ndarray:
        return (-np.asarray(a, dtype=_U64)) & self._mask

    def mul(self, a, b) -> np.ndarray:
        return (np.asarray(a, dtype=_U64) * np.asarray(b, dtype=_U64)) & self._mask

    def matmul(self, a, b) -> np.ndarray:
        """Matrix product with wraparound semantics.

        numpy's ``@`` refuses uint64 overflow handling on some BLAS paths,
        so we go through explicit elementwise products and sums, which wrap
        correctly for unsigned dtypes.
        """
        a = np.asarray(a, dtype=_U64)
        b = np.asarray(b, dtype=_U64)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ConfigError(f"incompatible matmul shapes {a.shape} x {b.shape}")
        # (m, n, 1) * (1, n, o) summed over n, chunked over rows so the
        # expanded intermediate stays within MATMUL_EXPANSION_WORDS (each
        # row chunk still amortizes the python loop over >= a million
        # multiply-adds).  The memory cost model prices this same bound
        # (repro.perf.costmodel.linear_working_set_bytes).
        m = a.shape[0]
        out = np.empty((m, b.shape[1]), dtype=_U64)
        chunk = max(1, MATMUL_EXPANSION_WORDS // max(1, b.size))
        for lo in range(0, m, chunk):
            hi = min(m, lo + chunk)
            prod = a[lo:hi, :, None] * b[None, :, :]
            out[lo:hi] = prod.sum(axis=1, dtype=_U64)
        return out & self._mask

    def dot(self, a, b) -> np.uint64:
        """Inner product of two 1-D ring vectors."""
        a = np.asarray(a, dtype=_U64)
        b = np.asarray(b, dtype=_U64)
        if a.shape != b.shape or a.ndim != 1:
            raise ConfigError(f"incompatible dot shapes {a.shape} . {b.shape}")
        return _U64((a * b).sum(dtype=_U64)) & self._mask

    def sum(self, a, axis=None) -> np.ndarray:
        return np.asarray(a, dtype=_U64).sum(axis=axis, dtype=_U64) & self._mask

    # ------------------------------------------------------------------ #
    # signed interpretation (fixed-point decode)
    # ------------------------------------------------------------------ #
    def to_signed(self, a) -> np.ndarray:
        """Interpret ring elements as two's-complement signed integers."""
        arr = np.asarray(a, dtype=_U64)
        if self.bits == 64:
            # uint64 -> int64 reinterpretation is exactly two's complement.
            # (ascontiguousarray would promote 0-d inputs to 1-d, so keep
            # the original shape explicitly.)
            flat = np.ascontiguousarray(arr).reshape(-1)
            return flat.view(np.int64).reshape(arr.shape).copy()
        half = _U64(1) << _U64(self.bits - 1)
        signed = arr.astype(np.int64)
        return np.where(arr >= half, signed - np.int64(self.modulus), signed)

    def sample(self, rng: np.random.Generator, shape=()) -> np.ndarray:
        """Uniformly random ring elements."""
        raw = rng.integers(0, 1 << 63, size=shape, dtype=np.uint64)
        raw = (raw << _U64(1)) | rng.integers(0, 2, size=shape, dtype=np.uint64)
        return raw & self._mask

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    @property
    def nbytes(self) -> int:
        """Bytes needed to transmit one ring element."""
        return (self.bits + 7) // 8

    def __eq__(self, other) -> bool:
        return isinstance(other, Ring) and other.bits == self.bits

    def __hash__(self) -> int:
        return hash(("Ring", self.bits))

    def __repr__(self) -> str:
        return f"Ring(bits={self.bits})"


def reconstruct(ring: Ring, *shares: Iterable) -> np.ndarray:
    """Sum additive shares into the underlying value (mod 2^l)."""
    total = ring.zeros(np.asarray(shares[0]).shape)
    for share in shares:
        total = ring.add(total, share)
    return total
