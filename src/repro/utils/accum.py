"""Exact uint64 segment sums without ``np.add.at``.

``np.add.at`` is a notorious numpy slow path (per-element dispatch of an
unbuffered ufunc), yet triplet generation needs exactly its semantics:
accumulate ``(count, lanes)`` ring elements into ``n_segments`` rows with
arbitrary repeats.  ``np.bincount`` runs the same reduction through a
single C loop — but only with float64 weights, whose 53-bit mantissa
cannot carry mod-2^64 ring sums.  So the accumulation runs per 16-bit
limb: each limb sum stays below ``count * 2^16`` (exact in float64 for
any realistic chunk size), and the recombination shifts wrap mod 2^64 in
uint64 arithmetic, matching ``np.add.at`` bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError

_U64 = np.uint64

#: Above this many addends a 16-bit limb sum could approach float64's
#: exact-integer range; fall back to the slow-but-safe path.
_EXACT_LIMIT = 1 << 36


def segment_sum_u64(values: np.ndarray, index: np.ndarray, n_segments: int) -> np.ndarray:
    """Sum ``values`` rows into ``n_segments`` buckets, exact mod 2^64.

    ``values`` is ``(count, lanes)`` uint64, ``index`` is ``(count,)``
    with entries in ``[0, n_segments)``; returns ``(n_segments, lanes)``
    uint64 equal to what ``np.add.at(out, index, values)`` would produce
    on a zero-initialized array.
    """
    v = np.ascontiguousarray(values, dtype=_U64)
    if v.ndim != 2:
        raise ConfigError(f"expected (count, lanes) values, got shape {v.shape}")
    count, lanes = v.shape
    if count == 0:
        return np.zeros((n_segments, lanes), dtype=_U64)
    idx = np.asarray(index, dtype=np.int64)
    if idx.shape != (count,):
        raise ConfigError(f"expected {count} indices, got shape {idx.shape}")
    if idx.min() < 0 or idx.max() >= n_segments:
        raise ConfigError(f"segment indices must lie in [0, {n_segments})")
    if count > _EXACT_LIMIT:
        out = np.zeros((n_segments, lanes), dtype=_U64)
        np.add.at(out, idx, v)
        return out
    flat_idx = (idx[:, None] * lanes + np.arange(lanes, dtype=np.int64)).ravel()
    flat_v = v.ravel()
    out = np.zeros(n_segments * lanes, dtype=_U64)
    for shift in (0, 16, 32, 48):
        limb = ((flat_v >> _U64(shift)) & _U64(0xFFFF)).astype(np.float64)
        sums = np.bincount(flat_idx, weights=limb, minlength=n_segments * lanes)
        out += sums.astype(_U64) << _U64(shift)
    return out.reshape(n_segments, lanes)
