"""Bit-level helpers: int <-> bit vectors, packing, and bit-matrix transpose.

OT extension works on bit matrices (m x kappa booleans); garbled circuits
work on per-wire bits of ring elements.  These helpers keep the bit order
convention in one place: **index 0 is the least-significant bit**.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def int_to_bits(values, bits: int) -> np.ndarray:
    """Decompose unsigned integers into LSB-first bit arrays.

    ``values`` may be a scalar or array; the result has one extra trailing
    axis of length ``bits`` with dtype uint8.
    """
    if not 1 <= bits <= 64:
        raise ConfigError(f"bit width must be in [1, 64], got {bits}")
    arr = np.asarray(values, dtype=np.uint64)
    shifts = np.arange(bits, dtype=np.uint64)
    return ((arr[..., None] >> shifts) & np.uint64(1)).astype(np.uint8)


def bits_to_int(bits_arr) -> np.ndarray:
    """Inverse of :func:`int_to_bits`: LSB-first bits -> uint64."""
    arr = np.asarray(bits_arr, dtype=np.uint64)
    if arr.shape[-1] > 64:
        raise ConfigError(f"cannot pack {arr.shape[-1]} bits into uint64")
    shifts = np.arange(arr.shape[-1], dtype=np.uint64)
    return (arr << shifts).sum(axis=-1, dtype=np.uint64)


def pack_bits(bits_arr) -> bytes:
    """Pack a bit array (any shape, values 0/1) into bytes, row-major, LSB-first."""
    arr = np.asarray(bits_arr, dtype=np.uint8).reshape(-1)
    return np.packbits(arr, bitorder="little").tobytes()


def unpack_bits(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a flat uint8 array of length ``count``."""
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr, bitorder="little")
    if bits.size < count:
        raise ConfigError(f"buffer holds {bits.size} bits, need {count}")
    return bits[:count].copy()


def transpose_bit_matrix(mat: np.ndarray) -> np.ndarray:
    """Transpose a 2-D 0/1 matrix (the core step of IKNP OT extension)."""
    arr = np.asarray(mat, dtype=np.uint8)
    if arr.ndim != 2:
        raise ConfigError(f"expected a 2-D bit matrix, got shape {arr.shape}")
    return np.ascontiguousarray(arr.T)


def pack_bits_to_words(bits_arr) -> np.ndarray:
    """Pack a 0/1 array ``(..., n)`` into ``(..., ceil(n/64))`` uint64 words.

    LSB-first within each word (bit ``i`` of the row lands in word
    ``i // 64`` at position ``i % 64``); tail bits beyond ``n`` are zero.
    """
    arr = np.atleast_1d(np.asarray(bits_arr, dtype=np.uint8))
    n = arr.shape[-1]
    words = (n + 63) // 64
    lead = arr.shape[:-1]
    flat = np.ascontiguousarray(arr.reshape(-1, n) if n else arr.reshape(-1, 0))
    buf = np.zeros((flat.shape[0], words * 8), dtype=np.uint8)
    if n:
        packed = np.packbits(flat, axis=1, bitorder="little")
        buf[:, : packed.shape[1]] = packed
    return buf.view(np.uint64).reshape(lead + (words,))


def unpack_words_to_bits(words_arr, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits_to_words`: ``(..., W)`` words -> ``(..., count)`` bits."""
    arr = np.ascontiguousarray(words_arr, dtype=np.uint64)
    if arr.shape[-1] * 64 < count:
        raise ConfigError(f"{arr.shape[-1]} words hold {arr.shape[-1] * 64} bits, need {count}")
    lead = arr.shape[:-1]
    flat = arr.reshape(-1, arr.shape[-1])
    bits = np.unpackbits(flat.view(np.uint8), axis=1, bitorder="little", count=count)
    return bits.reshape(lead + (count,))


# --------------------------------------------------------------------- #
# word-packed bit-matrix transpose (the OT-extension hot path)
# --------------------------------------------------------------------- #
_TILE_STEPS = [
    (np.uint64(32), np.uint64(0xFFFFFFFF00000000)),
    (np.uint64(16), np.uint64(0xFFFF0000FFFF0000)),
    (np.uint64(8), np.uint64(0xFF00FF00FF00FF00)),
    (np.uint64(4), np.uint64(0xF0F0F0F0F0F0F0F0)),
    (np.uint64(2), np.uint64(0xCCCCCCCCCCCCCCCC)),
    (np.uint64(1), np.uint64(0xAAAAAAAAAAAAAAAA)),
]


def _transpose_tiles(tiles: np.ndarray) -> np.ndarray:
    """Transpose 64x64 bit tiles laid out as ``(R64, 64, W)`` uint64.

    ``tiles[rt, r, wc]`` is row ``r`` of the tile at row-tile ``rt``,
    word-column ``wc``; bit ``c`` (LSB-first) is tile column ``c``.
    Butterfly masked swaps (Hacker's Delight 7-3) along the middle axis,
    in place.  Swap partners ``(r, r + j)`` are selected by reshaping
    that axis to ``(64 / 2j, 2, j)`` — plain strided views with the long
    ``W`` axis contiguous, no index gathers.
    """
    r64, _, w = tiles.shape
    for sh, swap_mask in _TILE_STEPS:
        j = int(sh)
        view = tiles.reshape(r64, 32 // j, 2, j, w)
        a = view[:, :, 0]
        b = view[:, :, 1]
        t = b << sh
        t ^= a
        t &= swap_mask
        a ^= t
        t >>= sh
        b ^= t
    return tiles


def transpose_packed(rows: np.ndarray) -> np.ndarray:
    """Transpose a word-packed bit matrix without unpacking to bytes.

    ``rows`` is ``(R, W)`` uint64, the packed rows of an ``(R, W * 64)``
    bit matrix (LSB-first; callers with fewer than ``W * 64`` meaningful
    columns zero-pad).  ``R`` must be a multiple of 64.  Returns the
    packed rows of the transpose, shape ``(W * 64, R // 64)``; output
    rows beyond the caller's true column count are the transposed zero
    padding.
    """
    arr = np.ascontiguousarray(rows, dtype=np.uint64)
    if arr.ndim != 2:
        raise ConfigError(f"expected a 2-D packed matrix, got shape {arr.shape}")
    r, w = arr.shape
    if r % 64 != 0:
        raise ConfigError(f"packed transpose needs a multiple of 64 rows, got {r}")
    if r == 0 or w == 0:
        return np.zeros((w * 64, r // 64), dtype=np.uint64)
    flipped = _transpose_tiles(arr.reshape(r // 64, 64, w).copy())
    # flipped[rt, c_local, wc] is the word of transposed-matrix row
    # wc*64 + c_local at word-column rt.
    return np.ascontiguousarray(flipped.transpose(2, 1, 0)).reshape(w * 64, r // 64)


# --------------------------------------------------------------------- #
# ragged wire codecs: packed rows <-> the bit-contiguous blob format
# --------------------------------------------------------------------- #
def _blob_nbytes(n_rows: int, row_bits: int) -> int:
    return (n_rows * row_bits + 7) // 8


def concat_packed_rows(rows: np.ndarray, row_bits: int) -> bytes:
    """Serialize ``(n_rows, W)`` packed rows to the dense wire blob.

    The blob is byte-identical to ``pack_bits`` of the unpacked
    ``(n_rows, row_bits)`` bit matrix: rows are concatenated at *bit*
    granularity, so for ``row_bits % 8 != 0`` row boundaries are not byte
    aligned.  Bits at positions >= ``row_bits`` in each input row are
    masked off.
    """
    arr = np.ascontiguousarray(rows, dtype=np.uint64)
    if arr.ndim != 2 or arr.shape[1] != (row_bits + 63) // 64:
        raise ConfigError(
            f"expected (n_rows, {(row_bits + 63) // 64}) packed rows for "
            f"{row_bits}-bit rows, got shape {arr.shape}"
        )
    n_rows, words = arr.shape
    if n_rows == 0 or row_bits == 0:
        return b""
    if row_bits % 64:
        arr = arr.copy()
        arr[:, -1] &= np.uint64((1 << (row_bits % 64)) - 1)
    nbytes = _blob_nbytes(n_rows, row_bits)
    if row_bits % 8 == 0:
        # Rows are byte aligned: slice each row's bytes and concatenate.
        return arr.view(np.uint8).reshape(n_rows, words * 8)[:, : row_bits // 8].tobytes()
    if row_bits < 64:
        # Rare tiny-row case: a blob word can span 3+ rows; take the
        # simple unpack/pack route.
        bits = unpack_words_to_bits(arr, row_bits)
        return pack_bits(bits)
    # General case: every output word draws bits from at most two
    # consecutive rows.  Gather both contributions per word — no scatter,
    # no (n_rows, row_bits) uint8 expansion.
    out_words = (n_rows * row_bits + 63) // 64
    padded = np.zeros((n_rows + 1, words + 1), dtype=np.uint64)
    padded[:n_rows, :words] = arr
    w = np.arange(out_words, dtype=np.int64)
    a = (64 * w) // row_bits  # first contributing row
    q = 64 * w - a * row_bits  # bit offset inside that row
    qw, qs = q // 64, (q % 64).astype(np.uint64)
    chunk = padded[a, qw] >> qs
    high = padded[a, qw + 1] << (np.uint64(64) - qs)
    chunk = chunk | np.where(qs == 0, np.uint64(0), high)
    spill = row_bits - q  # bits of row `a` remaining at this offset
    head_shift = np.clip(spill, 0, 63).astype(np.uint64)
    head = padded[a + 1, 0] << head_shift
    out = chunk | np.where(spill < 64, head, np.uint64(0))
    return out.tobytes()[:nbytes]


def split_packed_rows(data: bytes, n_rows: int, row_bits: int) -> np.ndarray:
    """Inverse of :func:`concat_packed_rows`: blob -> ``(n_rows, W)`` words.

    Tail bits beyond ``row_bits`` in each output row are zero.  Raises
    :class:`ConfigError` when the blob length does not match exactly.
    """
    nbytes = _blob_nbytes(n_rows, row_bits)
    if len(data) != nbytes:
        raise ConfigError(
            f"blob of {len(data)} bytes cannot hold {n_rows} rows of "
            f"{row_bits} bits ({nbytes} bytes expected)"
        )
    words = (row_bits + 63) // 64
    if n_rows == 0 or row_bits == 0:
        return np.zeros((n_rows, words), dtype=np.uint64)
    raw = np.frombuffer(data, dtype=np.uint8)
    if row_bits % 8 == 0:
        buf = np.zeros((n_rows, words * 8), dtype=np.uint8)
        buf[:, : row_bits // 8] = raw.reshape(n_rows, row_bits // 8)
        return buf.view(np.uint64).reshape(n_rows, words)
    # Bit-aligned rows: gather each output word from the two blob words
    # it straddles.  Per-row shift is constant across the row's words.
    blob_words = (n_rows * row_bits + 63) // 64
    padded = np.zeros((blob_words + 1) * 8, dtype=np.uint8)
    padded[: raw.size] = raw
    blob = padded.view(np.uint64)
    start = np.arange(n_rows, dtype=np.int64) * row_bits
    w0 = (start // 64)[:, None] + np.arange(words, dtype=np.int64)[None, :]
    s = (start % 64).astype(np.uint64)[:, None]
    low = blob[w0] >> s
    high = blob[w0 + 1] << (np.uint64(64) - s)
    out = low | np.where(s == 0, np.uint64(0), high)
    if row_bits % 64:
        out[:, -1] &= np.uint64((1 << (row_bits % 64)) - 1)
    return out


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ConfigError(f"xor_bytes length mismatch: {len(a)} vs {len(b)}")
    return (np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)).tobytes()


def packed_word_count(count: int, bits: int) -> int:
    """uint64 words needed to carry ``count`` ``bits``-wide ring elements."""
    return (count * bits + 63) // 64


def pack_ring_words(arr: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``bits``-wide ring elements into dense uint64 words.

    ``arr`` has shape ``(..., count)`` of uint64 values below ``2**bits``;
    the result has shape ``(..., packed_word_count(count, bits))``.  This
    is what keeps OT message sizes faithful to the paper's bit counts
    (e.g. o * l * N bits per multi-batch OT) instead of always paying
    64 bits per element.
    """
    a = np.asarray(arr, dtype=np.uint64)
    count = a.shape[-1]
    if bits == 64:
        return a.copy()
    if 64 % bits == 0:
        # Fast path: whole elements per word (l = 32, 16, 8, ...).
        per_word = 64 // bits
        pad = (-count) % per_word
        if pad:
            padded = np.zeros(a.shape[:-1] + (count + pad,), dtype=np.uint64)
            padded[..., :count] = a
            a = padded
        grouped = a.reshape(a.shape[:-1] + (-1, per_word))
        shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
        return (grouped << shifts).sum(axis=-1, dtype=np.uint64)
    # Generic path through a bit matrix.
    lead = a.shape[:-1]
    flat = a.reshape(-1, count)
    bit_rows = int_to_bits(flat, bits).reshape(flat.shape[0], count * bits)
    n_words = packed_word_count(count, bits)
    pad = n_words * 64 - count * bits
    if pad:
        bit_rows = np.concatenate(
            [bit_rows, np.zeros((flat.shape[0], pad), dtype=np.uint8)], axis=1
        )
    packed = np.packbits(bit_rows, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(lead + (n_words,))


def unpack_ring_words(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_ring_words`; returns ``(..., count)`` uint64."""
    p = np.asarray(packed, dtype=np.uint64)
    if p.shape[-1] != packed_word_count(count, bits):
        raise ConfigError(
            f"expected {packed_word_count(count, bits)} words for "
            f"{count}x{bits}-bit elements, got {p.shape[-1]}"
        )
    if bits == 64:
        return p[..., :count].copy()
    if 64 % bits == 0:
        per_word = 64 // bits
        shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
        mask = np.uint64((1 << bits) - 1)
        expanded = (p[..., None] >> shifts) & mask
        return expanded.reshape(p.shape[:-1] + (-1,))[..., :count].copy()
    lead = p.shape[:-1]
    flat = p.reshape(-1, p.shape[-1])
    bit_rows = np.unpackbits(flat.view(np.uint8), axis=1, bitorder="little")
    elems = bit_rows[:, : count * bits].reshape(-1, count, bits)
    return bits_to_int(elems).reshape(lead + (count,))


def bytes_to_u64_rows(data: bytes, row_words: int) -> np.ndarray:
    """View a byte buffer as a (rows, row_words) uint64 matrix."""
    if len(data) % (8 * row_words) != 0:
        raise ConfigError(
            f"buffer of {len(data)} bytes is not a multiple of {8 * row_words}-byte rows"
        )
    return np.frombuffer(data, dtype=np.uint64).reshape(-1, row_words).copy()
