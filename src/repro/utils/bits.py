"""Bit-level helpers: int <-> bit vectors, packing, and bit-matrix transpose.

OT extension works on bit matrices (m x kappa booleans); garbled circuits
work on per-wire bits of ring elements.  These helpers keep the bit order
convention in one place: **index 0 is the least-significant bit**.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def int_to_bits(values, bits: int) -> np.ndarray:
    """Decompose unsigned integers into LSB-first bit arrays.

    ``values`` may be a scalar or array; the result has one extra trailing
    axis of length ``bits`` with dtype uint8.
    """
    if not 1 <= bits <= 64:
        raise ConfigError(f"bit width must be in [1, 64], got {bits}")
    arr = np.asarray(values, dtype=np.uint64)
    shifts = np.arange(bits, dtype=np.uint64)
    return ((arr[..., None] >> shifts) & np.uint64(1)).astype(np.uint8)


def bits_to_int(bits_arr) -> np.ndarray:
    """Inverse of :func:`int_to_bits`: LSB-first bits -> uint64."""
    arr = np.asarray(bits_arr, dtype=np.uint64)
    if arr.shape[-1] > 64:
        raise ConfigError(f"cannot pack {arr.shape[-1]} bits into uint64")
    shifts = np.arange(arr.shape[-1], dtype=np.uint64)
    return (arr << shifts).sum(axis=-1, dtype=np.uint64)


def pack_bits(bits_arr) -> bytes:
    """Pack a bit array (any shape, values 0/1) into bytes, row-major, LSB-first."""
    arr = np.asarray(bits_arr, dtype=np.uint8).reshape(-1)
    return np.packbits(arr, bitorder="little").tobytes()


def unpack_bits(data: bytes, count: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`; returns a flat uint8 array of length ``count``."""
    arr = np.frombuffer(data, dtype=np.uint8)
    bits = np.unpackbits(arr, bitorder="little")
    if bits.size < count:
        raise ConfigError(f"buffer holds {bits.size} bits, need {count}")
    return bits[:count].copy()


def transpose_bit_matrix(mat: np.ndarray) -> np.ndarray:
    """Transpose a 2-D 0/1 matrix (the core step of IKNP OT extension)."""
    arr = np.asarray(mat, dtype=np.uint8)
    if arr.ndim != 2:
        raise ConfigError(f"expected a 2-D bit matrix, got shape {arr.shape}")
    return np.ascontiguousarray(arr.T)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ConfigError(f"xor_bytes length mismatch: {len(a)} vs {len(b)}")
    return (np.frombuffer(a, dtype=np.uint8) ^ np.frombuffer(b, dtype=np.uint8)).tobytes()


def packed_word_count(count: int, bits: int) -> int:
    """uint64 words needed to carry ``count`` ``bits``-wide ring elements."""
    return (count * bits + 63) // 64


def pack_ring_words(arr: np.ndarray, bits: int) -> np.ndarray:
    """Pack ``bits``-wide ring elements into dense uint64 words.

    ``arr`` has shape ``(..., count)`` of uint64 values below ``2**bits``;
    the result has shape ``(..., packed_word_count(count, bits))``.  This
    is what keeps OT message sizes faithful to the paper's bit counts
    (e.g. o * l * N bits per multi-batch OT) instead of always paying
    64 bits per element.
    """
    a = np.asarray(arr, dtype=np.uint64)
    count = a.shape[-1]
    if bits == 64:
        return a.copy()
    if 64 % bits == 0:
        # Fast path: whole elements per word (l = 32, 16, 8, ...).
        per_word = 64 // bits
        pad = (-count) % per_word
        if pad:
            padded = np.zeros(a.shape[:-1] + (count + pad,), dtype=np.uint64)
            padded[..., :count] = a
            a = padded
        grouped = a.reshape(a.shape[:-1] + (-1, per_word))
        shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
        return (grouped << shifts).sum(axis=-1, dtype=np.uint64)
    # Generic path through a bit matrix.
    lead = a.shape[:-1]
    flat = a.reshape(-1, count)
    bit_rows = int_to_bits(flat, bits).reshape(flat.shape[0], count * bits)
    n_words = packed_word_count(count, bits)
    pad = n_words * 64 - count * bits
    if pad:
        bit_rows = np.concatenate(
            [bit_rows, np.zeros((flat.shape[0], pad), dtype=np.uint8)], axis=1
        )
    packed = np.packbits(bit_rows, axis=1, bitorder="little")
    return packed.view(np.uint64).reshape(lead + (n_words,))


def unpack_ring_words(packed: np.ndarray, bits: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_ring_words`; returns ``(..., count)`` uint64."""
    p = np.asarray(packed, dtype=np.uint64)
    if p.shape[-1] != packed_word_count(count, bits):
        raise ConfigError(
            f"expected {packed_word_count(count, bits)} words for "
            f"{count}x{bits}-bit elements, got {p.shape[-1]}"
        )
    if bits == 64:
        return p[..., :count].copy()
    if 64 % bits == 0:
        per_word = 64 // bits
        shifts = (np.arange(per_word, dtype=np.uint64) * np.uint64(bits))
        mask = np.uint64((1 << bits) - 1)
        expanded = (p[..., None] >> shifts) & mask
        return expanded.reshape(p.shape[:-1] + (-1,))[..., :count].copy()
    lead = p.shape[:-1]
    flat = p.reshape(-1, p.shape[-1])
    bit_rows = np.unpackbits(flat.view(np.uint8), axis=1, bitorder="little")
    elems = bit_rows[:, : count * bits].reshape(-1, count, bits)
    return bits_to_int(elems).reshape(lead + (count,))


def bytes_to_u64_rows(data: bytes, row_words: int) -> np.ndarray:
    """View a byte buffer as a (rows, row_words) uint64 matrix."""
    if len(data) % (8 * row_words) != 0:
        raise ConfigError(
            f"buffer of {len(data)} bytes is not a multiple of {8 * row_words}-byte rows"
        )
    return np.frombuffer(data, dtype=np.uint64).reshape(-1, row_words).copy()
