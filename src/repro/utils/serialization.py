"""Compact, dependency-free message encoding for protocol traffic.

Channel messages are the unit of communication accounting, so the encoding
must be tight and predictable: a one-byte tag, then a fixed header, then
raw little-endian payload bytes.  Supported payloads are ``bytes``,
``numpy`` integer arrays, and python ints; tuples of those are encoded as
a length-prefixed sequence.

The byte counts reported in EXPERIMENTS.md use the *payload* size (what a
wire protocol would actually carry), which :func:`payload_nbytes` computes
without serializing.
"""

from __future__ import annotations

import struct
from typing import Any

import numpy as np

from repro.errors import ProtocolError

_TAG_BYTES = 0
_TAG_ARRAY = 1
_TAG_INT = 2
_TAG_TUPLE = 3

_DTYPES = {
    0: np.dtype(np.uint8),
    1: np.dtype(np.uint16),
    2: np.dtype(np.uint32),
    3: np.dtype(np.uint64),
    4: np.dtype(np.int64),
    5: np.dtype(np.int32),
    6: np.dtype(np.bool_),
}
_DTYPE_CODES = {dt: code for code, dt in _DTYPES.items()}


def encode(obj: Any) -> bytes:
    """Serialize a supported object to bytes."""
    if isinstance(obj, (bytes, bytearray)):
        return struct.pack("<BQ", _TAG_BYTES, len(obj)) + bytes(obj)
    if isinstance(obj, np.ndarray):
        dt = obj.dtype
        if dt not in _DTYPE_CODES:
            raise ProtocolError(f"unsupported array dtype {dt}")
        shape = obj.shape
        head = struct.pack("<BBB", _TAG_ARRAY, _DTYPE_CODES[dt], len(shape))
        head += struct.pack(f"<{len(shape)}Q", *shape)
        return head + np.ascontiguousarray(obj).tobytes()
    if isinstance(obj, (int, np.integer)):
        return struct.pack("<Bq", _TAG_INT, int(obj))
    if isinstance(obj, tuple):
        body = b"".join(encode(item) for item in obj)
        return struct.pack("<BI", _TAG_TUPLE, len(obj)) + body
    raise ProtocolError(f"cannot encode object of type {type(obj).__name__}")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    obj, offset = _decode_at(data, 0)
    if offset != len(data):
        raise ProtocolError(f"trailing {len(data) - offset} bytes after message")
    return obj


def _need(data: bytes, offset: int, nbytes: int, what: str) -> None:
    """Reject truncated input before slicing: ``data[a:b]`` never raises."""
    if nbytes < 0 or offset + nbytes > len(data):
        raise ProtocolError(
            f"truncated message: need {nbytes} bytes for {what} at offset "
            f"{offset}, have {len(data) - offset}"
        )


def _decode_at(data: bytes, offset: int):
    _need(data, offset, 1, "tag")
    tag = data[offset]
    offset += 1
    if tag == _TAG_BYTES:
        _need(data, offset, 8, "bytes header")
        (length,) = struct.unpack_from("<Q", data, offset)
        offset += 8
        _need(data, offset, length, "bytes payload")
        return data[offset : offset + length], offset + length
    if tag == _TAG_ARRAY:
        _need(data, offset, 2, "array header")
        code, ndim = struct.unpack_from("<BB", data, offset)
        offset += 2
        if code not in _DTYPES:
            raise ProtocolError(f"unknown array dtype code {code}")
        _need(data, offset, 8 * ndim, "array shape")
        shape = struct.unpack_from(f"<{ndim}Q", data, offset)
        offset += 8 * ndim
        dt = _DTYPES[code]
        count = 1  # python ints: huge (corrupted) dims must not wrap around
        for dim in shape:
            count *= dim
        nbytes = count * dt.itemsize
        _need(data, offset, nbytes, "array payload")
        arr = np.frombuffer(data, dtype=dt, count=count, offset=offset).reshape(shape)
        return arr.copy(), offset + nbytes
    if tag == _TAG_INT:
        _need(data, offset, 8, "int payload")
        (value,) = struct.unpack_from("<q", data, offset)
        return value, offset + 8
    if tag == _TAG_TUPLE:
        _need(data, offset, 4, "tuple header")
        (count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        items = []
        for _ in range(count):
            item, offset = _decode_at(data, offset)
            items.append(item)
        return tuple(items), offset
    raise ProtocolError(f"unknown message tag {tag}")


def payload_nbytes(obj: Any) -> int:
    """Wire size of the raw payload, excluding framing/tag overhead.

    This is the figure the paper's communication columns report: element
    bytes for arrays, string length for bytes, 8 for a scalar.
    """
    if isinstance(obj, (bytes, bytearray)):
        return len(obj)
    if isinstance(obj, np.ndarray):
        return obj.nbytes
    if isinstance(obj, (int, np.integer)):
        return 8
    if isinstance(obj, tuple):
        return sum(payload_nbytes(item) for item in obj)
    raise ProtocolError(f"cannot size object of type {type(obj).__name__}")
