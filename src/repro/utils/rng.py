"""Deterministic randomness plumbing.

Every source of randomness in the library flows through numpy Generators
seeded explicitly, so protocol runs are reproducible end to end.  Parties
derive independent sub-seeds from a master seed with domain separation.
"""

from __future__ import annotations

import hashlib

import numpy as np


def make_rng(seed: int | None = None) -> np.random.Generator:
    """A fresh PCG64 generator; ``None`` means OS entropy."""
    return np.random.default_rng(seed)


def derive_seed(master: int, *labels) -> int:
    """Derive a 64-bit sub-seed from a master seed and string/int labels.

    Uses SHA-256 over the canonical encoding so that distinct label tuples
    always yield independent-looking seeds.
    """
    h = hashlib.sha256()
    h.update(int(master).to_bytes(16, "little", signed=False))
    for label in labels:
        h.update(b"\x1f")
        h.update(str(label).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "little")


def derive_rng(master: int, *labels) -> np.random.Generator:
    """Convenience: :func:`derive_seed` piped into :func:`make_rng`."""
    return make_rng(derive_seed(master, *labels))


def randbelow_from_rng(rng: np.random.Generator, bound: int) -> int:
    """Uniform integer in ``[0, bound)`` for arbitrarily large bounds.

    numpy's ``integers`` caps at int64; group exponents are hundreds of
    bits, so we draw whole bytes and rejection-sample.
    """
    if bound <= 0:
        raise ValueError("bound must be positive")
    nbits = bound.bit_length()
    nbytes = (nbits + 7) // 8
    excess = 8 * nbytes - nbits
    while True:
        value = int.from_bytes(rng.bytes(nbytes), "little") >> excess
        if value < bound:
            return value
