"""Shared low-level utilities: ring arithmetic, bit packing, RNG, serialization."""

from repro.utils.ring import Ring
from repro.utils.rng import make_rng, derive_seed

__all__ = ["Ring", "make_rng", "derive_seed"]
