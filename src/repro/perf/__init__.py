"""Cost models and timing helpers behind the benchmark harnesses."""

from repro.perf.costmodel import (
    secureml_ot_count,
    secureml_comm_bits,
    abnn2_ot_count,
    abnn2_comm_bits,
    abnn2_comm_bits_radices,
    network_offline_comm_bits,
    gc_relu_comm_bits,
    gc_relu_wire_bits,
    minionn_comm_model_mb,
)
from repro.perf.timing import BenchRow, format_table, simulate_settings
from repro.perf.trace import TRACE_SCHEMA, Span, Tracer, channel_span, load_trace

__all__ = [
    "secureml_ot_count",
    "secureml_comm_bits",
    "abnn2_ot_count",
    "abnn2_comm_bits",
    "abnn2_comm_bits_radices",
    "network_offline_comm_bits",
    "gc_relu_comm_bits",
    "gc_relu_wire_bits",
    "minionn_comm_model_mb",
    "BenchRow",
    "format_table",
    "simulate_settings",
    "TRACE_SCHEMA",
    "Span",
    "Tracer",
    "channel_span",
    "load_trace",
]
