"""Benchmark bookkeeping: rows, table formatting, LAN/WAN projection.

The benchmark harnesses run the real protocols in-process, then project
wall-clock times onto the paper's link profiles with
:class:`repro.net.netsim.NetworkModel`.  :class:`BenchRow` carries one
measurement; :func:`format_table` renders the same row/column layout the
paper's tables use so EXPERIMENTS.md can be regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.net.netsim import LAN, WAN_QUOTIENT, WAN_SECUREML, NetworkModel

MB = 1024 * 1024


@dataclass
class BenchRow:
    """One benchmark measurement plus its network-projected times."""

    label: str
    compute_s: float
    payload_bytes: int
    rounds: int
    extras: dict = field(default_factory=dict)

    @property
    def comm_mb(self) -> float:
        return self.payload_bytes / MB

    def projected_s(self, model: NetworkModel, compute_scale: float = 1.0) -> float:
        return model.estimate_s(
            self.compute_s, self.payload_bytes, self.rounds, compute_scale
        )

    def as_dict(self, models: list[NetworkModel]) -> dict:
        row = {
            "label": self.label,
            "compute_s": round(self.compute_s, 3),
            "comm_MB": round(self.comm_mb, 2),
            "rounds": self.rounds,
        }
        for model in models:
            row[f"{model.name}_s"] = round(self.projected_s(model), 3)
        row.update(self.extras)
        return row


def simulate_settings(table: str) -> list[NetworkModel]:
    """The link profiles each paper table uses."""
    if table in ("table2",):
        return [LAN]
    if table in ("table3",):
        return [LAN, WAN_SECUREML]
    if table in ("table4", "table5"):
        return [LAN, WAN_QUOTIENT]
    return [LAN, WAN_SECUREML, WAN_QUOTIENT]


def format_table(rows: list[BenchRow], models: list[NetworkModel], title: str = "") -> str:
    """Plain-text table, one line per row (stable column order)."""
    dicts = [row.as_dict(models) for row in rows]
    if not dicts:
        return title
    columns = list(dicts[0].keys())
    widths = {
        col: max(len(str(col)), *(len(str(d.get(col, ""))) for d in dicts))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(col).ljust(widths[col]) for col in columns))
    lines.append("  ".join("-" * widths[col] for col in columns))
    for d in dicts:
        lines.append("  ".join(str(d.get(col, "")).ljust(widths[col]) for col in columns))
    return "\n".join(lines)
