"""Analytic communication/OT-count models (the formulas behind Table 1).

These reproduce the paper's closed forms so benchmarks can print the
predicted columns next to the measured ones:

=========  =====================================  ================================
System     #OT                                    Communication (bits)
=========  =====================================  ================================
SecureML   ``l(l+1)/128 * m*n*o``                 ``m*n*o * l(l+1) * (1 + k/64)``
M-Batch    ``gamma * m * n``                      ``gamma*m*n*(o*l*N + 2k)``
1-Batch    ``gamma * m * n``                      ``gamma*m*n*(l*(N-1) + 2k)``
=========  =====================================  ================================

Mixed-radix schemes replace the uniform ``gamma * (... N ...)`` by a sum
over fragments with their individual ``N_i``.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.quant.fragments import FragmentScheme
from repro.utils.ring import MATMUL_EXPANSION_WORDS

KAPPA = 128


# --------------------------------------------------------------------- #
# SecureML (Table 1, column 1)
# --------------------------------------------------------------------- #
def secureml_ot_count(m: int, n: int, o: int, ring_bits: int, kappa: int = KAPPA) -> float:
    """``l(l+1)/128 * m*n*o`` — OTs counted in 128-bit-packed units."""
    return ring_bits * (ring_bits + 1) / kappa * m * n * o


def secureml_comm_bits(m: int, n: int, o: int, ring_bits: int, kappa: int = KAPPA) -> float:
    """``m*n*o * l(l+1) * (1 + kappa/64)`` bits."""
    return m * n * o * ring_bits * (ring_bits + 1) * (1 + kappa / 64)


# --------------------------------------------------------------------- #
# ABNN2 (Table 1, columns 2-3)
# --------------------------------------------------------------------- #
def abnn2_ot_count(scheme: FragmentScheme, m: int, n: int) -> int:
    """``gamma * m * n`` for either batching mode."""
    return scheme.gamma * m * n


def abnn2_comm_bits_radices(
    radices,
    m: int,
    n: int,
    o: int,
    ring_bits: int,
    mode: str = "auto",
    kappa: int = KAPPA,
) -> int:
    """Table 1 closed form from the raw fragment radices ``[N_1, ..]``.

    The per-fragment form the trace conformance checker uses: traces
    carry ``frag_n_values`` (one N per fragment) rather than a
    :class:`FragmentScheme` object.
    """
    if mode == "auto":
        mode = "one" if o == 1 else "multi"
    if mode not in ("one", "multi"):
        raise ConfigError(f"unknown mode {mode!r}")
    total = 0
    for n_values in radices:
        if mode == "multi":
            per_ot = o * ring_bits * n_values + 2 * kappa
        else:
            per_ot = ring_bits * (n_values - 1) + 2 * kappa
        total += m * n * per_ot
    return total


def abnn2_comm_bits(
    scheme: FragmentScheme,
    m: int,
    n: int,
    o: int,
    ring_bits: int,
    mode: str = "auto",
    kappa: int = KAPPA,
) -> int:
    """Predicted offline communication of the ABNN2 matmul protocol."""
    return abnn2_comm_bits_radices(
        [frag.n_values for frag in scheme.fragments], m, n, o, ring_bits, mode, kappa
    )


# --------------------------------------------------------------------- #
# Winograd F(2x2,3x3) conv backend
# --------------------------------------------------------------------- #
def conv_triplet_elements_im2col(
    c_in: int, c_out: int, out_h: int, out_w: int, batch: int, kernel: int = 3
) -> int:
    """Scalar triplet elements (W entries x operand columns) of one conv
    layer lowered via im2col: ``(c_out) * (c_in k^2) * (out_h out_w b)``."""
    return c_out * c_in * kernel * kernel * out_h * out_w * batch


def conv_triplet_elements_winograd(
    c_in: int, c_out: int, n_tiles: int, batch: int
) -> int:
    """Scalar triplet elements of the same layer on the F(2x2,3x3) tile
    backend: 16 grouped ``(c_out, c_in) x (c_in, b n_tiles)`` products,
    i.e. ``16 c_in c_out n_tiles b`` — a 2.25x reduction at stride 1
    (36 im2col elements per tile vs 16)."""
    return 16 * c_in * c_out * n_tiles * batch


def winograd_reduction_ratio(out_h: int, out_w: int, n_tiles: int, kernel: int = 3) -> float:
    """im2col/winograd triplet-element ratio (2.25 on even stride-1 maps,
    where ``n_tiles = out_h * out_w / 4``)."""
    return (kernel * kernel * out_h * out_w) / (16.0 * n_tiles)


def winograd_ot_count(scheme: FragmentScheme, c_in: int, c_out: int) -> int:
    """OT executions for one winograd conv layer's offline phase.

    The grouped product stacks 16 tile-point blocks of ``(c_out, c_in)``
    transformed weights, and each transformed entry decomposes under the
    *transformed-weight* scheme (``repro.quant.headroom.winograd_scheme``
    of the layer scheme) — so this is :func:`abnn2_ot_count` at
    ``m = 16 c_out``, ``n = c_in``.  Note the per-OT *gamma* of the
    widened scheme usually exceeds the raw scheme's, so the OT count can
    grow even as triplet elements (and multi-batch payload) shrink 2.25x.
    """
    return abnn2_ot_count(scheme, 16 * c_out, c_in)


def winograd_comm_bits(
    scheme: FragmentScheme,
    c_in: int,
    c_out: int,
    n_tiles: int,
    batch: int,
    ring_bits: int,
    mode: str = "auto",
    kappa: int = KAPPA,
) -> int:
    """Offline triplet traffic of one winograd conv layer.

    Exactly :func:`abnn2_comm_bits` at the grouped shape
    ``m = 16 c_out``, ``n = c_in``, ``o = batch * n_tiles``: the wire
    protocol is unchanged, only the (public) dimensions and fragment
    scheme differ, so trace conformance stays byte-exact.
    """
    return abnn2_comm_bits(
        scheme, 16 * c_out, c_in, batch * n_tiles, ring_bits, mode, kappa
    )


def network_offline_comm_bits(
    layer_shapes: list[tuple[int, int]],
    scheme: FragmentScheme,
    o: int,
    ring_bits: int,
    mode: str = "auto",
    kappa: int = KAPPA,
) -> int:
    """Offline triplet traffic for a whole FC network (Table 2 predictor)."""
    return sum(
        abnn2_comm_bits(scheme, m, n, o, ring_bits, mode, kappa)
        for m, n in layer_shapes
    )


# --------------------------------------------------------------------- #
# memory: peak working sets of the linear online pass
# --------------------------------------------------------------------- #
#: int64 ring words everywhere in the share pipeline.
WORD_BYTES = 8


def _matmul_intermediate_words(m: int, n: int, cols: int) -> int:
    """Peak expanded (rows, n, cols) intermediate of ``Ring.matmul``.

    The ring product materializes row chunks of the elementwise
    ``(m, n, cols)`` expansion under the
    :data:`repro.utils.ring.MATMUL_EXPANSION_WORDS` budget, so the
    transient is ``min(m, budget // (n cols)) * n * cols`` words (at
    least one row).
    """
    if cols == 0:
        return 0
    rows = min(m, max(1, MATMUL_EXPANSION_WORDS // (n * cols)))
    return rows * n * cols


def lowered_operand_bytes(
    n: int, total_cols: int, groups: int = 1, word_bytes: int = WORD_BYTES
) -> int:
    """Bytes of one layer's fully-materialized lowered operand.

    The share matrix the linear engines consume is ``(groups * n,
    total_cols)`` int64 — ``n`` is the per-group operand rows
    (``patch_len`` for im2col, ``c_in`` per tile point for winograd,
    ``in_features`` for dense) and ``total_cols`` is ``batch *
    n_positions`` / ``batch * n_tiles`` / ``batch``.  This is the
    allocation the chunked path (``Im2colSpec.chunk_cols``) avoids.
    """
    if min(n, groups) < 1 or total_cols < 0:
        raise ConfigError("operand dimensions must be positive")
    return groups * n * total_cols * word_bytes


def linear_working_set_bytes(
    m: int,
    n: int,
    total_cols: int,
    groups: int = 1,
    chunk_cols: int | None = None,
    word_bytes: int = WORD_BYTES,
) -> int:
    """Predicted transient peak of the server's online linear step for
    one layer, excluding persistent state (weights, the banked ``U``,
    the accumulated output share).

    Unchunked, the pass materializes the whole lowered operand
    (``groups n`` rows), the product (``groups m`` rows) and the summed
    output (``groups m`` rows) at full width: ``total_cols * groups *
    (n + 2m)`` words.  Chunked at ``c = min(chunk_cols, total_cols)``
    columns, each block holds the lowered block, the product, the sum
    *and* a copy of the served ``U`` columns (block reads may
    concatenate across bank blocks): ``c * groups * (n + 3m)`` words.
    Both forms add the row-chunked expansion transient of
    ``Ring.matmul`` at the block's column count (the groups run
    sequentially, so one group's expansion is live at a time).  The
    ratio to :func:`lowered_operand_bytes` is what the big-model
    benchmark's RSS gate measures end to end.
    """
    if min(m, n, groups) < 1 or total_cols < 0:
        raise ConfigError("matmul dimensions must be positive")
    if chunk_cols is None or chunk_cols >= total_cols:
        return word_bytes * (
            total_cols * groups * (n + 2 * m)
            + _matmul_intermediate_words(m, n, total_cols)
        )
    if chunk_cols < 1:
        raise ConfigError("chunk_cols must be positive")
    return word_bytes * (
        chunk_cols * groups * (n + 3 * m)
        + _matmul_intermediate_words(m, n, chunk_cols)
    )


# --------------------------------------------------------------------- #
# online GC (the non-linear layers)
# --------------------------------------------------------------------- #
def gc_relu_comm_bits(ring_bits: int, n_relus: int, kappa: int = KAPPA) -> int:
    """Rough online traffic of the oblivious ReLU layer.

    Per instance: ``3l - 2`` AND gates at two kappa-bit ciphertexts each
    (half-gates), ``2l`` garbler input labels, plus an l-bit label OT for
    the evaluator's input (2 kappa-bit ciphertexts + kappa bits of OT-
    extension matrix per bit) and l decode bits.
    """
    and_gates = 3 * ring_bits - 2
    per_instance = (
        and_gates * 2 * kappa  # garbled tables
        + 2 * ring_bits * kappa  # client's y1/z1 labels
        + ring_bits * (2 * kappa + kappa)  # label OT for y0 bits
        + ring_bits  # decode bits
    )
    return n_relus * per_instance


def gc_relu_wire_bits(ring_bits: int, n_relus: int, kappa: int = KAPPA) -> int:
    """Exact wire bytes (in bits) of the oblivious GC ReLU, base OTs excluded.

    Identical to :func:`gc_relu_comm_bits` except for one documented
    constant delta: the implementation ships output decode bits as one
    uint8 per bit (``l`` bytes per instance) while the model counts
    ``l`` bits, i.e. ``+7l`` bits per instance.  Every other term is
    byte-exact on the wire: half-gate tables are two 128-bit ciphertexts
    per AND, labels are 128 bits, the IKNP U column is ``kappa`` bits
    per OT and the chosen-message ciphertext ``2 kappa``.  The
    conformance suite asserts *equality* against this form.
    """
    return gc_relu_comm_bits(ring_bits, n_relus, kappa) + 7 * ring_bits * n_relus


def gc_stream_overhead_bits(n_chunks: int) -> int:
    """Exact per-party framing overhead of the chunked GC table stream.

    Relative to the one-shot transfer, the stream
    (:mod:`repro.gc.stream`) adds: a header with two ints (``n_chunks``,
    ``chunk`` — 16 bytes), one int chunk index per table block
    (``8 n_chunks`` bytes), and one int ack per block flowing the other
    way (``8 n_chunks`` bytes).  Each party both sends and receives one
    of the two per-chunk directions, so the *per-party* sent+received
    overhead is identical on both sides.  Mux frame headers are excluded
    — per-stream accounting counts inner payloads only
    (:data:`repro.net.mux.MUX_FRAME_OVERHEAD_BYTES`).
    """
    if n_chunks < 0:
        raise ConfigError("n_chunks must be non-negative")
    return 8 * (16 + 16 * n_chunks)


# --------------------------------------------------------------------- #
# MiniONN (Table 4 anchor model)
# --------------------------------------------------------------------- #
# The paper reports MiniONN's measured traffic for the Figure-4 network:
# 18.1 MB at batch 1 and 1621.3 MB at batch 128 (Enc(W) transferred
# once).  A two-point affine model comm(o) = fixed + o * per_prediction
# reproduces both anchors; our Paillier re-implementation undercounts
# MiniONN's SEAL ciphertext sizes, so harnesses quote this model
# alongside the measured bytes.
_MINIONN_BATCH1_MB = 18.1
_MINIONN_BATCH128_MB = 1621.3


def minionn_comm_model_mb(batch: int) -> float:
    """Paper-anchored MiniONN traffic for the Figure-4 MNIST network."""
    if batch < 1:
        raise ConfigError("batch must be positive")
    per = (_MINIONN_BATCH128_MB - _MINIONN_BATCH1_MB) / 127.0
    fixed = _MINIONN_BATCH1_MB - per
    return fixed + per * batch
