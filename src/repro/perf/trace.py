"""Hierarchical protocol tracing: spans with comm/round accounting.

A :class:`Tracer` is a per-party, single-threaded recorder of nested
**spans**.  A span is opened with :meth:`Tracer.span` (a context
manager) or the lower-level :meth:`Tracer.start_span` /
:meth:`Tracer.end_span` pair, and accumulates, while it is the
*innermost open* span:

* wall time (``perf_counter`` based),
* payload bytes sent / received (what the paper's communication
  columns count — see :func:`repro.utils.serialization.payload_nbytes`),
* message counts per direction,
* **rounds**: the number of direction flips in this party's own
  send/recv event stream.  The first message of a span's subtree opens
  round 1.  This is provably the same convention as
  :class:`repro.net.channel.ChannelStats` (a round begins whenever the
  sending party flips): from one party's viewpoint a flip of the
  global sender is exactly a flip between that party sending and
  receiving.  ``tests/test_rounds_convention.py`` pins the agreement.

Channels cooperate via duck typing: both
:class:`repro.net.channel.Channel` and :class:`repro.net.tcp.TcpChannel`
call ``chan.tracer.record_io(...)`` after every successful send/recv
when a tracer is attached as ``chan.tracer``.  Protocol layers that may
run without a tracer use :func:`channel_span`, which degrades to a
no-op context manager.

Traces export to a schema-versioned JSON document
(:data:`TRACE_SCHEMA`); see ``docs/PROTOCOLS.md`` §10 for the span
taxonomy and the document layout.  Per-span ``self`` counters hold
traffic attributed to that span exclusive of children; ``total``
counters (self + descendants) are computed at export time.

Memory mode (``Tracer(memory=True)``, or env ``ABNN2_TRACE_MEMORY=1``)
adds per-span **allocation high-water marks** via :mod:`tracemalloc`:
each span records the peak python-heap growth observed while it was
open, relative to the heap size at its own start.  The peak is folded
into every open span at each span boundary and at export, so nested
spans see their own maxima even though :func:`tracemalloc.reset_peak`
is global.  The exported root span additionally carries the process
``peak_rss_bytes`` (``VmHWM``).  Module-level helpers
:func:`current_rss_bytes` / :func:`peak_rss_bytes` /
:func:`reset_peak_rss` expose the OS-level counters directly for
benchmarks that measure working sets without tracemalloc overhead.

Thread model: one tracer belongs to one party thread.  Attaching the
same tracer to channels driven from two threads is unsupported.
"""

from __future__ import annotations

import json
import os
import time
import tracemalloc
from contextlib import contextmanager, nullcontext
from typing import Any, Callable, Iterator

from repro.errors import ConfigError

#: Version tag stamped into exported trace documents.
TRACE_SCHEMA = "abnn2-trace/1"

_SEND = "send"
_RECV = "recv"

#: Env var that turns on allocation tracking for every Tracer by default.
MEMORY_ENV = "ABNN2_TRACE_MEMORY"


# --------------------------------------------------------------------- #
# process-level memory counters
# --------------------------------------------------------------------- #
def _read_status_kb(field: str) -> int | None:
    """One ``Vm*`` line of ``/proc/self/status`` in bytes, or None."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith(field + ":"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None


def _rusage_maxrss_bytes() -> int:
    import resource

    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024


def current_rss_bytes() -> int:
    """Resident set size of this process right now (``VmRSS``).

    Falls back to ``ru_maxrss`` (a *peak*, so an upper bound) on
    platforms without ``/proc``.
    """
    value = _read_status_kb("VmRSS")
    return value if value is not None else _rusage_maxrss_bytes()


def peak_rss_bytes() -> int:
    """Peak resident set size since process start or the last
    :func:`reset_peak_rss` (``VmHWM``, with ``ru_maxrss`` fallback)."""
    value = _read_status_kb("VmHWM")
    return value if value is not None else _rusage_maxrss_bytes()


def reset_peak_rss() -> bool:
    """Reset the kernel's RSS high-water mark (``VmHWM``) to the current
    RSS by writing ``5`` to ``/proc/self/clear_refs``.

    Returns True when the reset took effect; False on platforms without
    the knob (callers should then measure in a fresh subprocess, as the
    big-model benchmark does).
    """
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as fh:
            fh.write("5")
    except OSError:
        return False
    return True


class Span:
    """One node of the trace tree.  ``self_*`` counters are exclusive of
    children; use :meth:`totals` for the inclusive view."""

    __slots__ = (
        "name",
        "attrs",
        "parent",
        "children",
        "start_s",
        "duration_s",
        "sent_bytes",
        "recv_bytes",
        "sent_msgs",
        "recv_msgs",
        "rounds",
        "alloc_base",
        "alloc_peak_bytes",
    )

    def __init__(self, name: str, attrs: dict[str, Any], parent: "Span | None") -> None:
        self.name = name
        self.attrs = attrs
        self.parent = parent
        self.children: list[Span] = []
        self.start_s = 0.0
        self.duration_s: float | None = None
        self.sent_bytes = 0
        self.recv_bytes = 0
        self.sent_msgs = 0
        self.recv_msgs = 0
        self.rounds = 0
        # Heap size when the span opened and the peak growth above it,
        # maintained by the owning tracer in memory mode (else None).
        self.alloc_base = 0
        self.alloc_peak_bytes: int | None = None

    @property
    def path(self) -> str:
        """Slash-joined ancestry, e.g. ``online/layer0/matmul``.

        The implicit root span is omitted from paths.
        """
        parts: list[str] = []
        node: Span | None = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/".join(reversed(parts))

    def totals(self) -> dict[str, int]:
        """Inclusive counters: this span plus all descendants."""
        agg = {
            "sent_bytes": self.sent_bytes,
            "recv_bytes": self.recv_bytes,
            "sent_msgs": self.sent_msgs,
            "recv_msgs": self.recv_msgs,
            "rounds": self.rounds,
        }
        for child in self.children:
            sub = child.totals()
            for key in agg:
                agg[key] += sub[key]
        return agg

    def to_dict(self, now_s: float | None = None) -> dict[str, Any]:
        """JSON-ready node (see :data:`TRACE_SCHEMA` for the envelope)."""
        duration = self.duration_s
        if duration is None:
            duration = (now_s if now_s is not None else time.perf_counter()) - self.start_s
        node = {
            "name": self.name,
            "attrs": dict(self.attrs),
            "duration_s": duration,
            "self": {
                "sent_bytes": self.sent_bytes,
                "recv_bytes": self.recv_bytes,
                "sent_msgs": self.sent_msgs,
                "recv_msgs": self.recv_msgs,
                "rounds": self.rounds,
            },
            "total": self.totals(),
            "children": [child.to_dict(now_s) for child in self.children],
        }
        if self.alloc_peak_bytes is not None:
            node["alloc_peak_bytes"] = self.alloc_peak_bytes
        return node

    def __repr__(self) -> str:
        return f"Span({self.path!r}, sent={self.sent_bytes}, recv={self.recv_bytes})"


class Tracer:
    """Per-party span stack plus the channel IO hook (:meth:`record_io`)."""

    def __init__(
        self,
        party: str = "",
        clock: Callable[[], float] = time.perf_counter,
        memory: bool | None = None,
    ) -> None:
        if memory is None:
            memory = os.environ.get(MEMORY_ENV, "").lower() in ("1", "true", "yes", "on")
        self.party = party
        self._clock = clock
        self.memory = memory
        if memory and not tracemalloc.is_tracing():
            tracemalloc.start()
        self.root = Span("root", {"party": party} if party else {}, parent=None)
        self.root.start_s = clock()
        if memory:
            self.root.alloc_base = tracemalloc.get_traced_memory()[0]
            self.root.alloc_peak_bytes = 0
        self._stack: list[Span] = [self.root]
        # Direction of the last IO event seen by this tracer, across span
        # boundaries: rounds are a property of the message *stream*, so a
        # span that continues the previous direction opens no new round.
        self._last_dir: str | None = None

    def _fold_alloc_peak(self) -> None:
        """Fold the tracemalloc peak of the segment since the previous
        boundary into every open span, then reset the (global) peak.

        ``alloc_base`` and the tracemalloc peak are both absolute heap
        sizes, so ``peak - base`` is each span's growth high-water for
        this segment; the running max across segments is exactly the
        span-lifetime peak a per-span counter would have recorded.
        """
        if not self.memory or not tracemalloc.is_tracing():
            return
        _, peak = tracemalloc.get_traced_memory()
        for span in self._stack:
            growth = peak - span.alloc_base
            if span.alloc_peak_bytes is None or growth > span.alloc_peak_bytes:
                span.alloc_peak_bytes = max(growth, 0)
        tracemalloc.reset_peak()

    # ------------------------------------------------------------------ #
    # span lifecycle
    # ------------------------------------------------------------------ #
    def start_span(self, name: str, **attrs: Any) -> Span:
        """Open a child of the innermost open span.  Prefer :meth:`span`;
        this form exists for try/finally call sites that need the span
        object after an exception."""
        if not name:
            raise ConfigError("span name must be non-empty")
        self._fold_alloc_peak()
        span = Span(name, attrs, parent=self._stack[-1])
        span.start_s = self._clock()
        if self.memory and tracemalloc.is_tracing():
            span.alloc_base = tracemalloc.get_traced_memory()[0]
            span.alloc_peak_bytes = 0
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end_span(self, span: Span) -> Span:
        """Close ``span`` (and, defensively, anything opened under it that
        an exception left dangling)."""
        if span not in self._stack:
            raise ConfigError(f"span {span.path!r} is not open")
        self._fold_alloc_peak()
        now = self._clock()
        while True:
            top = self._stack.pop()
            if top.duration_s is None:
                top.duration_s = now - top.start_s
            if top is span:
                return span

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """``with tracer.span("offline/layer0"): ...`` — the usual entry.

        Slashes in ``name`` open one nested span per segment, so
        ``span("online/layer3/matmul")`` and three nested ``span`` calls
        produce identical trees.
        """
        parts = [p for p in name.split("/") if p]
        if not parts:
            raise ConfigError("span name must be non-empty")
        opened = []
        for part in parts[:-1]:
            opened.append(self.start_span(part))
        opened.append(self.start_span(parts[-1], **attrs))
        try:
            yield opened[-1]
        finally:
            self.end_span(opened[0])

    @property
    def current(self) -> Span:
        """The innermost open span (the root if none is open)."""
        return self._stack[-1]

    def adopt(self, child: "Tracer", name: str, **attrs: Any) -> Span:
        """Graft another tracer's span tree as one closed child span.

        A tracer is single-threaded, so the execution engine gives each
        shard worker its *own* tracer (attached to that shard's mux
        stream) and, after joining the workers, adopts the shard trees
        here in shard order.  The adopted span keeps the shard tracer's
        wall clock (creation to adoption) and root counters; ``attrs``
        overlay the shard root's attributes.
        """
        root = child.root
        now = child._clock()
        span = Span(name, {**root.attrs, **attrs}, parent=self._stack[-1])
        span.start_s = root.start_s
        span.duration_s = (
            root.duration_s if root.duration_s is not None else now - root.start_s
        )
        span.sent_bytes = root.sent_bytes
        span.recv_bytes = root.recv_bytes
        span.sent_msgs = root.sent_msgs
        span.recv_msgs = root.recv_msgs
        span.rounds = root.rounds
        span.alloc_peak_bytes = root.alloc_peak_bytes
        for sub in root.children:
            sub.parent = span
        span.children = list(root.children)
        self._stack[-1].children.append(span)
        return span

    def annotate(self, **attrs: Any) -> None:
        """Merge attributes into the root span.

        The serving layer stamps per-session facts (session id, bank
        depth, sessions served, replenish lag) into the exported trace
        document this way, so one trace file is self-describing.
        """
        self.root.attrs.update(attrs)

    # ------------------------------------------------------------------ #
    # channel hook
    # ------------------------------------------------------------------ #
    def record_io(self, direction: str, payload_bytes: int) -> None:
        """Attribute one message to the innermost open span.

        Called by channel endpoints after a successful send (``"send"``)
        or decode (``"recv"``).  A direction flip — including the very
        first message — opens a new round on the span it lands in.
        """
        span = self._stack[-1]
        if direction == _SEND:
            span.sent_bytes += payload_bytes
            span.sent_msgs += 1
        elif direction == _RECV:
            span.recv_bytes += payload_bytes
            span.recv_msgs += 1
        else:
            raise ConfigError(f"direction must be 'send' or 'recv', got {direction!r}")
        if direction != self._last_dir:
            span.rounds += 1
            self._last_dir = direction

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, Any]:
        """The schema-versioned JSON document for this trace.

        In memory mode the export folds the outstanding allocation
        segment into every still-open span and stamps the process peak
        RSS (``VmHWM``) onto the root attributes, so the document is a
        complete memory record without requiring the caller to close
        the root explicitly.
        """
        self._fold_alloc_peak()
        if self.memory:
            self.root.attrs["peak_rss_bytes"] = peak_rss_bytes()
        return {
            "schema": TRACE_SCHEMA,
            "party": self.party,
            "root": self.root.to_dict(self._clock()),
        }

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def __repr__(self) -> str:
        return f"Tracer(party={self.party!r}, open={[s.name for s in self._stack]!r})"


def load_trace(path: str) -> dict[str, Any]:
    """Load and schema-check a trace document written by :meth:`Tracer.save`."""
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    schema = doc.get("schema")
    if schema != TRACE_SCHEMA:
        raise ConfigError(
            f"unsupported trace schema {schema!r} (this build reads {TRACE_SCHEMA!r})"
        )
    return doc


def channel_span(chan: Any, name: str, **attrs: Any):
    """Open ``name`` on ``chan``'s attached tracer, or do nothing.

    Sub-protocol layers (OT extension, garbled circuits, triplets) use
    this so they annotate traces when running under a traced channel and
    stay dependency-free otherwise.
    """
    tracer = getattr(chan, "tracer", None)
    if tracer is None:
        return nullcontext()
    return tracer.span(name, **attrs)


def iter_spans(node: dict[str, Any], prefix: str = "") -> Iterator[tuple[str, dict[str, Any]]]:
    """Yield ``(path, span_dict)`` over an exported trace subtree.

    ``node`` is either the document (walks from its root, which is
    excluded from paths) or any span dict (its own name heads the path).
    """
    if "root" in node and "name" not in node:
        for child in node["root"]["children"]:
            yield from iter_spans(child, prefix)
        return
    path = f"{prefix}/{node['name']}" if prefix else node["name"]
    yield path, node
    for child in node.get("children", ()):
        yield from iter_spans(child, path)
