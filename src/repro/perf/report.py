"""Measured-vs-predicted reporting over exported protocol traces.

Takes a trace document written by :class:`repro.perf.trace.Tracer`
(schema ``abnn2-trace/1``) and renders the per-layer accounting table:
for every offline linear layer the traced payload bytes next to the
Table 1 closed form from :mod:`repro.perf.costmodel`, for every GC ReLU
layer the traced bytes next to :func:`~repro.perf.costmodel.gc_relu_wire_bits`,
plus phase summaries projected onto the paper's LAN/WAN link profiles
via :mod:`repro.net.netsim`.

Tolerances are *derived*, not hand-waved: the wire formats pad to
64-bit words, so

* **M-batch triplets** carry an exactly computable padding slack
  (``N * (64*ceil(o*l/64) - o*l)`` bits per OT) — the checker asserts
  byte equality at ``predicted + slack``;
* **1-batch triplets** pack each chunk's ciphertexts contiguously, so
  the slack is bounded by one word per chunk;
* **GC ReLU** is byte-exact against ``gc_relu_wire_bits`` (which
  documents the one constant delta: decode bits travel as bytes).

Base-OT setup traffic (``base-ot`` spans, amortized across the session)
is measured separately per span subtree and subtracted before the
comparison — the closed forms cost the *extension* phase only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.net.netsim import LAN, WAN_QUOTIENT, WAN_SECUREML, NetworkModel
from repro.perf.costmodel import (
    abnn2_comm_bits_radices,
    gc_relu_wire_bits,
    gc_stream_overhead_bits,
    linear_working_set_bytes,
    lowered_operand_bytes,
)
from repro.perf.trace import iter_spans

#: Chunking constants mirrored from :class:`repro.core.triplets.TripletConfig`
#: (kept numeric here: the report must price a trace without importing the
#: protocol stack).  ``tests/test_costmodel_conformance.py`` pins agreement.
_CHUNK_BUDGET_WORDS = 1 << 22
_MIN_CHUNK = 1024

DEFAULT_NETWORKS: tuple[NetworkModel, ...] = (LAN, WAN_SECUREML, WAN_QUOTIENT)


def _words(n_elems: int, bits: int) -> int:
    return (n_elems * bits + 63) // 64


def base_ot_bits(node: dict[str, Any]) -> int:
    """Total payload bits of every ``base-ot`` span in ``node``'s subtree."""
    total = 0
    for _path, span in iter_spans(node):
        if span["name"] == "base-ot":
            total += 8 * (span["total"]["sent_bytes"] + span["total"]["recv_bytes"])
    return total


def span_total_bits(node: dict[str, Any]) -> int:
    return 8 * (node["total"]["sent_bytes"] + node["total"]["recv_bytes"])


def triplet_slack_bits(
    m: int, n: int, o: int, ring_bits: int, frag_n_values: Iterable[int], mode: str
) -> tuple[int, int]:
    """(min, max) wire bits above the Table 1 form due to word packing.

    Multi-batch slack is exact (min == max); one-batch slack is bounded
    by one 64-bit word per transmitted chunk.
    """
    radices = list(frag_n_values)
    if mode == "multi":
        width = _words(o, ring_bits)
        slack = sum(m * n * nv * (64 * width - o * ring_bits) for nv in radices)
        return slack, slack
    # one-batch: ciphers for each chunk are packed contiguously and the
    # chunk's packing rounds up to a word (< 64 bits of slack per chunk).
    width = _words(1, ring_bits)
    max_slack = 0
    groups: dict[int, int] = {}
    for nv in radices:
        groups[nv] = groups.get(nv, 0) + 1
    for nv, k in groups.items():
        total = m * n * k
        chunk = max(_MIN_CHUNK, _CHUNK_BUDGET_WORDS // max(1, nv * width))
        n_chunks = -(-total // chunk)
        max_slack += 64 * n_chunks
    return 0, max_slack


@dataclass
class ConformanceRow:
    """One measured-vs-predicted comparison (a layer-phase span)."""

    path: str
    kind: str  # "triplets" | "relu"
    detail: str
    measured_bits: int
    base_ot_bits: int
    predicted_bits: int | None
    slack_min_bits: int = 0
    slack_max_bits: int = 0

    @property
    def core_bits(self) -> int:
        """Measured bits with base-OT setup traffic stripped."""
        return self.measured_bits - self.base_ot_bits

    @property
    def ok(self) -> bool | None:
        """True/False against the model; None when the span is unmodeled."""
        if self.predicted_bits is None:
            return None
        lo = self.predicted_bits + self.slack_min_bits
        hi = self.predicted_bits + self.slack_max_bits
        return lo <= self.core_bits <= hi


def conformance_rows(trace: dict[str, Any]) -> list[ConformanceRow]:
    """Extract every comparable layer span from a trace document."""
    rows: list[ConformanceRow] = []
    for path, span in iter_spans(trace):
        attrs = span.get("attrs", {})
        if span["name"] == "triplets":
            needed = ("m", "n", "o", "ring_bits", "mode", "frag_n_values")
            if not all(key in attrs for key in needed):
                rows.append(
                    ConformanceRow(
                        path, "triplets", "missing dimensions",
                        span_total_bits(span), base_ot_bits(span), None,
                    )
                )
                continue
            m, n, o = attrs["m"], attrs["n"], attrs["o"]
            bits, mode = attrs["ring_bits"], attrs["mode"]
            radices = attrs["frag_n_values"]
            lo, hi = triplet_slack_bits(m, n, o, bits, radices, mode)
            rows.append(
                ConformanceRow(
                    path,
                    "triplets",
                    f"{mode} m={m} n={n} o={o} l={bits} N={radices}",
                    span_total_bits(span),
                    base_ot_bits(span),
                    abnn2_comm_bits_radices(radices, m, n, o, bits, mode),
                    lo,
                    hi,
                )
            )
        elif span["name"] == "relu":
            n_relus = attrs.get("n_relus")
            bits = attrs.get("ring_bits")
            variant = attrs.get("variant", "?")
            chunks = attrs.get("stream_chunks")
            if variant == "oblivious" and n_relus is not None and bits is not None:
                predicted = gc_relu_wire_bits(bits, n_relus)
                if chunks is not None:
                    # Streamed execution: same payload plus the exact
                    # chunk-framing overhead — still asserted to equality,
                    # so pipelining cannot mask an accounting regression.
                    predicted += gc_stream_overhead_bits(chunks)
            else:
                predicted = None  # the optimized ReLU's sign path is unmodeled
            detail = f"{variant} n={n_relus} l={bits}"
            if chunks is not None:
                detail += f" streamed chunks={chunks}"
            rows.append(
                ConformanceRow(
                    path,
                    "relu",
                    detail,
                    span_total_bits(span),
                    base_ot_bits(span),
                    predicted,
                )
            )
    return rows


def check_conformance(trace: dict[str, Any]) -> list[str]:
    """Conformance failures, empty when every modeled span is in tolerance."""
    failures = []
    for row in conformance_rows(trace):
        if row.ok is False:
            lo = (row.predicted_bits or 0) + row.slack_min_bits
            hi = (row.predicted_bits or 0) + row.slack_max_bits
            failures.append(
                f"{row.path}: measured {row.core_bits} bits outside "
                f"[{lo}, {hi}] (predicted {row.predicted_bits}, {row.detail})"
            )
    return failures


# --------------------------------------------------------------------- #
# memory: measured vs predicted working sets
# --------------------------------------------------------------------- #
@dataclass
class MemoryRow:
    """One linear-layer span's allocation peak next to the closed form.

    Informational (no FAIL gate): the closed form counts only the
    dominant share-pipeline arrays, while the measured peak includes
    gather index tables, temporaries inside BLAS calls and interpreter
    noise.  The big-model benchmark applies the hard RSS gate; this
    table is for reading a trace.
    """

    path: str
    detail: str
    measured_bytes: int | None  # alloc_peak_bytes; None when memory mode was off
    predicted_bytes: int | None  # closed-form working set; None when unmodeled
    operand_bytes: int | None  # full lowered operand the chunked path avoids


def memory_rows(trace: dict[str, Any]) -> list[MemoryRow]:
    """Every ``matmul`` span with its predicted peak working set."""
    rows: list[MemoryRow] = []
    for path, span in iter_spans(trace):
        if span["name"] != "matmul":
            continue
        attrs = span.get("attrs", {})
        measured = span.get("alloc_peak_bytes")
        needed = ("m", "n", "o", "groups")
        if all(key in attrs for key in needed):
            m, n, o = attrs["m"], attrs["n"], attrs["o"]
            groups = attrs["groups"]
            chunk = attrs.get("chunk_cols")
            predicted = linear_working_set_bytes(m, n, o, groups, chunk)
            operand = lowered_operand_bytes(n, o, groups)
            detail = (
                f"m={m} n={n} o={o} groups={groups} "
                f"chunk={'-' if chunk is None else chunk}"
            )
        else:
            predicted, operand, detail = None, None, "missing dimensions"
        rows.append(MemoryRow(path, detail, measured, predicted, operand))
    return rows


def _fmt_mem(nbytes: int | None) -> str:
    if nbytes is None:
        return "-"
    if nbytes >= 1024 * 1024:
        return f"{nbytes / (1024 * 1024):.2f} MiB"
    if nbytes >= 1024:
        return f"{nbytes / 1024:.2f} KiB"
    return f"{nbytes} B"


def render_memory_report(trace: dict[str, Any]) -> str:
    """The ``python -m repro report --memory`` section."""
    out = ["memory (per-span allocation peaks vs closed-form working sets):"]
    peak_rss = trace["root"].get("attrs", {}).get("peak_rss_bytes")
    if peak_rss is not None:
        out.append(f"  process peak RSS: {_fmt_mem(peak_rss)}")
    rows = memory_rows(trace)
    if not rows:
        out.append("  (no matmul spans in this trace)")
        return "\n".join(out)
    out.append(
        f"  {'span':<28} {'measured':>12} {'predicted':>12} {'full operand':>13}"
    )
    for row in rows:
        out.append(
            f"  {row.path:<28} {_fmt_mem(row.measured_bytes):>12}"
            f" {_fmt_mem(row.predicted_bytes):>12} {_fmt_mem(row.operand_bytes):>13}"
        )
        out.append(f"      {row.detail}")
    if all(row.measured_bytes is None for row in rows):
        out.append(
            "  (measured column empty: record with ABNN2_TRACE_MEMORY=1 "
            "or Tracer(memory=True))"
        )
    return "\n".join(out)


# --------------------------------------------------------------------- #
# phase summaries + network projection
# --------------------------------------------------------------------- #
@dataclass
class PhaseRow:
    """One top-level phase (offline/online) with projected wall times."""

    name: str
    seconds: float
    payload_bytes: int
    rounds: int
    messages: int
    projections: dict[str, float]


def phase_rows(
    trace: dict[str, Any], networks: Iterable[NetworkModel] = DEFAULT_NETWORKS
) -> list[PhaseRow]:
    nets = tuple(networks)
    rows = []
    for child in trace["root"]["children"]:
        total = child["total"]
        nbytes = total["sent_bytes"] + total["recv_bytes"]
        rows.append(
            PhaseRow(
                name=child["name"],
                seconds=child["duration_s"],
                payload_bytes=nbytes,
                rounds=total["rounds"],
                messages=total["sent_msgs"] + total["recv_msgs"],
                projections={
                    net.name: net.estimate_s(child["duration_s"], nbytes, total["rounds"])
                    for net in nets
                },
            )
        )
    return rows


def _fmt_bytes(nbits: int) -> str:
    nbytes = nbits / 8
    if nbytes >= 1024 * 1024:
        return f"{nbytes / (1024 * 1024):.2f} MiB"
    if nbytes >= 1024:
        return f"{nbytes / 1024:.2f} KiB"
    return f"{nbytes:.0f} B"


def render_report(
    trace: dict[str, Any], networks: Iterable[NetworkModel] = DEFAULT_NETWORKS
) -> str:
    """The ``python -m repro report`` table, as one printable string."""
    nets = tuple(networks)
    out = [f"trace: schema={trace.get('schema')} party={trace.get('party') or '?'}"]

    out.append("")
    out.append("phases (measured compute + projected links):")
    header = f"  {'phase':<12} {'time':>9} {'payload':>12} {'rounds':>7} {'msgs':>6}"
    header += "".join(f" {net.name:>18}" for net in nets)
    out.append(header)
    for row in phase_rows(trace, nets):
        line = (
            f"  {row.name:<12} {row.seconds:>8.3f}s {_fmt_bytes(row.payload_bytes * 8):>12}"
            f" {row.rounds:>7} {row.messages:>6}"
        )
        line += "".join(f" {row.projections[net.name]:>17.3f}s" for net in nets)
        out.append(line)

    out.append("")
    out.append("measured vs predicted (base-OT setup subtracted):")
    out.append(
        f"  {'span':<28} {'measured':>12} {'base-OT':>10} {'core':>12}"
        f" {'predicted':>12} {'slack':>14} {'status':>7}"
    )
    for row in conformance_rows(trace):
        if row.predicted_bits is None:
            predicted, slack, status = "-", "-", "n/a"
        else:
            predicted = _fmt_bytes(row.predicted_bits)
            slack = f"+[{row.slack_min_bits}, {row.slack_max_bits}] bit"
            status = "OK" if row.ok else "FAIL"
        out.append(
            f"  {row.path:<28} {_fmt_bytes(row.measured_bits):>12}"
            f" {_fmt_bytes(row.base_ot_bits):>10} {_fmt_bytes(row.core_bits):>12}"
            f" {predicted:>12} {slack:>14} {status:>7}"
        )
        out.append(f"      {row.detail}")
    return "\n".join(out)
