"""In-memory duplex channels with communication accounting.

A protocol party holds one :class:`Channel` endpoint and calls
:meth:`Channel.send` / :meth:`Channel.recv` with the payload types that
:mod:`repro.utils.serialization` supports.  Both endpoints of a pair share
one :class:`ChannelStats`, which records, per direction:

* payload bytes (what the paper's communication columns count),
* framed bytes (payload + encoding overhead),
* message count,

plus the number of **communication rounds**: a round begins whenever the
sending party flips, so `k` back-to-back messages from one side cost one
round.  Round counts drive the latency term of the WAN time model.

Each queued frame carries a per-direction sequence number and a CRC32 of
its encoded bytes, mirroring the TCP transport's framing, so a lost
frame surfaces as a sequence gap and injected wire corruption (see
:mod:`repro.net.faults`) is detected identically on both transports.
Traffic is recorded only *after* a frame is actually handed to the peer,
so a failed or injected-away send never inflates the accounting.
"""

from __future__ import annotations

import queue
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ChannelError
from repro.utils import serialization

DEFAULT_TIMEOUT_S = 120.0


@dataclass
class ChannelStats:
    """Traffic counters shared by both endpoints of a channel pair."""

    bytes_sent: dict = field(default_factory=lambda: {0: 0, 1: 0})
    framed_bytes_sent: dict = field(default_factory=lambda: {0: 0, 1: 0})
    messages_sent: dict = field(default_factory=lambda: {0: 0, 1: 0})
    rounds: int = 0
    _last_sender: int | None = field(default=None, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)

    def record_send(self, party: int, payload_bytes: int, framed_bytes: int) -> None:
        with self._lock:
            self.bytes_sent[party] += payload_bytes
            self.framed_bytes_sent[party] += framed_bytes
            self.messages_sent[party] += 1
            if self._last_sender != party:
                self.rounds += 1
                self._last_sender = party

    @property
    def total_bytes(self) -> int:
        """Total payload bytes over the wire in both directions."""
        return self.bytes_sent[0] + self.bytes_sent[1]

    @property
    def total_messages(self) -> int:
        return self.messages_sent[0] + self.messages_sent[1]

    def snapshot(self) -> "ChannelStats":
        """A detached copy safe to keep after the protocol finishes."""
        with self._lock:
            copy = ChannelStats(
                bytes_sent=dict(self.bytes_sent),
                framed_bytes_sent=dict(self.framed_bytes_sent),
                messages_sent=dict(self.messages_sent),
                rounds=self.rounds,
            )
        return copy

    def reset(self) -> None:
        with self._lock:
            self.bytes_sent = {0: 0, 1: 0}
            self.framed_bytes_sent = {0: 0, 1: 0}
            self.messages_sent = {0: 0, 1: 0}
            self.rounds = 0
            self._last_sender = None


class Channel:
    """One endpoint of a bidirectional in-memory channel.

    ``party`` is 0 for the server and 1 for the client by convention; it
    only matters for attribution in :class:`ChannelStats`.
    """

    def __init__(
        self,
        party: int,
        outbox: queue.Queue,
        inbox: queue.Queue,
        stats: ChannelStats,
        timeout_s: float = DEFAULT_TIMEOUT_S,
    ) -> None:
        self.party = party
        self._outbox = outbox
        self._inbox = inbox
        self.stats = stats
        #: optional per-party :class:`repro.perf.trace.Tracer`; when set,
        #: every successful send/recv is attributed to its innermost span.
        self.tracer = None
        self.timeout_s = timeout_s
        self._closed = False
        self._send_seq = 0
        self._recv_seq = 0

    # ------------------------------------------------------------------ #
    def send(self, obj: Any) -> None:
        """Serialize and enqueue a message for the peer."""
        if self._closed:
            raise ChannelError("send on closed channel")
        data = serialization.encode(obj)
        payload = serialization.payload_nbytes(obj)
        self._outbox.put((self._send_seq, data, zlib.crc32(data)))
        self._send_seq += 1
        # Only after the frame is actually with the peer does it count.
        self.stats.record_send(self.party, payload, len(data))
        if self.tracer is not None:
            self.tracer.record_io("send", payload)

    def recv(self) -> Any:
        """Block until the peer's next message arrives and decode it."""
        if self._closed:
            raise ChannelError("recv on closed channel")
        try:
            item = self._inbox.get(timeout=self.timeout_s)
        except queue.Empty as exc:
            raise ChannelError(
                f"party {self.party} timed out after {self.timeout_s}s waiting for peer"
            ) from exc
        if item is _CLOSE_SENTINEL:
            raise ChannelError("peer closed the channel")
        if item is _ABORT_SENTINEL:
            raise ChannelError("peer connection lost (abrupt disconnect)")
        seq, data, crc = item
        if seq != self._recv_seq:
            # A lost frame must not let a later message masquerade as the
            # missing one — that desynchronizes the whole protocol.
            raise ChannelError(
                f"message sequence gap: expected frame #{self._recv_seq}, "
                f"got #{seq} (a frame was lost)"
            )
        self._recv_seq += 1
        if zlib.crc32(data) != crc:
            raise ChannelError(
                f"frame CRC mismatch on a {len(data)}-byte message (corrupted in transit)"
            )
        obj = serialization.decode(data)
        if self.tracer is not None:
            self.tracer.record_io("recv", serialization.payload_nbytes(obj))
        return obj

    def exchange(self, obj: Any) -> Any:
        """Send then receive — the common symmetric protocol step."""
        self.send(obj)
        return self.recv()

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._outbox.put(_CLOSE_SENTINEL)

    def drain(self, deadline_s: float = 1.0) -> None:
        """Consume inbound frames until the peer hangs up (bounded).

        Used after a control-plane deny: the denying side reads the
        peer's trailing traffic (its best-effort ``done``/close) before
        closing, so the teardown is graceful on both transports — under
        TCP, closing a socket with unread inbound data resets the
        connection, which can destroy the deny the peer was about to
        read (see :meth:`repro.net.tcp.TcpChannel.drain`).
        """
        deadline = time.monotonic() + deadline_s
        while not self._closed:
            try:
                item = self._inbox.get(
                    timeout=max(0.0, deadline - time.monotonic())
                )
            except queue.Empty:
                return
            if item is _CLOSE_SENTINEL or item is _ABORT_SENTINEL:
                return
            self._recv_seq += 1

    def abort(self) -> None:
        """Drop the connection without the graceful-close signal.

        Models a crashed process or cut cable: the peer's next ``recv``
        raises a :class:`ChannelError` naming an abrupt disconnect.
        """
        if not self._closed:
            self._closed = True
            self._outbox.put(_ABORT_SENTINEL)

    def _inject_frame(self, data: bytes, valid_crc: bool) -> None:
        """Fault-injection hook: enqueue raw encoded bytes as one frame.

        Used by :class:`repro.net.faults.FaultyChannel`: ``valid_crc``
        False models wire corruption (the receiver's CRC check fires);
        True delivers the bytes intact, e.g. a truncated encoding the
        receiver's decoder must reject.  Deliberately bypasses stats:
        the accounting tracks intended protocol traffic, not noise.
        """
        if self._closed:
            raise ChannelError("send on closed channel")
        crc = zlib.crc32(data)
        if not valid_crc:
            crc ^= 0x5A5A5A5A
        self._outbox.put((self._send_seq, data, crc))
        self._send_seq += 1

    def _skip_frame(self) -> None:
        """Fault-injection hook: consume a sequence number without sending.

        Models a frame lost in transit — the receiver detects the gap at
        its next ``recv`` instead of silently shifting the stream.
        """
        self._send_seq += 1

    def __repr__(self) -> str:
        return f"Channel(party={self.party})"


class _CloseSentinel:
    pass


_CLOSE_SENTINEL = _CloseSentinel()
_ABORT_SENTINEL = _CloseSentinel()


def make_channel_pair(timeout_s: float = DEFAULT_TIMEOUT_S) -> tuple[Channel, Channel]:
    """Create connected (server, client) channel endpoints sharing stats."""
    q01: queue.Queue = queue.Queue()
    q10: queue.Queue = queue.Queue()
    stats = ChannelStats()
    server = Channel(0, outbox=q01, inbox=q10, stats=stats, timeout_s=timeout_s)
    client = Channel(1, outbox=q10, inbox=q01, stats=stats, timeout_s=timeout_s)
    return server, client
