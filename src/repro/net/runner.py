"""Run two blocking party functions as a joint protocol.

Protocols in this library are written as ordinary straight-line functions
``party_fn(channel, *args) -> result``.  :func:`run_protocol` wires a
channel pair (or accepts pre-built/wrapped endpoints, e.g. a
:class:`~repro.net.faults.FaultyChannel` or TCP channels), runs the
server on a worker thread and the client on the calling thread,
propagates exceptions from either side, and returns both results
together with a traffic snapshot and per-party compute times.

Failure handling is designed so nothing wedges and nothing is masked:

* if both parties raise, the more informative exception wins and the
  other is attached as its ``__context__``;
* if the server thread outlives the client, both endpoints are closed
  (which wakes a blocked ``recv``) and the thread is re-joined before a
  :exc:`TimeoutError` — carrying whatever partial timing/traffic stats
  exist — is raised, so no thread is left running against a live channel.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.channel import ChannelStats, make_channel_pair


@dataclass
class ProtocolResult:
    """Outcome of a joint two-party execution."""

    server: Any
    client: Any
    stats: ChannelStats
    server_time_s: float
    client_time_s: float
    wall_time_s: float

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def rounds(self) -> int:
        return self.stats.rounds


def _safe_close(chan) -> None:
    try:
        chan.close()
    except Exception:  # noqa: BLE001 - closing a broken channel is best-effort
        pass


def _raise_root_cause(box: dict) -> None:
    """Re-raise the most informative party exception.

    When one party dies, the other typically follows with a secondary
    :class:`ChannelError` ("peer closed the channel"); prefer the original
    failure so debugging points at the real bug, but keep the secondary
    visible as the raised exception's ``__context__``.
    """
    from repro.errors import ChannelError

    excs = [box.get("server_exc"), box.get("client_exc")]
    excs = [e for e in excs if e is not None]
    if not excs:
        return
    primary = ([e for e in excs if not isinstance(e, ChannelError)] or excs)[0]
    if len(excs) == 2:
        secondary = excs[1] if primary is excs[0] else excs[0]
        if secondary is not primary and primary.__context__ is None:
            primary.__context__ = secondary
    raise primary


def run_protocol(
    server_fn: Callable,
    client_fn: Callable,
    server_args: tuple = (),
    client_args: tuple = (),
    timeout_s: float = 120.0,
    channels: tuple[Any, Any] | None = None,
    join_grace_s: float = 10.0,
) -> ProtocolResult:
    """Execute ``server_fn`` and ``client_fn`` against a channel pair.

    Each function receives its channel endpoint as first argument followed
    by its own ``*args``.  An exception on either side is re-raised here
    (the server's first, if both fail).  ``channels`` overrides the
    default in-memory pair with explicit (server, client) endpoints —
    the hook fault-injection and TCP-transport tests use.
    """
    if channels is None:
        server_chan, client_chan = make_channel_pair(timeout_s=timeout_s)
    else:
        server_chan, client_chan = channels
    box: dict[str, Any] = {}

    def _server_main() -> None:
        start = time.perf_counter()
        try:
            box["server"] = server_fn(server_chan, *server_args)
        except BaseException as exc:  # noqa: BLE001 - must cross the thread
            box["server_exc"] = exc
            _safe_close(server_chan)
        finally:
            box["server_time"] = time.perf_counter() - start

    wall_start = time.perf_counter()
    thread = threading.Thread(target=_server_main, name="abnn2-server", daemon=True)
    thread.start()

    client_start = time.perf_counter()
    try:
        box["client"] = client_fn(client_chan, *client_args)
    except BaseException as exc:  # noqa: BLE001
        box["client_exc"] = exc
        _safe_close(client_chan)
    finally:
        box["client_time"] = time.perf_counter() - client_start

    # Grace period past the channel timeout: the server's own recv timeout
    # must get the chance to fire first so the error is attributable.
    thread.join(timeout=timeout_s + join_grace_s)
    if thread.is_alive():
        # Closing the *client* endpoint is what wakes a server blocked in
        # recv (its inbox gets the close sentinel); close both for good
        # measure, then give the thread one last chance to unwind.
        _safe_close(client_chan)
        _safe_close(server_chan)
        thread.join(timeout=join_grace_s)
    wall = time.perf_counter() - wall_start
    if thread.is_alive():
        stats = server_chan.stats.snapshot()
        raise TimeoutError(
            f"server thread did not finish within {timeout_s}s "
            f"(client_time={box['client_time']:.3f}s, "
            f"traffic so far: {stats.total_bytes} payload bytes, "
            f"{stats.total_messages} messages, {stats.rounds} rounds)"
        )

    _raise_root_cause(box)

    return ProtocolResult(
        server=box["server"],
        client=box["client"],
        stats=server_chan.stats.snapshot(),
        server_time_s=box["server_time"],
        client_time_s=box["client_time"],
        wall_time_s=wall,
    )
