"""Run two blocking party functions as a joint protocol.

Protocols in this library are written as ordinary straight-line functions
``party_fn(channel, *args) -> result``.  :func:`run_protocol` wires a
channel pair, runs the server on a worker thread and the client on the
calling thread, propagates exceptions from either side, and returns both
results together with a traffic snapshot and per-party compute times.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.net.channel import ChannelStats, make_channel_pair


@dataclass
class ProtocolResult:
    """Outcome of a joint two-party execution."""

    server: Any
    client: Any
    stats: ChannelStats
    server_time_s: float
    client_time_s: float
    wall_time_s: float

    @property
    def total_bytes(self) -> int:
        return self.stats.total_bytes

    @property
    def rounds(self) -> int:
        return self.stats.rounds


def _raise_root_cause(box: dict) -> None:
    """Re-raise the most informative party exception.

    When one party dies, the other typically follows with a secondary
    :class:`ChannelError` ("peer closed the channel"); prefer the original
    failure so debugging points at the real bug.
    """
    from repro.errors import ChannelError

    excs = [box.get("server_exc"), box.get("client_exc")]
    excs = [e for e in excs if e is not None]
    if not excs:
        return
    primary = [e for e in excs if not isinstance(e, ChannelError)]
    raise (primary or excs)[0]


def run_protocol(
    server_fn: Callable,
    client_fn: Callable,
    server_args: tuple = (),
    client_args: tuple = (),
    timeout_s: float = 120.0,
) -> ProtocolResult:
    """Execute ``server_fn`` and ``client_fn`` against a fresh channel pair.

    Each function receives its channel endpoint as first argument followed
    by its own ``*args``.  An exception on either side is re-raised here
    (the server's first, if both fail).
    """
    server_chan, client_chan = make_channel_pair(timeout_s=timeout_s)
    box: dict[str, Any] = {}

    def _server_main() -> None:
        start = time.perf_counter()
        try:
            box["server"] = server_fn(server_chan, *server_args)
        except BaseException as exc:  # noqa: BLE001 - must cross the thread
            box["server_exc"] = exc
            server_chan.close()
        finally:
            box["server_time"] = time.perf_counter() - start

    wall_start = time.perf_counter()
    thread = threading.Thread(target=_server_main, name="abnn2-server", daemon=True)
    thread.start()

    client_start = time.perf_counter()
    try:
        box["client"] = client_fn(client_chan, *client_args)
    except BaseException as exc:  # noqa: BLE001
        box["client_exc"] = exc
        client_chan.close()
    finally:
        box["client_time"] = time.perf_counter() - client_start

    # Grace period past the channel timeout: the server's own recv timeout
    # must get the chance to fire first so the error is attributable.
    thread.join(timeout=timeout_s + 10.0)
    wall = time.perf_counter() - wall_start
    if thread.is_alive():
        server_chan.close()
        raise TimeoutError(f"server thread did not finish within {timeout_s}s")

    _raise_root_cause(box)

    return ProtocolResult(
        server=box["server"],
        client=box["client"],
        stats=server_chan.stats.snapshot(),
        server_time_s=box["server_time"],
        client_time_s=box["client_time"],
        wall_time_s=wall,
    )
