"""TCP transport: run the two parties as separate processes/machines.

The in-memory channels of :mod:`repro.net.channel` are ideal for tests
and benchmarks; a deployment wants real sockets.  :class:`TcpChannel`
speaks a minimal length-prefixed frame protocol (8-byte little-endian
length, then the :mod:`repro.utils.serialization` payload) and exposes
the same ``send``/``recv``/``stats`` surface, so every protocol in this
library runs over it unchanged:

    # server process                      # client process
    chan = listen(port=9001)              chan = connect("host", 9001)
    server = Abnn2Server(chan, model, b)  client = Abnn2Client(chan, meta, b)
    server.offline(); server.online()     client.offline(); client.online(x)

Traffic accounting mirrors the in-memory channel (payload bytes, framed
bytes, direction-flip rounds), so measurements agree between transports.
"""

from __future__ import annotations

import socket
import struct

from repro.errors import ChannelError
from repro.net.channel import ChannelStats
from repro.utils import serialization

_LEN_FMT = "<Q"
_LEN_SIZE = 8

#: Frames above this are refused (2 GiB) — catches desynchronized peers.
MAX_FRAME_BYTES = 2 << 30


class TcpChannel:
    """A connected duplex channel over one TCP socket."""

    def __init__(self, sock: socket.socket, party: int, timeout_s: float = 600.0) -> None:
        self._sock = sock
        self.party = party
        self.stats = ChannelStats()
        self._closed = False
        sock.settimeout(timeout_s)
        # Protocol messages are latency-sensitive and already batched.
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    # ------------------------------------------------------------------ #
    def send(self, obj) -> None:
        if self._closed:
            raise ChannelError("send on closed channel")
        data = serialization.encode(obj)
        frame = struct.pack(_LEN_FMT, len(data)) + data
        self.stats.record_send(
            self.party, serialization.payload_nbytes(obj), len(frame)
        )
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise ChannelError(f"socket send failed: {exc}") from exc

    def recv(self):
        if self._closed:
            raise ChannelError("recv on closed channel")
        header = self._recv_exact(_LEN_SIZE)
        (length,) = struct.unpack(_LEN_FMT, header)
        if length > MAX_FRAME_BYTES:
            raise ChannelError(f"peer announced an absurd {length}-byte frame")
        data = self._recv_exact(length)
        obj = serialization.decode(data)
        # Attribute the peer's traffic so both sides report totals.
        self.stats.record_send(
            1 - self.party, serialization.payload_nbytes(obj), len(data) + _LEN_SIZE
        )
        return obj

    def exchange(self, obj):
        self.send(obj)
        return self.recv()

    def _recv_exact(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout as exc:
                raise ChannelError("socket recv timed out") from exc
            except OSError as exc:
                raise ChannelError(f"socket recv failed: {exc}") from exc
            if not chunk:
                raise ChannelError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()

    def __enter__(self) -> "TcpChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def listen(port: int, host: str = "127.0.0.1", timeout_s: float = 600.0) -> TcpChannel:
    """Bind, accept one peer, and return the server-side channel (party 0)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    try:
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(1)
        listener.settimeout(timeout_s)
        try:
            conn, _addr = listener.accept()
        except socket.timeout as exc:
            raise ChannelError(f"no client connected within {timeout_s}s") from exc
    finally:
        listener.close()
    return TcpChannel(conn, party=0, timeout_s=timeout_s)


def connect(
    host: str, port: int, timeout_s: float = 600.0, retries: int = 20, retry_delay_s: float = 0.25
) -> TcpChannel:
    """Connect to a listening server; returns the client channel (party 1).

    Retries briefly so "start both processes at once" works without
    orchestrating startup order.
    """
    import time

    last_error: OSError | None = None
    for _ in range(max(1, retries)):
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(timeout_s)
            sock.connect((host, port))
            return TcpChannel(sock, party=1, timeout_s=timeout_s)
        except OSError as exc:
            last_error = exc
            sock.close()
            time.sleep(retry_delay_s)
    raise ChannelError(f"could not connect to {host}:{port}: {last_error}")
