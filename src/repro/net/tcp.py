"""TCP transport: run the two parties as separate processes/machines.

The in-memory channels of :mod:`repro.net.channel` are ideal for tests
and benchmarks; a deployment wants real sockets.  :class:`TcpChannel`
speaks a CRC-protected framed protocol and exposes the same
``send``/``recv``/``stats`` surface, so every protocol in this library
runs over it unchanged:

    # server process                      # client process
    chan = listen(port=9001)              chan = connect("host", 9001)
    server = Abnn2Server(chan, model, b)  client = Abnn2Client(chan, meta, b)
    server.offline(); server.online()     client.offline(); client.online(x)

Wire format (all little-endian):

* **Handshake** — on connect each side sends 15 bytes,
  ``magic(4) | version(u16) | party(u8) | session_id(u64)``, then
  validates the peer's: magic and version must match, parties must be
  complementary, session ids equal.  A side that sends the wildcard id
  :data:`SESSION_ANY` instead *adopts* the peer's id — this is how a
  prediction client lets the serving accept-loop assign it a fresh
  per-connection session id.  Any other mismatch raises
  :class:`HandshakeError` before protocol traffic flows.
* **Frame** — ``type(u8) | seq(u64) | length(u64) | payload | crc32(u32)``
  with the CRC computed over the header+payload, so a bit flipped
  anywhere in a frame is detected.  ``seq`` counts data frames per
  direction; a gap means a frame was lost and raises instead of letting
  a later message masquerade as the missing one.  ``type`` 0 is data
  (payload is a :mod:`repro.utils.serialization` encoding); ``type`` 1
  is graceful close (empty payload), letting the peer distinguish an
  orderly shutdown from a crashed process.

Traffic accounting mirrors the in-memory channel (payload bytes, framed
bytes, direction-flip rounds) and counts data frames only — handshake
and close frames are control traffic.  Stats are recorded only after
``sendall`` succeeds, so a failed send never inflates the totals.
"""

from __future__ import annotations

import socket
import struct
import time
import zlib

from repro.errors import ChannelError, HandshakeError
from repro.net.channel import ChannelStats
from repro.utils import serialization

#: Bumped whenever the frame or handshake layout/semantics change.
#: v3 added wildcard session-id adoption (:data:`SESSION_ANY`).
WIRE_VERSION = 3

#: Wildcard session id: "assign me one" — the peer's id is adopted.
SESSION_ANY = (1 << 64) - 1

_MAGIC = b"AB2\x00"
_HANDSHAKE_FMT = "<4sHBQ"
_HANDSHAKE_SIZE = struct.calcsize(_HANDSHAKE_FMT)  # 15

_HEAD_FMT = "<BQQ"
_HEAD_SIZE = struct.calcsize(_HEAD_FMT)  # 17
_CRC_FMT = "<I"
_CRC_SIZE = 4

_FRAME_DATA = 0
_FRAME_CLOSE = 1

#: Frames above this are refused (2 GiB) — catches desynchronized peers.
MAX_FRAME_BYTES = 2 << 30


class TcpChannel:
    """A connected duplex channel over one TCP socket."""

    def __init__(
        self,
        sock: socket.socket,
        party: int,
        timeout_s: float = 600.0,
        session_id: int = 0,
        handshake: bool = True,
    ) -> None:
        self._sock = sock
        self.party = party
        self.session_id = session_id
        self.stats = ChannelStats()
        #: optional per-party :class:`repro.perf.trace.Tracer`; when set,
        #: every successful send/recv is attributed to its innermost span.
        self.tracer = None
        self._closed = False
        self._peer_closed = False
        self._send_seq = 0
        self._recv_seq = 0
        self._timeout_s = timeout_s
        sock.settimeout(timeout_s)
        try:
            # Protocol messages are latency-sensitive and already batched.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # non-TCP sockets (e.g. a test socketpair) have no Nagle
        if handshake:
            self._handshake()

    # ------------------------------------------------------------------ #
    def _handshake(self) -> None:
        """Exchange and validate version/party/session before any traffic."""
        mine = struct.pack(_HANDSHAKE_FMT, _MAGIC, WIRE_VERSION, self.party, self.session_id)
        try:
            self._sock.sendall(mine)
            theirs = self._recv_exact(_HANDSHAKE_SIZE)
        except ChannelError as exc:
            raise HandshakeError(f"handshake exchange failed: {exc}") from exc
        except OSError as exc:
            raise HandshakeError(f"handshake exchange failed: {exc}") from exc
        magic, version, peer_party, peer_session = struct.unpack(_HANDSHAKE_FMT, theirs)
        if magic != _MAGIC:
            raise HandshakeError(f"peer is not an ABNN2 endpoint (magic {magic!r})")
        if version != WIRE_VERSION:
            raise HandshakeError(
                f"wire version mismatch: peer speaks v{version}, we speak v{WIRE_VERSION}"
            )
        if peer_party != 1 - self.party:
            raise HandshakeError(
                f"party collision: both endpoints claim party {self.party}"
            )
        if peer_session != self.session_id:
            if self.session_id == SESSION_ANY:
                # We asked to be assigned one: adopt the peer's id.
                self.session_id = peer_session
            elif peer_session != SESSION_ANY:
                raise HandshakeError(
                    f"session id mismatch: peer {peer_session} != ours {self.session_id}"
                )

    # ------------------------------------------------------------------ #
    def send(self, obj) -> None:
        if self._closed:
            raise ChannelError("send on closed channel")
        data = serialization.encode(obj)
        payload = serialization.payload_nbytes(obj)
        frame = self._frame(_FRAME_DATA, self._send_seq, data)
        try:
            self._sock.sendall(frame)
        except socket.timeout as exc:
            raise ChannelError("socket send timed out") from exc
        except OSError as exc:
            raise ChannelError(f"socket send failed: {exc}") from exc
        self._send_seq += 1
        # Only a completed write counts as traffic.
        self.stats.record_send(self.party, payload, len(frame))
        if self.tracer is not None:
            self.tracer.record_io("send", payload)

    def recv(self):
        if self._closed:
            raise ChannelError("recv on closed channel")
        if self._peer_closed:
            raise ChannelError("peer closed the channel")
        head = self._recv_exact(_HEAD_SIZE)
        frame_type, seq, length = struct.unpack(_HEAD_FMT, head)
        if length > MAX_FRAME_BYTES:
            raise ChannelError(f"peer announced an absurd {length}-byte frame")
        body = self._recv_exact(length + _CRC_SIZE)
        data, crc_bytes = body[:length], body[length:]
        (crc,) = struct.unpack(_CRC_FMT, crc_bytes)
        if zlib.crc32(head + data) != crc:
            raise ChannelError(
                f"frame CRC mismatch on a {length}-byte frame (corrupted wire data)"
            )
        if frame_type == _FRAME_CLOSE:
            self._peer_closed = True
            raise ChannelError("peer closed the channel")
        if frame_type != _FRAME_DATA:
            raise ChannelError(f"unknown frame type {frame_type}")
        if seq != self._recv_seq:
            raise ChannelError(
                f"message sequence gap: expected frame #{self._recv_seq}, "
                f"got #{seq} (a frame was lost)"
            )
        self._recv_seq += 1
        obj = serialization.decode(data)
        payload = serialization.payload_nbytes(obj)
        # Attribute the peer's traffic so both sides report totals.
        self.stats.record_send(1 - self.party, payload, _HEAD_SIZE + length + _CRC_SIZE)
        if self.tracer is not None:
            self.tracer.record_io("recv", payload)
        return obj

    def exchange(self, obj):
        self.send(obj)
        return self.recv()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _frame(frame_type: int, seq: int, data: bytes, crc: int | None = None) -> bytes:
        head = struct.pack(_HEAD_FMT, frame_type, seq, len(data))
        if crc is None:
            crc = zlib.crc32(head + data)
        return head + data + struct.pack(_CRC_FMT, crc)

    def _inject_frame(self, data: bytes, valid_crc: bool) -> None:
        """Fault-injection hook: write raw encoded bytes as one data frame.

        ``valid_crc`` False models wire corruption (the peer's CRC check
        fires); True delivers the bytes intact, e.g. a truncated encoding
        the peer's decoder must reject.  Bypasses stats, like its
        in-memory counterpart.
        """
        if self._closed:
            raise ChannelError("send on closed channel")
        head = struct.pack(_HEAD_FMT, _FRAME_DATA, self._send_seq, len(data))
        crc = zlib.crc32(head + data)
        if not valid_crc:
            crc ^= 0x5A5A5A5A
        frame = head + data + struct.pack(_CRC_FMT, crc)
        try:
            self._sock.sendall(frame)
        except OSError as exc:
            raise ChannelError(f"socket send failed: {exc}") from exc
        self._send_seq += 1

    def _skip_frame(self) -> None:
        """Fault-injection hook: consume a sequence number without sending.

        Models a frame lost in transit — the receiver detects the gap at
        its next ``recv`` instead of silently shifting the stream.
        """
        self._send_seq += 1

    def _inject_partial_frame(self, data: bytes, keep_fraction: float) -> None:
        """Fault-injection hook: send only a prefix of one framed message.

        Models a peer (or network) that stalls mid-frame: the receiver
        must hit its recv deadline with a typed mid-frame timeout, never
        hand a short buffer to the CRC check.  At least one byte is sent
        and at least one withheld; the sequence number is consumed.
        """
        head = struct.pack(_HEAD_FMT, _FRAME_DATA, self._send_seq, len(data))
        frame = head + data + struct.pack(_CRC_FMT, zlib.crc32(head + data))
        cut = max(1, min(len(frame) - 1, int(len(frame) * keep_fraction)))
        try:
            self._sock.sendall(frame[:cut])
        except OSError as exc:
            raise ChannelError(f"socket send failed: {exc}") from exc
        self._send_seq += 1

    def _recv_exact(self, count: int) -> bytes:
        """Read exactly ``count`` bytes under one overall deadline.

        The deadline covers the whole read, not each chunk: a peer that
        trickles a frame cannot extend the wait indefinitely, and a frame
        split across the deadline boundary raises a timeout
        :class:`ChannelError` naming the partial progress — it is never
        delivered short to the CRC/decode stage.
        """
        chunks = []
        remaining = count
        deadline = time.monotonic() + self._timeout_s
        while remaining:
            budget = deadline - time.monotonic()
            if budget <= 0:
                raise ChannelError(
                    f"socket recv timed out mid-frame after {self._timeout_s}s "
                    f"({count - remaining} of {count} bytes arrived)"
                )
            try:
                self._sock.settimeout(budget)
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except socket.timeout as exc:
                raise ChannelError(
                    f"socket recv timed out after {self._timeout_s}s "
                    f"({count - remaining} of {count} bytes arrived)"
                ) from exc
            except OSError as exc:
                raise ChannelError(f"socket recv failed: {exc}") from exc
            finally:
                # send() and the next read must see the full deadline again.
                try:
                    self._sock.settimeout(self._timeout_s)
                except OSError:
                    pass
            if not chunk:
                if remaining < count:
                    raise ChannelError(
                        f"peer closed mid-frame ({count - remaining} of {count} bytes arrived)"
                    )
                raise ChannelError("peer closed the connection")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def drain(self, deadline_s: float = 1.0) -> None:
        """Consume inbound frames until the peer hangs up (bounded).

        The deny path of the serving layer calls this between sending a
        structured deny and closing the socket.  Without it, closing
        with unread inbound bytes (the client's best-effort ``done`` or
        close frame racing in) makes the kernel send RST, and the peer
        can see ``ConnectionResetError`` *instead of* the deny reason it
        was owed.  Any :class:`ChannelError` — peer close frame, EOF,
        the ``deadline_s`` timeout — ends the drain quietly.
        """
        if self._closed or self._peer_closed:
            return
        old_timeout = self._timeout_s
        self._timeout_s = deadline_s
        try:
            while True:
                self.recv()
        except ChannelError:
            pass
        finally:
            self._timeout_s = old_timeout

    def close(self) -> None:
        """Gracefully close: tell the peer, then tear the socket down."""
        if self._closed:
            return
        self._closed = True
        try:
            # Best-effort courtesy frame; a dead peer must not block close.
            self._sock.settimeout(1.0)
            self._sock.sendall(self._frame(_FRAME_CLOSE, self._send_seq, b""))
        except OSError:
            pass
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    def abort(self) -> None:
        """Drop the socket without the close frame (models a crash)."""
        if self._closed:
            return
        self._closed = True
        try:
            # RST on close so the peer sees a hard failure, not clean EOF.
            self._sock.setsockopt(
                socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
            )
        except OSError:
            pass
        self._sock.close()

    def __enter__(self) -> "TcpChannel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class Listener:
    """A bound listening socket that accepts any number of peers.

    The one-shot :func:`listen` helper tears the listening socket down
    after the first client; a serving process instead keeps one
    :class:`Listener` open for its whole lifetime and accepts a fresh
    channel per session (see :class:`repro.serve.server.PredictionServer`).
    Pass ``port=0`` to bind an ephemeral port; the chosen one is exposed
    as :attr:`port`.
    """

    def __init__(self, port: int, host: str = "127.0.0.1", backlog: int = 16) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._sock.bind((host, port))
            self._sock.listen(backlog)
        except OSError as exc:
            self._sock.close()
            raise ChannelError(f"cannot listen on {host}:{port}: {exc}") from exc
        self.host = host
        self.port = self._sock.getsockname()[1]
        self._closed = False

    def accept_socket(self, timeout_s: float | None = None) -> tuple[socket.socket, tuple]:
        """Accept one raw connection; no handshake runs yet.

        The accept loop of a multi-session server uses this so a slow or
        hostile client's handshake cannot block further accepts — the
        handshake happens on the session thread when it builds the
        :class:`TcpChannel`.
        """
        if self._closed:
            raise ChannelError("accept on closed listener")
        try:
            # settimeout sits inside the try: a concurrent close() (the
            # server's stop path closes the listener first, on purpose)
            # turns the descriptor invalid between the flag check above
            # and here, and must surface typed like any other accept
            # failure, not as a raw OSError.
            self._sock.settimeout(timeout_s)
            return self._sock.accept()
        except socket.timeout as exc:
            raise ChannelError(f"no client connected within {timeout_s}s") from exc
        except OSError as exc:
            raise ChannelError(f"accept failed: {exc}") from exc

    def accept(
        self,
        timeout_s: float = 600.0,
        session_id: int = 0,
    ) -> TcpChannel:
        """Accept one peer and complete the handshake (party 0 side)."""
        conn, _addr = self.accept_socket(timeout_s)
        return TcpChannel(conn, party=0, timeout_s=timeout_s, session_id=session_id)

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._sock.close()

    def __enter__(self) -> "Listener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def listen(
    port: int,
    host: str = "127.0.0.1",
    timeout_s: float = 600.0,
    session_id: int = 0,
) -> TcpChannel:
    """Bind, accept one peer, and return the server-side channel (party 0)."""
    with Listener(port, host=host, backlog=1) as listener:
        return listener.accept(timeout_s=timeout_s, session_id=session_id)


def connect(
    host: str,
    port: int,
    timeout_s: float = 600.0,
    retries: int = 20,
    retry_delay_s: float = 0.25,
    connect_timeout_s: float = 2.0,
    deadline_s: float | None = None,
    session_id: int = 0,
) -> TcpChannel:
    """Connect to a listening server; returns the client channel (party 1).

    Retries with exponential backoff so "start both processes at once"
    works without orchestrating startup order.  Each attempt gets the
    short ``connect_timeout_s`` (an unroutable host must not eat the
    whole protocol timeout per attempt); one overall ``deadline_s``
    bounds the loop (default ``min(timeout_s, 30)``).  The established
    socket is restored to the full ``timeout_s``.
    """
    if deadline_s is None:
        deadline_s = min(timeout_s, 30.0)
    deadline = time.monotonic() + deadline_s
    last_error: Exception | None = None
    delay = retry_delay_s
    for attempt in range(max(1, retries)):
        remaining = deadline - time.monotonic()
        if attempt > 0 and remaining <= 0:
            break
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.settimeout(max(0.05, min(connect_timeout_s, remaining)))
            sock.connect((host, port))
            return TcpChannel(sock, party=1, timeout_s=timeout_s, session_id=session_id)
        except HandshakeError:
            sock.close()
            raise  # a live but incompatible peer: retrying cannot help
        except OSError as exc:
            last_error = exc
            sock.close()
            time.sleep(min(delay, max(0.0, deadline - time.monotonic())))
            delay = min(delay * 2, 2.0)
    raise ChannelError(
        f"could not connect to {host}:{port} within {deadline_s:.1f}s: {last_error}"
    )
