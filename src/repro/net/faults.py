"""Deterministic fault injection for two-party channels.

A :class:`FaultPlan` is a seeded, reproducible schedule of transport
faults; a :class:`FaultyChannel` wraps either an in-memory
:class:`~repro.net.channel.Channel` or a
:class:`~repro.net.tcp.TcpChannel` and fires the plan's faults at the
chosen **send indices** of the wrapped endpoint.  Fault classes:

``delay``
    Sleep before the send.  The protocol must still complete with the
    correct result (liveness under jitter).
``drop``
    Swallow the message (its sequence number is still consumed, like a
    frame lost in transit).  The receiver surfaces a typed
    :class:`~repro.errors.ChannelError` — a sequence gap at the next
    message, or a recv timeout if nothing follows.
``truncate``
    Deliver a prefix of the encoding with a *valid* CRC — models a peer
    that framed a short message.  The receiver's bounds-checked decoder
    must raise :class:`~repro.errors.ProtocolError`.
``corrupt``
    Flip bytes in the encoding while the frame CRC still vouches for
    the original — models wire corruption.  The receiver's CRC check
    must raise :class:`~repro.errors.ChannelError`.
``disconnect``
    Abruptly drop the transport (no graceful-close signal) and raise on
    the injecting side; the peer sees a connection-lost error.
``stall``
    Deliver only a prefix of the framed message, then go silent — models
    a frame split across the receiver's deadline boundary.  Over TCP the
    receiver must raise a typed mid-frame timeout
    :class:`~repro.errors.ChannelError` (never hand a short buffer to
    the CRC check); the in-memory transport has no partial frames, so
    there the stall degrades to a dropped message (recv timeout).

Every choice (message index, cut point, flipped byte positions) is
drawn from ``random.Random(seed)``, so a failing soak case replays
exactly from its ``(kind, seed)`` pair.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

from repro.errors import ChannelError, ConfigError
from repro.utils import serialization

FAULT_KINDS = ("delay", "drop", "truncate", "corrupt", "disconnect", "stall")


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: what to do and at which send index."""

    kind: str
    message_index: int
    delay_s: float = 0.05
    #: fraction of the encoding kept by ``truncate`` (at least 1 byte cut)
    keep_fraction: float = 0.5
    #: byte flips applied by ``corrupt``
    n_flips: int = 8
    #: per-spec seed for cut points / flip positions
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigError(f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}")
        if self.message_index < 0:
            raise ConfigError("message_index must be non-negative")
        if not 0.0 <= self.keep_fraction < 1.0:
            raise ConfigError("keep_fraction must be in [0, 1)")


class FaultPlan:
    """A deterministic schedule of :class:`FaultSpec`\\ s.

    Use :meth:`seeded` to derive a one-fault plan from ``(kind, seed)``;
    pass explicit specs for multi-fault scenarios.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] | list[FaultSpec] = ()) -> None:
        self.specs = tuple(specs)
        self._by_index: dict[int, FaultSpec] = {}
        for spec in self.specs:
            if spec.message_index in self._by_index:
                raise ConfigError(
                    f"two faults scheduled at message index {spec.message_index}"
                )
            self._by_index[spec.message_index] = spec

    @classmethod
    def seeded(
        cls,
        kind: str,
        seed: int,
        max_index: int,
        delay_s: float = 0.05,
        n_flips: int = 8,
    ) -> "FaultPlan":
        """One fault of ``kind`` at a seed-chosen index in ``[0, max_index)``."""
        if max_index < 1:
            raise ConfigError("max_index must be at least 1")
        rng = random.Random(f"{kind}:{seed}")  # str seeds hash stably (SHA-512)
        spec = FaultSpec(
            kind=kind,
            message_index=rng.randrange(max_index),
            delay_s=delay_s,
            keep_fraction=rng.uniform(0.1, 0.9),
            n_flips=n_flips,
            seed=rng.getrandbits(32),
        )
        return cls((spec,))

    def fault_for(self, index: int) -> FaultSpec | None:
        return self._by_index.get(index)

    def __repr__(self) -> str:
        return f"FaultPlan({list(self.specs)!r})"


class FaultyChannel:
    """Channel wrapper that fires a :class:`FaultPlan` on the send path.

    Exposes the full channel surface (``send``/``recv``/``exchange``/
    ``stats``/``party``/``close``), so protocols and
    :func:`~repro.net.runner.run_protocol` accept it anywhere a real
    channel goes.  Works over both transports via their ``_inject_frame``
    hooks (raw frame with valid or poisoned CRC) and ``abort()``.
    """

    def __init__(self, inner, plan: FaultPlan) -> None:
        self._inner = inner
        self._plan = plan
        self._send_index = 0
        self.fired: list[FaultSpec] = []

    # Channel surface delegated to the wrapped endpoint ----------------- #
    @property
    def party(self) -> int:
        return self._inner.party

    @property
    def stats(self):
        return self._inner.stats

    @property
    def tracer(self):
        return self._inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        # The inner endpoint performs the actual IO, so the tracer must
        # live there: only delivered traffic is attributed to spans.
        self._inner.tracer = value

    @property
    def timeout_s(self) -> float:
        # The mux sizes its recv deadline from the transport's timeout;
        # without this delegation a faulted pipelined run would stall
        # for the mux default instead of the configured bound.
        return self._inner.timeout_s

    def recv(self):
        return self._inner.recv()

    def exchange(self, obj):
        self.send(obj)
        return self.recv()

    def close(self) -> None:
        self._inner.close()

    def abort(self) -> None:
        self._inner.abort()

    # Fault dispatch ----------------------------------------------------- #
    def send(self, obj) -> None:
        spec = self._plan.fault_for(self._send_index)
        self._send_index += 1
        if spec is None:
            self._inner.send(obj)
            return
        self.fired.append(spec)
        if spec.kind == "delay":
            time.sleep(spec.delay_s)
            self._inner.send(obj)
        elif spec.kind == "drop":
            # The message never reaches the wire, but it consumes a
            # sequence number — exactly what a frame lost in transit
            # looks like — so the receiver reports a gap, not a shifted
            # stream of misinterpreted messages.
            self._inner._skip_frame()
        elif spec.kind == "truncate":
            data = serialization.encode(obj)
            cut = max(1, min(len(data) - 1, int(len(data) * spec.keep_fraction)))
            self._inner._inject_frame(data[:cut], valid_crc=True)
        elif spec.kind == "corrupt":
            data = serialization.encode(obj)
            rng = random.Random(spec.seed)
            bad = bytearray(data)
            for _ in range(max(1, spec.n_flips)):
                pos = rng.randrange(len(bad))
                bad[pos] ^= 1 << rng.randrange(8)
            self._inner._inject_frame(bytes(bad), valid_crc=False)
        elif spec.kind == "disconnect":
            self._inner.abort()
            raise ChannelError(
                f"injected disconnect at message index {spec.message_index}"
            )
        elif spec.kind == "stall":
            data = serialization.encode(obj)
            inject = getattr(self._inner, "_inject_partial_frame", None)
            if inject is not None:
                inject(data, spec.keep_fraction)
            else:
                # No partial frames in memory: the message simply never
                # completes, which the receiver sees as a recv timeout.
                self._inner._skip_frame()

    def __repr__(self) -> str:
        return f"FaultyChannel({self._inner!r}, {self._plan!r})"
