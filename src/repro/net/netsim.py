"""Analytic LAN/WAN wall-clock model.

The paper shapes traffic with Linux ``tc`` between two machines; we run
both parties in one process and *compute* the network's contribution from
measured traffic instead:

    time = compute_seconds * compute_scale
         + total_bytes / bandwidth
         + rounds * rtt

``compute_scale`` maps measured Python compute onto the paper's C++/ABY
testbed.  The default of 1.0 reports honest Python time; benchmarks that
compare against paper numbers report both raw and scaled figures and only
claim *shape* fidelity (ratios between systems), which is unaffected by
the scale because all systems run on the same interpreter.

The concrete link profiles below are the ones the paper names:

* Table 3 setting: WAN with 9 MB/s and 72 ms RTT.
* Tables 4/5 setting (borrowed from QUOTIENT): WAN with 24.3 MB/s, 40 ms RTT.
* LAN: gigabit-class link, sub-millisecond RTT (the paper does not give
  exact LAN figures; 125 MB/s / 0.5 ms is the conventional ABY setup).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.net.channel import ChannelStats


@dataclass(frozen=True)
class NetworkModel:
    """A symmetric point-to-point link."""

    name: str
    bandwidth_bytes_per_s: float
    rtt_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.rtt_s < 0:
            raise ConfigError("RTT cannot be negative")

    def transfer_time_s(self, nbytes: int) -> float:
        """Serialization delay for ``nbytes`` of payload."""
        return nbytes / self.bandwidth_bytes_per_s

    def latency_time_s(self, rounds: int) -> float:
        """Propagation delay for ``rounds`` direction flips.

        ``rounds`` follows the repo-wide convention (pinned by
        ``tests/test_rounds_convention.py``): a round begins whenever the
        sending party changes, and the first message opens round 1.
        ``ChannelStats``, ``TcpChannel``, and ``repro.perf.trace.Tracer``
        all count this way, so their figures can be fed here directly.
        """
        return rounds * self.rtt_s

    def estimate_s(
        self,
        compute_s: float,
        nbytes: int,
        rounds: int,
        compute_scale: float = 1.0,
    ) -> float:
        """Estimated end-to-end wall time for one protocol execution."""
        return compute_s * compute_scale + self.transfer_time_s(nbytes) + self.latency_time_s(rounds)

    def estimate_from_stats(
        self,
        compute_s: float,
        stats: ChannelStats,
        compute_scale: float = 1.0,
    ) -> float:
        return self.estimate_s(compute_s, stats.total_bytes, stats.rounds, compute_scale)


MB = 1024 * 1024

#: Conventional gigabit LAN (the paper's LAN is tc-shaped but unspecified).
LAN = NetworkModel("LAN", bandwidth_bytes_per_s=125 * MB, rtt_s=0.0005)

#: Table 3's WAN setting: 9 MB/s, 72 ms RTT.
WAN_SECUREML = NetworkModel("WAN-9MBps-72ms", bandwidth_bytes_per_s=9 * MB, rtt_s=0.072)

#: Tables 4/5's WAN setting (same as QUOTIENT): 24.3 MB/s, 40 ms RTT.
WAN_QUOTIENT = NetworkModel("WAN-24.3MBps-40ms", bandwidth_bytes_per_s=24.3 * MB, rtt_s=0.040)
