"""Analytic LAN/WAN wall-clock model, plus an executable shaped link.

The paper shapes traffic with Linux ``tc`` between two machines; we run
both parties in one process and *compute* the network's contribution from
measured traffic instead:

    time = compute_seconds * compute_scale
         + total_bytes / bandwidth
         + rounds * rtt

The analytic model prices a *sequential* protocol.  The execution engine
(:mod:`repro.exec`) overlaps compute with the wire, which an analytic
sum cannot capture — so this module also provides
:class:`ShapedChannel`, a wrapper that realizes the same two link
parameters as actual wall time: every send occupies its direction of the
link for ``nbytes / bandwidth`` seconds (a shared per-direction busy
accumulator — concurrent streams queue behind each other exactly like
packets on one NIC), and the receiver may not observe a message before
``departure + rtt/2``.  Sends never block (an unbounded send buffer);
receives sleep until the arrival deadline.  Both endpoints must live in
one process (the shaper state is shared), which is how every benchmark
in this repo runs.

``compute_scale`` maps measured Python compute onto the paper's C++/ABY
testbed.  The default of 1.0 reports honest Python time; benchmarks that
compare against paper numbers report both raw and scaled figures and only
claim *shape* fidelity (ratios between systems), which is unaffected by
the scale because all systems run on the same interpreter.

The concrete link profiles below are the ones the paper names:

* Table 3 setting: WAN with 9 MB/s and 72 ms RTT.
* Tables 4/5 setting (borrowed from QUOTIENT): WAN with 24.3 MB/s, 40 ms RTT.
* LAN: gigabit-class link, sub-millisecond RTT (the paper does not give
  exact LAN figures; 125 MB/s / 0.5 ms is the conventional ABY setup).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError
from repro.net.channel import DEFAULT_TIMEOUT_S, ChannelStats, make_channel_pair
from repro.utils import serialization


@dataclass(frozen=True)
class NetworkModel:
    """A symmetric point-to-point link."""

    name: str
    bandwidth_bytes_per_s: float
    rtt_s: float

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0:
            raise ConfigError("bandwidth must be positive")
        if self.rtt_s < 0:
            raise ConfigError("RTT cannot be negative")

    def transfer_time_s(self, nbytes: int) -> float:
        """Serialization delay for ``nbytes`` of payload."""
        return nbytes / self.bandwidth_bytes_per_s

    def latency_time_s(self, rounds: int) -> float:
        """Propagation delay for ``rounds`` direction flips.

        ``rounds`` follows the repo-wide convention (pinned by
        ``tests/test_rounds_convention.py``): a round begins whenever the
        sending party changes, and the first message opens round 1.
        ``ChannelStats``, ``TcpChannel``, and ``repro.perf.trace.Tracer``
        all count this way, so their figures can be fed here directly.
        """
        return rounds * self.rtt_s

    def estimate_s(
        self,
        compute_s: float,
        nbytes: int,
        rounds: int,
        compute_scale: float = 1.0,
    ) -> float:
        """Estimated end-to-end wall time for one protocol execution."""
        return compute_s * compute_scale + self.transfer_time_s(nbytes) + self.latency_time_s(rounds)

    def estimate_from_stats(
        self,
        compute_s: float,
        stats: ChannelStats,
        compute_scale: float = 1.0,
    ) -> float:
        return self.estimate_s(compute_s, stats.total_bytes, stats.rounds, compute_scale)


MB = 1024 * 1024

#: Conventional gigabit LAN (the paper's LAN is tc-shaped but unspecified).
LAN = NetworkModel("LAN", bandwidth_bytes_per_s=125 * MB, rtt_s=0.0005)

#: Table 3's WAN setting: 9 MB/s, 72 ms RTT.
WAN_SECUREML = NetworkModel("WAN-9MBps-72ms", bandwidth_bytes_per_s=9 * MB, rtt_s=0.072)

#: Tables 4/5's WAN setting (same as QUOTIENT): 24.3 MB/s, 40 ms RTT.
WAN_QUOTIENT = NetworkModel("WAN-24.3MBps-40ms", bandwidth_bytes_per_s=24.3 * MB, rtt_s=0.040)


# --------------------------------------------------------------------- #
# executable link: sleeps instead of arithmetic
# --------------------------------------------------------------------- #
class LinkShaper:
    """Shared state of one shaped point-to-point link.

    Full duplex: each direction has its own serialization queue (busy
    accumulator).  ``reserve`` books ``nbytes`` of transfer on one
    direction and returns the absolute ``time.monotonic()`` instant at
    which the message becomes visible at the far end (departure of its
    last byte plus one-way propagation).
    """

    def __init__(self, model: NetworkModel) -> None:
        self.model = model
        self._busy_until = [0.0, 0.0]
        self._lock = threading.Lock()
        #: FIFO arrival deadlines per direction; the underlying channel
        #: is FIFO too, so deadlines pair up with frames positionally.
        self.arrivals: tuple[deque, deque] = (deque(), deque())

    def reserve(self, direction: int, nbytes: int) -> float:
        now = time.monotonic()
        with self._lock:
            start = max(now, self._busy_until[direction])
            done = start + self.model.transfer_time_s(nbytes)
            self._busy_until[direction] = done
        return done + self.model.rtt_s / 2.0


class ShapedChannel:
    """Channel wrapper that turns link parameters into real wall time.

    Wraps one endpoint of an in-process pair (same wrapper idiom as
    :class:`repro.net.faults.FaultyChannel`).  Serialization delay is
    charged on the *payload* bytes — the figure the paper's communication
    columns count — at send time; the matching ``recv`` sleeps until the
    arrival deadline.  All accounting (stats, tracer, seq/CRC framing)
    stays on the wrapped channel untouched.
    """

    def __init__(self, inner: Any, shaper: LinkShaper, direction: int) -> None:
        self._inner = inner
        self._shaper = shaper
        self._direction = direction

    @property
    def party(self) -> int:
        return self._inner.party

    @property
    def stats(self):
        return self._inner.stats

    @property
    def tracer(self):
        return self._inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self._inner.tracer = value

    @property
    def timeout_s(self) -> float:
        return self._inner.timeout_s

    def send(self, obj: Any) -> None:
        arrival = self._shaper.reserve(
            self._direction, serialization.payload_nbytes(obj)
        )
        # Deadline first, then the frame: the peer can never observe a
        # frame whose deadline is not already queued.
        self._shaper.arrivals[self._direction].append(arrival)
        self._inner.send(obj)

    def recv(self) -> Any:
        obj = self._inner.recv()
        arrivals = self._shaper.arrivals[1 - self._direction]
        delay = arrivals.popleft() - time.monotonic() if arrivals else 0.0
        if delay > 0:
            time.sleep(delay)
        return obj

    def exchange(self, obj: Any) -> Any:
        self.send(obj)
        return self.recv()

    def close(self) -> None:
        self._inner.close()

    def __repr__(self) -> str:
        return f"ShapedChannel({self._inner!r}, link={self._shaper.model.name})"


def shaped_channel_pair(
    model: NetworkModel, timeout_s: float = DEFAULT_TIMEOUT_S
) -> tuple[ShapedChannel, ShapedChannel]:
    """A connected in-memory (server, client) pair over a shaped link."""
    server, client = make_channel_pair(timeout_s=timeout_s)
    shaper = LinkShaper(model)
    return (
        ShapedChannel(server, shaper, direction=0),
        ShapedChannel(client, shaper, direction=1),
    )
