"""Tagged channel multiplexer: thread-safe sub-channels over one channel.

The execution engine (:mod:`repro.exec`) runs several independent
protocol sessions — one OT/GC session per shard — concurrently between
the same two parties.  Opening one socket per shard would change the
deployment footprint (and the TCP handshake/session accounting), so
instead a :class:`ChannelMux` multiplexes *streams* over a single
underlying :class:`repro.net.channel.Channel` or
:class:`repro.net.tcp.TcpChannel`:

* every frame on the wire is the tuple ``(tag, stream_seq, payload)`` —
  the stream tag routes it, the per-stream sequence number pins in-order
  delivery *within* a stream no matter how frames from different streams
  interleave, and the underlying channel's own per-frame seq/CRC
  protection is untouched (a mux frame is just one ordinary message);
* each :class:`MuxChannel` quacks like a ``Channel`` (``send`` /
  ``recv`` / ``tracer`` / per-stream byte counters), so protocol layers
  (KK13/IKNP sessions, GC executions) run over a stream unchanged;
* receiving is cooperative: whichever stream's thread currently holds
  the receive lock pulls frames off the underlying channel and routes
  them — frames for *other* streams land in those streams' inboxes, so
  no dedicated demux thread is needed and a single-threaded caller
  degrades to plain sequential channel use;
* sends are serialized by a send lock; optionally (``async_depth > 0``)
  they are handed to a bounded writer thread, which is what lets a shard
  worker start hashing its next chunk while the previous chunk's blob is
  still going out — the chunk-level pipeline of the execution engine.

Determinism contract: the *per-stream* transcript (sequence of payloads
and the per-stream byte totals) depends only on what the shard protocol
sends, never on thread scheduling; only the interleaving of frames on
the underlying channel varies between runs.  ``tests/test_exec_parallel.py``
pins this with a seeded interleaving fuzz test.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any

from repro.errors import ChannelError
from repro.utils import serialization

#: Wire overhead of the mux framing per message: the ``tag`` and
#: ``stream_seq`` ints (8 payload bytes each) wrapped around the payload.
MUX_FRAME_OVERHEAD_BYTES = 16

_CLOSED = object()


class _StreamState:
    """Demux-side state of one stream: inbox plus both seq counters."""

    __slots__ = ("tag", "inbox", "send_seq", "recv_seq", "channel")

    def __init__(self, tag: int) -> None:
        self.tag = tag
        self.inbox: queue.Queue = queue.Queue()
        self.send_seq = 0
        self.recv_seq = 0
        self.channel: "MuxChannel | None" = None


class MuxChannel:
    """One stream endpoint; duck-types the ``Channel`` protocol surface.

    ``tracer`` is per-stream: the execution engine attaches one tracer
    per shard worker here (the repo-wide tracer is single-threaded, so
    shards must not share the parent channel's tracer) and grafts the
    shard trees back into the parent trace after the join.
    """

    def __init__(self, mux: "ChannelMux", tag: int) -> None:
        self._mux = mux
        self.tag = tag
        self.tracer = None
        self._closed = False
        #: Per-stream payload-byte/message accounting (what the fuzz and
        #: determinism tests compare across worker counts).
        self.sent_bytes = 0
        self.recv_bytes = 0
        self.sent_msgs = 0
        self.recv_msgs = 0

    @property
    def party(self) -> int:
        return getattr(self._mux.chan, "party", -1)

    @property
    def stats(self):
        return getattr(self._mux.chan, "stats", None)

    @property
    def timeout_s(self) -> float:
        return self._mux.timeout_s

    def send(self, obj: Any) -> None:
        if self._closed:
            raise ChannelError("send on closed channel")
        self._mux._send(self.tag, obj)

    def recv(self) -> Any:
        if self._closed:
            raise ChannelError("recv on closed channel")
        return self._mux._recv(self.tag)

    def exchange(self, obj: Any) -> Any:
        self.send(obj)
        return self.recv()

    def close(self) -> None:
        """Close this stream locally (idempotent).

        Only this endpoint's view of the stream is closed — the mux and
        the underlying channel stay up for the other streams, and no
        close frame goes on the wire (stream lifecycle is a session-layer
        concern; e.g. the serving session's ``bye`` control message).
        Subsequent ``send``/``recv`` on this stream raise
        :class:`ChannelError` like a closed :class:`~repro.net.channel.Channel`.
        """
        self._closed = True

    def __repr__(self) -> str:
        return f"MuxChannel(tag={self.tag}, party={self.party})"


class ChannelMux:
    """Multiplexes tagged streams over one underlying channel.

    ``async_depth > 0`` starts a writer thread with a bounded queue:
    ``send`` enqueues and returns, overlapping the caller's compute with
    the wire.  Per-stream accounting and tracer attribution still happen
    at enqueue time in the *caller's* thread, so per-stream figures stay
    deterministic.  :meth:`flush` is the barrier; :meth:`close` flushes
    and joins the writer (it never closes the underlying channel, which
    the caller owns).
    """

    def __init__(self, chan: Any, async_depth: int = 0) -> None:
        self.chan = chan
        self.timeout_s = float(getattr(chan, "timeout_s", 120.0))
        self._streams: dict[int, _StreamState] = {}
        self._streams_lock = threading.Lock()
        self._send_lock = threading.Lock()
        self._recv_lock = threading.Lock()
        self._error: BaseException | None = None
        self._closed = False
        self._writer: threading.Thread | None = None
        self._send_q: queue.Queue | None = None
        if async_depth > 0:
            self._send_q = queue.Queue(maxsize=async_depth)
            self._writer = threading.Thread(
                target=self._writer_loop, name="abnn2-mux-writer", daemon=True
            )
            self._writer.start()

    # ------------------------------------------------------------------ #
    def stream(self, tag: int) -> MuxChannel:
        """The sub-channel for ``tag`` (created on first use, idempotent)."""
        state = self._state(int(tag))
        if state.channel is None:
            state.channel = MuxChannel(self, int(tag))
        return state.channel

    def _state(self, tag: int) -> _StreamState:
        with self._streams_lock:
            state = self._streams.get(tag)
            if state is None:
                state = self._streams[tag] = _StreamState(tag)
            return state

    def _check_error(self) -> None:
        if self._error is not None:
            raise ChannelError(f"mux failed: {self._error}") from self._error
        if self._closed:
            raise ChannelError("mux is closed")

    # ------------------------------------------------------------------ #
    # send path
    # ------------------------------------------------------------------ #
    def _send(self, tag: int, obj: Any) -> None:
        self._check_error()
        state = self._state(tag)
        seq = state.send_seq
        state.send_seq += 1
        payload = serialization.payload_nbytes(obj)
        if self._send_q is not None:
            # Accounting first, in the calling (shard) thread: the tracer
            # is per-stream and the enqueue order *is* the stream order.
            self._record(state, "send", payload)
            self._send_q.put((tag, seq, obj))
            self._check_error()
        else:
            with self._send_lock:
                self.chan.send((tag, seq, obj))
            self._record(state, "send", payload)

    def _writer_loop(self) -> None:
        while True:
            item = self._send_q.get()
            if item is _CLOSED:
                self._send_q.task_done()
                return
            tag, seq, obj = item
            try:
                with self._send_lock:
                    self.chan.send((tag, seq, obj))
            except BaseException as exc:  # noqa: BLE001 - surfaced to callers
                if self._error is None:
                    self._error = exc
            finally:
                self._send_q.task_done()

    def flush(self) -> None:
        """Block until every enqueued async send is on the wire."""
        if self._send_q is not None:
            self._send_q.join()
        self._check_error()

    # ------------------------------------------------------------------ #
    # recv path: cooperative stealing
    # ------------------------------------------------------------------ #
    def _recv(self, tag: int) -> Any:
        state = self._state(tag)
        deadline = time.monotonic() + self.timeout_s
        while True:
            try:
                return self._pop(state)
            except queue.Empty:
                pass
            if self._error is not None:
                self._check_error()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ChannelError(
                    f"stream {tag} timed out after {self.timeout_s}s waiting for peer"
                )
            # Whoever gets the lock pumps the underlying channel; everyone
            # else polls its inbox, into which the pumper routes frames.
            if not self._recv_lock.acquire(timeout=min(remaining, 0.05)):
                continue
            try:
                try:
                    return self._pop(state)
                except queue.Empty:
                    pass
                self._pump_one()
            except BaseException as exc:
                if self._error is None and not isinstance(exc, queue.Empty):
                    self._error = exc
                raise
            finally:
                self._recv_lock.release()

    def _pop(self, state: _StreamState) -> Any:
        obj = state.inbox.get_nowait()
        self._record(state, "recv", serialization.payload_nbytes(obj))
        return obj

    def _pump_one(self) -> None:
        """Pull one frame off the underlying channel and route it."""
        frame = self.chan.recv()
        if (
            not isinstance(frame, tuple)
            or len(frame) != 3
            or not isinstance(frame[0], int)
            or not isinstance(frame[1], int)
        ):
            raise ChannelError(
                f"expected a (tag, seq, payload) mux frame, got {type(frame).__name__}"
            )
        tag, seq, obj = frame
        state = self._state(tag)
        if seq != state.recv_seq:
            raise ChannelError(
                f"stream {tag} sequence gap: expected frame #{state.recv_seq}, got #{seq}"
            )
        state.recv_seq += 1
        state.inbox.put(obj)

    # ------------------------------------------------------------------ #
    def _record(self, state: _StreamState, direction: str, payload: int) -> None:
        chan = state.channel
        if chan is None:
            chan = self.stream(state.tag)
        if direction == "send":
            chan.sent_bytes += payload
            chan.sent_msgs += 1
        else:
            chan.recv_bytes += payload
            chan.recv_msgs += 1
        if chan.tracer is not None:
            chan.tracer.record_io(direction, payload)

    def stream_totals(self) -> dict[int, dict[str, int]]:
        """Per-stream accounting snapshot, keyed by tag (sorted)."""
        with self._streams_lock:
            states = sorted(self._streams.items())
        out = {}
        for tag, state in states:
            chan = state.channel
            if chan is None:
                continue
            out[tag] = {
                "sent_bytes": chan.sent_bytes,
                "recv_bytes": chan.recv_bytes,
                "sent_msgs": chan.sent_msgs,
                "recv_msgs": chan.recv_msgs,
            }
        return out

    def abort(self, exc: BaseException) -> None:
        """Poison the mux: every pending/future send or recv raises.

        Used by the executors' fail-fast path — when one shard fails,
        the surviving shards' recv loops are parked waiting for frames
        that will never arrive, and this is what wakes them: every
        reader *waiting on the recv lock* re-checks ``_error`` each
        50 ms poll tick.  The one thread currently holding the lock is
        blocked inside the underlying ``chan.recv`` and surfaces the
        poison at its next frame or the channel timeout, whichever
        comes first.  Idempotent; the first exception wins.
        """
        if self._error is None:
            self._error = exc

    def close(self) -> None:
        """Flush and stop the writer thread (underlying channel survives)."""
        if self._closed:
            return
        self._closed = True
        if self._send_q is not None:
            self._send_q.put(_CLOSED)
            self._writer.join(timeout=self.timeout_s)

    def __enter__(self) -> "ChannelMux":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
