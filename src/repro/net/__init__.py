"""Two-party execution substrate: channels, thread runner, network models."""

from repro.net.channel import Channel, ChannelStats, make_channel_pair
from repro.net.runner import run_protocol, ProtocolResult
from repro.net.netsim import NetworkModel, LAN, WAN_SECUREML, WAN_QUOTIENT

__all__ = [
    "Channel",
    "ChannelStats",
    "make_channel_pair",
    "run_protocol",
    "ProtocolResult",
    "NetworkModel",
    "LAN",
    "WAN_SECUREML",
    "WAN_QUOTIENT",
]
