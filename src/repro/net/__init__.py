"""Two-party execution substrate: channels, thread runner, network models,
TCP transport, and deterministic fault injection."""

from repro.net.channel import Channel, ChannelStats, make_channel_pair
from repro.net.faults import FAULT_KINDS, FaultPlan, FaultSpec, FaultyChannel
from repro.net.runner import run_protocol, ProtocolResult
from repro.net.netsim import NetworkModel, LAN, WAN_SECUREML, WAN_QUOTIENT
from repro.net.tcp import Listener, SESSION_ANY, TcpChannel, connect, listen

__all__ = [
    "Listener",
    "SESSION_ANY",
    "TcpChannel",
    "connect",
    "listen",
    "Channel",
    "ChannelStats",
    "make_channel_pair",
    "run_protocol",
    "ProtocolResult",
    "FAULT_KINDS",
    "FaultPlan",
    "FaultSpec",
    "FaultyChannel",
    "NetworkModel",
    "LAN",
    "WAN_SECUREML",
    "WAN_QUOTIENT",
]
