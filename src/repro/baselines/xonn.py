"""XONN-style fully-garbled binarized network inference.

XONN (USENIX Security'19) — the GC-family point in the paper's related
work — binarizes weights *and* activations to ±1 so every multiplication
becomes a free XNOR and each neuron reduces to a popcount plus a
threshold test, letting the whole network run inside **one garbled
circuit** with no OT-based linear layers at all.  This module implements
that design on our GC stack as a fourth baseline:

* :func:`binarize_network` projects a trained float MLP onto ±1 weights
  with per-neuron integer thresholds (bias folded in);
* :func:`bnn_template` builds the single circuit: per layer, XNORs (free)
  -> popcount trees -> threshold comparisons; the output layer's class
  popcounts are the scores;
* :func:`xonn_predict` runs it two-party.  Unlike ABNN2, here the
  **server garbles** (it owns the weights, which are garbler inputs) and
  the **client evaluates**, receiving the activation-bit labels for its
  input via OT and decoding the output scores.

Scope note (DESIGN.md): inputs are binarized too (``x > threshold``), a
simplification of XONN's integer first layer — accuracy consequences are
reported, performance shape (everything in GC, zero offline OT matmuls,
comm dominated by garbled tables) is what the comparison needs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.errors import ConfigError
from repro.gc.builder import geq_words, popcount_tree, zero_wire
from repro.gc.circuit import Circuit
from repro.gc.protocol import GcSessions, run_evaluator, run_garbler
from repro.net.channel import Channel
from repro.net.runner import run_protocol
from repro.nn.layers import Dense
from repro.nn.model import Sequential
from repro.utils.bits import bits_to_int, int_to_bits
from repro.utils.rng import make_rng


@dataclass
class BinarizedNetwork:
    """A ±1-weight network with integer thresholds per neuron.

    ``weight_bits[k]`` is the (out, in) 0/1 matrix of layer ``k`` (bit 1
    encodes +1); ``thresholds[k]`` the per-neuron popcount thresholds
    (hidden layers only — the last layer outputs raw popcount scores).
    ``input_threshold`` binarizes the client's float input.
    """

    weight_bits: list[np.ndarray]
    thresholds: list[np.ndarray]
    input_threshold: float = 0.5

    def __post_init__(self) -> None:
        if len(self.thresholds) != len(self.weight_bits) - 1:
            raise ConfigError("need one threshold vector per hidden layer")

    @property
    def dims(self) -> list[int]:
        return [self.weight_bits[0].shape[1]] + [w.shape[0] for w in self.weight_bits]

    def binarize_input(self, x_float: np.ndarray) -> np.ndarray:
        """(batch, features) floats -> 0/1 activation bits."""
        return (np.asarray(x_float) > self.input_threshold).astype(np.uint8)

    # ------------------------------------------------------------------ #
    def forward_scores(self, x_float: np.ndarray) -> np.ndarray:
        """Plaintext reference: per-class popcount scores, (batch, classes)."""
        acts = self.binarize_input(x_float)
        for k, w in enumerate(self.weight_bits):
            # xnor popcount: matches = positions where act bit == weight bit
            matches = acts[:, None, :] == w[None, :, :]
            counts = matches.sum(axis=2)
            if k < len(self.weight_bits) - 1:
                acts = (counts >= self.thresholds[k][None, :]).astype(np.uint8)
            else:
                return counts.astype(np.int64)
        raise AssertionError("unreachable")

    def predict(self, x_float: np.ndarray) -> np.ndarray:
        return np.argmax(self.forward_scores(x_float), axis=1)


def binarize_network(model: Sequential, input_threshold: float = 0.5) -> BinarizedNetwork:
    """Project a trained Dense/ReLU model onto the XONN weight space.

    ``w -> sign(w)``; the bias folds into the neuron threshold: with
    activations/weights in {-1, +1}, ``sum_i w_i a_i = 2*pc - n``, so
    ``sum + b/s >= 0`` becomes ``pc >= ceil((n - b/s) / 2)`` where ``s``
    is the layer's mean |w| (the binarization scale).
    """
    dense = [layer for layer in model.layers if isinstance(layer, Dense)]
    if len(dense) < 2:
        raise ConfigError("a binarized network needs at least two Dense layers")
    weight_bits = []
    thresholds = []
    for idx, layer in enumerate(dense):
        bits = (layer.weight >= 0).astype(np.uint8)
        weight_bits.append(bits)
        if idx < len(dense) - 1:
            n = layer.weight.shape[1]
            scale = float(np.mean(np.abs(layer.weight))) or 1.0
            t = np.ceil((n - layer.bias / scale) / 2.0)
            thresholds.append(np.clip(t, 0, n).astype(np.int64))
    return BinarizedNetwork(weight_bits, thresholds, input_threshold)


# --------------------------------------------------------------------- #
# the single-circuit template
# --------------------------------------------------------------------- #
def _word_width(n: int) -> int:
    return int(n).bit_length()


def bnn_template(dims: list[int]) -> Circuit:
    """One circuit for the whole binarized network.

    Evaluator (client) inputs: ``dims[0]`` activation bits.  Garbler
    (server) inputs, per layer: the weight bits row-major, then (hidden
    layers) per-neuron threshold words of width ``log2(n_in)+1``.
    Outputs: the last layer's popcount score words, class-major.
    """
    if len(dims) < 3:
        raise ConfigError("need input, >=1 hidden, and output dims")
    circ = Circuit()
    acts = circ.evaluator_input(dims[0])
    for k in range(1, len(dims)):
        n_in, n_out = dims[k - 1], dims[k]
        weight_wires = circ.garbler_input(n_out * n_in)
        last = k == len(dims) - 1
        t_width = _word_width(n_in)
        threshold_wires = None if last else circ.garbler_input(n_out * t_width)
        new_acts = []
        outputs = []
        for j in range(n_out):
            row = weight_wires[j * n_in : (j + 1) * n_in]
            xnors = [circ.inv(circ.xor(a, w)) for a, w in zip(acts, row)]
            count = popcount_tree(circ, xnors)
            if last:
                # The adder tree may carry a few always-zero top bits past
                # log2(n)+1; pc <= n_in, so trim to the canonical width.
                outputs.extend(count[: _word_width(n_in)])
            else:
                t_word = threshold_wires[j * t_width : (j + 1) * t_width]
                new_acts.append(geq_words(circ, count, t_word))
        if last:
            circ.mark_outputs(outputs)
        else:
            acts = new_acts
    circ.validate()
    return circ


def _garbler_bits(bnn: BinarizedNetwork, n_inst: int) -> np.ndarray:
    """Server's input bit matrix, in the template's wire order."""
    rows = []
    for k, w in enumerate(bnn.weight_bits):
        rows.append(np.repeat(w.reshape(-1, 1), n_inst, axis=1).astype(np.uint8))
        if k < len(bnn.weight_bits) - 1:
            t_width = _word_width(w.shape[1])
            t_bits = int_to_bits(bnn.thresholds[k].astype(np.uint64), t_width)
            rows.append(np.repeat(t_bits.reshape(-1, 1), n_inst, axis=1).astype(np.uint8))
    return np.concatenate(rows, axis=0)


# --------------------------------------------------------------------- #
# two-party execution (server garbles, client evaluates)
# --------------------------------------------------------------------- #
def xonn_server(
    chan: Channel,
    bnn: BinarizedNetwork,
    batch: int,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
    seed: int | None = None,
) -> None:
    circuit = bnn_template(bnn.dims)
    sessions = GcSessions(chan, "garbler", group=group, ro=ro, seed=seed)
    run_garbler(
        chan, circuit, _garbler_bits(bnn, batch), batch, sessions, make_rng(seed)
    )


def xonn_client(
    chan: Channel,
    dims: list[int],
    x_float: np.ndarray,
    input_threshold: float = 0.5,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
    seed: int | None = None,
) -> np.ndarray:
    """Returns the (batch, classes) popcount scores."""
    circuit = bnn_template(dims)
    x_bits = (np.asarray(x_float) > input_threshold).astype(np.uint8).T  # (features, batch)
    batch = x_bits.shape[1]
    sessions = GcSessions(chan, "evaluator", group=group, ro=ro, seed=seed)
    out_bits = run_evaluator(chan, circuit, x_bits, batch, sessions)
    width = _word_width(dims[-2])
    classes = dims[-1]
    words = out_bits.T.reshape(batch, classes, width)
    return bits_to_int(words).astype(np.int64)


@dataclass
class XonnReport:
    scores: np.ndarray
    predictions: np.ndarray
    total_bytes: int
    rounds: int
    wall_time_s: float
    and_gates: int


def xonn_predict(
    bnn: BinarizedNetwork,
    x_float: np.ndarray,
    group: ModpGroup = DEFAULT_GROUP,
    ro: RandomOracle = default_ro,
    seed: int | None = 0,
    timeout_s: float = 1200.0,
) -> XonnReport:
    """Run the full XONN-style prediction on one machine (two threads)."""
    x = np.atleast_2d(np.asarray(x_float, dtype=np.float64))
    batch = x.shape[0]
    start = time.perf_counter()
    result = run_protocol(
        lambda ch: xonn_server(ch, bnn, batch, group, ro, seed),
        lambda ch: xonn_client(
            ch, bnn.dims, x, bnn.input_threshold, group, ro,
            None if seed is None else seed + 1,
        ),
        timeout_s=timeout_s,
    )
    scores = result.client
    return XonnReport(
        scores=scores,
        predictions=np.argmax(scores, axis=1),
        total_bytes=result.total_bytes,
        rounds=result.rounds,
        wall_time_s=time.perf_counter() - start,
        and_gates=bnn_template(bnn.dims).and_count,
    )
