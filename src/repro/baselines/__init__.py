"""Baseline protocols the paper compares against.

* :mod:`repro.baselines.secureml` — SecureML's (S&P'17) OT-based offline
  multiplication triplets: Gilboa decomposition, one correlated OT per
  weight *bit*, with the truncated-message optimization (Table 1/3).
* :mod:`repro.baselines.minionn` — MiniONN's (CCS'17) LHE-based offline
  triplets, reproduced on Paillier with slot packing (Table 4).
* :mod:`repro.baselines.quotient` — QUOTIENT's (CCS'19) ternary matmul:
  each {-1,0,1} weight becomes two binary correlated OTs (Table 5).
* :mod:`repro.baselines.xonn` — XONN-style (USENIX Sec'19) fully-garbled
  binarized network: the GC-only design point from the paper's related
  work (extra comparison bench, not a paper table).
"""

from repro.baselines.secureml import (
    SecureMlConfig,
    secureml_triplets_server,
    secureml_triplets_client,
)
from repro.baselines.minionn import (
    MinionnConfig,
    minionn_triplets_server,
    minionn_triplets_client,
    minionn_predict,
)
from repro.baselines.quotient import (
    quotient_triplets_server,
    quotient_triplets_client,
    quotient_predict,
)
from repro.baselines.xonn import (
    BinarizedNetwork,
    binarize_network,
    xonn_predict,
)

__all__ = [
    "SecureMlConfig",
    "secureml_triplets_server",
    "secureml_triplets_client",
    "MinionnConfig",
    "minionn_triplets_server",
    "minionn_triplets_client",
    "minionn_predict",
    "quotient_triplets_server",
    "quotient_triplets_client",
    "quotient_predict",
    "BinarizedNetwork",
    "binarize_network",
    "xonn_predict",
]
