"""QUOTIENT-style ternary matrix multiplication and prediction.

QUOTIENT (CCS'19) supports only ternary weights ``{-1, 0, 1}`` and
evaluates each ternary multiplication as *two binary* multiplications
(``w = w_pos - w_neg``), each realized with a 1-out-of-2 correlated OT —
the construction this paper's Section 1.1 describes.  Batch columns share
one OT via correlation lanes, mirroring QUOTIENT's vectorized layout.

The end-to-end predictor reuses the ABNN2 online machinery (additive
linear layers + GC ReLU): what distinguishes the frameworks is the
offline triplet generation and the weight space, which is exactly what
Table 5 compares.
"""

from __future__ import annotations

import numpy as np

from repro.core.matmul import SecureMatmulClient, SecureMatmulServer
from repro.core.protocol import Abnn2Client, Abnn2Server, PredictionReport
from repro.core.triplets import TripletConfig
from repro.crypto.group import DEFAULT_GROUP
from repro.crypto.hash_ro import default_ro
from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.errors import ConfigError
from repro.net.channel import Channel
from repro.net.runner import run_protocol
from repro.nn.quantize import QuantizedModel

_U64 = np.uint64
_QUOTIENT_DOMAIN = 57


def quotient_triplets_server(
    chan: Channel,
    w_int: np.ndarray,
    config: TripletConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Server side (ternary weights, COT receiver); returns ``U`` (m, o)."""
    w = np.asarray(w_int, dtype=np.int64)
    if w.shape != (config.m, config.n):
        raise ConfigError(f"expected W of shape {(config.m, config.n)}, got {w.shape}")
    if not np.isin(w, (-1, 0, 1)).all():
        raise ConfigError("QUOTIENT supports only ternary weights")
    ring = config.ring
    receiver = OtExtReceiver(chan, group=config.group, ro=config.ro, seed=seed)

    pos = (w == 1).astype(np.uint8).reshape(-1)
    neg = (w == -1).astype(np.uint8).reshape(-1)
    got_pos = receiver.recv_correlated(pos, config.o, ring, domain=_QUOTIENT_DOMAIN)
    got_neg = receiver.recv_correlated(neg, config.o, ring, domain=_QUOTIENT_DOMAIN + 1)
    per_elem = ring.sub(got_pos, got_neg).reshape(config.m, config.n, config.o)
    return ring.reduce(per_elem.sum(axis=1, dtype=_U64))


def quotient_triplets_client(
    chan: Channel,
    r_mat: np.ndarray,
    config: TripletConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Client side (COT sender with deltas R); returns ``V`` (m, o)."""
    r = config.ring.reduce(r_mat)
    if r.shape != (config.n, config.o):
        raise ConfigError(f"expected R of shape {(config.n, config.o)}, got {r.shape}")
    ring = config.ring
    sender = OtExtSender(chan, group=config.group, ro=config.ro, seed=seed)

    deltas = np.tile(r[None, :, :], (config.m, 1, 1)).reshape(-1, config.o)
    x_pos = sender.send_correlated(deltas, ring, domain=_QUOTIENT_DOMAIN)
    x_neg = sender.send_correlated(deltas, ring, domain=_QUOTIENT_DOMAIN + 1)
    per_elem = ring.sub(x_neg, x_pos).reshape(config.m, config.n, config.o)
    return ring.reduce(per_elem.sum(axis=1, dtype=_U64))


class QuotientMatmulServer(SecureMatmulServer):
    def offline(self) -> None:
        self._u = quotient_triplets_server(self.chan, self.w_int, self.config, seed=self._seed)


class QuotientMatmulClient(SecureMatmulClient):
    def offline(self) -> None:
        self._v = quotient_triplets_client(self.chan, self.r, self.config, seed=self._seed)


class QuotientServer(Abnn2Server):
    """ABNN2 online pipeline with QUOTIENT's ternary offline phase."""

    matmul_server_cls = QuotientMatmulServer


class QuotientClient(Abnn2Client):
    matmul_client_cls = QuotientMatmulClient


def quotient_predict(
    model: QuantizedModel,
    x_float: np.ndarray,
    group=DEFAULT_GROUP,
    ro=default_ro,
    seed: int | None = 0,
    timeout_s: float = 600.0,
) -> PredictionReport:
    """End-to-end QUOTIENT prediction (model must be ternary-quantized)."""
    from repro.core.protocol import _joint_predict

    return _joint_predict(
        QuotientServer,
        QuotientClient,
        model,
        x_float,
        relu_variant="oblivious",
        group=group,
        ro=ro,
        seed=seed,
        timeout_s=timeout_s,
    )
