"""SecureML's OT-based offline multiplication triplets (Gilboa, per bit).

SecureML generates shares of ``w * r`` without quantization: the server's
weight is a full l-bit fixed-point value, decomposed into its l bits, and
every bit runs one correlated OT whose correlation is ``2^t * r``.  The
key cost saver SecureML applies — reproduced here — is that the OT for
bit ``t`` only transfers ``l - t`` bits: the product ``2^t * r`` has ``t``
known-zero low bits, so the parties run the COT in Z_{2^(l-t)} and shift
both shares up by ``t`` locally.

Per Table 1, for an (m x n) x (n x o) product this costs l COTs *per
scalar multiplication* — ``l * m * n * o`` OTs total, since (unlike
ABNN2's multi-batch scheme) the choice bits are not reused across the
``o`` batch columns.  That non-reuse is exactly what ABNN2's Section
4.1.2 improves on, so keeping it is essential for a fair shape
comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.crypto.group import DEFAULT_GROUP, ModpGroup
from repro.crypto.hash_ro import RandomOracle, default_ro
from repro.crypto.iknp import OtExtReceiver, OtExtSender
from repro.errors import ConfigError
from repro.net.channel import Channel
from repro.utils.bits import int_to_bits
from repro.utils.ring import Ring

_U64 = np.uint64
_SECUREML_DOMAIN = 31


@dataclass
class SecureMlConfig:
    """Public parameters of one SecureML triplet generation."""

    ring: Ring
    m: int
    n: int
    o: int
    group: ModpGroup = DEFAULT_GROUP
    ro: RandomOracle = field(default_factory=lambda: default_ro)

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.o) < 1:
            raise ConfigError("matrix dimensions must be positive")

    @property
    def total_ots(self) -> int:
        """l * m * n * o — one COT per weight bit per batch column."""
        return self.ring.bits * self.m * self.n * self.o


def secureml_triplets_server(
    chan: Channel,
    w_int: np.ndarray,
    config: SecureMlConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Server (weight owner, COT receiver); returns ``U`` of shape (m, o)."""
    w = np.asarray(w_int, dtype=np.int64)
    if w.shape != (config.m, config.n):
        raise ConfigError(f"expected W of shape {(config.m, config.n)}, got {w.shape}")
    ring = config.ring
    bits = ring.bits
    # (m, n, l) bit planes of the two's-complement weight pattern.
    w_bits = int_to_bits(ring.reduce(w), bits)
    receiver = OtExtReceiver(chan, group=config.group, ro=config.ro, seed=seed)

    u = ring.zeros((config.m, config.o))
    for t in range(bits):
        sub_ring = Ring(bits - t)
        # choices ordered (i, j, b): broadcast bit t of w_ij over o columns.
        choices = np.repeat(w_bits[:, :, t].reshape(-1), config.o)
        got = receiver.recv_correlated(
            choices, None, sub_ring, domain=_SECUREML_DOMAIN + t
        )
        shifted = ring.reduce(got.astype(_U64) << _U64(t))
        u = ring.add(u, shifted.reshape(config.m, config.n, config.o).sum(axis=1, dtype=_U64))
    return ring.reduce(u)


def secureml_triplets_client(
    chan: Channel,
    r_mat: np.ndarray,
    config: SecureMlConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Client (random-operand owner, COT sender); returns ``V`` (m, o)."""
    r = config.ring.reduce(r_mat)
    if r.shape != (config.n, config.o):
        raise ConfigError(f"expected R of shape {(config.n, config.o)}, got {r.shape}")
    ring = config.ring
    bits = ring.bits
    sender = OtExtSender(chan, group=config.group, ro=config.ro, seed=seed)

    # deltas ordered (i, j, b): r[j, b] tiled over the m weight rows.
    r_flat = np.tile(r.reshape(-1), config.m)
    v = ring.zeros((config.m, config.o))
    for t in range(bits):
        sub_ring = Ring(bits - t)
        deltas = sub_ring.reduce(r_flat)
        x = sender.send_correlated(deltas, sub_ring, domain=_SECUREML_DOMAIN + t)
        shifted = ring.reduce(x.astype(_U64) << _U64(t))
        v = ring.sub(v, shifted.reshape(config.m, config.n, config.o).sum(axis=1, dtype=_U64))
    return ring.reduce(v)
