"""MiniONN-style LHE offline triplets on Paillier with slot packing.

MiniONN (CCS'17) moves the heavy work of the linear layers into an
offline phase built on SIMD-batched leveled HE.  Our reproduction keeps
the *protocol shape* on Paillier:

* the client encrypts its random operand ``R`` column-slot-packed
  (``ceil(o / slots)`` ciphertexts per row of R) and sends it;
* the server accumulates each output row homomorphically
  (``prod_j Enc(r_j)^(w_ij mod 2^l)`` — per-slot scalar multiplication,
  which packing supports because every slot sees the same scalar), adds a
  statistically-hiding noise share, and returns ``m * ceil(o/slots)``
  ciphertexts;
* the client decrypts: its share ``V`` is the noisy slot mod ``2^l``; the
  server's share ``U`` is minus its noise mod ``2^l``.

Substitution notes (DESIGN.md): MiniONN's SEAL/YASHE ciphertexts and its
send-Enc(W)-once layout don't map onto Paillier; the *measured* traffic
of this implementation therefore undercounts MiniONN's published figures.
The Table 4 harness reports both this measured traffic and the
paper-anchored analytic model from :mod:`repro.perf.costmodel`.  The
*compute* shape — HE work growing with batch size while ABNN2's OT cost
stays lean — is what the live run demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.matmul import SecureMatmulClient, SecureMatmulServer
from repro.core.protocol import Abnn2Client, Abnn2Server, PredictionReport
from repro.crypto import paillier
from repro.crypto.group import DEFAULT_GROUP
from repro.crypto.hash_ro import default_ro
from repro.errors import ConfigError, ProtocolError
from repro.net.channel import Channel
from repro.nn.quantize import QuantizedModel
from repro.utils.ring import Ring
from repro.utils.rng import make_rng, randbelow_from_rng

_U64 = np.uint64

#: Statistical hiding margin for the noise share.
STAT_SEC_BITS = 40


@dataclass
class MinionnConfig:
    """Public parameters of one MiniONN triplet generation."""

    ring: Ring
    m: int
    n: int
    o: int
    key_bits: int = 2048

    def __post_init__(self) -> None:
        if min(self.m, self.n, self.o) < 1:
            raise ConfigError("matrix dimensions must be positive")

    def packing(self, pk: paillier.PaillierPublicKey) -> paillier.SlotPacking:
        slot_bits = (
            self.ring.bits  # operand
            + self.ring.bits  # scalar (w mod 2^l)
            + max(1, self.n - 1).bit_length()  # accumulation head-room
            + STAT_SEC_BITS  # noise hiding margin
            + 1  # carry guard
        )
        slots = pk.plaintext_bits // slot_bits
        if slots < 1:
            raise ConfigError(
                f"key of {self.key_bits} bits cannot hold one {slot_bits}-bit slot"
            )
        return paillier.SlotPacking(slot_bits=slot_bits, slots=slots)


def _encode_big(values: list[int]) -> bytes:
    """Length-prefixed big-int list for channel transport."""
    out = bytearray()
    out += len(values).to_bytes(4, "little")
    for v in values:
        blob = v.to_bytes((v.bit_length() + 7) // 8 or 1, "little")
        out += len(blob).to_bytes(4, "little")
        out += blob
    return bytes(out)


def _decode_big(data: bytes) -> list[int]:
    count = int.from_bytes(data[:4], "little")
    out = []
    offset = 4
    for _ in range(count):
        size = int.from_bytes(data[offset : offset + 4], "little")
        offset += 4
        out.append(int.from_bytes(data[offset : offset + size], "little"))
        offset += size
    if offset != len(data):
        raise ProtocolError("trailing bytes in big-int payload")
    return out


def minionn_triplets_client(
    chan: Channel,
    r_mat: np.ndarray,
    config: MinionnConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Client (keypair owner): encrypt R, decrypt the noisy products."""
    r = config.ring.reduce(r_mat)
    if r.shape != (config.n, config.o):
        raise ConfigError(f"expected R of shape {(config.n, config.o)}, got {r.shape}")
    rng = make_rng(seed)
    pk, sk = paillier.keygen(config.key_bits, seed=seed)
    packing = config.packing(pk)
    chan.send((_encode_big([pk.n]), pk.key_bits))

    chunks = -(-config.o // packing.slots)
    ciphers = []
    for j in range(config.n):
        for c in range(chunks):
            block = r[j, c * packing.slots : (c + 1) * packing.slots]
            ciphers.append(paillier.encrypt(pk, packing.pack(block.tolist()), rng))
    chan.send(_encode_big(ciphers))

    noisy = _decode_big(chan.recv())
    if len(noisy) != config.m * chunks:
        raise ProtocolError("unexpected number of product ciphertexts")
    ring = config.ring
    v = ring.zeros((config.m, config.o))
    for i in range(config.m):
        for c in range(chunks):
            lo = c * packing.slots
            width = min(packing.slots, config.o - lo)
            slots = packing.unpack(paillier.decrypt(sk, noisy[i * chunks + c]), width)
            v[i, lo : lo + width] = ring.reduce(
                np.array([s % (1 << 64) for s in slots], dtype=_U64)
            )
    return ring.reduce(v)


def minionn_triplets_server(
    chan: Channel,
    w_int: np.ndarray,
    config: MinionnConfig,
    seed: int | None = None,
) -> np.ndarray:
    """Server (weight owner): homomorphic row accumulation plus noise."""
    w = np.asarray(w_int, dtype=np.int64)
    if w.shape != (config.m, config.n):
        raise ConfigError(f"expected W of shape {(config.m, config.n)}, got {w.shape}")
    ring = config.ring
    rng = make_rng(seed)
    n_blob, key_bits = chan.recv()
    pk = paillier.PaillierPublicKey(n=_decode_big(n_blob)[0], key_bits=key_bits)
    packing = config.packing(pk)

    ciphers = _decode_big(chan.recv())
    chunks = -(-config.o // packing.slots)
    if len(ciphers) != config.n * chunks:
        raise ProtocolError("unexpected number of operand ciphertexts")

    # Scalars are the weights mod 2^l (signedness folds into the ring).
    w_ring = ring.reduce(w)
    noise_bound = 1 << (packing.slot_bits - 1)
    u = ring.zeros((config.m, config.o))
    replies = []
    for i in range(config.m):
        scalars = w_ring[i]
        for c in range(chunks):
            acc = paillier.encrypt(pk, 0, rng)
            for j in range(config.n):
                scalar = int(scalars[j])
                if scalar == 0:
                    continue
                acc = paillier.add(
                    pk, acc, paillier.scalar_mul(pk, ciphers[j * chunks + c], scalar)
                )
            lo = c * packing.slots
            width = min(packing.slots, config.o - lo)
            noise = [randbelow_from_rng(rng, noise_bound) for _ in range(width)]
            acc = paillier.add(pk, acc, paillier.encrypt(pk, packing.pack(noise), rng))
            replies.append(acc)
            u[i, lo : lo + width] = ring.neg(
                np.array([s % (1 << 64) for s in noise], dtype=_U64)
            )
    chan.send(_encode_big(replies))
    return ring.reduce(u)


class MinionnMatmulServer(SecureMatmulServer):
    key_bits = 2048

    def offline(self) -> None:
        cfg = MinionnConfig(
            ring=self.config.ring,
            m=self.config.m,
            n=self.config.n,
            o=self.config.o,
            key_bits=self.key_bits,
        )
        self._u = minionn_triplets_server(self.chan, self.w_int, cfg, seed=self._seed)


class MinionnMatmulClient(SecureMatmulClient):
    key_bits = 2048

    def offline(self) -> None:
        cfg = MinionnConfig(
            ring=self.config.ring,
            m=self.config.m,
            n=self.config.n,
            o=self.config.o,
            key_bits=self.key_bits,
        )
        self._v = minionn_triplets_client(self.chan, self.r, cfg, seed=self._seed)


def make_minionn_parties(key_bits: int):
    """Server/client classes bound to a Paillier key size."""

    server_matmul = type(
        f"MinionnMatmulServer{key_bits}", (MinionnMatmulServer,), {"key_bits": key_bits}
    )
    client_matmul = type(
        f"MinionnMatmulClient{key_bits}", (MinionnMatmulClient,), {"key_bits": key_bits}
    )
    server = type(
        f"MinionnServer{key_bits}", (Abnn2Server,), {"matmul_server_cls": server_matmul}
    )
    client = type(
        f"MinionnClient{key_bits}", (Abnn2Client,), {"matmul_client_cls": client_matmul}
    )
    return server, client


def minionn_predict(
    model: QuantizedModel,
    x_float: np.ndarray,
    key_bits: int = 1024,
    group=DEFAULT_GROUP,
    ro=default_ro,
    seed: int | None = 0,
    timeout_s: float = 1200.0,
) -> PredictionReport:
    """End-to-end MiniONN-style prediction (LHE offline, GC online).

    ``key_bits`` below 2048 is insecure — offered so pure-Python runs
    finish; the benchmark harness scales reported traffic to 2048 bits.
    """
    from repro.core.protocol import _joint_predict

    server_cls, client_cls = make_minionn_parties(key_bits)
    return _joint_predict(
        server_cls,
        client_cls,
        model,
        x_float,
        relu_variant="oblivious",
        group=group,
        ro=ro,
        seed=seed,
        timeout_s=timeout_s,
    )
