"""Sharded, pipelined execution of the offline phase.

The offline workload — triplet OT batches, GC garbling/evaluation — is
embarrassingly parallel across OT instances / circuit instances.  This
package splits it into **shards**, each an independent protocol session
over its own stream of a :class:`repro.net.mux.ChannelMux`, and runs the
shards on a bounded worker pool so one shard's PRG/hash compute overlaps
another shard's bytes on the wire.

Two executors share that plan (:attr:`ShardPlan.executor`):

* ``"thread"`` — shard bodies on pool threads in this process
  (:mod:`repro.exec.pool`); cheap, but numpy glue and hashing from
  different shards serialize on the GIL.
* ``"process"`` — shard bodies in worker processes
  (:mod:`repro.exec.procpool`), inputs shipped through shared memory
  (:mod:`repro.exec.shm`), channel traffic proxied over the same mux
  streams; full multi-core crypto compute.

The shard count is a *public protocol parameter* (both parties must
agree on the :class:`ShardPlan`); the worker count and executor kind are
local execution knobs.  Per-shard randomness is spawned from the
caller's seed via ``numpy.random.SeedSequence``, so results are
byte-identical for any worker count **and either executor** — pinned by
``tests/test_exec_parallel.py`` and ``tests/test_exec_process.py``.
"""

from repro.exec.gcshard import run_evaluator_sharded, run_garbler_sharded
from repro.exec.pool import run_sharded, shard_entropy
from repro.exec.procpool import PipeChannel, mp_context, run_in_process, run_mux_shards
from repro.exec.shm import ShmBundle, shm_enabled
from repro.exec.triplets import (
    EXECUTORS,
    ShardPlan,
    parallel_triplets_client,
    parallel_triplets_server,
)

__all__ = [
    "EXECUTORS",
    "PipeChannel",
    "ShardPlan",
    "ShmBundle",
    "mp_context",
    "parallel_triplets_client",
    "parallel_triplets_server",
    "run_evaluator_sharded",
    "run_garbler_sharded",
    "run_in_process",
    "run_mux_shards",
    "run_sharded",
    "shard_entropy",
    "shm_enabled",
]
