"""Sharded, pipelined execution of the offline phase.

The offline workload — triplet OT batches, GC garbling/evaluation — is
embarrassingly parallel across OT instances / circuit instances.  This
package splits it into **shards**, each an independent protocol session
over its own stream of a :class:`repro.net.mux.ChannelMux`, and runs the
shards on a bounded worker pool so one shard's PRG/hash compute overlaps
another shard's bytes on the wire.

The shard count is a *public protocol parameter* (both parties must
agree on the :class:`ShardPlan`); the worker count is a local execution
knob.  Per-shard randomness is spawned from the caller's seed via
``numpy.random.SeedSequence``, so results are byte-identical for any
worker count — pinned by ``tests/test_exec_parallel.py``.
"""

from repro.exec.gcshard import run_evaluator_sharded, run_garbler_sharded
from repro.exec.pool import run_sharded, shard_entropy
from repro.exec.triplets import (
    ShardPlan,
    parallel_triplets_client,
    parallel_triplets_server,
)

__all__ = [
    "ShardPlan",
    "parallel_triplets_client",
    "parallel_triplets_server",
    "run_evaluator_sharded",
    "run_garbler_sharded",
    "run_sharded",
    "shard_entropy",
]
