"""Worker pool and per-shard randomness for the execution engine."""

from __future__ import annotations

import queue
import threading
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigError


def shard_entropy(
    seed: int | None, shards: int
) -> list[tuple[int | None, np.random.Generator]]:
    """Per-shard ``(ot_seed, rng)`` pairs spawned from one master seed.

    Uses ``SeedSequence.spawn`` (the Philox-backed numpy seeding tree):
    shard ``s`` always receives children ``2s`` (OT session seed) and
    ``2s + 1`` (share-sampling generator) regardless of how many workers
    execute the shards — the determinism contract of :mod:`repro.exec`.
    With ``seed=None`` every shard gets fresh OS entropy.
    """
    if shards < 1:
        raise ConfigError("shards must be positive")
    if seed is None:
        return [(None, np.random.default_rng()) for _ in range(shards)]
    children = np.random.SeedSequence(seed).spawn(2 * shards)
    out = []
    for s in range(shards):
        ot_seed = int(children[2 * s].generate_state(1, np.uint64)[0])
        out.append((ot_seed, np.random.default_rng(children[2 * s + 1])))
    return out


def run_sharded(
    tasks: Sequence[Callable[[], object]],
    workers: int,
    on_error: Callable[[BaseException], None] | None = None,
) -> list:
    """Run ``tasks`` on at most ``workers`` threads; results in task order.

    ``workers <= 1`` degrades to a plain sequential loop on the calling
    thread — zero thread overhead, the engine's synchronous baseline.

    Failure contract: the first task exception **drains** the queue of
    not-yet-started tasks (so no worker can pick up a doomed shard after
    the failure lands, not even one that was mid-``get``), fires
    ``on_error`` once (the execution engine passes ``ChannelMux.abort``
    here, which is what makes in-flight sibling shards fail fast instead
    of waiting out their timeouts), and re-raises the original exception
    — type preserved, the shard index attached as a ``__notes__`` entry —
    after all started tasks have joined, so no worker thread outlives
    the call (the leak tests pin this).
    """
    if workers < 1:
        raise ConfigError("workers must be positive")
    tasks = list(tasks)
    if workers == 1 or len(tasks) <= 1:
        results = []
        for idx, fn in enumerate(tasks):
            try:
                results.append(fn())
            except BaseException as exc:  # noqa: BLE001 - annotated re-raise
                exc.add_note(f"[run_sharded] shard task {idx} failed (sequential)")
                if on_error is not None:
                    on_error(exc)
                raise
        return results

    results: list = [None] * len(tasks)
    errors: list[tuple[int, BaseException]] = []
    pending: queue.SimpleQueue = queue.SimpleQueue()
    for idx in range(len(tasks)):
        pending.put(idx)

    def _worker() -> None:
        while True:
            try:
                idx = pending.get_nowait()
            except queue.Empty:
                return
            if errors:
                return
            try:
                results[idx] = tasks[idx]()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                exc.add_note(
                    f"[run_sharded] shard task {idx} failed; "
                    "queued tasks cancelled"
                )
                errors.append((idx, exc))
                # Drain the queue so idle workers stop immediately rather
                # than chewing through shards whose round is already dead.
                while True:
                    try:
                        pending.get_nowait()
                    except queue.Empty:
                        break
                if on_error is not None:
                    try:
                        on_error(exc)
                    except Exception:  # noqa: BLE001 - abort hooks best-effort
                        pass
                return

    threads = [
        threading.Thread(target=_worker, name=f"abnn2-exec-{i}", daemon=True)
        for i in range(min(workers, len(tasks)))
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0][1]
    return results
