"""Shared-memory shipping of numpy arrays to shard worker processes.

A :class:`ShmBundle` packs a dict of named arrays into **one**
``multiprocessing.shared_memory`` segment: the parent creates it once,
every worker process attaches the same segment and reconstructs
zero-copy read-only views from the picklable :meth:`ShmBundle.handle`
(name + per-array dtype/shape/offset).  This is how the process executor
ships the OT choice digits / R matrix / GC input bits to workers without
serializing megabytes per shard.

Fallback: when the platform lacks POSIX shared memory or the caller sets
``ABNN2_SHM=0``, the bundle degrades to *inline* mode — the arrays ride
in the handle itself and reach each worker through ordinary pickle.
Behaviour is identical (workers only ever read), only the copy cost
differs.

Lifecycle: the parent calls :meth:`close` + :meth:`unlink` after the
round joins; workers :meth:`close` their attachment when the shard body
returns.  Workers never unlink.
"""

from __future__ import annotations

import os
from typing import Any

import numpy as np

from repro.errors import ConfigError

try:  # pragma: no cover - import probe
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic platforms only
    _shm = None


def shm_enabled() -> bool:
    """Whether bundles use a real shared-memory segment on this box."""
    return _shm is not None and os.environ.get("ABNN2_SHM", "1") != "0"


class ShmBundle:
    """One shared segment (or inline fallback) holding named arrays."""

    def __init__(self, arrays: dict[str, np.ndarray], handle: dict[str, Any], seg=None):
        self.arrays = arrays
        self._handle = handle
        self._seg = seg

    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, arrays: dict[str, np.ndarray]) -> "ShmBundle":
        """Pack ``arrays`` for shipping (parent side)."""
        packed = {k: np.ascontiguousarray(v) for k, v in arrays.items()}
        if not shm_enabled():
            return cls(packed, {"kind": "inline", "arrays": packed})
        total = sum(a.nbytes for a in packed.values())
        seg = _shm.SharedMemory(create=True, size=max(1, total))
        items = []
        off = 0
        for name, arr in packed.items():
            view = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf, offset=off)
            view[...] = arr
            items.append((name, arr.dtype.str, arr.shape, off))
            off += arr.nbytes
        handle = {"kind": "shm", "name": seg.name, "items": items}
        # The parent keeps the copied views so thread- and process-mode
        # shard bodies read the very same bytes.
        views = {
            name: np.ndarray(shape, dtype=np.dtype(dt), buffer=seg.buf, offset=o)
            for name, dt, shape, o in items
        }
        return cls(views, handle, seg)

    @classmethod
    def open(cls, handle: dict[str, Any]) -> "ShmBundle":
        """Attach to a shipped handle (worker side)."""
        kind = handle.get("kind")
        if kind == "inline":
            return cls(dict(handle["arrays"]), handle)
        if kind != "shm":
            raise ConfigError(f"unknown ShmBundle handle kind {kind!r}")
        # Note on the resource tracker: worker processes share the
        # parent's tracker (its pipe fd is inherited by fork and spawn
        # alike), and the parent's :meth:`create` already registered the
        # segment.  Attaching would re-register the same name (a dedup
        # no-op) — but the register call takes the tracker lock and
        # writes its pipe, and a ``fork``-mode child may have inherited
        # that lock *held* (another thread of the parent mid-``create``
        # at fork time), deadlocking the worker in bootstrap.  So the
        # attach skips registration entirely: workers never talk to the
        # tracker, and the parent's single unlink balances the books.
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            seg = _shm.SharedMemory(name=handle["name"])
        finally:
            resource_tracker.register = orig_register
        arrays = {}
        for name, dt, shape, off in handle["items"]:
            view = np.ndarray(tuple(shape), dtype=np.dtype(dt), buffer=seg.buf, offset=off)
            view.flags.writeable = False
            arrays[name] = view
        return cls(arrays, handle, seg)

    # ------------------------------------------------------------------ #
    def handle(self) -> dict[str, Any]:
        """The picklable attachment token for :meth:`open`."""
        return self._handle

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        if self._seg is not None:
            self.arrays = {}
            try:
                self._seg.close()
            except OSError:  # pragma: no cover - double close on teardown
                pass

    def unlink(self) -> None:
        """Destroy the segment (creating parent only, after workers join)."""
        if self._seg is not None:
            try:
                self._seg.unlink()
            except OSError:  # pragma: no cover - already gone
                pass
