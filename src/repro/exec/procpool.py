"""Process-pool shard execution: protocol sessions in worker processes.

The thread pool of :mod:`repro.exec.pool` tops out where the GIL does:
numpy glue and hashing from different shards serialize on one core.
This module runs each shard's protocol session in a **worker process**
instead, while keeping the deployment footprint of PR 5 — one socket,
one :class:`repro.net.mux.ChannelMux`, byte-identical per-stream
transcripts:

* the parent spawns one child per shard (at most ``workers`` alive at a
  time — the proxy threads are scheduled by :func:`run_sharded`);
* the child runs the ordinary shard body against a :class:`PipeChannel`,
  a ``Channel``-shaped endpoint whose every ``send``/``recv`` is an RPC
  over a ``multiprocessing.Pipe`` to its parent-side proxy thread;
* the proxy thread forwards each RPC to the shard's mux stream, so the
  wire sees exactly the frames a thread-mode shard would have produced
  (payloads are identical objects; per-stream accounting is identical);
* inputs reach workers via :class:`repro.exec.shm.ShmBundle`
  (shared-memory, pickle-inline fallback) and results/traces return
  through the pipe.

Failure contract: a child that dies mid-protocol (crash, OOM-kill,
``SIGKILL``) surfaces as :class:`repro.errors.ProtocolError` naming the
shard and exit code; a Python-level failure inside the shard body is
re-raised in the parent as ``ProtocolError`` carrying the child's
traceback.  Either way :func:`run_mux_shards` poisons the mux
(:meth:`ChannelMux.abort`) so surviving shards fail fast instead of
waiting out their timeouts, and every child is joined or killed before
the call returns — no orphan processes (``tests/test_exec_process.py``
pins this with a kill-one-worker fault test).

Start method: ``fork`` where available (cheap, inherits the loaded
model/numpy state), overridable with ``ABNN2_MP_START=spawn|forkserver``
for platforms or embeddings where forking a threaded parent is unsafe.
Worker callables must be module-level functions and payloads picklable
either way, so the two start methods are interchangeable.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from typing import Any, Callable

from repro.errors import ConfigError, ProtocolError
from repro.exec.pool import run_sharded
from repro.perf.trace import Tracer
from repro.utils import serialization

_SEND = 0
_RECV = 1
_OK = 2
_ERR = 3
_DONE = 4
_FAIL = 5

#: Grace period for a child to exit after its pipe closes, before the
#: parent escalates to terminate()/kill().
_REAP_GRACE_S = 5.0


def mp_context():
    """The configured multiprocessing context (``ABNN2_MP_START``)."""
    method = os.environ.get("ABNN2_MP_START")
    if method:
        try:
            return multiprocessing.get_context(method)
        except ValueError as exc:
            raise ConfigError(f"unsupported ABNN2_MP_START={method!r}") from exc
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


# --------------------------------------------------------------------- #
# child side
# --------------------------------------------------------------------- #
class PipeChannel:
    """Child-side ``Channel`` endpoint proxied through the parent.

    Duck-types the surface protocol sessions use (``send`` / ``recv`` /
    ``exchange`` / ``tracer`` / byte counters / ``party`` /
    ``timeout_s``).  Accounting counts protocol *payload* bytes exactly
    like :class:`repro.net.mux.MuxChannel`, so a traced process-mode
    shard reports the same figures as its thread-mode twin.
    """

    def __init__(self, conn, party: int = -1, timeout_s: float = 120.0) -> None:
        self._conn = conn
        self.party = party
        self.timeout_s = timeout_s
        self.tracer = None
        self.sent_bytes = 0
        self.recv_bytes = 0
        self.sent_msgs = 0
        self.recv_msgs = 0

    def send(self, obj: Any) -> None:
        self._conn.send((_SEND, obj))
        payload = serialization.payload_nbytes(obj)
        self.sent_bytes += payload
        self.sent_msgs += 1
        if self.tracer is not None:
            self.tracer.record_io("send", payload)

    def recv(self) -> Any:
        from repro.errors import ChannelError

        self._conn.send((_RECV, None))
        try:
            kind, obj = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise ChannelError("parent proxy closed the shard pipe") from exc
        if kind == _ERR:
            raise ChannelError(f"parent proxy failed: {obj}")
        payload = serialization.payload_nbytes(obj)
        self.recv_bytes += payload
        self.recv_msgs += 1
        if self.tracer is not None:
            self.tracer.record_io("recv", payload)
        return obj

    def exchange(self, obj: Any) -> Any:
        self.send(obj)
        return self.recv()

    def __repr__(self) -> str:
        return f"PipeChannel(party={self.party})"


def _child_main(conn, worker, payload, party, timeout_s, trace, trace_name) -> None:
    """Worker-process entry: run ``worker(chan, payload)``, ship the result."""
    try:
        chan = PipeChannel(conn, party=party, timeout_s=timeout_s)
        if trace:
            chan.tracer = Tracer(trace_name)
        result = worker(chan, payload)
        conn.send((_DONE, result, chan.tracer))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send((_FAIL, type(exc).__name__, str(exc), traceback.format_exc()))
        except Exception:  # pragma: no cover - parent already gone
            pass
    finally:
        try:
            conn.close()
        except Exception:  # pragma: no cover
            pass


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
def _reap(proc) -> None:
    """Join a child, escalating so it can never outlive the call."""
    proc.join(timeout=_REAP_GRACE_S)
    if proc.is_alive():  # pragma: no cover - only on a wedged child
        proc.terminate()
        proc.join(timeout=_REAP_GRACE_S)
    if proc.is_alive():  # pragma: no cover
        proc.kill()
        proc.join()
    proc.close()


def proxy_shard(
    stream,
    tag: int,
    worker: Callable[[Any, Any], Any],
    payload: Any,
    *,
    trace: bool = False,
    ctx=None,
) -> tuple[Any, "Tracer | None"]:
    """Run one shard in a child process, proxying its channel traffic.

    Blocks the calling (proxy) thread until the child reports a result
    or dies; returns ``(result, child_tracer_or_None)``.  The child is
    always reaped before this returns, on success and failure alike.
    """
    ctx = ctx or mp_context()
    parent_conn, child_conn = ctx.Pipe()
    proc = ctx.Process(
        target=_child_main,
        args=(
            child_conn,
            worker,
            payload,
            getattr(stream, "party", -1),
            getattr(stream, "timeout_s", 120.0),
            trace,
            f"shard{tag}",
        ),
        name=f"abnn2-shard{tag}",
        daemon=True,
    )
    proc.start()
    child_conn.close()
    try:
        while True:
            try:
                msg = parent_conn.recv()
            except (EOFError, OSError) as exc:
                proc.join(timeout=1.0)
                raise ProtocolError(
                    f"shard {tag} worker process died mid-protocol "
                    f"(exit code {proc.exitcode})"
                ) from exc
            kind = msg[0]
            if kind == _SEND:
                stream.send(msg[1])
            elif kind == _RECV:
                try:
                    obj = stream.recv()
                except BaseException as exc:
                    # Tell the child so it unwinds instead of blocking on
                    # a reply that will never come.
                    try:
                        parent_conn.send((_ERR, f"{type(exc).__name__}: {exc}"))
                    except (OSError, BrokenPipeError):
                        pass
                    raise
                try:
                    parent_conn.send((_OK, obj))
                except (EOFError, OSError) as exc:
                    proc.join(timeout=1.0)
                    raise ProtocolError(
                        f"shard {tag} worker process died mid-protocol "
                        f"(exit code {proc.exitcode})"
                    ) from exc
            elif kind == _DONE:
                return msg[1], msg[2]
            elif kind == _FAIL:
                raise ProtocolError(
                    f"shard {tag} worker failed with {msg[1]}: {msg[2]}\n"
                    f"--- worker traceback ---\n{msg[3]}"
                )
            else:
                raise ProtocolError(f"shard {tag} sent unknown proxy opcode {kind!r}")
    finally:
        try:
            parent_conn.close()
        except OSError:  # pragma: no cover
            pass
        _reap(proc)


def run_mux_shards(
    mux,
    specs: list[tuple[int, Callable[[Any, Any], Any], Any]],
    workers: int,
    *,
    trace: bool = False,
    busy_out: "list[float] | None" = None,
    tracers_out: "list | None" = None,
) -> list:
    """Run ``(tag, worker, payload)`` shard specs in child processes.

    At most ``workers`` children are alive at once; results come back in
    spec order.  The first failing shard aborts the mux so surviving
    shards fail fast, and — via :func:`run_sharded`'s cancellation — no
    queued shard is started after the failure.  ``busy_out`` /
    ``tracers_out`` are per-tag slots filled as shards complete.
    """
    ctx = mp_context()

    def make_task(tag, worker, payload):
        def task():
            t0 = time.perf_counter()
            stream = mux.stream(tag)
            try:
                result, shipped = proxy_shard(
                    stream, tag, worker, payload, trace=trace, ctx=ctx
                )
                if tracers_out is not None:
                    tracers_out[tag] = shipped
                return result
            finally:
                if busy_out is not None:
                    busy_out[tag] = time.perf_counter() - t0

        return task

    tasks = [make_task(tag, worker, payload) for tag, worker, payload in specs]
    return run_sharded(tasks, workers, on_error=mux.abort)


def run_in_process(worker: Callable[[Any, Any], Any], payload: Any) -> Any:
    """Run one ``worker(chan, payload)`` in a child with no channel proxy.

    For jobs that are self-contained (both protocol parties inside the
    child, e.g. the triplet bank's self-play generation): the child gets
    a :class:`PipeChannel` it simply never uses.  Failure semantics match
    :func:`proxy_shard`.
    """
    result, _ = proxy_shard(_DummyStream(), 0, worker, payload, trace=False)
    return result


class _DummyStream:
    """Stand-in stream for self-contained (no-proxy) child jobs."""

    party = -1
    timeout_s = 120.0

    def send(self, obj) -> None:
        raise ProtocolError("self-contained worker must not touch the channel")

    def recv(self):
        raise ProtocolError("self-contained worker must not touch the channel")
